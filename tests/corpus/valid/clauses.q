# Trailing clauses: rankings, algorithm pins, limits, in any order.
Q(x, y) :- R(x, y) rank by sum
Q(x, y) :- R(x, y) rank by sum asc
Q(x, y) :- R(x, y) rank by sum desc
Q(x, y) :- R(x, y) rank by bottleneck
Q(x, y) :- R(x, y) via take2
Q(x, y) :- R(x, y) via recursive limit 0
Q(x, y) :- R(x, y) limit 50 rank by sum desc via lazy
Q(limit) :- rank(limit, via) limit 2
Q(x1, x2, x3, x4, x5, x6, x7) :- R1(x1, x2), R2(x2, x3), R3(x3, x4), R4(x4, x5), R5(x5, x6), R6(x6, x7) rank by bottleneck via eager limit 10
