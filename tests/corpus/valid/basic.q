# One query per line; `#` lines are comments. Every line must parse and its
# canonical text must be a parse/print fixpoint.
Q(x, y) :- R(x, y)
Q(x, z) :- R(x, y), S(y, z), y = 7 rank by sum limit 1000
Q(x1, x2, x3, x4, x5) :- R1(x1, x2), R2(x2, x3), R3(x3, x4), R4(x4, x5)
Q() :- R(x, y)
Answers(a, b, c) :- Edge(a, b), Edge(b, c)
