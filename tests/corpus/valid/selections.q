# Selections: explicit predicates, flipped predicates, inline constants
# (integer and string), and repeated variables within one atom.
Q(x, y) :- R(x, y), x = 3
Q(x, y) :- R(x, y), 3 = x
Q(x) :- R(x, 7)
Q(b, c) :- Follows("alice", b), Knows(b, c)
Q(u) :- Follows(u, "name with \"quotes\" and \\ slashes")
Q(x, y) :- R(x, x), S(x, y)
Q(x) :- R(x, x, x)
Q(x, y) :- R(x, y), x = 1, x = 2
