# Well-formed syntax, invalid requests: typed errors, never panics.
Q(zz) :- R(x, y)
Q(x, x) :- R(x, y)
Q(x) :- R(x, y), q = 3
Q(x) :- R(x, y) rank by bottleneck desc
Q(x) :- R(x, y) rank by lexicographic
Q(x) :- R(x, y) via quantum
Q(x) :- R(x, y) via lazy via eager
Q(x) :- R(x, y) limit 1 limit 2
Q(x) :- R(x, y) rank by sum rank by sum
