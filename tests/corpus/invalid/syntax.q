# Syntax errors: every line must produce a typed ParseError, never a panic.
Q(x)
Q(x) : R(x, y)
Q(x) :- R(x, y
Q(x) :- R(x, y) trailing garbage
Q(x) :- R(x, y),
Q(7) :- R(x, y)
Q(x) :-
Q(x) :- R(x, "unterminated
Q(x) :- R(x, "bad \q escape")
Q(x) :- R(x; y)
Q(x) :- R(x, y) limit many
Q(x) :- R(x, y) limit 99999999999999999999999999
Q(x) :- x = 3
Q(x) :- R(x, y), = 3
Q(x) :- R(x, y), 3 = 4
