//! Differential tests for the query-service subsystem: paged, suspendable,
//! concurrent sessions must reproduce the one-shot [`RankedQuery`] streams
//! **bit-identically** — same values, same weights, same order — whatever
//! the page sizes, suspension points, interleavings, thread schedules, or
//! index-cache evictions.

use anyk::core::AnyKAlgorithm;
use anyk::datagen::{cycles, rng, text, uniform};
use anyk::engine::{Answer, RankedQuery, RankingFunction};
use anyk::query::{ConjunctiveQuery, QueryBuilder};
use anyk::server::{QueryService, ServiceConfig, SessionId};
use anyk::storage::Database;

/// Drain a session in pages of `page_size`, concatenating the pages.
fn drain_paged(service: &QueryService, id: SessionId, page_size: usize) -> Vec<Answer> {
    let mut all = Vec::new();
    loop {
        let page = service.next_page(id, page_size).expect("live session");
        all.extend(page.answers);
        if page.done {
            return all;
        }
    }
}

fn one_shot(db: &Database, query: &ConjunctiveQuery, algorithm: AnyKAlgorithm) -> Vec<Answer> {
    RankedQuery::new(db, query)
        .expect("plan")
        .enumerate(algorithm)
        .collect()
}

#[test]
fn paged_streams_are_bit_identical_across_all_variants_and_page_sizes() {
    let db = uniform::path_or_star_database(3, 60, &mut rng(42));
    let query = QueryBuilder::path(3).build();
    let service = QueryService::new(db.clone());
    for algorithm in AnyKAlgorithm::ALL {
        let reference = one_shot(&db, &query, algorithm);
        assert!(!reference.is_empty(), "workload produces answers");
        let total = reference.len();
        for page_size in [1, 3, 7, total, total + 10] {
            let id = service.open_session(&query, algorithm).unwrap();
            let paged = drain_paged(&service, id, page_size);
            assert_eq!(paged, reference, "{algorithm} with page size {page_size}");
            service.close_session(id);
        }
    }
}

#[test]
fn cycle_sessions_page_the_union_enumerator_identically() {
    // A 4-cycle query runs through the cycle decomposition + UT-DP union:
    // paging must suspend/resume the union heap and every per-tree
    // enumerator as one unit.
    let db = cycles::worst_case_cycle_database(4, 30, &mut rng(7));
    let query = QueryBuilder::cycle(4).build();
    let service = QueryService::new(db.clone());
    for algorithm in [
        AnyKAlgorithm::Take2,
        AnyKAlgorithm::Lazy,
        AnyKAlgorithm::Recursive,
    ] {
        let reference = one_shot(&db, &query, algorithm);
        assert!(!reference.is_empty());
        let id = service.open_session(&query, algorithm).unwrap();
        let paged = drain_paged(&service, id, 5);
        assert_eq!(paged, reference, "{algorithm}");
    }
}

#[test]
fn suspended_and_resumed_sessions_match_one_shot_streams() {
    // The acceptance criterion verbatim: pull a prefix, suspend the session
    // while other sessions run to completion, resume, and require the
    // concatenation to equal the one-shot stream — for every any-k variant.
    let db = uniform::path_or_star_database(4, 50, &mut rng(9));
    let query = QueryBuilder::path(4).build();
    let service = QueryService::new(db.clone());
    for algorithm in [
        AnyKAlgorithm::Eager,
        AnyKAlgorithm::Lazy,
        AnyKAlgorithm::All,
        AnyKAlgorithm::Take2,
        AnyKAlgorithm::Recursive,
    ] {
        let reference = one_shot(&db, &query, algorithm);
        let id = service.open_session(&query, algorithm).unwrap();
        let mut resumed = service.next_page(id, 5).unwrap().answers;
        // Suspension = simply not pulling. Meanwhile, other sessions (same
        // plan, different plan) run to completion.
        let other = service.open_session(&query, AnyKAlgorithm::Take2).unwrap();
        drain_paged(&service, other, 13);
        let star = QueryBuilder::star(4).build();
        let noise = service.open_session(&star, algorithm).unwrap();
        drain_paged(&service, noise, 8);
        // Resume.
        resumed.extend(drain_paged(&service, id, 11));
        assert_eq!(resumed, reference, "{algorithm}");
    }
}

#[test]
fn interleaved_sessions_do_not_perturb_each_other() {
    let db = uniform::path_or_star_database(3, 80, &mut rng(21));
    let path = QueryBuilder::path(3).build();
    let star = QueryBuilder::star(3).build();
    let service = QueryService::new(db.clone());

    // Six sessions over two queries and three algorithms, pulled round-robin
    // with co-prime page sizes so suspension points never line up.
    let spec: Vec<(&ConjunctiveQuery, AnyKAlgorithm, usize)> = vec![
        (&path, AnyKAlgorithm::Take2, 1),
        (&star, AnyKAlgorithm::Take2, 3),
        (&path, AnyKAlgorithm::Lazy, 5),
        (&star, AnyKAlgorithm::Recursive, 7),
        (&path, AnyKAlgorithm::Eager, 11),
        (&star, AnyKAlgorithm::All, 13),
    ];
    let mut sessions: Vec<(SessionId, usize, Vec<Answer>, bool)> = spec
        .iter()
        .map(|&(q, alg, page)| {
            (
                service.open_session(q, alg).unwrap(),
                page,
                Vec::new(),
                false,
            )
        })
        .collect();
    loop {
        let mut any_live = false;
        for (id, page_size, collected, done) in &mut sessions {
            if *done {
                continue;
            }
            any_live = true;
            let page = service.next_page(*id, *page_size).unwrap();
            collected.extend(page.answers);
            *done = page.done;
        }
        if !any_live {
            break;
        }
    }
    for ((q, alg, _), (_, _, collected, _)) in spec.iter().zip(&sessions) {
        assert_eq!(collected, &one_shot(&db, q, *alg), "{alg}");
    }
    // Two distinct queries × deduped rankings: exactly 2 compilations.
    assert_eq!(service.metrics().plan_misses, 2);
    assert_eq!(service.prepared_count(), 2);
}

#[test]
fn eight_concurrent_sessions_survive_a_starved_index_cache() {
    // ≥ 8 concurrent sessions over one snapshot while the index cache is
    // capped *below* the number of distinct (relation, key columns) pairs
    // the two plans exercise (path-4 wants (R1,[1]), (R2,[1]), (R3,[1]);
    // star-3 wants (R1,[0]) — four distinct pairs, cap 2), so evictions can
    // land mid-preparation. Every paged stream must still equal its
    // one-shot reference.
    let db = uniform::path_or_star_database(4, 40, &mut rng(33));
    let path = QueryBuilder::path(4).build();
    let star = QueryBuilder::star(3).build();
    let path_refs: Vec<Vec<Answer>> = [AnyKAlgorithm::Take2, AnyKAlgorithm::Recursive]
        .iter()
        .map(|&a| one_shot(&db, &path, a))
        .collect();
    let star_refs: Vec<Vec<Answer>> = [AnyKAlgorithm::Take2, AnyKAlgorithm::Recursive]
        .iter()
        .map(|&a| one_shot(&db, &star, a))
        .collect();

    let service = QueryService::with_config(
        db,
        ServiceConfig {
            index_cache_capacity: Some(2),
            ..ServiceConfig::default()
        },
    );
    assert_eq!(service.database().index_cache_capacity(), 2);

    let sessions = 10;
    std::thread::scope(|scope| {
        for t in 0..sessions {
            let service = &service;
            let (query, reference) = if t % 2 == 0 {
                (&path, &path_refs[(t / 2) % 2])
            } else {
                (&star, &star_refs[(t / 2) % 2])
            };
            let algorithm = if (t / 2) % 2 == 0 {
                AnyKAlgorithm::Take2
            } else {
                AnyKAlgorithm::Recursive
            };
            scope.spawn(move || {
                let id = service.open_session(query, algorithm).unwrap();
                let paged = drain_paged(service, id, 1 + t);
                assert_eq!(&paged, reference, "thread {t} ({algorithm})");
                service.close_session(id);
            });
        }
    });

    let cache = service.index_cache_stats();
    assert!(
        cache.entries <= 2,
        "LRU bound held: {} entries",
        cache.entries
    );
    assert!(
        cache.evictions > 0,
        "cap below working set forced evictions"
    );
    let m = service.metrics();
    assert_eq!(m.sessions_opened, sessions as u64);
    assert_eq!(m.sessions_closed, sessions as u64);
    assert_eq!(service.session_count(), 0);
}

#[test]
fn text_sessions_decode_pages_like_one_shot_streams() {
    let db = text::text_social_database(
        3,
        text::TextSocialConfig {
            users: 80,
            avg_degree: 3,
        },
        &mut rng(5),
    );
    let query = QueryBuilder::path(3).build();
    let service = QueryService::new(db.clone());

    let ranked = RankedQuery::new(&db, &query).expect("plan");
    let decoder = ranked.decoder();
    let reference: Vec<Vec<String>> = ranked
        .enumerate(AnyKAlgorithm::Take2)
        .map(|a| decoder.render(&a))
        .collect();
    assert!(!reference.is_empty());

    let id = service.open_session(&query, AnyKAlgorithm::Take2).unwrap();
    let session_decoder = service.decoder(id).unwrap();
    let mut rendered = Vec::new();
    loop {
        let page = service.next_page(id, 7).unwrap();
        rendered.extend(page.answers.iter().map(|a| session_decoder.render(a)));
        if page.done {
            break;
        }
    }
    assert_eq!(rendered, reference);
    // Every decoded head value is a username, not a dense id.
    assert!(rendered
        .iter()
        .flatten()
        .all(|v| v.chars().any(|c| c.is_alphabetic())));
}

#[test]
fn descending_ranking_sessions_page_identically() {
    let db = uniform::path_or_star_database(2, 70, &mut rng(17));
    let query = QueryBuilder::path(2).build();
    let service = QueryService::new(db.clone());
    let reference: Vec<Answer> =
        RankedQuery::with_ranking(&db, &query, RankingFunction::SumDescending)
            .unwrap()
            .enumerate(AnyKAlgorithm::Lazy)
            .collect();
    let id = service
        .open_session_with(&query, RankingFunction::SumDescending, AnyKAlgorithm::Lazy)
        .unwrap();
    assert_eq!(drain_paged(&service, id, 4), reference);
}
