//! Cross-crate tests for the `QuerySpec` request API: the textual path is
//! bit-identical to the builder path, the parse→print→parse fixpoint holds,
//! randomized specs with selection predicates agree with the
//! predicate-aware naive-SQL oracle across all six algorithms, the query
//! service answers text and struct requests identically (sharing one plan
//! cache entry for alpha-equivalent requests), and the on-disk parser
//! corpus produces typed errors, never panics.

use anyk::core::AnyKAlgorithm;
use anyk::engine::{naive_sql, Answer, RankedQuery, RankingFunction};
use anyk::prelude::Algorithm;
use anyk::query::{parse_query, Atom, Predicate, QueryBuilder, QuerySpec};
use anyk::server::QueryService;
use anyk::storage::{Database, Relation, Schema, Value};
use proptest::prelude::*;

/// A random database of `ell` binary relations with values in a small domain
/// (to force joins) and integer weights (to keep float sums exact).
fn random_db(ell: usize, max_tuples: usize) -> impl Strategy<Value = Database> {
    proptest::collection::vec(
        proptest::collection::vec((0u64..6, 0u64..6, 0u32..100), 1..=max_tuples),
        ell,
    )
    .prop_map(|relations| {
        let mut db = Database::new();
        for (i, tuples) in relations.into_iter().enumerate() {
            let mut r = Relation::new(format!("R{}", i + 1), 2);
            for (a, b, w) in tuples {
                r.push_edge(a, b, w as f64);
            }
            db.add(r);
        }
        db
    })
}

/// A random spec over `R1..R3`: one of four shapes (including a
/// repeated-variable atom), up to two integer predicates, any ranking, and
/// sometimes a projected head.
fn random_spec() -> impl Strategy<Value = QuerySpec> {
    (0usize..4, 0usize..3, 0u64..6, 0u64..6, 0usize..3, 0usize..2).prop_map(
        |(shape, npreds, c1, c2, ranking, project)| {
            let (atoms, head): (Vec<Atom>, Vec<&str>) = match shape {
                0 => (
                    vec![
                        Atom::new("R1", &["x1", "x2"]),
                        Atom::new("R2", &["x2", "x3"]),
                        Atom::new("R3", &["x3", "x4"]),
                    ],
                    vec!["x1", "x2", "x3", "x4"],
                ),
                1 => (
                    vec![
                        Atom::new("R1", &["x0", "y1"]),
                        Atom::new("R2", &["x0", "y2"]),
                        Atom::new("R3", &["x0", "y3"]),
                    ],
                    vec!["x0", "y1", "y2", "y3"],
                ),
                2 => (
                    vec![Atom::new("R1", &["x", "y"]), Atom::new("R1", &["y", "z"])],
                    vec!["x", "y", "z"],
                ),
                _ => (
                    vec![Atom::new("R1", &["x", "x"]), Atom::new("R2", &["x", "y"])],
                    vec!["x", "y"],
                ),
            };
            let mut spec = QuerySpec::new(
                atoms,
                if project == 1 {
                    head[..head.len() - 1]
                        .iter()
                        .map(|s| s.to_string())
                        .collect()
                } else {
                    head.iter().map(|s| s.to_string()).collect()
                },
            );
            let vars = spec.variables();
            if npreds >= 1 {
                spec.predicates
                    .push(Predicate::int(vars[c1 as usize % vars.len()].clone(), c1));
            }
            if npreds >= 2 {
                spec.predicates
                    .push(Predicate::int(vars[c2 as usize % vars.len()].clone(), c2));
            }
            spec.ranking = match ranking {
                0 => RankingFunction::SumAscending,
                1 => RankingFunction::SumDescending,
                _ => RankingFunction::BottleneckAscending,
            };
            spec
        },
    )
}

/// Collapse an answer stream into a sorted multiset fingerprint that is
/// stable across tie orders: (values, weight in fixed-point).
fn multiset(answers: impl IntoIterator<Item = Answer>) -> Vec<(Vec<Value>, i64)> {
    let mut out: Vec<(Vec<Value>, i64)> = answers
        .into_iter()
        .map(|a| (a.values().to_vec(), (a.weight() * 1e6).round() as i64))
        .collect();
    out.sort();
    out
}

/// The any-k spec path agrees with the predicate-aware oracle: same answer
/// multiset from every algorithm, every stream in rank order.
fn assert_spec_matches_oracle(db: &Database, spec: &QuerySpec) {
    let oracle = naive_sql::join_and_sort_spec(db, spec).expect("oracle evaluation");
    let expected = multiset(oracle.iter().cloned());
    let prepared = RankedQuery::from_spec(db, spec).expect("spec plan");
    assert_eq!(prepared.count_answers() as usize, expected.len());
    for algorithm in AnyKAlgorithm::ALL {
        let answers: Vec<Answer> = prepared.enumerate(algorithm).collect();
        for w in answers.windows(2) {
            let (a, b) = (
                spec.ranking.encode(w[0].weight()),
                spec.ranking.encode(w[1].weight()),
            );
            assert!(a <= b + 1e-9, "{algorithm}: out of rank order");
        }
        assert_eq!(multiset(answers), expected, "{algorithm}: answer multiset");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn randomized_specs_agree_with_the_filtered_oracle(
        db in random_db(3, 15),
        spec in random_spec(),
    ) {
        assert_spec_matches_oracle(&db, &spec);
    }

    #[test]
    fn parse_print_parse_is_a_fixpoint(spec in random_spec()) {
        let canonical = spec.canonical();
        prop_assert_eq!(canonical.canonical(), canonical.clone(), "canonical is idempotent");
        let printed = spec.canonical_text();
        let reparsed = parse_query(&printed).expect("canonical text parses");
        prop_assert_eq!(&reparsed, &canonical, "parse inverts the pretty-printer");
        prop_assert_eq!(reparsed.canonical_text(), printed, "printing is a fixpoint");
        // The as-written printer round-trips too.
        prop_assert_eq!(parse_query(&spec.to_text()).expect("as-written text parses"), spec);
    }

    #[test]
    fn text_path_is_bit_identical_to_builder_path(db in random_db(4, 12)) {
        // The same query three ways: builder struct, written text, and the
        // canonical (alpha-renamed) text. All three must produce the same
        // answers in the same order, per algorithm — not just as multisets.
        let query = QueryBuilder::path(4).build();
        let by_struct = RankedQuery::new(&db, &query).unwrap();
        let by_text = RankedQuery::from_text(
            &db,
            "Q(x1, x2, x3, x4, x5) :- R1(x1, x2), R2(x2, x3), R3(x3, x4), R4(x4, x5)",
        )
        .unwrap();
        let alpha = QuerySpec::from_query(&query, RankingFunction::SumAscending).canonical_text();
        let by_canonical = RankedQuery::from_text(&db, &alpha).unwrap();
        for algorithm in AnyKAlgorithm::ALL {
            let reference: Vec<Answer> = by_struct.enumerate(algorithm).collect();
            let text: Vec<Answer> = by_text.enumerate(algorithm).collect();
            let canonical: Vec<Answer> = by_canonical.enumerate(algorithm).collect();
            prop_assert_eq!(&text, &reference, "{}: text vs struct", algorithm);
            prop_assert_eq!(&canonical, &reference, "{}: canonical vs struct", algorithm);
        }
    }

    #[test]
    fn limits_truncate_the_ranked_stream(db in random_db(3, 12), limit in 0usize..8) {
        let text = format!(
            "Q(x1, x2, x3, x4) :- R1(x1, x2), R2(x2, x3), R3(x3, x4) limit {limit}"
        );
        let limited = RankedQuery::from_text(&db, &text).unwrap();
        let unlimited = RankedQuery::from_text(
            &db,
            "Q(x1, x2, x3, x4) :- R1(x1, x2), R2(x2, x3), R3(x3, x4)",
        )
        .unwrap();
        for algorithm in [AnyKAlgorithm::Take2, AnyKAlgorithm::Recursive] {
            let full: Vec<Answer> = unlimited.enumerate(algorithm).collect();
            let cut: Vec<Answer> = limited.enumerate(algorithm).collect();
            prop_assert_eq!(cut.len(), full.len().min(limit));
            prop_assert_eq!(cut.as_slice(), &full[..cut.len()], "{}", algorithm);
        }
        prop_assert_eq!(
            limited.count_answers(),
            (unlimited.count_answers()).min(limit as u128)
        );
    }

    #[test]
    fn repeated_variable_queries_match_the_oracle_via_both_apis(db in random_db(2, 15)) {
        // `R1(x, x), R2(x, y)` through the builder (struct) path: the
        // filtered-copy rewrite closes the old "not supported directly"
        // caveat without the caller doing anything.
        let query = QueryBuilder::new()
            .atom("R1", &["x", "x"])
            .atom("R2", &["x", "y"])
            .build();
        let spec = QuerySpec::from_query(&query, RankingFunction::SumAscending);
        let oracle = multiset(naive_sql::join_and_sort_spec(&db, &spec).unwrap());
        let by_struct = RankedQuery::new(&db, &query).unwrap();
        let by_text = RankedQuery::from_text(&db, "Q(x, y) :- R1(x, x), R2(x, y)").unwrap();
        for algorithm in AnyKAlgorithm::ALL {
            prop_assert_eq!(
                multiset(by_struct.enumerate(algorithm)),
                oracle.clone(),
                "{}: struct",
                algorithm
            );
            prop_assert_eq!(
                multiset(by_text.enumerate(algorithm)),
                oracle.clone(),
                "{}: text",
                algorithm
            );
        }
    }
}

#[test]
fn service_text_and_struct_sessions_page_identically_for_all_algorithms() {
    let mut db = Database::new();
    for (name, seed) in [("R1", 1u64), ("R2", 3), ("R3", 5)] {
        let mut r = Relation::new(name, 2);
        for i in 0..12u64 {
            r.push_edge((i * seed) % 5, (i * seed + 1) % 5, ((i + seed) % 7) as f64);
        }
        db.add(r);
    }
    let service = QueryService::new(db);
    let query = QueryBuilder::path(3).build();
    for algorithm in AnyKAlgorithm::ALL {
        let by_struct = service.open_session(&query, algorithm).unwrap();
        let text = format!(
            "Q(a, b, c, d) :- R1(a, b), R2(b, c), R3(c, d) via {}",
            anyk::query::spec::algorithm_token(algorithm)
        );
        let by_text = service.open_session_text(&text).unwrap();
        loop {
            let a = service.next_page(by_struct, 7).unwrap();
            let b = service.next_page(by_text, 7).unwrap();
            assert_eq!(a, b, "{algorithm}: pages diverged");
            if a.done {
                break;
            }
        }
    }
    // Six algorithms × two sessions over one query shape: a single compiled
    // plan serves everything (alpha-renaming included).
    assert_eq!(service.prepared_count(), 1);
    let metrics = service.metrics();
    assert_eq!(metrics.plan_misses, 1);
    assert_eq!(metrics.plan_hits, 11);
}

#[test]
fn cyclic_text_queries_with_predicates_decompose_over_filtered_copies() {
    // A 4-cycle with both heavy hubs (value 0) and light values, queried
    // through text with a selection on one cycle attribute: the pushdown
    // runs before the cycle decomposition, so every partition enumerates
    // the reduced input. Differential against the filtered oracle.
    let mut db = Database::new();
    for i in 1..=4 {
        let mut r = Relation::new(format!("R{i}"), 2);
        for j in 1..=6u64 {
            r.push_edge(0, j, (i as f64) + (j as f64) / 10.0);
            r.push_edge(j, 0, (i as f64) * 2.0 + (j as f64) / 10.0);
        }
        db.add(r);
    }
    let text = "Q(x1, x2, x3, x4) :- R1(x1, x2), R2(x2, x3), R3(x3, x4), R4(x4, x1), x2 = 3";
    let spec = parse_query(text).unwrap();
    let oracle = naive_sql::join_and_sort_spec(&db, &spec).unwrap();
    assert!(!oracle.is_empty());
    let prepared = RankedQuery::from_text(&db, text).unwrap();
    assert!(
        prepared.is_decomposed(),
        "still a simple cycle after rewrite"
    );
    for algorithm in AnyKAlgorithm::ALL {
        let answers: Vec<Answer> = prepared.enumerate(algorithm).collect();
        for a in &answers {
            assert_eq!(a.values()[1], 3, "{algorithm}: selection pushed down");
        }
        assert_eq!(
            multiset(answers),
            multiset(oracle.iter().cloned()),
            "{algorithm}"
        );
    }
}

#[test]
fn service_sessions_with_predicates_match_the_oracle() {
    let mut db = Database::new();
    for (name, seed) in [("R1", 2u64), ("R2", 3)] {
        let mut r = Relation::new(name, 2);
        for i in 0..20u64 {
            r.push_edge((i * seed) % 6, (i + seed) % 6, (i % 9) as f64);
        }
        db.add(r);
    }
    let spec = parse_query("Q(x, y, z) :- R1(x, y), R2(y, z), y = 2 rank by sum desc").unwrap();
    let oracle = naive_sql::join_and_sort_spec(&db, &spec).unwrap();
    let service = QueryService::new(db);
    let id = service.open_session_spec(&spec).unwrap();
    let mut paged = Vec::new();
    loop {
        let page = service.next_page(id, 3).unwrap();
        paged.extend(page.answers);
        if page.done {
            break;
        }
    }
    assert_eq!(multiset(paged), multiset(oracle));
}

#[test]
fn string_predicates_filter_through_dictionaries() {
    let schema = Schema::text_shared(2);
    let mut db = Database::new();
    for (name, shift) in [("F1", 0usize), ("F2", 1)] {
        let mut r = Relation::with_schema(name, schema.clone());
        let users = ["alice", "bob", "carol", "dave", "erin"];
        for i in 0..users.len() {
            for j in 1..=2 {
                r.push_text_edge(
                    users[(i + shift) % users.len()],
                    users[(i + shift + j) % users.len()],
                    (i * j % 5) as f64 + 1.0,
                );
            }
        }
        db.add(r);
    }
    let spec = parse_query("Q(a, b, c) :- F1(a, b), F2(b, c), a = \"alice\"").unwrap();
    let oracle = naive_sql::join_and_sort_spec(&db, &spec).unwrap();
    assert!(!oracle.is_empty(), "test data joins for alice");
    let prepared = RankedQuery::from_spec(&db, &spec).unwrap();
    let decoder = prepared.decoder();
    for algorithm in AnyKAlgorithm::ALL {
        let answers: Vec<Answer> = prepared.enumerate(algorithm).collect();
        assert_eq!(
            multiset(answers.iter().cloned()),
            multiset(oracle.iter().cloned())
        );
        for a in &answers {
            assert_eq!(decoder.render(a)[0], "alice", "{algorithm}");
        }
    }
    // Inline string constants desugar to the same plan.
    let sugar = parse_query("Q(b, c) :- F1(\"alice\", b), F2(b, c)").unwrap();
    assert!(!RankedQuery::from_spec(&db, &sugar)
        .unwrap()
        .top_k(Algorithm::Take2, 1)
        .is_empty());
    // A username the dictionary never saw matches nothing (and is an empty
    // result, not an error).
    let nobody = parse_query("Q(a, b) :- F1(a, b), a = \"nobody\"").unwrap();
    assert_eq!(
        RankedQuery::from_spec(&db, &nobody)
            .unwrap()
            .count_answers(),
        0
    );
}

/// The on-disk parser corpus: every `valid/*.q` file parses and its
/// canonical text is a parse/print fixpoint; every `invalid/*.q` file
/// produces a typed error (never a panic).
fn corpus_dir(kind: &str) -> Vec<(String, String)> {
    let dir = format!("{}/tests/corpus/{kind}", env!("CARGO_MANIFEST_DIR"));
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {dir}: {e}"))
        .map(|entry| entry.expect("corpus entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "q"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "empty corpus dir {dir}");
    files
        .into_iter()
        .map(|p| {
            (
                p.file_name().unwrap().to_string_lossy().into_owned(),
                std::fs::read_to_string(&p).expect("readable corpus file"),
            )
        })
        .collect()
}

#[test]
fn corpus_valid_queries_parse_and_round_trip() {
    for (name, text) in corpus_dir("valid") {
        for line in text
            .lines()
            .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
        {
            let spec = parse_query(line).unwrap_or_else(|e| panic!("{name}: `{line}`: {e}"));
            let canonical = spec.canonical_text();
            let reparsed = parse_query(&canonical)
                .unwrap_or_else(|e| panic!("{name}: canonical `{canonical}`: {e}"));
            assert_eq!(reparsed, spec.canonical(), "{name}: `{line}`");
        }
    }
}

#[test]
fn corpus_invalid_queries_fail_with_typed_errors() {
    for (name, text) in corpus_dir("invalid") {
        for line in text
            .lines()
            .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
        {
            let result = std::panic::catch_unwind(|| parse_query(line));
            match result {
                Ok(Err(err)) => {
                    // Typed error with a position and a message.
                    assert!(!err.message.is_empty(), "{name}: `{line}`");
                    assert!(err.offset <= line.len(), "{name}: `{line}`");
                }
                Ok(Ok(spec)) => panic!("{name}: `{line}` unexpectedly parsed: {spec:?}"),
                Err(_) => panic!("{name}: `{line}` panicked instead of returning an error"),
            }
        }
    }
}
