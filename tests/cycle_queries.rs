//! Integration tests for cyclic queries: the simple-cycle decomposition
//! (§5.3.1) produces exactly the same ranked output as independent
//! evaluation strategies, on random inputs and on the constructions used in
//! the paper's experiments.

use anyk::core::AnyKAlgorithm;
use anyk::datagen::{adversarial, cycles, rng};
use anyk::engine::{naive_sql, wcoj, RankedQuery, RankingFunction};
use anyk::query::QueryBuilder;
use anyk::storage::{Database, Relation};
use proptest::prelude::*;

fn random_cycle_db(ell: usize, max_tuples: usize) -> impl Strategy<Value = Database> {
    proptest::collection::vec(
        proptest::collection::vec((0u64..5, 0u64..5, 0u32..50), 1..=max_tuples),
        ell,
    )
    .prop_map(|relations| {
        let mut db = Database::new();
        for (i, tuples) in relations.into_iter().enumerate() {
            let mut r = Relation::new(format!("R{}", i + 1), 2);
            for (a, b, w) in tuples {
                r.push_edge(a, b, w as f64);
            }
            db.add(r);
        }
        db
    })
}

fn assert_cycle_equivalence(db: &Database, ell: usize) {
    let query = QueryBuilder::cycle(ell).build();
    let expected: Vec<f64> = naive_sql::join_and_sort(db, &query, RankingFunction::SumAscending)
        .unwrap()
        .iter()
        .map(|a| a.weight())
        .collect();
    let prepared = RankedQuery::new(db, &query).expect("simple cycle plan");
    assert!(prepared.is_decomposed());
    assert_eq!(prepared.count_answers() as usize, expected.len());
    for algorithm in AnyKAlgorithm::ALL {
        let got: Vec<f64> = prepared.enumerate(algorithm).map(|a| a.weight()).collect();
        assert_eq!(got.len(), expected.len(), "{algorithm}: cardinality");
        for (g, e) in got.iter().zip(&expected) {
            assert!((g - e).abs() < 1e-9, "{algorithm}: {g} vs {e}");
        }
        for w in got.windows(2) {
            assert!(w[0] <= w[1] + 1e-9, "{algorithm}: not sorted");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn four_cycle_decomposition_matches_naive_join(db in random_cycle_db(4, 14)) {
        assert_cycle_equivalence(&db, 4);
    }

    #[test]
    fn six_cycle_decomposition_matches_naive_join(db in random_cycle_db(6, 8)) {
        assert_cycle_equivalence(&db, 6);
    }
}

#[test]
fn worst_case_cycle_instance_is_fully_enumerated() {
    let n = 12;
    let db = cycles::worst_case_cycle_database(4, n, &mut rng(5));
    let query = QueryBuilder::cycle(4).build();
    let prepared = RankedQuery::new(&db, &query).unwrap();
    assert_eq!(
        prepared.count_answers(),
        cycles::worst_case_output_size(4, n)
    );
    let answers: Vec<f64> = prepared
        .enumerate(AnyKAlgorithm::Recursive)
        .map(|a| a.weight())
        .collect();
    assert_eq!(answers.len() as u128, cycles::worst_case_output_size(4, n));
    for w in answers.windows(2) {
        assert!(w[0] <= w[1] + 1e-9);
    }
}

#[test]
fn nprr_adversarial_instance_top_answer_matches_wcoj() {
    // Database I1 (Fig. 16): the any-k plan finds the same top-ranked 4-cycle
    // that the WCOJ + sort baseline finds, but the latter must materialise
    // 2n² results first.
    let n = 12;
    let db = adversarial::nprr_i1(n);
    let query = QueryBuilder::cycle(4).build();

    let prepared = RankedQuery::new(&db, &query).unwrap();
    assert_eq!(
        prepared.count_answers(),
        adversarial::nprr_i1_output_size(n)
    );
    let top = prepared
        .enumerate(AnyKAlgorithm::Lazy)
        .next()
        .expect("at least one cycle");

    let batch = wcoj::generic_join_sorted(&db, &query, RankingFunction::SumAscending).unwrap();
    assert_eq!(batch.len() as u128, adversarial::nprr_i1_output_size(n));
    assert!((batch[0].weight() - top.weight()).abs() < 1e-9);
}

#[test]
fn bottleneck_ranking_works_through_the_decomposition() {
    let db = cycles::worst_case_cycle_database(4, 8, &mut rng(9));
    let query = QueryBuilder::cycle(4).build();
    let prepared =
        RankedQuery::with_ranking(&db, &query, RankingFunction::BottleneckAscending).unwrap();
    let answers: Vec<f64> = prepared
        .enumerate(AnyKAlgorithm::Take2)
        .map(|a| a.weight())
        .collect();
    // Verify against brute force over the naive join: bottleneck = max weight
    // among the four witness tuples.
    let naive =
        naive_sql::join_and_sort(&db, &query, RankingFunction::BottleneckAscending).unwrap();
    assert_eq!(answers.len(), naive.len());
    for (g, e) in answers.iter().zip(naive.iter().map(|a| a.weight())) {
        assert!((g - e).abs() < 1e-9);
    }
}
