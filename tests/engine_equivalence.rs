//! Cross-crate integration tests: the query-level ranked enumeration agrees
//! with independent evaluation strategies (a naive hash-join + sort engine
//! and a worst-case-optimal join) on randomly generated inputs, for every
//! algorithm and for the query shapes used in the paper's evaluation.

use anyk::core::AnyKAlgorithm;
use anyk::engine::{naive_sql, wcoj, Answer, RankedQuery, RankingFunction};
use anyk::query::QueryBuilder;
use anyk::storage::{Database, Relation};
use proptest::prelude::*;

/// A random database of `ell` binary relations with values in a small domain
/// (to force joins) and integer weights (to keep float sums exact).
fn random_db(ell: usize, max_tuples: usize) -> impl Strategy<Value = Database> {
    proptest::collection::vec(
        proptest::collection::vec((0u64..6, 0u64..6, 0u32..100), 1..=max_tuples),
        ell,
    )
    .prop_map(|relations| {
        let mut db = Database::new();
        for (i, tuples) in relations.into_iter().enumerate() {
            let mut r = Relation::new(format!("R{}", i + 1), 2);
            for (a, b, w) in tuples {
                r.push_edge(a, b, w as f64);
            }
            db.add(r);
        }
        db
    })
}

fn weights(answers: &[Answer]) -> Vec<f64> {
    answers.iter().map(Answer::weight).collect()
}

fn assert_same_ranked_output(db: &Database, query: &anyk::query::ConjunctiveQuery) {
    let reference = naive_sql::join_and_sort(db, query, RankingFunction::SumAscending)
        .expect("naive evaluation succeeds");
    let expected = weights(&reference);

    let prepared = RankedQuery::new(db, query).expect("prepared plan");
    assert_eq!(prepared.count_answers() as usize, expected.len());
    for algorithm in AnyKAlgorithm::ALL {
        let got: Vec<f64> = prepared.enumerate(algorithm).map(|a| a.weight()).collect();
        assert_eq!(got.len(), expected.len(), "{algorithm}: cardinality");
        for (g, e) in got.iter().zip(&expected) {
            assert!((g - e).abs() < 1e-9, "{algorithm}: {g} vs {e}");
        }
        for w in got.windows(2) {
            assert!(w[0] <= w[1] + 1e-9, "{algorithm}: not sorted");
        }
    }

    // The WCOJ baseline agrees as well.
    let wcoj_sorted = wcoj::generic_join_sorted(db, query, RankingFunction::SumAscending)
        .expect("wcoj evaluation succeeds");
    assert_eq!(wcoj_sorted.len(), expected.len());
    for (g, e) in weights(&wcoj_sorted).iter().zip(&expected) {
        assert!((g - e).abs() < 1e-9, "wcoj: {g} vs {e}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn path_queries_agree_across_all_evaluators(db in random_db(3, 20)) {
        let query = QueryBuilder::path(3).build();
        assert_same_ranked_output(&db, &query);
    }

    #[test]
    fn star_queries_agree_across_all_evaluators(db in random_db(3, 15)) {
        let query = QueryBuilder::star(3).build();
        assert_same_ranked_output(&db, &query);
    }

    #[test]
    fn four_path_queries_agree(db in random_db(4, 12)) {
        let query = QueryBuilder::path(4).build();
        assert_same_ranked_output(&db, &query);
    }

    #[test]
    fn witnesses_reproduce_the_answer_weight(db in random_db(3, 15)) {
        let query = QueryBuilder::path(3).build();
        let prepared = RankedQuery::new(&db, &query).unwrap();
        for answer in prepared.enumerate(AnyKAlgorithm::Take2).take(50) {
            let mut total = 0.0;
            for &(atom_idx, tid) in answer.witness() {
                let rel = db.expect(&query.atoms()[atom_idx].relation);
                total += rel.tuple(tid).weight();
            }
            prop_assert!((total - answer.weight()).abs() < 1e-9);
        }
    }

    #[test]
    fn descending_is_the_reverse_of_ascending(db in random_db(3, 12)) {
        let query = QueryBuilder::path(3).build();
        let asc = RankedQuery::new(&db, &query).unwrap();
        let desc = RankedQuery::with_ranking(&db, &query, RankingFunction::SumDescending).unwrap();
        let mut a: Vec<f64> = asc.enumerate(AnyKAlgorithm::Lazy).map(|x| x.weight()).collect();
        let d: Vec<f64> = desc.enumerate(AnyKAlgorithm::Lazy).map(|x| x.weight()).collect();
        a.reverse();
        prop_assert_eq!(a.len(), d.len());
        for (x, y) in a.iter().zip(&d) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }
}

#[test]
fn self_join_path_over_a_social_graph() {
    // A deterministic end-to-end check on generated "real-data"-like input:
    // the 3-path over a scale-free graph, all algorithms agreeing on top-100.
    let config = anyk::datagen::social::SocialGraphConfig {
        nodes: 300,
        avg_degree: 4,
        weights: anyk::datagen::social::WeightModel::Trust,
    };
    let db = anyk::datagen::social::social_database(3, config, &mut anyk::datagen::rng(3));
    let query = QueryBuilder::path(3).build();
    let prepared = RankedQuery::new(&db, &query).unwrap();
    let reference: Vec<f64> = prepared
        .enumerate(AnyKAlgorithm::Batch)
        .take(100)
        .map(|a| a.weight())
        .collect();
    for algorithm in AnyKAlgorithm::ALL {
        let got: Vec<f64> = prepared
            .enumerate(algorithm)
            .take(100)
            .map(|a| a.weight())
            .collect();
        assert_eq!(got.len(), reference.len());
        for (g, e) in got.iter().zip(&reference) {
            assert!((g - e).abs() < 1e-9, "{algorithm}");
        }
    }
}
