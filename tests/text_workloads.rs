//! Differential tests for string-keyed (dictionary-encoded) workloads — the
//! text analogue of `engine_equivalence.rs`.
//!
//! Randomized string-keyed relations are built through the encode-on-push
//! path, every any-k variant and the naive hash-join + sort oracle run over
//! the same dictionary-encoded database, and the *decoded* ranked answer
//! streams must agree. A second block property-tests the [`Dictionary`]
//! itself: round-trip identity, dedup, id stability across incremental push
//! batches, and encoded-vs-unencoded oracle agreement on pure-integer data.

use anyk::core::AnyKAlgorithm;
use anyk::engine::{naive_sql, AnswerDecoder, DecodedValue, RankedQuery, RankingFunction};
use anyk::query::{ConjunctiveQuery, QueryBuilder};
use anyk::storage::{Database, Dictionary, Relation, Schema};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One decoded answer in a canonical, exactly-comparable form: rendered head
/// values plus the weight scaled to an integer (all generated weights are
/// small integers, so float sums are exact).
type DecodedRow = (Vec<String>, i64);

fn decoded_stream<'a>(
    decoder: &'a AnswerDecoder,
    answers: impl Iterator<Item = anyk::engine::Answer> + 'a,
) -> Vec<DecodedRow> {
    answers
        .map(|a| (decoder.render(&a), (a.weight() * 1e6).round() as i64))
        .collect()
}

/// A random database of `ell` binary relations over a small username pool
/// (small domain to force joins), all sharing one dictionary, with integer
/// weights. Every value enters through the string-encoding push path.
fn random_text_db(ell: usize, max_tuples: usize, rng: &mut SmallRng) -> Database {
    let pool: Vec<String> = (0..10).map(anyk::datagen::text::username).collect();
    let schema = Schema::text_shared(2);
    let mut db = Database::new();
    for i in 1..=ell {
        let mut r = Relation::with_schema(format!("R{i}"), schema.clone());
        let tuples = rng.gen_range(1..=max_tuples as u64);
        for _ in 0..tuples {
            let from = &pool[rng.gen_range(0..pool.len() as u64) as usize];
            let to = &pool[rng.gen_range(0..pool.len() as u64) as usize];
            r.push_text_edge(from, to, rng.gen_range(0..100u64) as f64);
        }
        db.add(r);
    }
    db
}

/// The differential assertion: all any-k variants produce the oracle's
/// decoded ranked stream. Order-sensitive on weights; ties (equal weights)
/// may legitimately permute between engines, so the full `(values, weight)`
/// rows are compared as sorted multisets while the weight sequence itself is
/// compared position by position.
fn assert_all_engines_agree_decoded(db: &Database, query: &ConjunctiveQuery) {
    let decoder = AnswerDecoder::for_query(db, query);
    let oracle = naive_sql::join_and_sort(db, query, RankingFunction::SumAscending)
        .expect("oracle evaluation succeeds");
    let oracle_rows = decoded_stream(&decoder, oracle.into_iter());
    let mut oracle_sorted = oracle_rows.clone();
    oracle_sorted.sort();

    // Every decoded value must be a username — proof the stream decodes.
    for (values, _) in &oracle_rows {
        for v in values {
            assert!(v.contains('_'), "decoded value {v:?} is not a username");
        }
    }

    let prepared = RankedQuery::new(db, query).expect("prepared plan");
    for algorithm in AnyKAlgorithm::ALL {
        let rows = decoded_stream(&decoder, prepared.enumerate(algorithm));
        assert_eq!(rows.len(), oracle_rows.len(), "{algorithm}: cardinality");
        for (i, ((_, got_w), (_, want_w))) in rows.iter().zip(&oracle_rows).enumerate() {
            assert_eq!(got_w, want_w, "{algorithm}: weight at rank {i}");
        }
        let mut sorted = rows;
        sorted.sort();
        assert_eq!(sorted, oracle_sorted, "{algorithm}: decoded answer set");
    }
}

/// ≥ 50 randomized text instances across the paper's three query shapes:
/// 30 path-3, 20 star-3, and 10 (decomposed) cycle-4 databases.
#[test]
fn randomized_text_instances_agree_across_all_engines() {
    let path = QueryBuilder::path(3).build();
    for seed in 0..30u64 {
        let db = random_text_db(3, 18, &mut SmallRng::seed_from_u64(0xBEEF + seed));
        assert_all_engines_agree_decoded(&db, &path);
    }
    let star = QueryBuilder::star(3).build();
    for seed in 0..20u64 {
        let db = random_text_db(3, 14, &mut SmallRng::seed_from_u64(0xCAFE + seed));
        assert_all_engines_agree_decoded(&db, &star);
    }
    let cycle = QueryBuilder::cycle(4).build();
    for seed in 0..10u64 {
        let db = random_text_db(4, 12, &mut SmallRng::seed_from_u64(0xD00D + seed));
        assert_all_engines_agree_decoded(&db, &cycle);
    }
}

/// End-to-end over the generated string-keyed social graph: loader-free
/// text data at a realistic scale, top-100 agreement across all algorithms.
#[test]
fn generated_text_social_graph_agrees_on_top_100() {
    let config = anyk::datagen::text::TextSocialConfig {
        users: 150,
        avg_degree: 4,
    };
    let db = anyk::datagen::text::text_social_database(3, config, &mut anyk::datagen::rng(17));
    let query = QueryBuilder::path(3).build();
    let decoder = AnswerDecoder::for_query(&db, &query);
    let prepared = RankedQuery::new(&db, &query).unwrap();
    let reference = decoded_stream(&decoder, prepared.enumerate(AnyKAlgorithm::Batch).take(100));
    assert!(!reference.is_empty());
    for algorithm in AnyKAlgorithm::ALL {
        let got = decoded_stream(&decoder, prepared.enumerate(algorithm).take(100));
        assert_eq!(got.len(), reference.len(), "{algorithm}");
        for ((_, g), (_, e)) in got.iter().zip(&reference) {
            assert_eq!(g, e, "{algorithm}: weights in rank order");
        }
    }
    // Witnesses decode through the backing relations too.
    for answer in prepared.enumerate(AnyKAlgorithm::Take2).take(20) {
        for &(atom_idx, tid) in answer.witness() {
            let rel = db.expect(&query.atoms()[atom_idx].relation);
            assert!(rel.tuple(tid).decoded(0).is_some());
        }
    }
}

/// The loader → encode → enumerate → decode pipeline on a hand-written TSV.
#[test]
fn tsv_loaded_relations_enumerate_and_decode() {
    let tsv = "\
# follower\tfollowee\ttrust
alice\tbob\t1
bob\tcarol\t2
carol\tdave\t1
alice\tcarol\t5
bob\tdave\t3
";
    let schema = Schema::text_shared(2);
    let mut db = Database::new();
    for name in ["R1", "R2"] {
        db.add(anyk::datagen::text::load_tsv(name, tsv, schema.clone()).expect("well-formed TSV"));
    }
    let query = QueryBuilder::path(2).build();
    let decoder = AnswerDecoder::for_query(&db, &query);
    let prepared = RankedQuery::new(&db, &query).unwrap();
    let answers: Vec<_> = prepared.enumerate(AnyKAlgorithm::Take2).collect();
    // 2-paths: alice→bob→carol (3), alice→bob→dave (4), bob→carol→dave (3),
    // alice→carol→dave (6).
    assert_eq!(answers.len(), 4);
    assert_eq!(
        decoder.render(&answers[0]),
        vec!["alice", "bob", "carol"],
        "cheapest 2-path decodes to usernames"
    );
    assert_eq!(answers[0].weight(), 3.0);
    assert_eq!(
        decoder.decode(&answers[3])[0],
        DecodedValue::Text("alice".into())
    );
    assert_eq!(answers[3].weight(), 6.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Round-trip identity: decode(encode(s)) == s for every pushed string.
    #[test]
    fn dictionary_round_trips(values in proptest::collection::vec(0u64..500, 1..60)) {
        let dict = Dictionary::new();
        for v in &values {
            let s = format!("user{v}");
            let id = dict.encode(&s);
            prop_assert_eq!(dict.decode(id), Some(s));
        }
    }

    /// Dedup: the same string always gets the same id, and the dictionary
    /// holds exactly the distinct strings.
    #[test]
    fn dictionary_deduplicates(values in proptest::collection::vec(0u64..20, 1..80)) {
        let dict = Dictionary::new();
        let ids: Vec<_> = values.iter().map(|v| dict.encode(&format!("user{v}"))).collect();
        for (v, id) in values.iter().zip(&ids) {
            prop_assert_eq!(dict.lookup(&format!("user{v}")), Some(*id));
        }
        let distinct: std::collections::HashSet<_> = values.iter().collect();
        prop_assert_eq!(dict.len(), distinct.len());
    }

    /// Stability: ids assigned in a first batch survive any second batch,
    /// including one re-mentioning the same strings.
    #[test]
    fn dictionary_ids_are_stable_across_push_batches(
        first in proptest::collection::vec(0u64..30, 1..40),
        second in proptest::collection::vec(0u64..60, 0..40),
    ) {
        let dict = Dictionary::new();
        let before: Vec<(String, u64)> = first
            .iter()
            .map(|v| { let s = format!("user{v}"); let id = dict.encode(&s); (s, id) })
            .collect();
        for v in &second {
            dict.encode(&format!("user{v}"));
        }
        for (s, id) in before {
            prop_assert_eq!(dict.lookup(&s), Some(id));
            prop_assert_eq!(dict.decode(id), Some(s));
        }
    }

    /// Oracle agreement on pure-integer columns: a database pushed as raw
    /// ids and the same database pushed as stringified integers through the
    /// text layer produce identical ranked streams, and the text stream
    /// decodes back to exactly the raw values.
    #[test]
    fn encoded_and_unencoded_integer_databases_agree(
        relations in proptest::collection::vec(
            proptest::collection::vec((0u64..6, 0u64..6, 0u32..100), 1..=15),
            3,
        )
    ) {
        let mut raw_db = Database::new();
        let schema = Schema::text_shared(2);
        let mut text_db = Database::new();
        for (i, tuples) in relations.iter().enumerate() {
            let mut raw = Relation::new(format!("R{}", i + 1), 2);
            let mut text = Relation::with_schema(format!("R{}", i + 1), schema.clone());
            for &(a, b, w) in tuples {
                raw.push_edge(a, b, w as f64);
                text.push_text_edge(&format!("n_{a}"), &format!("n_{b}"), w as f64);
            }
            raw_db.add(raw);
            text_db.add(text);
        }
        let query = QueryBuilder::path(3).build();
        let raw_answers: Vec<_> = RankedQuery::new(&raw_db, &query)
            .unwrap()
            .enumerate(AnyKAlgorithm::Lazy)
            .collect();
        let decoder = AnswerDecoder::for_query(&text_db, &query);
        let text_answers: Vec<_> = RankedQuery::new(&text_db, &query)
            .unwrap()
            .enumerate(AnyKAlgorithm::Lazy)
            .collect();
        prop_assert_eq!(raw_answers.len(), text_answers.len());
        let mut raw_rows: Vec<(Vec<u64>, i64)> = raw_answers
            .iter()
            .map(|a| (a.values().to_vec(), (a.weight() * 1e6).round() as i64))
            .collect();
        // Decode the text stream and parse the "n_<v>" usernames back.
        let mut text_rows: Vec<(Vec<u64>, i64)> = text_answers
            .iter()
            .map(|a| {
                let values = decoder
                    .render(a)
                    .iter()
                    .map(|s| s.strip_prefix("n_").expect("text column decodes").parse().unwrap())
                    .collect();
                (values, (a.weight() * 1e6).round() as i64)
            })
            .collect();
        for ((_, rw), (_, tw)) in raw_rows.iter().zip(&text_rows) {
            prop_assert_eq!(rw, tw, "weights agree in rank order");
        }
        raw_rows.sort();
        text_rows.sort();
        prop_assert_eq!(raw_rows, text_rows);
    }
}
