//! Property tests for the column-major storage layer: a columnar
//! [`Relation`] must be observationally identical to a row-major oracle
//! (a plain `Vec` of rows) through every access path — row views, column
//! slices, filters, index construction and lookups — and the database's
//! index cache must be transparent (same answers, fresh after replacement).

use anyk::storage::{Database, HashIndex, Relation, Tuple, Value};
use proptest::prelude::*;

/// Row-major oracle: `(values, weight)` per tuple, insertion order.
type Oracle = Vec<(Vec<Value>, f64)>;

/// Random rows of a fixed arity with a small value domain (to force
/// duplicate join keys) and integer weights (exact float comparison).
fn random_rows(arity: usize, max_rows: usize) -> impl Strategy<Value = Oracle> {
    proptest::collection::vec(
        (
            proptest::collection::vec(0u64..7, arity..=arity),
            0u32..1000,
        ),
        0..=max_rows,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .map(|(values, w)| (values, w as f64))
            .collect()
    })
}

fn build_relation(oracle: &Oracle, arity: usize) -> Relation {
    let mut r = Relation::with_capacity("R", arity, oracle.len());
    for (values, w) in oracle {
        r.push_row(values, *w);
    }
    r
}

/// The oracle's answer to an index lookup: ids of rows whose `key_cols`
/// project onto `key`, in insertion order.
fn oracle_lookup(oracle: &Oracle, key_cols: &[usize], key: &[Value]) -> Vec<usize> {
    oracle
        .iter()
        .enumerate()
        .filter(|(_, (values, _))| key_cols.iter().zip(key).all(|(&c, &k)| values[c] == k))
        .map(|(i, _)| i)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn columnar_relation_round_trips_rows(oracle in random_rows(3, 40)) {
        let r = build_relation(&oracle, 3);
        prop_assert_eq!(r.len(), oracle.len());
        // Row views agree with the oracle, via iter() and tuple().
        for (tid, row) in r.iter() {
            prop_assert_eq!(&row.values_vec(), &oracle[tid].0);
            prop_assert_eq!(row.weight(), oracle[tid].1);
            prop_assert_eq!(row.id(), tid);
            let t: Tuple = r.tuple(tid).to_tuple();
            prop_assert_eq!(t.values(), &oracle[tid].0[..]);
        }
        // Column slices are the transposed oracle.
        for c in 0..3 {
            let col: Vec<Value> = oracle.iter().map(|(v, _)| v[c]).collect();
            prop_assert_eq!(r.column(c), &col[..]);
        }
        let weights: Vec<f64> = oracle.iter().map(|&(_, w)| w).collect();
        prop_assert_eq!(r.weights(), &weights[..]);
        let total: f64 = weights.iter().sum();
        prop_assert!((r.total_weight() - total).abs() < 1e-9);
    }

    #[test]
    fn index_build_and_lookup_agree_with_oracle(
        oracle in random_rows(3, 40),
        key_choice in 0usize..4,
    ) {
        let key_cols: &[usize] = match key_choice {
            0 => &[0],
            1 => &[1],
            2 => &[0, 2],
            _ => &[2, 1, 0],
        };
        let r = build_relation(&oracle, 3);
        let idx = HashIndex::build(&r, key_cols);

        // Every row's group resolves to exactly the oracle's matching ids.
        for (tid, row) in r.iter() {
            let key: Vec<Value> = key_cols.iter().map(|&c| row.value(c)).collect();
            let expected = oracle_lookup(&oracle, key_cols, &key);
            prop_assert_eq!(idx.lookup(&key), &expected[..]);
            // The retained tuple→group map agrees with a fresh probe.
            prop_assert_eq!(Some(idx.group_of_tuple(tid)), idx.group_of(&key));
            prop_assert_eq!(idx.group_of_row_in(&r, tid, key_cols), idx.group_of(&key));
        }
        // A key absent from the relation finds nothing.
        let absent: Vec<Value> = vec![99; key_cols.len()];
        prop_assert!(idx.lookup(&absent).is_empty());
        // Groups partition the tuple ids.
        let mut covered: Vec<usize> = idx.groups().flat_map(|(_, tids)| tids.to_vec()).collect();
        covered.sort_unstable();
        prop_assert_eq!(covered, (0..oracle.len()).collect::<Vec<_>>());
    }

    #[test]
    fn filter_matches_oracle_retain(oracle in random_rows(2, 40), pivot in 0u64..7) {
        let r = build_relation(&oracle, 2);
        let filtered = r.filter("F", |t| t.value(0) >= pivot);
        let expected: Oracle = oracle
            .iter()
            .filter(|(v, _)| v[0] >= pivot)
            .cloned()
            .collect();
        prop_assert_eq!(filtered.len(), expected.len());
        for (tid, row) in filtered.iter() {
            prop_assert_eq!(&row.values_vec(), &expected[tid].0);
            prop_assert_eq!(row.weight(), expected[tid].1);
        }
    }

    #[test]
    fn cached_database_index_serves_current_data(
        first in random_rows(2, 25),
        second in random_rows(2, 25),
    ) {
        let mut db = Database::new();
        db.add(build_relation(&first, 2));
        let idx1 = db.index("R", &[0]);
        for key in 0u64..7 {
            prop_assert_eq!(idx1.lookup1(key), &oracle_lookup(&first, &[0], &[key])[..]);
        }
        // Replace the relation: the cache must never serve the stale index.
        db.add(build_relation(&second, 2));
        let idx2 = db.index("R", &[0]);
        for key in 0u64..7 {
            prop_assert_eq!(idx2.lookup1(key), &oracle_lookup(&second, &[0], &[key])[..]);
        }
    }
}
