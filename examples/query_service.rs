//! End-to-end demo of the query-service subsystem: one process, two shared
//! database snapshots (an integer path workload and a string-keyed social
//! graph), and a crowd of concurrent clients pulling ranked answers in
//! pages — suspending, resuming, and interleaving freely.
//!
//! Every client checks its paged stream against the one-shot enumeration,
//! so this example doubles as a smoke test (it panics on any divergence;
//! CI runs it).
//!
//! ```text
//! cargo run --release --example query_service
//! ```

use anyk::datagen::{rng, text, uniform};
use anyk::engine::{Answer, RankedQuery};
use anyk::prelude::*;
use anyk::server::ServiceError;

const PAGE_SIZE: usize = 25;
const CLIENTS_PER_SERVICE: usize = 4;

/// One client: open a session, pull pages with think-time-like interleaving
/// (yielding between pages), and return the concatenated stream.
fn run_client(
    service: &QueryService,
    query: &ConjunctiveQuery,
    algorithm: Algorithm,
) -> Result<(SessionId, Vec<Answer>), ServiceError> {
    let id = service.open_session(query, algorithm)?;
    let mut collected = Vec::new();
    let mut buf = Vec::with_capacity(PAGE_SIZE);
    loop {
        // `next_page_into` reuses the buffer: zero allocation per page.
        let done = service.next_page_into(id, PAGE_SIZE, &mut buf)?;
        collected.extend(buf.iter().cloned());
        // A real client would go do something else here; the session state
        // (candidate queue, prefix arena, ...) waits, suspended, in the
        // service registry.
        std::thread::yield_now();
        if done {
            break;
        }
    }
    service.close_session(id);
    Ok((id, collected))
}

fn main() {
    // ---------------------------------------------------------------- data
    let int_db = uniform::path_or_star_database(4, 300, &mut rng(2024));
    let text_db = text::text_social_database(
        3,
        text::TextSocialConfig {
            users: 150,
            avg_degree: 4,
        },
        &mut rng(7),
    );
    let int_query = QueryBuilder::path(4).build();
    let text_query = QueryBuilder::path(3).build();

    // One-shot reference sizes (per-client references are computed from the
    // service's own prepared plan, per algorithm: with ties in the ranking,
    // different algorithms may order equal-weight answers differently, and
    // the determinism guarantee is per algorithm).
    let int_reference: Vec<Answer> = RankedQuery::new(&int_db, &int_query)
        .expect("integer plan")
        .enumerate(Algorithm::Take2)
        .collect();
    let text_ranked = RankedQuery::new(&text_db, &text_query).expect("text plan");
    let text_decoder = text_ranked.decoder();
    let text_reference: Vec<Answer> = text_ranked.enumerate(Algorithm::Take2).collect();

    // ------------------------------------------------------------ services
    // A modest index-cache bound, to show the LRU + metrics in action.
    let config = ServiceConfig {
        index_cache_capacity: Some(8),
        ..ServiceConfig::default()
    };
    let int_service = QueryService::with_config(int_db, config.clone());
    let text_service = QueryService::with_config(text_db, config);

    println!(
        "integer workload: path-4 over {} tuples, {} ranked answers",
        int_service.database().total_tuples(),
        int_reference.len()
    );
    println!(
        "text workload:    path-3 over {} follow edges, {} ranked answers",
        text_service.database().total_tuples(),
        text_reference.len()
    );

    // ------------------------------------------------------------- clients
    // 4 clients per service, mixing algorithms, all running concurrently
    // over the same snapshots and the same memoised plans.
    let algorithms = [
        Algorithm::Take2,
        Algorithm::Lazy,
        Algorithm::Eager,
        Algorithm::Recursive,
    ];
    std::thread::scope(|scope| {
        for (c, &algorithm) in algorithms.iter().enumerate().take(CLIENTS_PER_SERVICE) {
            for (label, service, query) in [
                ("int", &int_service, &int_query),
                ("text", &text_service, &text_query),
            ] {
                scope.spawn(move || {
                    let (id, answers) = run_client(service, query, algorithm).unwrap();
                    // The determinism check: the paged stream equals this
                    // algorithm's one-shot stream over the same plan.
                    let reference: Vec<Answer> = service
                        .prepare(query, RankingFunction::SumAscending)
                        .unwrap()
                        .enumerate(algorithm)
                        .collect();
                    assert_eq!(
                        answers, reference,
                        "{label} client {c} diverged from the one-shot stream"
                    );
                    println!(
                        "  {label} client {c} ({algorithm}) {id}: {} answers in pages of {PAGE_SIZE} ✓",
                        answers.len()
                    );
                });
            }
        }
    });

    // ------------------------------------------------- decoded top answers
    let id = text_service
        .open_session(&text_query, Algorithm::Take2)
        .unwrap();
    let top = text_service.next_page(id, 3).unwrap();
    println!("top-3 text answers (decoded):");
    for answer in &top.answers {
        println!(
            "  {:<44} weight {:.3}",
            text_decoder.render(answer).join(" -> "),
            answer.weight()
        );
    }
    text_service.close_session(id);

    // -------------------------------------------------------------- totals
    for (name, service) in [("int", &int_service), ("text", &text_service)] {
        let m = service.metrics();
        let c = service.index_cache_stats();
        println!(
            "{name} service: {} sessions, {} pages, {} answers, {} plan compilations; \
             index cache {}/{} entries, {} hits / {} misses / {} evictions",
            m.sessions_opened,
            m.pages_served,
            m.answers_served,
            m.plan_misses,
            c.entries,
            c.capacity,
            c.hits,
            c.misses,
            c.evictions
        );
    }
    println!("all paged streams matched their one-shot references");
}
