//! End-to-end demo of the textual query-service API: one process, two shared
//! database snapshots (an integer path workload and a string-keyed social
//! graph), and a crowd of concurrent clients whose **entire interface to the
//! engine is a string** — `Q(…) :- …` in, ranked pages out.
//!
//! Every client checks its paged stream against the one-shot enumeration of
//! the same plan, alpha-renamed requests are shown hitting one plan-cache
//! entry, and a selection predicate (`y = 7` / `a = "…"`, §2.1's
//! linear-time filtered-copy preprocessing) is verified against the
//! predicate-aware naive-SQL oracle — so this example doubles as a smoke
//! test (it panics on any divergence; CI runs it).
//!
//! ```text
//! cargo run --release --example query_service
//! ```

use anyk::datagen::{rng, text, uniform};
use anyk::engine::{naive_sql, Answer};
use anyk::prelude::*;
use anyk::server::ServiceError;

const PAGE_SIZE: usize = 25;

/// One client: open a session from query text, pull pages with
/// think-time-like interleaving (yielding between pages), and return the
/// concatenated stream.
fn run_text_client(
    service: &QueryService,
    text: &str,
) -> Result<(SessionId, Vec<Answer>), ServiceError> {
    let id = service.open_session_text(text)?;
    let mut collected = Vec::new();
    let mut buf = Vec::with_capacity(PAGE_SIZE);
    loop {
        // `next_page_into` reuses the buffer: zero allocation per page.
        let done = service.next_page_into(id, PAGE_SIZE, &mut buf)?;
        collected.extend(buf.iter().cloned());
        // A real client would go do something else here; the session state
        // (candidate queue, prefix arena, ...) waits, suspended, in the
        // service registry.
        std::thread::yield_now();
        if done {
            break;
        }
    }
    service.close_session(id);
    Ok((id, collected))
}

fn main() {
    // ---------------------------------------------------------------- data
    let int_db = uniform::path_or_star_database(4, 300, &mut rng(2024));
    let text_db = text::text_social_database(
        3,
        text::TextSocialConfig {
            users: 150,
            avg_degree: 4,
        },
        &mut rng(7),
    );

    // ------------------------------------------------------------ services
    // A modest index-cache bound, to show the LRU + metrics in action.
    let config = ServiceConfig {
        index_cache_capacity: Some(8),
        ..ServiceConfig::default()
    };
    let int_service = QueryService::with_config(int_db, config.clone());
    let text_service = QueryService::with_config(text_db, config);

    // The requests, as clients would send them over a wire. The four int
    // clients are deliberately alpha-renamed variants of one query pinned
    // to different algorithms: same canonical form, one compiled plan.
    let int_requests = [
        "Q(x1, x2, x3, x4, x5) :- R1(x1, x2), R2(x2, x3), R3(x3, x4), R4(x4, x5) via take2",
        "Q(a, b, c, d, e) :- R1(a, b), R2(b, c), R3(c, d), R4(d, e) via lazy",
        "Q(p, q, r, s, t) :- R1(p, q), R2(q, r), R3(r, s), R4(s, t) via eager",
        "Q(v, w, x, y, z) :- R1(v, w), R2(w, x), R3(x, y), R4(y, z) via recursive",
    ];
    let text_requests = [
        "Q(a, b, c, d) :- R1(a, b), R2(b, c), R3(c, d) via take2",
        "Q(u1, u2, u3, u4) :- R1(u1, u2), R2(u2, u3), R3(u3, u4) via lazy",
        "Q(a, b, c, d) :- R1(a, b), R2(b, c), R3(c, d) via eager",
        "Q(a, b, c, d) :- R1(a, b), R2(b, c), R3(c, d) via recursive",
    ];

    println!(
        "integer workload: path-4 over {} tuples",
        int_service.database().total_tuples()
    );
    println!(
        "text workload:    path-3 over {} follow edges",
        text_service.database().total_tuples()
    );

    // ------------------------------------------------------------- clients
    // 4 clients per service, all driving the engine purely through text,
    // running concurrently over the same snapshots and one memoised plan
    // per service.
    std::thread::scope(|scope| {
        for (c, (label, service, request)) in int_requests
            .iter()
            .map(|r| ("int", &int_service, *r))
            .chain(text_requests.iter().map(|r| ("text", &text_service, *r)))
            .enumerate()
        {
            scope.spawn(move || {
                let (id, answers) = run_text_client(service, request).unwrap();
                // The determinism check: the paged stream equals this
                // request's one-shot stream over the same cached plan.
                let spec: QuerySpec = request.parse().unwrap();
                let algorithm = spec.algorithm.expect("requests pin an algorithm");
                let reference: Vec<Answer> = service
                    .prepare_spec(&spec)
                    .unwrap()
                    .enumerate(algorithm)
                    .collect();
                assert_eq!(
                    answers, reference,
                    "{label} client {c} diverged from the one-shot stream"
                );
                println!(
                    "  {label} client {c} {id}: {} answers in pages of {PAGE_SIZE} ✓",
                    answers.len()
                );
            });
        }
    });
    for (name, service) in [("int", &int_service), ("text", &text_service)] {
        assert_eq!(
            service.metrics().plan_misses,
            1,
            "{name}: alpha-renamed requests must share one plan"
        );
    }

    // ------------------------------------------ selections, text to pages
    // A selective request: only paths through hub value 7, heaviest first,
    // top 3 — all expressed in the query text, verified against the
    // predicate-aware naive-SQL oracle.
    let filtered = "Q(x1, x2, x3, x4, x5) :- R1(x1, x2), R2(x2, x3), R3(x3, x4), R4(x4, x5), \
                    x3 = 7 rank by sum desc limit 3";
    let (_, top) = run_text_client(&int_service, filtered).unwrap();
    let spec: QuerySpec = filtered.parse().unwrap();
    let oracle = naive_sql::join_and_sort_spec(&int_service.database(), &spec).unwrap();
    assert!(top.len() <= 3, "limit 3 honored");
    assert_eq!(top.len(), oracle.len().min(3));
    for (a, b) in top.iter().zip(&oracle) {
        assert!((a.weight() - b.weight()).abs() < 1e-9, "oracle disagrees");
        assert_eq!(a.values()[2], 7, "selection pushed down");
    }
    println!("filtered request `{filtered}`:");
    for a in &top {
        println!("  {:?} weight {:.3}", a.values(), a.weight());
    }

    // A string selection over the social graph, decoded back to usernames.
    let decoder = text_service
        .prepare_text("Q(a, b, c, d) :- R1(a, b), R2(b, c), R3(c, d)")
        .unwrap()
        .decoder();
    let some_user = decoder.render(
        &text_service
            .prepare_text("Q(a, b, c, d) :- R1(a, b), R2(b, c), R3(c, d)")
            .unwrap()
            .top_k(Algorithm::Take2, 1)[0],
    )[0]
    .clone();
    let request =
        format!("Q(a, b, c, d) :- R1(a, b), R2(b, c), R3(c, d), a = \"{some_user}\" limit 3");
    let (_, friends) = run_text_client(&text_service, &request).unwrap();
    println!("top-3 paths from {some_user} (decoded):");
    for answer in &friends {
        assert_eq!(decoder.render(answer)[0], some_user);
        println!(
            "  {:<44} weight {:.3}",
            decoder.render(answer).join(" -> "),
            answer.weight()
        );
    }

    // -------------------------------------------------------------- totals
    for (name, service) in [("int", &int_service), ("text", &text_service)] {
        let m = service.metrics();
        let c = service.index_cache_stats();
        println!(
            "{name} service: {} sessions, {} pages, {} answers, {} plan compilations; \
             index cache {}/{} entries, {} hits / {} misses / {} evictions",
            m.sessions_opened,
            m.pages_served,
            m.answers_served,
            m.plan_misses,
            c.entries,
            c.capacity,
            c.hits,
            c.misses,
            c.evictions
        );
    }
    println!("all paged text-query streams matched their one-shot references");
}
