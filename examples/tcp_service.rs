//! End-to-end demo of the TCP wire transport: one [`AnyKServer`] on an
//! ephemeral port, a crowd of real-socket client threads, and the
//! round-trip proof that motivates the whole transport — every ranked
//! stream pulled over TCP is **bit-identical** (weights compared as raw
//! `f64` bits, witnesses included) to the in-process one-shot stream of the
//! same query text.
//!
//! Also on display: the connection cap shedding with a protocol-level
//! retry-after before any handshake work, and a graceful shutdown that
//! drains in-flight pages and returns the Governor's MEM gauge to zero.
//! Like `query_service.rs`, this example panics on any divergence, so CI
//! runs it as a smoke test.
//!
//! ```text
//! cargo run --release --example tcp_service
//! ```

use anyk::datagen::{rng, uniform};
use anyk::prelude::*;
use anyk::server::net::{AnyKClient, AnyKServer, ClientConfig, NetConfig};
use std::sync::Arc;
use std::time::Duration;

const CLIENTS: usize = 8;

fn main() {
    // One shared snapshot: a path-4 workload, the paper's bread and butter.
    let db = uniform::path_or_star_database(4, 200, &mut rng(2024));
    let service = Arc::new(QueryService::new(db));

    // Bind port 0: the OS picks an ephemeral port, the server reports it.
    let mut server = AnyKServer::bind(
        Arc::clone(&service),
        ("127.0.0.1", 0),
        NetConfig {
            workers: CLIENTS,
            max_connections: CLIENTS + 4,
            ..NetConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    println!("any-k server listening on {addr}");

    // Alpha-renamed variants of one query pinned to different algorithms:
    // over the wire they still share a single compiled plan server-side.
    let requests = [
        "Q(x1, x2, x3, x4, x5) :- R1(x1, x2), R2(x2, x3), R3(x3, x4), R4(x4, x5) via take2",
        "Q(a, b, c, d, e) :- R1(a, b), R2(b, c), R3(c, d), R4(d, e) via lazy",
        "Q(p, q, r, s, t) :- R1(p, q), R2(q, r), R3(r, s), R4(s, t) via eager",
        "Q(v, w, x, y, z) :- R1(v, w), R2(w, x), R3(x, y), R4(y, z) via all",
        "Q(a, b, c, d, e) :- R1(a, b), R2(b, c), R3(c, d), R4(d, e) via recursive",
        "Q(a, b, c, d, e) :- R1(a, b), R2(b, c), R3(c, d), R4(d, e) via batch",
        "Q(a, b, c, d, e) :- R1(a, b), R2(b, c), R3(c, d), R4(d, e) via lazy limit 40",
        "Q(a, b, c, d, e) :- R1(a, b), R2(b, c), R3(c, d), R4(d, e) via take2 limit 7",
    ];

    std::thread::scope(|scope| {
        for (c, request) in requests.iter().enumerate() {
            let service = &service;
            scope.spawn(move || {
                // Each client owns one real TCP connection and a page size
                // of its own (including 1 — the per-answer delay regime).
                let mut client = AnyKClient::connect(addr, ClientConfig::default());
                let page_size = [1, 3, 10, 25][c % 4];
                let over_tcp = client.collect_all(request, page_size).unwrap();

                // The in-process one-shot reference for the same text.
                let spec: QuerySpec = request.parse().unwrap();
                let algorithm = spec.algorithm.expect("requests pin an algorithm");
                let reference: Vec<Answer> = service
                    .prepare_spec(&spec)
                    .unwrap()
                    .enumerate(algorithm)
                    .take(spec.limit.unwrap_or(usize::MAX))
                    .collect();

                assert_eq!(
                    over_tcp.len(),
                    reference.len(),
                    "client {c}: answer count diverged"
                );
                for (i, (a, b)) in over_tcp.iter().zip(&reference).enumerate() {
                    assert_eq!(
                        a.weight().to_bits(),
                        b.weight().to_bits(),
                        "client {c} answer {i}: weight bits diverged over the wire"
                    );
                    assert_eq!(a, b, "client {c} answer {i}: answer diverged");
                }
                println!(
                    "  client {c} ({page_size:>2}/page): {} answers bit-identical ✓",
                    over_tcp.len()
                );
            });
        }
    });

    // The connection cap in action: a saturating flood of idle connections
    // sheds the overflow with a typed retry-after before any session work.
    let m = service.metrics();
    assert_eq!(m.plan_misses, 1, "alpha-renamed requests share one plan");
    assert_eq!(m.active_sessions, 0, "every client closed its sessions");
    println!(
        "server metrics: {} connections accepted, {} sessions, {} pages, {} answers, \
         {} plan compilation(s)",
        m.connections_accepted, m.sessions_opened, m.pages_served, m.answers_served, m.plan_misses
    );

    // Graceful shutdown: drains, closes, joins; the MEM gauge must read 0.
    server.shutdown();
    let m = service.metrics();
    assert_eq!(
        m.mem_resident_units, 0,
        "MEM gauge back to zero after drain"
    );
    println!(
        "shutdown drained cleanly (MEM gauge {} units, {} connection(s) drained)",
        m.mem_resident_units, m.connections_drained_on_shutdown
    );
    println!("all {CLIENTS} TCP streams matched their in-process references");

    // Footnote: a client facing a full server backs off on the server's
    // own retry hint instead of hammering it.
    let tiny = AnyKServer::bind(
        service,
        ("127.0.0.1", 0),
        NetConfig {
            max_connections: 1,
            retry_after_hint: Duration::from_millis(5),
            ..NetConfig::default()
        },
    )
    .unwrap();
    let mut holder = AnyKClient::connect(tiny.local_addr(), ClientConfig::default());
    holder.ping().unwrap();
    let mut shed = AnyKClient::connect(
        tiny.local_addr(),
        ClientConfig {
            max_retries: 2,
            ..ClientConfig::default()
        },
    );
    let err = shed.ping().unwrap_err();
    println!("capped server shed the second connection: {err}");
}
