//! A data-warehouse star join ranked by cost — the star-query workload of
//! §7, phrased as a concrete scenario: an orders fact table joined with
//! shipping, handling, and insurance quotes on the order id, ranked by the
//! cheapest total fulfilment cost per combination of offers.
//!
//! Run with: `cargo run --release --example data_warehouse_star`

use anyk::prelude::*;
use rand::Rng;

fn main() {
    let mut rng = anyk::datagen::rng(2024);
    let orders = 2_000u64;
    let offers_per_order = 4;

    // R1 = shipping offers, R2 = handling offers, R3 = insurance offers.
    // All join on the order id (attribute x0 of the star query) and carry a
    // price weight; the fact "table" is implicit in the shared key.
    let mut db = Database::new();
    for (name, base) in [("R1", 20.0), ("R2", 5.0), ("R3", 2.0)] {
        let mut r = Relation::new(name, 2);
        for order in 0..orders {
            for offer in 0..offers_per_order {
                let price = base * rng.gen_range(0.5..3.0);
                r.push(Tuple::new(vec![order, order * 10 + offer], price));
            }
        }
        db.add(r);
    }

    // QS3(x0, y1, y2, y3) :- R1(x0,y1), R2(x0,y2), R3(x0,y3)
    let query = QueryBuilder::star(3).build();
    println!("query: {query}");

    let prepared = RankedQuery::new(&db, &query).expect("acyclic star query");
    println!(
        "offer combinations across all orders: {} (never materialised)",
        prepared.count_answers()
    );

    println!("\ncheapest 5 fulfilment plans over the whole warehouse:");
    for answer in prepared.top_k(Algorithm::Take2, 5) {
        println!(
            "  order {:>5}  total cost {:>7.2}  offers (ship, handle, insure) = ({}, {}, {})",
            answer.value(0),
            answer.weight(),
            answer.value(1),
            answer.value(2),
            answer.value(3),
        );
    }

    // The any-k property: asking for more answers later costs only the
    // incremental delay, not a recomputation.
    let next_batch: Vec<Answer> = prepared
        .enumerate(Algorithm::Lazy)
        .skip(5)
        .take(5)
        .collect();
    println!("\nnext 5 plans (ranks 6-10):");
    for answer in &next_batch {
        println!(
            "  order {:>5}  total cost {:>7.2}",
            answer.value(0),
            answer.weight()
        );
    }
}
