//! Ranking beyond "ascending sum": the selective-dioid generality of §2.2 and
//! §6.4 in action.
//!
//! * descending sum (max-plus dioid) — heaviest answers first;
//! * bottleneck (min-max dioid) — minimise the heaviest edge on the path;
//! * lexicographic ranking, built directly on the core T-DP API with the
//!   [`anyk_core::dioid::Lexicographic`] dioid.
//!
//! Run with: `cargo run --release --example ranking_functions`

use anyk::core::dioid::{LexVec, Lexicographic};
use anyk::core::tdp::TdpBuilder;
use anyk::core::{ranked_enumerate, AnyKAlgorithm};
use anyk::prelude::*;
use anyk_engine::RankingFunction;

fn main() {
    // A tiny road network: edges with travel times.
    let edges = [
        (1u64, 2u64, 10.0),
        (1, 3, 25.0),
        (2, 3, 12.0),
        (2, 4, 30.0),
        (3, 4, 8.0),
        (3, 5, 22.0),
        (4, 5, 15.0),
    ];
    let mut db = Database::new();
    for rel in ["R1", "R2"] {
        let mut r = Relation::new(rel, 2);
        for &(a, b, w) in &edges {
            r.push(Tuple::new(vec![a, b], w));
        }
        db.add(r);
    }
    let query = QueryBuilder::path(2).build();

    for (label, ranking) in [
        (
            "ascending total time (tropical min-plus)",
            RankingFunction::SumAscending,
        ),
        (
            "descending total time (max-plus)",
            RankingFunction::SumDescending,
        ),
        (
            "bottleneck: minimise the slowest leg (min-max)",
            RankingFunction::BottleneckAscending,
        ),
    ] {
        let prepared = RankedQuery::with_ranking(&db, &query, ranking).unwrap();
        let top: Vec<Answer> = prepared.top_k(Algorithm::Take2, 3);
        println!("{label}:");
        for a in &top {
            println!("   weight {:>5.1}  path {:?}", a.weight(), a.values());
        }
        println!();
    }

    // Lexicographic ranking on the core API (§2.2 "Generality"): order 2-leg
    // trips first by the first leg's time, breaking ties by the second leg's.
    // Weights are per-relation unit vectors combined by element-wise addition.
    let mut b = TdpBuilder::<Lexicographic>::serial(2);
    let leg1: Vec<_> = edges
        .iter()
        .map(|&(_, _, w)| b.add_state(1, LexVec::unit(0, w as i64)))
        .collect();
    let leg2: Vec<_> = edges
        .iter()
        .map(|&(_, _, w)| b.add_state(2, LexVec::unit(1, w as i64)))
        .collect();
    for &s in &leg1 {
        b.connect_root(s);
    }
    for (i, &(_, to, _)) in edges.iter().enumerate() {
        for (j, &(from, _, _)) in edges.iter().enumerate() {
            if to == from {
                b.connect(leg1[i], leg2[j]);
            }
        }
    }
    let instance = b.build();
    println!("lexicographic ranking (first leg time, then second leg time):");
    for sol in ranked_enumerate(&instance, AnyKAlgorithm::Take2).take(3) {
        println!(
            "   (leg1, leg2) times = ({}, {})",
            sol.weight.component(0),
            sol.weight.component(1)
        );
    }
}
