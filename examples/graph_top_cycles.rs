//! Heaviest 4-cycles in a social network — the motivating scenario of the
//! paper's introduction (Example 1): find suspicious "feedback loops" of
//! trust/interaction without materialising the Θ(n²) full cycle result.
//!
//! The input is a scale-free trust graph (a stand-in for Bitcoin-OTC, see
//! DESIGN.md), and the query is the 4-cycle `QC4` ranked by **descending**
//! total trust. The engine uses the simple-cycle decomposition of §5.3.1, so
//! the first answer arrives after `O(n^1.5)` pre-processing instead of the
//! `O(n²)` a join-then-sort plan would need.
//!
//! Run with: `cargo run --release --example graph_top_cycles`

use anyk::datagen::rng;
use anyk::datagen::social::{social_database, SocialGraphConfig};
use anyk::prelude::*;
use anyk_engine::RankingFunction;
use std::time::Instant;

fn main() {
    // A Bitcoin-like trust graph, scaled down 8x so the example runs in a
    // couple of seconds; bump the factor down for a bigger run.
    let config = SocialGraphConfig::bitcoin_like().scaled_down(8);
    let db = social_database(4, config, &mut rng(1));
    let n = db.expect("R1").len();
    println!(
        "trust graph: {} nodes (configured), {} edges per relation",
        config.nodes, n
    );

    let query = QueryBuilder::cycle(4).build();
    println!("query: {query} (ranked by descending total trust)");

    let start = Instant::now();
    let prepared = RankedQuery::with_ranking(&db, &query, RankingFunction::SumDescending)
        .expect("simple 4-cycle");
    println!(
        "decomposed into heavy/light trees and pre-processed in {:?}",
        start.elapsed()
    );
    println!("total 4-cycles: {}", prepared.count_answers());

    let start = Instant::now();
    let top: Vec<Answer> = prepared.top_k(Algorithm::Lazy, 10);
    println!("top 10 heaviest 4-cycles in {:?}:", start.elapsed());
    for (i, answer) in top.iter().enumerate() {
        println!(
            "  #{:<2} trust {:>8.1}  users {:?}",
            i + 1,
            answer.weight(),
            answer.values()
        );
    }

    // Contrast: how long does it take a batch plan (full join + sort, like a
    // conventional engine) to produce the same top answer?
    let start = Instant::now();
    let batch = anyk_engine::naive_sql::join_and_sort(&db, &query, RankingFunction::SumDescending)
        .expect("cycle join");
    println!(
        "\nbatch join + sort produced the same top answer ({:.1}) in {:?} ({} results materialised)",
        batch.first().map(Answer::weight).unwrap_or(f64::NAN),
        start.elapsed(),
        batch.len()
    );
}
