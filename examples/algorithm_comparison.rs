//! Compare the any-k algorithms and the batch baseline on one workload —
//! a miniature version of the paper's Fig. 10a ("#results over time").
//!
//! The output prints, for each algorithm, the time to the first result (TTF),
//! the time to the k-th result for a few checkpoints, and the time to the
//! last result (TTL), illustrating the trade-offs of Fig. 5: `Lazy`/`Take2`
//! shine for small k, `Recursive` catches up (and can win) for the full
//! output, and `Batch` pays the whole cost before the first answer.
//!
//! Run with: `cargo run --release --example algorithm_comparison`

use anyk::core::metrics::EnumerationTrace;
use anyk::datagen::uniform::path_or_star_database;
use anyk::prelude::*;
use std::time::Duration;

fn fmt(d: Option<Duration>) -> String {
    match d {
        Some(d) => format!("{:>9.3?}", d),
        None => "        -".to_string(),
    }
}

fn main() {
    let n = 4_000;
    let ell = 4;
    let db = path_or_star_database(ell, n, &mut anyk::datagen::rng(7));
    let query = QueryBuilder::path(ell).build();
    let prepared = RankedQuery::new(&db, &query).expect("acyclic path query");
    let total = prepared.count_answers();
    println!(
        "4-path over synthetic uniform data, n = {n} tuples/relation, {total} answers in total\n"
    );

    let checkpoints = [1usize, 100, 10_000];
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>9}   (lower is better)",
        "algorithm", "TT(1)", "TT(100)", "TT(10k)", "TTL"
    );
    for algorithm in Algorithm::ALL {
        let mut trace = EnumerationTrace::new();
        for _ in prepared.enumerate(algorithm) {
            trace.record();
        }
        println!(
            "{:<10} {} {} {} {}",
            algorithm.name(),
            fmt(trace.tt(checkpoints[0])),
            fmt(trace.tt(checkpoints[1])),
            fmt(trace.tt(checkpoints[2])),
            fmt(trace.ttl()),
        );
    }

    println!(
        "\nNote: Batch pays join + sort before its first answer; the any-k algorithms\n\
         return the first answers after linear-time preprocessing (Fig. 5 of the paper)."
    );
}
