//! String-keyed ranked enumeration end to end: load a TSV of trust edges
//! between usernames, dictionary-encode it into the columnar storage, run a
//! ranked path query with the any-k engine, and print the answers decoded
//! back to the original strings. The engine itself only ever sees dense
//! `u64` ids — the text layer lives entirely at the storage boundary.
//!
//! Run with: `cargo run --release --example text_social_network`

use anyk::datagen::text::{self, TextSocialConfig};
use anyk::engine::{naive_sql, AnswerDecoder};
use anyk::prelude::*;
use anyk::storage::Schema;

fn main() {
    // ------------------------------------------------------------------
    // Part 1: a hand-written TSV of "who trusts whom, how much".
    // ------------------------------------------------------------------
    let tsv = "\
# follower\tfollowee\ttrust_cost
alice\tbob\t1
alice\tcarol\t4
bob\tcarol\t1
bob\tdave\t3
carol\tdave\t1
carol\terin\t5
dave\terin\t1
dave\talice\t2
erin\talice\t2
erin\tbob\t6
";

    // One shared dictionary for all copies: the same username must encode to
    // the same dense id everywhere, or the join would silently miss.
    let schema = Schema::text_shared(2);
    let mut db = Database::new();
    for name in ["R1", "R2", "R3"] {
        let r = text::load_tsv(name, tsv, schema.clone()).expect("well-formed TSV");
        db.add(r);
    }

    // QP3: trust chains of length 3, cheapest (most trusted) first.
    let query = QueryBuilder::path(3).build();
    let prepared = RankedQuery::new(&db, &query).expect("acyclic full query");
    let decoder = prepared.decoder();
    println!("query: {query}");
    println!("total trust chains: {}", prepared.count_answers());
    println!("\ntop 5 most-trusted chains (Take2), decoded from the dictionary:");
    for (rank, answer) in prepared.top_k(Algorithm::Take2, 5).iter().enumerate() {
        println!(
            "  #{:<2} cost {:>3}  {}",
            rank + 1,
            answer.weight(),
            decoder.render(answer).join(" -> ")
        );
    }

    // The naive hash-join + sort oracle sees the same ids and therefore the
    // same ranked stream — the invariant the differential tests lean on.
    let oracle = naive_sql::join_and_sort(&db, &query, RankingFunction::SumAscending)
        .expect("oracle evaluation");
    let anyk_stream: Vec<f64> = prepared
        .enumerate(Algorithm::Lazy)
        .map(|a| a.weight())
        .collect();
    assert_eq!(oracle.len(), anyk_stream.len());
    for (o, w) in oracle.iter().zip(&anyk_stream) {
        assert!((o.weight() - w).abs() < 1e-9);
    }
    println!(
        "\noracle agreement: {} answers, identical ranked stream",
        oracle.len()
    );

    // ------------------------------------------------------------------
    // Part 2: a generated scale-free social network with string usernames.
    // ------------------------------------------------------------------
    let config = TextSocialConfig {
        users: 400,
        avg_degree: 4,
    };
    let social = text::text_social_database(3, config, &mut anyk::datagen::rng(23));
    let social_query = QueryBuilder::path(3).build();
    let social_decoder = AnswerDecoder::for_query(&social, &social_query);
    println!(
        "\ngenerated social graph: {} users, {} edges per relation",
        config.users,
        social.expect("R1").len()
    );
    println!("top 3 highest-trust 3-hop chains:");
    // Trust weights are in [-10, 10]; descending sum surfaces the strongest
    // chains first.
    let ranked = RankedQuery::with_ranking(&social, &social_query, RankingFunction::SumDescending)
        .expect("acyclic full query");
    for (rank, answer) in ranked.top_k(Algorithm::Take2, 3).iter().enumerate() {
        println!(
            "  #{:<2} trust {:>5}  {}",
            rank + 1,
            answer.weight(),
            social_decoder.render(answer).join(" -> ")
        );
    }
}
