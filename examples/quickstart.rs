//! Quickstart: ranked enumeration of a 3-path query over a small weighted
//! graph, demonstrating the central promise of the paper — the top-ranked
//! answers arrive without computing (or sorting) the full join result.
//!
//! Run with: `cargo run --release --example quickstart`

use anyk::prelude::*;

fn main() {
    // A small directed graph of flight legs: (from, to) with a price weight.
    // We look for the cheapest 3-leg itineraries, i.e. the 3-path query
    //   QP3(x1,x2,x3,x4) :- R1(x1,x2), R2(x2,x3), R3(x3,x4)
    // over three copies of the same edge relation, ranked by total price.
    let legs = [
        (1u64, 2u64, 120.0),
        (1, 3, 80.0),
        (2, 3, 50.0),
        (2, 4, 200.0),
        (3, 4, 70.0),
        (3, 5, 90.0),
        (4, 5, 60.0),
        (4, 1, 150.0),
        (5, 1, 110.0),
        (5, 2, 40.0),
    ];

    let mut db = Database::new();
    for rel in ["R1", "R2", "R3"] {
        let mut r = Relation::new(rel, 2);
        for &(from, to, price) in &legs {
            r.push(Tuple::new(vec![from, to], price));
        }
        db.add(r);
    }

    let query = QueryBuilder::path(3).build();
    println!("query: {query}");

    let prepared = RankedQuery::new(&db, &query).expect("acyclic full query");
    println!(
        "total itineraries (computed without enumeration): {}",
        prepared.count_answers()
    );

    println!("\ntop 5 cheapest 3-leg itineraries (Take2):");
    for (rank, answer) in prepared.top_k(Algorithm::Take2, 5).iter().enumerate() {
        let stops: Vec<String> = answer.values().iter().map(u64::to_string).collect();
        println!(
            "  #{:<2} price {:>6.0}  route {}",
            rank + 1,
            answer.weight(),
            stops.join(" -> ")
        );
    }

    // Any-k means we can keep going — or stop — at any point, and every
    // algorithm returns the same ranked stream.
    let take2: Vec<f64> = prepared
        .enumerate(Algorithm::Take2)
        .map(|a| a.weight())
        .collect();
    let recursive: Vec<f64> = prepared
        .enumerate(Algorithm::Recursive)
        .map(|a| a.weight())
        .collect();
    assert_eq!(take2.len(), recursive.len());
    println!(
        "\nall {} answers enumerated identically by Take2 and Recursive",
        take2.len()
    );
}
