//! The worst-case cycle construction used for the cycle experiments (§7).
//!
//! "For cycles, we follow a construction by [NPRR] that creates a worst-case
//! output: every relation consists of n/2 tuples of the form (0, i) and n/2
//! of the form (i, 0) where i takes all the values in `N_1^{n/2}`."
//! The single value `0` is a heavy hub in every relation, so the instance
//! exercises both the heavy and the light partitions of the simple-cycle
//! decomposition (§5.3.1) and has `Θ((n/2)²)` output tuples for the 4-cycle.

use anyk_storage::{Database, Relation};
use rand::rngs::SmallRng;
use rand::Rng;

/// The weight range used throughout the synthetic experiments.
pub const WEIGHT_RANGE: f64 = 10_000.0;

/// Worst-case database for the ℓ-cycle query: relations `R1..Rℓ`, each with
/// `n/2` tuples `(0, i)` and `n/2` tuples `(i, 0)`, weights uniform.
pub fn worst_case_cycle_database(ell: usize, n: usize, rng: &mut SmallRng) -> Database {
    let half = (n / 2).max(1) as u64;
    let mut db = Database::new();
    for r_idx in 1..=ell {
        let mut r = Relation::new(format!("R{r_idx}"), 2);
        for i in 1..=half {
            r.push_edge(0, i, rng.gen_range(0.0..WEIGHT_RANGE));
            r.push_edge(i, 0, rng.gen_range(0.0..WEIGHT_RANGE));
        }
        db.add(r);
    }
    db
}

/// The exact number of ℓ-cycle answers of [`worst_case_cycle_database`]:
/// every answer alternates between the hub `0` and a non-hub value, so for
/// even ℓ there are `2 · (n/2)^{ℓ/2}` of them... computed here by the closed
/// form used to size the experiments.
pub fn worst_case_output_size(ell: usize, n: usize) -> u128 {
    let half = (n / 2).max(1) as u128;
    if ell.is_multiple_of(2) {
        2 * half.pow((ell / 2) as u32)
    } else {
        // Odd cycles on this instance have no answers (the hub must alternate).
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    #[test]
    fn construction_shape() {
        let db = worst_case_cycle_database(4, 10, &mut rng(1));
        assert_eq!(db.len(), 4);
        for r in db.relations() {
            assert_eq!(r.len(), 10);
            assert!(r.tuples().all(|t| t.value(0) == 0 || t.value(1) == 0));
        }
    }

    #[test]
    fn output_size_formula_matches_brute_force() {
        // Brute-force the 4-cycle output on a small instance and compare.
        let n = 6;
        let db = worst_case_cycle_database(4, n, &mut rng(2));
        let rels: Vec<_> = (1..=4).map(|i| db.expect(&format!("R{i}"))).collect();
        let mut count = 0u128;
        for (_, t1) in rels[0].iter() {
            for (_, t2) in rels[1].iter() {
                if t1.value(1) != t2.value(0) {
                    continue;
                }
                for (_, t3) in rels[2].iter() {
                    if t2.value(1) != t3.value(0) {
                        continue;
                    }
                    for (_, t4) in rels[3].iter() {
                        if t3.value(1) == t4.value(0) && t4.value(1) == t1.value(0) {
                            count += 1;
                        }
                    }
                }
            }
        }
        assert_eq!(count, worst_case_output_size(4, n));
    }
}
