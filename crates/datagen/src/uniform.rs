//! The synthetic path/star inputs of §7.
//!
//! "For path and star queries, we create tuples with values uniformly
//! sampled from the domain `N_{1}^{n/10}`. That way, tuples join with 10
//! others in the next relation, on average. Tuple weights are real numbers
//! uniformly drawn from `[0, 10000]`."

use anyk_storage::{Database, Relation};
use rand::rngs::SmallRng;
use rand::Rng;

/// The weight range used throughout the synthetic experiments.
pub const WEIGHT_RANGE: f64 = 10_000.0;

/// A database of `ell` binary relations `R1..Rℓ`, each with `n` tuples whose
/// values are uniform in `1..=max(1, n/domain_divisor)`. The paper uses
/// `domain_divisor = 10` so that each tuple joins with ~10 tuples of the
/// next relation.
pub fn uniform_database(
    ell: usize,
    n: usize,
    domain_divisor: usize,
    rng: &mut SmallRng,
) -> Database {
    let domain = (n / domain_divisor.max(1)).max(1) as u64;
    let mut db = Database::new();
    for i in 1..=ell {
        let mut r = Relation::new(format!("R{i}"), 2);
        for _ in 0..n {
            let a = rng.gen_range(1..=domain);
            let b = rng.gen_range(1..=domain);
            let w = rng.gen_range(0.0..WEIGHT_RANGE);
            r.push_edge(a, b, w);
        }
        db.add(r);
    }
    db
}

/// The standard synthetic input for the ℓ-path and ℓ-star experiments
/// (`domain_divisor = 10`).
pub fn path_or_star_database(ell: usize, n: usize, rng: &mut SmallRng) -> Database {
    uniform_database(ell, n, 10, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;
    use anyk_storage::stats::ColumnStats;

    #[test]
    fn relations_have_requested_cardinality_and_domain() {
        let db = path_or_star_database(4, 1000, &mut rng(1));
        assert_eq!(db.len(), 4);
        for r in db.relations() {
            assert_eq!(r.len(), 1000);
            for t in r.tuples() {
                assert!(t.value(0) >= 1 && t.value(0) <= 100);
                assert!(t.weight() >= 0.0 && t.weight() < WEIGHT_RANGE);
            }
        }
    }

    #[test]
    fn average_join_fanout_is_roughly_ten() {
        let db = path_or_star_database(2, 5000, &mut rng(2));
        let s = ColumnStats::compute(db.expect("R2"), 0);
        let avg = s.avg_degree();
        assert!(avg > 5.0 && avg < 20.0, "average degree {avg}");
    }

    #[test]
    fn tiny_inputs_do_not_panic() {
        let db = uniform_database(2, 3, 10, &mut rng(3));
        assert_eq!(db.expect("R1").len(), 3);
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let a = path_or_star_database(3, 50, &mut rng(7));
        let b = path_or_star_database(3, 50, &mut rng(7));
        for (ra, rb) in a.relations().zip(b.relations()) {
            for ((_, ta), (_, tb)) in ra.iter().zip(rb.iter()) {
                assert_eq!(ta.values_vec(), tb.values_vec());
                assert_eq!(ta.weight(), tb.weight());
            }
        }
    }
}
