//! String-keyed workloads: a social-network edge generator with string
//! usernames, and a CSV/TSV loader for external text data.
//!
//! Both paths produce dictionary-encoded relations (see
//! `anyk_storage::dictionary`): the columns the engine scans hold dense ids,
//! and the original strings come back through `RowRef::decoded` /
//! `AnswerDecoder`. The generator is deterministic given a seed, like every
//! other generator in this crate.

use anyk_storage::{ColumnType, Database, Field, Relation, Schema};
use rand::rngs::SmallRng;
use rand::Rng;

/// Adjective half of the generated username pool.
const ADJECTIVES: [&str; 16] = [
    "amber", "bold", "calm", "dapper", "eager", "fuzzy", "gentle", "happy", "icy", "jolly", "keen",
    "lucky", "mellow", "nimble", "proud", "quiet",
];

/// Noun half of the generated username pool.
const NOUNS: [&str; 16] = [
    "badger", "crane", "dolphin", "eagle", "ferret", "gecko", "heron", "ibis", "jackal", "koala",
    "lemur", "marmot", "newt", "otter", "panda", "quokka",
];

/// The deterministic username of node `i`: an adjective–noun pair, with a
/// numeric suffix once the 256 pair combinations are exhausted. Distinct `i`
/// always yield distinct usernames.
pub fn username(i: usize) -> String {
    let adj = ADJECTIVES[i % ADJECTIVES.len()];
    let noun = NOUNS[(i / ADJECTIVES.len()) % NOUNS.len()];
    let round = i / (ADJECTIVES.len() * NOUNS.len());
    if round == 0 {
        format!("{adj}_{noun}")
    } else {
        format!("{adj}_{noun}{round}")
    }
}

/// Parameters of the string-keyed social graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TextSocialConfig {
    /// Number of users (distinct usernames).
    pub users: usize,
    /// Average out-degree (edges ≈ users × avg_degree).
    pub avg_degree: usize,
}

/// Generate a `FOLLOWS(follower, followee)` edge relation keyed by string
/// usernames, with integer-valued trust weights in `[-10, 10]` (the
/// Bitcoin-OTC shape). Both columns share one dictionary, so the relation
/// joins against itself and against copies built from the same schema.
pub fn follows_edges(config: TextSocialConfig, rng: &mut SmallRng) -> Relation {
    let schema = Schema::text_shared(2);
    let mut edges =
        Relation::with_schema_capacity("FOLLOWS", schema, config.users * config.avg_degree);
    // Preferential attachment on the endpoint pool, as in [`crate::social`],
    // but through the string-encoding push path: hubs emerge because every
    // prior endpoint occurrence biases future sampling towards it.
    let mut pool: Vec<usize> = vec![0];
    for v in 1..config.users {
        for _ in 0..config.avg_degree {
            let target = if pool.len() < 2 || rng.gen_bool(0.1) {
                rng.gen_range(0..v as u64) as usize
            } else {
                pool[rng.gen_range(0..pool.len() as u64) as usize]
            };
            if target == v {
                continue;
            }
            let weight = rng.gen_range(-10i32..=10) as f64;
            edges.push_text_edge(&username(v), &username(target), weight);
            pool.push(v);
            pool.push(target);
        }
    }
    edges
}

/// A database holding `ell` copies (`R1..Rℓ`) of one string-keyed edge
/// relation — the layout used for path/star/cycle queries over a graph. All
/// copies share the edge relation's schema (hence its dictionary), so any
/// pair of their columns joins consistently.
pub fn text_social_database(ell: usize, config: TextSocialConfig, rng: &mut SmallRng) -> Database {
    let edges = follows_edges(config, rng);
    let mut db = Database::new();
    for i in 1..=ell {
        let mut r =
            Relation::with_schema_capacity(format!("R{i}"), edges.schema().clone(), edges.len());
        for (_, t) in edges.iter() {
            // Already-encoded ids: replicate through the raw path.
            r.push_row(&[t.value(0), t.value(1)], t.weight());
        }
        db.add(r);
    }
    db
}

/// An error while parsing delimited text data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TextLoadError {
    /// A record had the wrong number of fields: valid records carry either
    /// `arity` fields or `arity + 1` with a trailing weight.
    FieldCount {
        /// 1-based line number of the offending record.
        line: usize,
        /// The schema's arity (records may carry `arity` or `arity + 1`
        /// fields).
        arity: usize,
        /// Fields actually present.
        got: usize,
    },
    /// A field of an id column was not a valid `u64`.
    BadInt {
        /// 1-based line number of the offending record.
        line: usize,
        /// The unparsable field.
        field: String,
    },
    /// The trailing weight field was not a valid `f64`.
    BadWeight {
        /// 1-based line number of the offending record.
        line: usize,
        /// The unparsable field.
        field: String,
    },
}

impl std::fmt::Display for TextLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TextLoadError::FieldCount { line, arity, got } => write!(
                f,
                "line {line}: expected {arity} fields (or {} with a trailing \
                 weight), got {got}",
                arity + 1
            ),
            TextLoadError::BadInt { line, field } => {
                write!(f, "line {line}: id column field {field:?} is not a u64")
            }
            TextLoadError::BadWeight { line, field } => {
                write!(f, "line {line}: weight field {field:?} is not a number")
            }
        }
    }
}

impl std::error::Error for TextLoadError {}

/// Load a relation from delimiter-separated text (no quoting; fields are
/// trimmed). Each record carries the schema's columns in order, optionally
/// followed by one trailing weight field (`f64`); records without it get
/// weight `0.0`. Empty lines and lines starting with `#` are skipped.
///
/// Text columns intern through the schema's dictionaries — load several files
/// with clones of one schema to keep them join-compatible — and id columns
/// parse their fields as `u64`.
pub fn load_delimited(
    name: impl Into<String>,
    input: &str,
    delimiter: char,
    schema: Schema,
) -> Result<Relation, TextLoadError> {
    let arity = schema.arity();
    let mut relation = Relation::with_schema(name, schema);
    let mut fields: Vec<Field<'_>> = Vec::with_capacity(arity);
    for (lineno, record) in input.lines().enumerate() {
        let line = lineno + 1;
        let trimmed = record.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let raw: Vec<&str> = trimmed.split(delimiter).map(str::trim).collect();
        let weight = match raw.len() {
            n if n == arity => 0.0,
            n if n == arity + 1 => raw[arity].parse().map_err(|_| TextLoadError::BadWeight {
                line,
                field: raw[arity].to_string(),
            })?,
            got => return Err(TextLoadError::FieldCount { line, arity, got }),
        };
        fields.clear();
        for (col, &field) in raw.iter().take(arity).enumerate() {
            // Pre-validate id columns so the loader reports an error instead
            // of tripping `push_fields`' panic.
            match relation.schema().column(col) {
                ColumnType::Id => {
                    let v: u64 = field.parse().map_err(|_| TextLoadError::BadInt {
                        line,
                        field: field.to_string(),
                    })?;
                    fields.push(Field::Int(v));
                }
                ColumnType::Text(_) => fields.push(Field::Str(field)),
            }
        }
        relation.push_fields(&fields, weight);
    }
    Ok(relation)
}

/// [`load_delimited`] with a tab delimiter.
pub fn load_tsv(
    name: impl Into<String>,
    input: &str,
    schema: Schema,
) -> Result<Relation, TextLoadError> {
    load_delimited(name, input, '\t', schema)
}

/// [`load_delimited`] with a comma delimiter.
pub fn load_csv(
    name: impl Into<String>,
    input: &str,
    schema: Schema,
) -> Result<Relation, TextLoadError> {
    load_delimited(name, input, ',', schema)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;
    use std::collections::HashSet;

    #[test]
    fn usernames_are_distinct_and_human_readable() {
        let names: HashSet<String> = (0..600).map(username).collect();
        assert_eq!(names.len(), 600);
        assert_eq!(username(0), "amber_badger");
        assert_eq!(username(256), "amber_badger1");
        assert!(names.iter().all(|n| n.contains('_')));
    }

    #[test]
    fn follows_edges_are_string_keyed_and_deterministic() {
        let config = TextSocialConfig {
            users: 120,
            avg_degree: 4,
        };
        let a = follows_edges(config, &mut rng(5));
        let b = follows_edges(config, &mut rng(5));
        assert!(a.len() > 200);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.column(0), b.column(0), "deterministic given the seed");
        for t in a.tuples().take(50) {
            let from = t.decoded(0).expect("text column decodes");
            assert!(from.contains('_'), "decoded to a username: {from}");
            assert!(t.weight() >= -10.0 && t.weight() <= 10.0);
        }
    }

    #[test]
    fn text_social_database_shares_one_dictionary() {
        let config = TextSocialConfig {
            users: 60,
            avg_degree: 3,
        };
        let db = text_social_database(3, config, &mut rng(6));
        assert_eq!(db.len(), 3);
        let d1 = db.dictionary("R1", 0).unwrap();
        for rel in ["R1", "R2", "R3"] {
            for col in 0..2 {
                assert!(std::sync::Arc::ptr_eq(
                    &d1,
                    &db.dictionary(rel, col).unwrap()
                ));
            }
        }
        assert_eq!(db.expect("R1").len(), db.expect("R3").len());
    }

    #[test]
    fn tsv_loader_encodes_text_and_parses_ids_and_weights() {
        let schema = Schema::new(vec![ColumnType::text(), ColumnType::Id]);
        let input = "# user\tpage\tweight\nalice\t10\t1.5\n\nbob\t20\t2.0\nalice\t30\n";
        let r = load_tsv("VISITS", input, schema).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r.tuple(0).decoded(0).as_deref(), Some("alice"));
        assert_eq!(r.tuple(0).value(1), 10);
        assert_eq!(r.tuple(0).weight(), 1.5);
        assert_eq!(r.tuple(2).weight(), 0.0, "missing weight defaults to 0");
        assert_eq!(r.column(0), &[0, 1, 0], "alice deduplicated to one id");
    }

    #[test]
    fn csv_loader_reports_malformed_records() {
        let schema = Schema::text_shared(2);
        assert_eq!(
            load_csv("E", "a,b,c,d\n", schema.clone()).unwrap_err(),
            TextLoadError::FieldCount {
                line: 1,
                arity: 2,
                got: 4
            }
        );
        let msg = load_csv("E", "a,b,c,d\n", schema.clone())
            .unwrap_err()
            .to_string();
        assert!(
            msg.contains("2 fields"),
            "names both accepted counts: {msg}"
        );
        assert!(msg.contains("3 with"), "names both accepted counts: {msg}");
        assert_eq!(
            load_csv("E", "a,b,heavy\n", schema.clone()).unwrap_err(),
            TextLoadError::BadWeight {
                line: 1,
                field: "heavy".into()
            }
        );
        let ids = Schema::ids(2);
        assert_eq!(
            load_csv("E", "1,bob,0.5\n", ids).unwrap_err(),
            TextLoadError::BadInt {
                line: 1,
                field: "bob".into()
            }
        );
        // Error messages render with the line number.
        let err = load_csv("E", "x,y,z,w\n", schema).unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn loading_two_files_through_one_schema_aligns_their_encodings() {
        let schema = Schema::text_shared(2);
        let r1 = load_csv("R1", "alice,bob,1\nbob,carol,2\n", schema.clone()).unwrap();
        let r2 = load_csv("R2", "bob,dave,3\n", schema).unwrap();
        // "bob" must carry the same id in both relations for joins to work.
        assert_eq!(r1.tuple(0).value(1), r2.tuple(0).value(0));
    }
}
