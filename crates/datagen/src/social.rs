//! Scale-free social-graph generator — the stand-in for the Bitcoin-OTC and
//! Twitter datasets of Fig. 9.
//!
//! The paper's real-data experiments run path/star/cycle queries over the
//! edge relation of two social networks whose relevant characteristics are a
//! heavily skewed (power-law) degree distribution — a few hub users with
//! thousands of edges — and edge weights that are either explicit trust
//! scores (Bitcoin-OTC) or derived from the endpoints' PageRank (Twitter).
//! Since the actual datasets cannot be shipped, this module generates
//! directed multigraph edge relations with a preferential-attachment process
//! that reproduces exactly those characteristics, parameterised to the
//! node/edge counts reported in Fig. 9 (and scalable down for quick runs).

use anyk_storage::stats::{graph_stats, GraphStats};
use anyk_storage::{Database, Relation};
use rand::rngs::SmallRng;
use rand::Rng;

/// How edge weights are assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightModel {
    /// Integer-valued trust scores in `[-10, 10]`, like Bitcoin-OTC.
    Trust,
    /// Degree-proportional weights mimicking "sum of endpoint PageRanks",
    /// like the Twitter experiments.
    PageRank,
}

/// Parameters of the generated graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SocialGraphConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Average out-degree (edges ≈ nodes × avg_degree).
    pub avg_degree: usize,
    /// Weight model.
    pub weights: WeightModel,
}

impl SocialGraphConfig {
    /// A Bitcoin-OTC–sized graph (Fig. 9: 5 881 nodes, 35 592 edges).
    pub fn bitcoin_like() -> Self {
        SocialGraphConfig {
            nodes: 5_881,
            avg_degree: 6,
            weights: WeightModel::Trust,
        }
    }

    /// A TwitterS-sized graph (Fig. 9: 8 000 nodes, 87 687 edges).
    pub fn twitter_s() -> Self {
        SocialGraphConfig {
            nodes: 8_000,
            avg_degree: 11,
            weights: WeightModel::PageRank,
        }
    }

    /// A TwitterL-sized graph (Fig. 9: 80 000 nodes, 2 250 298 edges).
    pub fn twitter_l() -> Self {
        SocialGraphConfig {
            nodes: 80_000,
            avg_degree: 28,
            weights: WeightModel::PageRank,
        }
    }

    /// The same configuration scaled down by `factor` (≥ 1), keeping the
    /// degree structure; used to keep laptop-scale experiments fast.
    pub fn scaled_down(mut self, factor: usize) -> Self {
        self.nodes = (self.nodes / factor.max(1)).max(10);
        self
    }
}

/// Generate the edge relation of a scale-free directed graph.
///
/// Preferential attachment: node `v` (for `v = 1..nodes`) adds `avg_degree`
/// out-edges whose targets are sampled from the endpoints of existing edges
/// (with probability ~ degree) or uniformly at random (10% of the time, and
/// always while the graph is still tiny).
pub fn scale_free_edges(config: SocialGraphConfig, rng: &mut SmallRng) -> Relation {
    let mut edges = Relation::new("EDGES", 2);
    // Endpoint pool: every occurrence of a node biases future sampling
    // towards it (classic Barabási–Albert trick).
    let mut pool: Vec<u64> = vec![0];
    let mut degree = vec![0usize; config.nodes];
    let mut raw: Vec<(u64, u64)> = Vec::new();
    for v in 1..config.nodes as u64 {
        for _ in 0..config.avg_degree {
            let target = if pool.len() < 2 || rng.gen_bool(0.1) {
                rng.gen_range(0..v)
            } else {
                pool[rng.gen_range(0..pool.len())]
            };
            if target == v {
                continue;
            }
            // Orient the edge randomly so that hubs accumulate both high
            // in-degree and high out-degree, as in real follower graphs.
            if rng.gen_bool(0.5) {
                raw.push((v, target));
            } else {
                raw.push((target, v));
            }
            degree[v as usize] += 1;
            degree[target as usize] += 1;
            pool.push(target);
            pool.push(v);
        }
    }
    // Assign weights once degrees are final.
    let total_degree: usize = degree.iter().sum::<usize>().max(1);
    for (from, to) in raw {
        let weight = match config.weights {
            WeightModel::Trust => rng.gen_range(-10i32..=10) as f64,
            WeightModel::PageRank => {
                let pr = |v: u64| degree[v as usize] as f64 / total_degree as f64;
                (pr(from) + pr(to)) * 1_000.0
            }
        };
        edges.push_edge(from, to, weight);
    }
    edges
}

/// A database holding `ell` copies of the same edge relation (`R1..Rℓ`), the
/// layout the paper uses for running path/star/cycle queries over a graph.
pub fn social_database(ell: usize, config: SocialGraphConfig, rng: &mut SmallRng) -> Database {
    let edges = scale_free_edges(config, rng);
    let mut db = Database::new();
    for i in 1..=ell {
        let mut r = Relation::with_capacity(format!("R{i}"), 2, edges.len());
        for (_, t) in edges.iter() {
            r.push_row(&[t.value(0), t.value(1)], t.weight());
        }
        db.add(r);
    }
    db
}

/// Summary statistics of a generated edge relation (the Fig. 9 columns).
pub fn summarize(edges: &Relation) -> GraphStats {
    graph_stats(edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    #[test]
    fn degree_distribution_is_skewed() {
        let config = SocialGraphConfig {
            nodes: 2_000,
            avg_degree: 6,
            weights: WeightModel::PageRank,
        };
        let edges = scale_free_edges(config, &mut rng(7));
        let stats = summarize(&edges);
        assert!(stats.edges > 5 * stats.nodes, "enough edges");
        // Hubs: the max degree should far exceed the average (power-law tail).
        assert!(
            stats.max_degree as f64 > 5.0 * stats.avg_degree,
            "max {} vs avg {}",
            stats.max_degree,
            stats.avg_degree
        );
    }

    #[test]
    fn trust_weights_are_bounded() {
        let config = SocialGraphConfig {
            nodes: 500,
            avg_degree: 4,
            weights: WeightModel::Trust,
        };
        let edges = scale_free_edges(config, &mut rng(9));
        for t in edges.tuples() {
            assert!(t.weight() >= -10.0 && t.weight() <= 10.0);
        }
    }

    #[test]
    fn social_database_replicates_edges_per_relation() {
        let config = SocialGraphConfig {
            nodes: 200,
            avg_degree: 3,
            weights: WeightModel::Trust,
        };
        let db = social_database(4, config, &mut rng(11));
        assert_eq!(db.len(), 4);
        let n = db.expect("R1").len();
        assert!(n > 100);
        for i in 2..=4 {
            assert_eq!(db.expect(&format!("R{i}")).len(), n);
        }
    }

    #[test]
    fn presets_match_figure_9_scale() {
        assert_eq!(SocialGraphConfig::bitcoin_like().nodes, 5_881);
        assert_eq!(SocialGraphConfig::twitter_s().nodes, 8_000);
        assert_eq!(SocialGraphConfig::twitter_l().nodes, 80_000);
        let scaled = SocialGraphConfig::twitter_l().scaled_down(100);
        assert_eq!(scaled.nodes, 800);
    }
}
