//! Adversarial instances from the paper's comparisons with other paradigms.
//!
//! * [`nprr_i1`] — database `I1` of Fig. 16 (§9.1.1): a 4-cycle instance on
//!   which a worst-case optimal join algorithm needs `Θ(n²)` before it can
//!   report the top-ranked answer, while the any-k approach needs only
//!   `O(n)` (this instance has a single heavy value per relation).
//! * [`rankjoin_i2`] — database `I2` of Fig. 19 (§9.1.3), mirrored for
//!   ascending ranking: the top answer combines tuples accessed *last* under
//!   sorted access, while all early tuples join with each other, forcing
//!   middleware-style rank joins to materialise `Ω((n−1)^{ℓ−1})` partial
//!   combinations.

use anyk_storage::{Database, Relation};

/// Database `I1` (Fig. 16) for the 4-cycle query `QC4` over `R1..R4`.
///
/// Each relation holds `2n` tuples: `(a_i, b_0)` for `i ∈ 1..=n` and
/// `(a_0, b_j)` for `j ∈ 1..=n` (encoded as integers; `x_0` is value `0` and
/// `x_i` is value `i`). Weights grow linearly with the index so that ranked
/// order is non-trivial.
pub fn nprr_i1(n: usize) -> Database {
    let mut db = Database::new();
    for r_idx in 1..=4 {
        let mut r = Relation::new(format!("R{r_idx}"), 2);
        for i in 1..=n as u64 {
            // (a_i, b_0)
            r.push_edge(i, 0, i as f64 + r_idx as f64);
            // (a_0, b_j)
            r.push_edge(0, i, i as f64 * 2.0 + r_idx as f64);
        }
        db.add(r);
    }
    db
}

/// The number of 4-cycle answers of [`nprr_i1`]: `2n²` (every pair of
/// "spoke" choices on opposite sides closes a cycle through the hubs).
pub fn nprr_i1_output_size(n: usize) -> u128 {
    2 * (n as u128) * (n as u128)
}

/// Database `I2` (Fig. 19) for the 3-path query, mirrored for ascending
/// ranking (see `anyk-engine::rankjoin` for the corresponding analysis).
///
/// * `R1`: `n−1` light tuples `(100+i, 1)` plus one heavy tuple `(100, 0)`;
/// * `R2`: `n−1` light tuples `(1, 200+i)` plus one heavy tuple `(0, 200)`;
/// * `R3`: `n−1` very heavy tuples `(200+i, 300)` plus one light `(200, 300)`.
///
/// The top-ranked (minimum-sum) answer is the chain through the heavy `R1`,
/// `R2` tuples and the light `R3` tuple; every other combination is far
/// heavier but is discovered first by sorted-access operators.
pub fn rankjoin_i2(n: usize) -> Database {
    let n = n.max(2) as u64;
    let mut db = Database::new();
    let mut r1 = Relation::new("R1", 2);
    let mut r2 = Relation::new("R2", 2);
    let mut r3 = Relation::new("R3", 2);
    for i in 1..n {
        r1.push_edge(100 + i, 1, 1.0 + i as f64);
        r2.push_edge(1, 200 + i, 10.0 + i as f64);
        r3.push_edge(200 + i, 300, 100_000.0);
    }
    r1.push_edge(100, 0, 1_000.0);
    r2.push_edge(0, 200, 2_000.0);
    r3.push_edge(200, 300, 1.0);
    db.add(r1);
    db.add(r2);
    db.add(r3);
    db
}

/// The weight of the top-ranked answer of [`rankjoin_i2`].
pub const RANKJOIN_I2_TOP_WEIGHT: f64 = 3_001.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i1_shape_and_output_size() {
        let n = 5;
        let db = nprr_i1(n);
        assert_eq!(db.len(), 4);
        for r in db.relations() {
            assert_eq!(r.len(), 2 * n);
        }
        // Brute-force the 4-cycle count.
        let rels: Vec<_> = (1..=4).map(|i| db.expect(&format!("R{i}"))).collect();
        let mut count = 0u128;
        for (_, t1) in rels[0].iter() {
            for (_, t2) in rels[1].iter() {
                if t1.value(1) != t2.value(0) {
                    continue;
                }
                for (_, t3) in rels[2].iter() {
                    if t2.value(1) != t3.value(0) {
                        continue;
                    }
                    for (_, t4) in rels[3].iter() {
                        if t3.value(1) == t4.value(0) && t4.value(1) == t1.value(0) {
                            count += 1;
                        }
                    }
                }
            }
        }
        assert_eq!(count, nprr_i1_output_size(n));
    }

    #[test]
    fn i2_shape() {
        let db = rankjoin_i2(10);
        assert_eq!(db.expect("R1").len(), 10);
        assert_eq!(db.expect("R2").len(), 10);
        assert_eq!(db.expect("R3").len(), 10);
        // The intended top answer exists: (100,0) ⋈ (0,200) ⋈ (200,300).
        let w = 1_000.0 + 2_000.0 + 1.0;
        assert_eq!(w, RANKJOIN_I2_TOP_WEIGHT);
    }
}
