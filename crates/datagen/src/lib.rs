//! # anyk-datagen
//!
//! Workload generators for the paper's evaluation (§7, §9.1):
//!
//! * [`uniform`] — the synthetic path/star inputs of §7 (values drawn
//!   uniformly from a domain of size `n/10`, weights uniform in
//!   `[0, 10000)`);
//! * [`cycles`] — the worst-case cycle construction of [NPRR] used for the
//!   cycle experiments (`(0, i)` and `(i, 0)` tuples);
//! * [`adversarial`] — database `I1` (Fig. 16, NPRR sub-optimality for
//!   ranked enumeration) and database `I2` (Fig. 19, Rank-Join/J*
//!   sub-optimality);
//! * [`social`] — a deterministic preferential-attachment graph generator
//!   standing in for the Bitcoin-OTC and Twitter datasets of Fig. 9 (the
//!   experiments depend on the skewed degree distribution and weight spread,
//!   not the identity of the graphs — see DESIGN.md for the substitution
//!   rationale);
//! * [`text`] — string-keyed workloads: a social-network generator with
//!   string usernames over dictionary-encoded relations, plus a CSV/TSV
//!   loader for external text data.
//!
//! All generators are deterministic given a seed, so experiments are
//! reproducible.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adversarial;
pub mod cycles;
pub mod social;
pub mod text;
pub mod uniform;

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The default seed used by the experiment harness.
pub const DEFAULT_SEED: u64 = 0x5EED_0A17;

/// A deterministic RNG for the generators.
pub fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Shorthand: the default deterministic RNG.
pub fn default_rng() -> SmallRng {
    rng(DEFAULT_SEED)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn rng_is_deterministic() {
        let mut a = rng(42);
        let mut b = rng(42);
        for _ in 0..10 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }
}
