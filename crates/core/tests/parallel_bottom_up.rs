//! The multi-threaded bottom-up sweep must be **bit-identical** to the
//! serial one: within a stage every state's `subtree_opt` / `branch_opt` is
//! computed by the same arithmetic over the same operands regardless of
//! which worker runs it, so no thread count may change a single bit of the
//! outputs. These tests build randomized instances of the three workload
//! shapes of the paper's evaluation — serial chains (path queries), stars,
//! and the bag-chain trees produced by the cycle decomposition — plus
//! arbitrary random trees, and compare every `subtree_opt`/`branch_opt`
//! entry across worker counts at the f64 bit level.
//!
//! The sweep only spawns workers for stages with more than 4096 states
//! (below that the whole stage is swept serially regardless of the thread
//! count), so the randomized shape tests use stages **above** that
//! threshold with sparse random wiring — otherwise "parallel vs serial"
//! would silently compare the serial sweep against itself.

use anyk_core::dioid::{Dioid, OrderedF64, TropicalMin};
use anyk_core::tdp::{NodeId, TdpBuilder, TdpInstance};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// States per stage for the randomized shape tests: safely above the
/// sweep's internal 4096-state parallel threshold, so multi-worker builds
/// genuinely exercise the scoped-thread path.
const BIG_STAGE: usize = 4600;

/// Build a random instance over a given stage tree: `parents[i]` is the
/// parent of stage `i + 1` (0 = root stage). Every stage gets
/// `states_per_stage` states with random weights; every state is wired to
/// `degree` randomly chosen states of each child stage (sparse wiring keeps
/// big instances cheap to build).
fn random_instance(
    parents: &[usize],
    states_per_stage: usize,
    degree: usize,
    rng: &mut SmallRng,
) -> TdpBuilder<TropicalMin> {
    let mut b = TdpBuilder::<TropicalMin>::new();
    let mut stage_ids = vec![anyk_core::StageId::ROOT];
    for (i, &parent) in parents.iter().enumerate() {
        let sid = b.add_stage(&format!("s{}", i + 1), stage_ids[parent], true);
        stage_ids.push(sid);
    }
    let mut states: Vec<Vec<NodeId>> = vec![vec![NodeId::ROOT]];
    for sid in &stage_ids[1..] {
        let ids: Vec<NodeId> = (0..states_per_stage)
            .map(|_| b.add_state(sid.index(), OrderedF64::from(rng.gen_range(0.0..100.0))))
            .collect();
        states.push(ids);
    }
    for (child_stage, &parent_stage) in parents.iter().enumerate() {
        let child_stage = child_stage + 1;
        let children = states[child_stage].clone();
        let parents_states = states[parent_stage].clone();
        for ps in parents_states {
            for _ in 0..degree {
                let c = children[rng.gen_range(0..children.len() as u64) as usize];
                b.connect(ps, c);
            }
        }
    }
    b
}

/// Assert that two instances built from the same decisions agree bit-for-bit
/// on `subtree_opt` and every `branch_opt` slot.
fn assert_bit_identical(a: &TdpInstance<TropicalMin>, b: &TdpInstance<TropicalMin>, label: &str) {
    assert_eq!(a.num_nodes(), b.num_nodes(), "{label}: node count");
    for n in 0..a.num_nodes() {
        let nid = NodeId(n as u32);
        assert_eq!(
            a.subtree_opt(nid).get().to_bits(),
            b.subtree_opt(nid).get().to_bits(),
            "{label}: subtree_opt of node {n}"
        );
        let num_slots = a.stage(a.node(nid).stage).children.len();
        for slot in 0..num_slots {
            assert_eq!(
                a.branch_opt(nid, slot as u32).get().to_bits(),
                b.branch_opt(nid, slot as u32).get().to_bits(),
                "{label}: branch_opt of node {n} slot {slot}"
            );
        }
    }
}

/// Path-, star-, and cycle-decomposition-shaped stage trees.
///
/// * path: a 3-stage chain (the ℓ-path query compiles to a chain);
/// * star: one center stage with three leaf child stages — the center's
///   states own **multiple slots**, so chunked workers write multi-slot
///   `branch_opt` ranges;
/// * cycle: the ℓ-cycle decomposition compiles each partition into a chain
///   of bag stages (with interleaved value-node stages) — structurally a
///   longer chain; model a 6-cycle heavy tree's 4 bags as a 4-stage chain.
fn shapes() -> Vec<(&'static str, Vec<usize>)> {
    vec![
        ("path", vec![0, 1, 2]),
        ("star", vec![0, 1, 1, 1]),
        ("cycle-decomposition chain", vec![0, 1, 2, 3]),
    ]
}

#[test]
fn multi_threaded_sweep_is_bit_identical_to_serial() {
    let mut rng = SmallRng::seed_from_u64(0xB0770);
    for (label, parents) in shapes() {
        let builder = random_instance(&parents, BIG_STAGE, 3, &mut rng);
        let serial = builder.clone().build_with_threads(1);
        for threads in [2usize, 4, 8] {
            let parallel = builder.clone().build_with_threads(threads);
            assert_bit_identical(&serial, &parallel, &format!("{label} (threads={threads})"));
            assert_eq!(
                serial.optimum(),
                parallel.optimum(),
                "{label}: optimum must agree"
            );
            assert_eq!(
                serial.count_solutions(),
                parallel.count_solutions(),
                "{label}: compacted successor lists must agree"
            );
        }
    }
}

#[test]
fn random_trees_are_bit_identical_across_thread_counts() {
    let mut rng = SmallRng::seed_from_u64(0x7EAF);
    for round in 0..3 {
        // A random tree over 4 big stages: each stage hangs under a
        // uniformly chosen earlier stage (0 = root), so rounds mix chains,
        // stars, and brooms — all with stages above the parallel threshold.
        let parents: Vec<usize> = (0..4)
            .map(|i| rng.gen_range(0..(i + 1) as u64) as usize)
            .collect();
        let builder = random_instance(&parents, BIG_STAGE, 2, &mut rng);
        let serial = builder.clone().build_with_threads(1);
        for threads in [3usize, 7] {
            let parallel = builder.clone().build_with_threads(threads);
            assert_bit_identical(
                &serial,
                &parallel,
                &format!("round {round} threads {threads} parents {parents:?}"),
            );
        }
    }
}

#[test]
fn small_stages_stay_serial_and_agree_anyway() {
    // Below the 4096-state threshold every thread count takes the serial
    // path; the outputs must (trivially) agree, and pruning must behave the
    // same. This guards the dispatch boundary itself.
    let mut rng = SmallRng::seed_from_u64(0x5411);
    let builder = random_instance(&[0, 1, 1], 50, 2, &mut rng);
    let serial = builder.clone().build_with_threads(1);
    let parallel = builder.build_with_threads(8);
    assert_bit_identical(&serial, &parallel, "small stages");
}

#[test]
fn boolean_dioid_sweeps_agree_too() {
    // The sweep is generic over the dioid; spot-check a non-f64 carrier
    // with stages above the parallel threshold.
    use anyk_core::dioid::BooleanDioid;
    let build = |threads: usize| {
        let mut b = TdpBuilder::<BooleanDioid>::serial(3);
        let mut prev: Vec<NodeId> = (0..5000)
            .map(|_| b.add_state(1, BooleanDioid::one()))
            .collect();
        for &s in &prev {
            b.connect_root(s);
        }
        for stage in 2..=3 {
            let cur: Vec<NodeId> = (0..5000)
                .map(|_| b.add_state(stage, BooleanDioid::one()))
                .collect();
            for (i, &p) in prev.iter().enumerate() {
                b.connect(p, cur[i % cur.len()]);
            }
            prev = cur;
        }
        b.build_with_threads(threads)
    };
    let a = build(1);
    let b = build(5);
    for n in 0..a.num_nodes() {
        let nid = NodeId(n as u32);
        assert_eq!(a.subtree_opt(nid), b.subtree_opt(nid), "node {n}");
    }
    assert_eq!(a.count_solutions(), b.count_solutions());
}
