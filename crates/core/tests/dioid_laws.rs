//! Property tests: the selective-dioid axioms (§2.2, Definition 3) hold for
//! every dioid instance shipped by the crate. The any-k algorithms rely on
//! exactly these laws (associativity, identity, absorption, selectivity, and
//! monotone distributivity / Bellman's principle), so they are checked
//! explicitly rather than assumed.

use anyk_core::dioid::{
    BoolRank, BooleanDioid, Dioid, LexVec, Lexicographic, MaxTimes, MaxWeight, MinMaxDioid,
    Multiplicity, OrderedF64, TieBreak, TieBroken, TropicalMax, TropicalMin,
};
use proptest::prelude::*;

/// Check all dioid laws on three sample values.
fn check_laws<D: Dioid>(a: D::V, b: D::V, c: D::V) {
    // Associativity of ⊗.
    assert_eq!(
        D::times(&D::times(&a, &b), &c),
        D::times(&a, &D::times(&b, &c)),
        "⊗ must be associative"
    );
    // Identity.
    assert_eq!(D::times(&D::one(), &a), a, "1̄ ⊗ a = a");
    assert_eq!(D::times(&a, &D::one()), a, "a ⊗ 1̄ = a");
    // Absorption.
    assert_eq!(D::times(&D::zero(), &a), D::zero(), "0̄ absorbs");
    assert_eq!(D::times(&a, &D::zero()), D::zero(), "0̄ absorbs");
    // 0̄ is the worst element.
    assert!(a <= D::zero(), "0̄ is the maximum of the order");
    // Selectivity of ⊕: returns one of the operands, the smaller one.
    let s = D::plus(&a, &b);
    assert!(s == a || s == b);
    assert_eq!(s, std::cmp::min(a.clone(), b.clone()));
    // Monotonicity of ⊗ (distributivity over the selective ⊕ / Bellman).
    let (lo, hi) = if a <= b {
        (a.clone(), b.clone())
    } else {
        (b.clone(), a.clone())
    };
    assert!(
        D::times(&lo, &c) <= D::times(&hi, &c),
        "⊗ must be monotone in its first argument"
    );
}

fn finite_f64() -> impl Strategy<Value = f64> {
    // Integer-valued weights keep ⊗ (addition) exactly associative, so the
    // law checks can use bit-for-bit equality.
    (-1.0e6_f64..1.0e6).prop_map(f64::round)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn tropical_min_laws(a in finite_f64(), b in finite_f64(), c in finite_f64()) {
        check_laws::<TropicalMin>(a.into(), b.into(), c.into());
    }

    #[test]
    fn tropical_max_laws(a in finite_f64(), b in finite_f64(), c in finite_f64()) {
        check_laws::<TropicalMax>(MaxWeight::new(a), MaxWeight::new(b), MaxWeight::new(c));
    }

    #[test]
    fn minmax_laws(a in finite_f64(), b in finite_f64(), c in finite_f64()) {
        check_laws::<MinMaxDioid>(a.into(), b.into(), c.into());
    }

    #[test]
    fn maxtimes_laws(a in 0.0_f64..1000.0, b in 0.0_f64..1000.0, c in 0.0_f64..1000.0) {
        // Restrict to values whose products stay exactly representable enough
        // for associativity to hold bit-for-bit.
        let quantise = |v: f64| Multiplicity::new((v / 8.0).round().max(0.0));
        check_laws::<MaxTimes>(quantise(a), quantise(b), quantise(c));
    }

    #[test]
    fn boolean_laws(a in any::<bool>(), b in any::<bool>(), c in any::<bool>()) {
        check_laws::<BooleanDioid>(BoolRank(a), BoolRank(b), BoolRank(c));
    }

    #[test]
    fn lexicographic_laws(
        a in (0u32..4, -50i64..50),
        b in (0u32..4, -50i64..50),
        c in (0u32..4, -50i64..50),
    ) {
        check_laws::<Lexicographic>(
            LexVec::unit(a.0, a.1),
            LexVec::unit(b.0, b.1),
            LexVec::unit(c.0, c.1),
        );
    }

    #[test]
    fn tiebreak_laws(
        a in (finite_f64(), 0u32..3, 0u64..100),
        b in (finite_f64(), 0u32..3, 0u64..100),
        c in (finite_f64(), 0u32..3, 0u64..100),
    ) {
        check_laws::<TieBreak<TropicalMin>>(
            TieBroken::tagged(OrderedF64::from(a.0), a.1, a.2),
            TieBroken::tagged(OrderedF64::from(b.0), b.1, b.2),
            TieBroken::tagged(OrderedF64::from(c.0), c.1, c.2),
        );
    }
}

#[test]
fn plus_of_equal_elements_is_idempotent() {
    let x = OrderedF64::from(5.0);
    assert_eq!(TropicalMin::plus(&x, &x), x);
    assert_eq!(
        BooleanDioid::plus(&BoolRank(true), &BoolRank(true)),
        BoolRank(true)
    );
}
