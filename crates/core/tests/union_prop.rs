//! Property tests for the UT-DP union merge (§5.2): partitioning a ranked
//! stream across shards and merging it back through [`UnionEnumerator`] is
//! the identity, no matter how the items are split — including duplicate
//! keys (tied weights) and empty shards. This is the algebra the sharded
//! enumeration path (`anyk_engine::ShardedPreparedQuery`) stands on.

use anyk_core::UnionEnumerator;
use proptest::prelude::*;

/// One ranked item: a coarse weight (small range so ties are common) and an
/// identity payload. The merge key is `(weight, id)` — the same
/// "weight, then answer values" discipline the sharded cursor uses, a total
/// order under which bit-identity is well-defined even with tied weights.
type Item = (u16, u32);

fn merged_via_union(items: &[Item], assignment: &[usize], shards: usize) -> Vec<Item> {
    let mut parts: Vec<Vec<Item>> = vec![Vec::new(); shards];
    for (item, &shard) in items.iter().zip(assignment) {
        parts[shard % shards].push(*item);
    }
    // Each shard stream must itself be ranked, like a per-shard cursor.
    for p in &mut parts {
        p.sort();
    }
    let sources: Vec<_> = parts
        .into_iter()
        .map(|p| p.into_iter().map(|it| (it, it)))
        .collect();
    UnionEnumerator::new(sources).map(|(_, it)| it).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Merging any random partition of a ranked stream reproduces the
    /// single-source stream exactly.
    #[test]
    fn any_partition_merges_back_to_the_single_source_stream(
        items in proptest::collection::vec((0u16..8, 0u32..1000), 0..60),
        assignment in proptest::collection::vec(0usize..7, 60),
        shards in 1usize..7,
    ) {
        let mut single = items.clone();
        single.sort();
        let merged = merged_via_union(&items, &assignment[..items.len()], shards);
        prop_assert_eq!(merged, single);
    }

    /// Degenerate partitions behave too: everything on one shard of many
    /// (every other shard empty) and one item per shard.
    #[test]
    fn empty_and_singleton_shards_are_harmless(
        items in proptest::collection::vec((0u16..4, 0u32..100), 0..20),
        shards in 2usize..9,
    ) {
        let mut single = items.clone();
        single.sort();
        let all_on_one = vec![shards - 1; items.len()];
        prop_assert_eq!(merged_via_union(&items, &all_on_one, shards), single.clone());
        let spread: Vec<usize> = (0..items.len()).collect();
        prop_assert_eq!(merged_via_union(&items, &spread, shards), single);
    }

    /// With deduplication on (non-disjoint decompositions), duplicated
    /// items collapse: the merge of a stream unioned with copies of itself
    /// is the distinct stream.
    #[test]
    fn deduplicating_merge_drops_cross_shard_copies(
        items in proptest::collection::vec((0u16..6, 0u32..50), 0..30),
        copies in 2usize..4,
    ) {
        let mut distinct = items.clone();
        distinct.sort();
        distinct.dedup();
        let mut sorted = items.clone();
        sorted.sort();
        let sources: Vec<_> = (0..copies)
            .map(|_| sorted.clone().into_iter().map(|it| (it, it)))
            .collect();
        let merged: Vec<Item> =
            UnionEnumerator::deduplicating(sources).map(|(_, it)| it).collect();
        prop_assert_eq!(merged, distinct);
    }
}
