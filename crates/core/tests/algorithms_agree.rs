//! Property tests over randomly generated T-DP instances: every any-k
//! algorithm enumerates exactly the same solutions as the `Batch` baseline,
//! in non-decreasing weight order, and the optimum agrees with the DP
//! bottom-up phase and with brute force.

use anyk_core::dioid::{Dioid, OrderedF64, TropicalMin};
use anyk_core::tdp::{top1_solution, NodeId, TdpBuilder, TdpInstance};
use anyk_core::{ranked_enumerate, AnyKAlgorithm, AnyKPart, Recursive, Solution, SuccessorKind};
use proptest::prelude::*;

/// Description of a random serial instance: per-stage state weights and an
/// adjacency bitmap between consecutive stages.
#[derive(Debug, Clone)]
struct SerialSpec {
    stage_weights: Vec<Vec<u16>>,
    /// edges[i][a][b] — connect state a of stage i to state b of stage i+1.
    edges: Vec<Vec<Vec<bool>>>,
}

fn serial_spec(max_stages: usize, max_states: usize) -> impl Strategy<Value = SerialSpec> {
    (2..=max_stages, 1..=max_states).prop_flat_map(move |(stages, states)| {
        let weights =
            proptest::collection::vec(proptest::collection::vec(0u16..1000, 1..=states), stages);
        weights.prop_flat_map(move |stage_weights| {
            let sizes: Vec<usize> = stage_weights.iter().map(Vec::len).collect();
            let mut edge_strategies = Vec::new();
            for i in 0..sizes.len() - 1 {
                edge_strategies.push(proptest::collection::vec(
                    proptest::collection::vec(any::<bool>(), sizes[i + 1]),
                    sizes[i],
                ));
            }
            (Just(stage_weights), edge_strategies).prop_map(|(stage_weights, edges)| SerialSpec {
                stage_weights,
                edges,
            })
        })
    })
}

fn build_serial(spec: &SerialSpec) -> TdpInstance<TropicalMin> {
    let stages = spec.stage_weights.len();
    let mut b = TdpBuilder::<TropicalMin>::serial(stages);
    let mut ids: Vec<Vec<NodeId>> = Vec::new();
    for (i, ws) in spec.stage_weights.iter().enumerate() {
        ids.push(
            ws.iter()
                .map(|&w| b.add_state(i + 1, OrderedF64::from(w as f64)))
                .collect(),
        );
    }
    for &s in &ids[0] {
        b.connect_root(s);
    }
    for (i, matrix) in spec.edges.iter().enumerate() {
        for (a, row) in matrix.iter().enumerate() {
            for (c, &connected) in row.iter().enumerate() {
                if connected {
                    b.connect(ids[i][a], ids[i + 1][c]);
                }
            }
        }
    }
    b.build()
}

/// Brute-force all solutions by DFS over the raw spec.
fn brute_force(spec: &SerialSpec) -> Vec<f64> {
    let stages = spec.stage_weights.len();
    let mut out = Vec::new();
    let mut stack: Vec<(usize, usize, f64)> = (0..spec.stage_weights[0].len())
        .map(|s| (0usize, s, spec.stage_weights[0][s] as f64))
        .collect();
    while let Some((stage, state, weight)) = stack.pop() {
        if stage + 1 == stages {
            out.push(weight);
            continue;
        }
        for (next, &connected) in spec.edges[stage][state].iter().enumerate() {
            if connected {
                stack.push((
                    stage + 1,
                    next,
                    weight + spec.stage_weights[stage + 1][next] as f64,
                ));
            }
        }
    }
    out.sort_by(f64::total_cmp);
    out
}

fn weights(sols: &[Solution<TropicalMin>]) -> Vec<f64> {
    sols.iter().map(|s| s.weight.get()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_algorithms_agree_with_brute_force_on_serial_instances(
        spec in serial_spec(5, 5)
    ) {
        let inst = build_serial(&spec);
        let expected = brute_force(&spec);
        prop_assert_eq!(inst.count_solutions() as usize, expected.len());
        for alg in AnyKAlgorithm::ALL {
            let sols: Vec<Solution<TropicalMin>> = ranked_enumerate(&inst, alg).collect();
            let got = weights(&sols);
            prop_assert_eq!(got.len(), expected.len(), "cardinality, {}", alg);
            for (g, e) in got.iter().zip(&expected) {
                prop_assert!((g - e).abs() < 1e-9, "{}: {} vs {}", alg, g, e);
            }
            // Witnesses are unique.
            let mut states: Vec<Vec<NodeId>> = sols.iter().map(|s| s.states.clone()).collect();
            states.sort();
            states.dedup();
            prop_assert_eq!(states.len(), sols.len(), "duplicate witnesses from {}", alg);
        }
        // Top-1 agrees with the plain DP reconstruction.
        if let Some((_, w)) = top1_solution(&inst) {
            prop_assert!((w.get() - expected[0]).abs() < 1e-9);
        } else {
            prop_assert!(expected.is_empty());
        }
    }

    #[test]
    fn all_algorithms_agree_on_random_tree_instances(
        // A random two-level tree: a root stage with `branches` child stages,
        // random states everywhere, random edges root-stage -> each child.
        root_weights in proptest::collection::vec(0u16..100, 1..4),
        branch_specs in proptest::collection::vec(
            (proptest::collection::vec(0u16..100, 1..4), proptest::collection::vec(any::<bool>(), 1..16)),
            1..4
        )
    ) {
        let mut b = TdpBuilder::<TropicalMin>::new();
        let root_stage = b.add_stage_under_root("root", true);
        let roots: Vec<NodeId> = root_weights
            .iter()
            .map(|&w| b.add_state(root_stage.index(), OrderedF64::from(w as f64)))
            .collect();
        for &r in &roots {
            b.connect_root(r);
        }
        for (i, (leaf_weights, adjacency)) in branch_specs.iter().enumerate() {
            let stage = b.add_stage(&format!("leaf{i}"), root_stage, true);
            let leaves: Vec<NodeId> = leaf_weights
                .iter()
                .map(|&w| b.add_state(stage.index(), OrderedF64::from(w as f64)))
                .collect();
            for (j, &r) in roots.iter().enumerate() {
                for (k, &l) in leaves.iter().enumerate() {
                    if adjacency[(j * leaves.len() + k) % adjacency.len()] {
                        b.connect(r, l);
                    }
                }
            }
        }
        let inst = b.build();
        let reference = weights(&ranked_enumerate(&inst, AnyKAlgorithm::Batch).collect::<Vec<_>>());
        prop_assert_eq!(inst.count_solutions() as usize, reference.len());
        for alg in AnyKAlgorithm::ALL {
            let got = weights(&ranked_enumerate(&inst, alg).collect::<Vec<_>>());
            prop_assert_eq!(got.len(), reference.len(), "cardinality, {}", alg);
            for (g, e) in got.iter().zip(&reference) {
                prop_assert!((g - e).abs() < 1e-9, "{}: {} vs {}", alg, g, e);
            }
            // Ranked order.
            for w in got.windows(2) {
                prop_assert!(w[0] <= w[1] + 1e-9);
            }
        }
    }
}

/// Build a random star-shaped instance: one center stage under the root with
/// `branch_specs.len()` leaf branches hanging off it.
fn build_star(
    center_weights: &[u16],
    branch_specs: &[(Vec<u16>, Vec<bool>)],
) -> TdpInstance<TropicalMin> {
    let mut b = TdpBuilder::<TropicalMin>::new();
    let center_stage = b.add_stage_under_root("center", true);
    let centers: Vec<NodeId> = center_weights
        .iter()
        .map(|&w| b.add_state(center_stage.index(), OrderedF64::from(w as f64)))
        .collect();
    for &c in &centers {
        b.connect_root(c);
    }
    for (i, (leaf_weights, adjacency)) in branch_specs.iter().enumerate() {
        let stage = b.add_stage(&format!("leaf{i}"), center_stage, true);
        let leaves: Vec<NodeId> = leaf_weights
            .iter()
            .map(|&w| b.add_state(stage.index(), OrderedF64::from(w as f64)))
            .collect();
        for (j, &c) in centers.iter().enumerate() {
            for (k, &l) in leaves.iter().enumerate() {
                if adjacency[(j * leaves.len() + k) % adjacency.len()] {
                    b.connect(c, l);
                }
            }
        }
    }
    b.build()
}

/// Per-variant weight sequences from the `anyk_part` family plus `anyk_rec`,
/// asserted identical (same multiset, same order) and non-decreasing.
fn assert_variants_agree(inst: &TdpInstance<TropicalMin>, label: &str) {
    let reference: Vec<OrderedF64> = Recursive::new(inst).map(|s| s.weight).collect();
    for w in reference.windows(2) {
        assert!(w[0] <= w[1], "{label}: Recursive not sorted");
    }
    for kind in [
        SuccessorKind::Eager,
        SuccessorKind::Lazy,
        SuccessorKind::All,
        SuccessorKind::Take2,
    ] {
        let got: Vec<OrderedF64> = AnyKPart::new(inst, kind).map(|s| s.weight).collect();
        assert_eq!(got, reference, "{label}: {kind:?} disagrees with Recursive");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Satellite check for the CSR layout: all four `SuccessorKind` variants
    /// and `anyk_rec` emit identical non-decreasing weight sequences on
    /// randomized **star** instances (multi-branch trees — pending-branch
    /// completions in play) and on the chain shape of **cycle-6 workloads**
    /// (the simple-cycle decomposition of §5.3.1 compiles an ℓ-cycle into
    /// path-shaped trees of ℓ stages).
    #[test]
    fn successor_variants_and_rec_agree_on_star_and_cycle_shapes(
        center_weights in proptest::collection::vec(0u16..200, 1..4),
        branch_specs in proptest::collection::vec(
            (proptest::collection::vec(0u16..200, 1..4), proptest::collection::vec(any::<bool>(), 1..16)),
            2..4
        ),
        chain in serial_spec(6, 3)
    ) {
        let star = build_star(&center_weights, &branch_specs);
        assert_variants_agree(&star, "star");
        let cycle_chain = build_serial(&chain);
        assert_variants_agree(&cycle_chain, "cycle-chain");
    }

    /// The flat CSR accessors agree with a hand-built nested-vec oracle on
    /// random serial instances: successor lists are exactly the adjacency
    /// rows restricted to states that can still complete a solution
    /// (build-time pruning compaction), `subtree_opt = 0̄` exactly for the
    /// pruned states, and `branch_opt` (keyed by dense slot id) equals the
    /// minimum choice value of the compacted list.
    #[test]
    fn csr_accessors_agree_with_nested_vec_oracle(spec in serial_spec(5, 5)) {
        let stages = spec.stage_weights.len();
        let sizes: Vec<usize> = spec.stage_weights.iter().map(Vec::len).collect();

        // Oracle pruning for TropicalMin: a state is alive iff some suffix
        // path reaches the last stage (backwards reachability).
        let mut alive: Vec<Vec<bool>> = sizes.iter().map(|&n| vec![false; n]).collect();
        alive[stages - 1] = vec![true; sizes[stages - 1]];
        for i in (0..stages - 1).rev() {
            for a in 0..sizes[i] {
                alive[i][a] = spec.edges[i][a]
                    .iter()
                    .enumerate()
                    .any(|(b, &connected)| connected && alive[i + 1][b]);
            }
        }

        let inst = build_serial(&spec);
        // Recover the NodeIds per stage in insertion order (states were added
        // stage-major in build_serial, after the root node 0).
        let mut next_id = 1u32;
        let ids: Vec<Vec<NodeId>> = sizes
            .iter()
            .map(|&n| (0..n).map(|_| { let id = NodeId(next_id); next_id += 1; id }).collect())
            .collect();

        // Hand-built nested-vec oracle of the *compacted* adjacency.
        for i in 0..stages {
            for a in 0..sizes[i] {
                let nid = ids[i][a];
                prop_assert_eq!(
                    *inst.subtree_opt(nid) != TropicalMin::zero(),
                    alive[i][a],
                    "aliveness of stage {} state {}", i, a
                );
                if i + 1 == stages {
                    continue;
                }
                let oracle: Vec<NodeId> = if alive[i][a] {
                    spec.edges[i][a]
                        .iter()
                        .enumerate()
                        .filter(|&(b, &connected)| connected && alive[i + 1][b])
                        .map(|(b, _)| ids[i + 1][b])
                        .collect()
                } else {
                    Vec::new() // pruned states own empty compacted lists
                };
                prop_assert_eq!(
                    inst.successors(nid, 0),
                    oracle.as_slice(),
                    "successors of stage {} state {}", i, a
                );
                // branch_opt (slot-id keyed) is the min choice value of the
                // compacted list.
                let expected_branch = inst
                    .choices(nid, 0)
                    .map(|(_, v)| v)
                    .min()
                    .unwrap_or_else(TropicalMin::zero);
                prop_assert_eq!(
                    inst.branch_opt(nid, 0).clone(),
                    expected_branch,
                    "branch_opt of stage {} state {}", i, a
                );
            }
        }
        // Root successors: exactly the alive first-stage states.
        let root_oracle: Vec<NodeId> = (0..sizes[0]).filter(|&a| alive[0][a]).map(|a| ids[0][a]).collect();
        prop_assert_eq!(inst.successors(NodeId::ROOT, 0), root_oracle.as_slice());
        // Dense slot ids: exactly one per non-leaf state (incl. root), in order.
        let non_leaf_states = 1 + sizes[..stages - 1].iter().sum::<usize>();
        prop_assert_eq!(inst.num_slot_ids(), non_leaf_states);
    }
}

#[test]
fn take_k_is_a_prefix_of_the_full_enumeration() {
    // Deterministic check that early termination (the any-k use case) yields
    // exactly the prefix of the full ranked output.
    let mut b = TdpBuilder::<TropicalMin>::serial(3);
    let mut prev: Vec<NodeId> = Vec::new();
    for stage in 1..=3usize {
        let ids: Vec<NodeId> = (0..6)
            .map(|i| b.add_state(stage, OrderedF64::from(((i * 7 + stage * 3) % 11) as f64)))
            .collect();
        if stage == 1 {
            for &s in &ids {
                b.connect_root(s);
            }
        } else {
            for (i, &p) in prev.iter().enumerate() {
                for (j, &c) in ids.iter().enumerate() {
                    if (i + j) % 2 == 0 {
                        b.connect(p, c);
                    }
                }
            }
        }
        prev = ids;
    }
    let inst = b.build();
    let full: Vec<f64> = ranked_enumerate(&inst, AnyKAlgorithm::Take2)
        .map(|s| s.weight.get())
        .collect();
    for k in [1usize, 5, 20] {
        let prefix: Vec<f64> = ranked_enumerate(&inst, AnyKAlgorithm::Take2)
            .take(k)
            .map(|s| s.weight.get())
            .collect();
        assert_eq!(prefix, full[..k.min(full.len())].to_vec());
    }
}
