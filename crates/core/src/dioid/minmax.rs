//! The min-max ("bottleneck") dioid.

use super::{Dioid, OrderedF64};

/// The selective dioid `(ℝ±∞, min, max, +∞, −∞)`: a solution's weight is the
/// **maximum** of its input-tuple weights and solutions are ranked by
/// minimising that maximum — the classic bottleneck / minimax objective.
///
/// `max` distributes over `min` (`max(min(x,y), z) = min(max(x,z), max(y,z))`),
/// so Bellman's principle applies and all any-k algorithms work unchanged.
/// This dioid has no `⊗`-inverse, exercising the no-inverse code paths of
/// §6.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinMaxDioid;

impl Dioid for MinMaxDioid {
    type V = OrderedF64;

    fn one() -> Self::V {
        OrderedF64::NEG_INFINITY
    }

    fn zero() -> Self::V {
        OrderedF64::INFINITY
    }

    fn times(a: &Self::V, b: &Self::V) -> Self::V {
        *a.max(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn times_is_max_with_identities() {
        let a = OrderedF64::from(3.0);
        let b = OrderedF64::from(7.0);
        assert_eq!(MinMaxDioid::times(&a, &b), b);
        assert_eq!(MinMaxDioid::times(&MinMaxDioid::one(), &a), a);
        assert_eq!(
            MinMaxDioid::times(&MinMaxDioid::zero(), &a),
            MinMaxDioid::zero()
        );
    }

    #[test]
    fn smaller_bottleneck_ranks_first() {
        assert!(OrderedF64::from(3.0) < OrderedF64::from(7.0));
        assert_eq!(
            MinMaxDioid::plus(&OrderedF64::from(3.0), &OrderedF64::from(7.0)),
            OrderedF64::from(3.0)
        );
    }
}
