//! The Boolean dioid: standard (unranked) query evaluation as a ranking.

use super::Dioid;
use std::cmp::Ordering;

/// A Boolean "weight" with the inverted order `1 ≤ 0` used in §6.4: `true`
/// (the answer exists) ranks ahead of `false`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BoolRank(pub bool);

impl PartialOrd for BoolRank {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BoolRank {
    fn cmp(&self, other: &Self) -> Ordering {
        // true < false : tuples that exist come first, non-existent ones are 0̄.
        other.0.cmp(&self.0)
    }
}

/// The Boolean semiring `({0,1}, ∨, ∧, 0, 1)` with the order inverted so that
/// `∨` is selective-minimum (§6.4).
///
/// Running any any-k algorithm under this dioid performs standard full-query
/// evaluation: every answer has weight `true` and is enumerated before the
/// (absent) `false` ones; priority-queue maintenance degenerates to
/// constant-time work per element, matching the paper's observation that the
/// framework then matches the best known Boolean/full evaluation algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BooleanDioid;

impl Dioid for BooleanDioid {
    type V = BoolRank;

    fn one() -> Self::V {
        BoolRank(true)
    }

    fn zero() -> Self::V {
        BoolRank(false)
    }

    fn times(a: &Self::V, b: &Self::V) -> Self::V {
        BoolRank(a.0 && b.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn true_ranks_before_false() {
        assert!(BoolRank(true) < BoolRank(false));
        assert_eq!(
            BooleanDioid::plus(&BoolRank(true), &BoolRank(false)),
            BoolRank(true)
        );
    }

    #[test]
    fn conjunction_is_times_with_absorbing_false() {
        assert_eq!(
            BooleanDioid::times(&BoolRank(true), &BoolRank(true)),
            BoolRank(true)
        );
        assert_eq!(
            BooleanDioid::times(&BooleanDioid::zero(), &BoolRank(true)),
            BooleanDioid::zero()
        );
    }
}
