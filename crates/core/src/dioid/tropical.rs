//! The tropical min-plus and max-plus dioids.

use super::{Dioid, OrderedF64};
use std::cmp::Ordering;

/// The tropical semiring `(ℝ∞, min, +, ∞, 0)` — the paper's default ranking
/// function (§2.2): a solution's weight is the **sum** of its input-tuple
/// weights and solutions are enumerated in **ascending** weight order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TropicalMin;

impl Dioid for TropicalMin {
    type V = OrderedF64;

    fn one() -> Self::V {
        OrderedF64::ZERO
    }

    fn zero() -> Self::V {
        OrderedF64::INFINITY
    }

    fn times(a: &Self::V, b: &Self::V) -> Self::V {
        // ∞ is absorbing even against -∞ (which is not in the carrier but can
        // sneak in through MaxWeight conversions); keep it absorbing to honour
        // the dioid law rather than producing NaN.
        if !a.is_finite() && a.0 > 0.0 || !b.is_finite() && b.0 > 0.0 {
            OrderedF64::INFINITY
        } else {
            *a + *b
        }
    }

    fn try_divide(a: &Self::V, b: &Self::V) -> Option<Self::V> {
        if a.is_finite() && b.is_finite() {
            Some(*a - *b)
        } else {
            None
        }
    }
}

/// A weight in the max-plus dioid: larger `f64` values rank **earlier**.
///
/// `MaxWeight(x)` compares as the reverse of `x`, so the standard
/// "smallest-first" machinery of the enumerators automatically yields
/// heaviest-first enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MaxWeight(pub OrderedF64);

impl MaxWeight {
    /// Wrap a plain `f64`.
    pub fn new(v: f64) -> Self {
        MaxWeight(OrderedF64::from(v))
    }

    /// The wrapped numeric value.
    pub fn get(self) -> f64 {
        self.0.get()
    }
}

impl From<f64> for MaxWeight {
    fn from(v: f64) -> Self {
        MaxWeight::new(v)
    }
}

impl PartialOrd for MaxWeight {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MaxWeight {
    fn cmp(&self, other: &Self) -> Ordering {
        other.0.cmp(&self.0)
    }
}

/// The max-plus dioid `(ℝ∪{−∞}, max, +, −∞, 0)` (§6.4): ranks the heaviest
/// solutions (e.g. "longest paths") first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TropicalMax;

impl Dioid for TropicalMax {
    type V = MaxWeight;

    fn one() -> Self::V {
        MaxWeight(OrderedF64::ZERO)
    }

    fn zero() -> Self::V {
        MaxWeight(OrderedF64::NEG_INFINITY)
    }

    fn times(a: &Self::V, b: &Self::V) -> Self::V {
        if !a.0.is_finite() && a.0 .0 < 0.0 || !b.0.is_finite() && b.0 .0 < 0.0 {
            MaxWeight(OrderedF64::NEG_INFINITY)
        } else {
            MaxWeight(a.0 + b.0)
        }
    }

    fn try_divide(a: &Self::V, b: &Self::V) -> Option<Self::V> {
        if a.0.is_finite() && b.0.is_finite() {
            Some(MaxWeight(a.0 - b.0))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tropical_min_identities() {
        let x = OrderedF64::from(7.0);
        assert_eq!(TropicalMin::times(&TropicalMin::one(), &x), x);
        assert_eq!(
            TropicalMin::times(&TropicalMin::zero(), &x),
            TropicalMin::zero()
        );
        assert!(TropicalMin::zero() > x);
    }

    #[test]
    fn tropical_min_divide_inverts_times() {
        let a = OrderedF64::from(10.0);
        let b = OrderedF64::from(4.0);
        let prod = TropicalMin::times(&a, &b);
        assert_eq!(TropicalMin::try_divide(&prod, &b), Some(a));
        assert_eq!(TropicalMin::try_divide(&prod, &TropicalMin::zero()), None);
    }

    #[test]
    fn tropical_max_ranks_heaviest_first() {
        let light = MaxWeight::new(1.0);
        let heavy = MaxWeight::new(100.0);
        assert!(heavy < light, "heavier weight must rank earlier");
        assert_eq!(TropicalMax::times(&heavy, &light), MaxWeight::new(101.0));
        assert!(TropicalMax::zero() > heavy);
        assert_eq!(
            TropicalMax::times(&TropicalMax::zero(), &heavy),
            TropicalMax::zero()
        );
    }
}
