//! A totally ordered `f64` wrapper used as the carrier of the tropical dioids.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Neg, Sub};

/// An `f64` with a total order (IEEE-754 `totalOrder`, via [`f64::total_cmp`]).
///
/// The any-k algorithms keep weights in priority queues and sorted
/// structures, which require `Ord`. `OrderedF64` provides that order while
/// staying a plain 8-byte value. `NaN` compares greater than every finite
/// value and `+∞`, so it behaves like an "even worse than 0̄" weight rather
/// than poisoning comparisons.
#[derive(Clone, Copy, Default, PartialEq)]
pub struct OrderedF64(pub f64);

impl OrderedF64 {
    /// Positive infinity — the additive identity 0̄ of [`super::TropicalMin`].
    pub const INFINITY: OrderedF64 = OrderedF64(f64::INFINITY);
    /// Negative infinity — the additive identity 0̄ of [`super::TropicalMax`]'s carrier.
    pub const NEG_INFINITY: OrderedF64 = OrderedF64(f64::NEG_INFINITY);
    /// Zero — the multiplicative identity 1̄ of both tropical dioids.
    pub const ZERO: OrderedF64 = OrderedF64(0.0);

    /// The wrapped `f64`.
    pub fn get(self) -> f64 {
        self.0
    }

    /// True iff the value is finite (not ±∞ and not NaN).
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl fmt::Debug for OrderedF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for OrderedF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        // total_cmp orders -NaN < -inf < ... < +inf < +NaN; we normalise NaN
        // to compare above +inf regardless of sign so that a NaN weight never
        // ranks ahead of a real one.
        match (self.0.is_nan(), other.0.is_nan()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            (false, false) => self.0.total_cmp(&other.0),
        }
    }
}

impl From<f64> for OrderedF64 {
    fn from(v: f64) -> Self {
        OrderedF64(v)
    }
}

impl From<OrderedF64> for f64 {
    fn from(v: OrderedF64) -> Self {
        v.0
    }
}

impl Add for OrderedF64 {
    type Output = OrderedF64;
    fn add(self, rhs: Self) -> Self::Output {
        OrderedF64(self.0 + rhs.0)
    }
}

impl Sub for OrderedF64 {
    type Output = OrderedF64;
    fn sub(self, rhs: Self) -> Self::Output {
        OrderedF64(self.0 - rhs.0)
    }
}

impl Neg for OrderedF64 {
    type Output = OrderedF64;
    fn neg(self) -> Self::Output {
        OrderedF64(-self.0)
    }
}

impl std::hash::Hash for OrderedF64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total_and_numeric() {
        let mut v = [
            OrderedF64::from(3.0),
            OrderedF64::INFINITY,
            OrderedF64::from(-1.5),
            OrderedF64::from(f64::NAN),
            OrderedF64::ZERO,
            OrderedF64::NEG_INFINITY,
        ];
        v.sort();
        assert_eq!(v[0], OrderedF64::NEG_INFINITY);
        assert_eq!(v[1], OrderedF64::from(-1.5));
        assert_eq!(v[2], OrderedF64::ZERO);
        assert_eq!(v[3], OrderedF64::from(3.0));
        assert_eq!(v[4], OrderedF64::INFINITY);
        assert!(v[5].0.is_nan());
    }

    #[test]
    fn nan_sorts_last_regardless_of_sign() {
        assert!(OrderedF64::from(-f64::NAN) > OrderedF64::INFINITY);
        assert!(OrderedF64::from(f64::NAN) > OrderedF64::INFINITY);
    }

    #[test]
    fn arithmetic_passthrough() {
        let a = OrderedF64::from(2.5) + OrderedF64::from(1.5);
        assert_eq!(a, OrderedF64::from(4.0));
        assert_eq!(a - OrderedF64::from(4.0), OrderedF64::ZERO);
        assert_eq!(-OrderedF64::from(2.0), OrderedF64::from(-2.0));
    }
}
