//! Lexicographic ranking as a selective dioid (§2.2, "Generality").
//!
//! Output tuples are compared first on their `R1` component, then `R2`, and
//! so on. Each input tuple of relation `R_j` carries a weight vector that is
//! zero everywhere except at position `j`, `⊗` is element-wise addition, and
//! `⊕` selects the lexicographically smaller vector.

use super::Dioid;
use std::cmp::Ordering;

/// A sparse ℓ-dimensional weight vector ordered lexicographically.
///
/// The representation stores `(position, value)` pairs sorted by position;
/// missing positions are implicitly `0`. This keeps single-relation weights
/// O(1)-sized while `⊗` (vector addition) merges in linear time.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LexVec {
    /// Sorted `(dimension, value)` pairs; values are integer "local" weights
    /// as in the paper's construction (a total order per relation).
    entries: Vec<(u32, i64)>,
    /// True only for the absorbing 0̄ element.
    infinite: bool,
}

impl LexVec {
    /// The multiplicative identity: the all-zero vector.
    pub fn identity() -> Self {
        LexVec::default()
    }

    /// The absorbing 0̄ element (compares greater than every finite vector).
    pub fn infinity() -> Self {
        LexVec {
            entries: Vec::new(),
            infinite: true,
        }
    }

    /// A unit vector: local weight `value` of an input tuple of relation
    /// (dimension) `dim`.
    pub fn unit(dim: u32, value: i64) -> Self {
        LexVec {
            entries: if value == 0 {
                Vec::new()
            } else {
                vec![(dim, value)]
            },
            infinite: false,
        }
    }

    /// The value at dimension `dim` (0 if absent).
    pub fn component(&self, dim: u32) -> i64 {
        self.entries
            .iter()
            .find(|(d, _)| *d == dim)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// True for the absorbing element.
    pub fn is_infinite(&self) -> bool {
        self.infinite
    }

    /// Element-wise addition of two finite vectors.
    fn add(&self, other: &Self) -> Self {
        let mut entries = Vec::with_capacity(self.entries.len() + other.entries.len());
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() && j < other.entries.len() {
            let (da, va) = self.entries[i];
            let (db, vb) = other.entries[j];
            match da.cmp(&db) {
                Ordering::Less => {
                    entries.push((da, va));
                    i += 1;
                }
                Ordering::Greater => {
                    entries.push((db, vb));
                    j += 1;
                }
                Ordering::Equal => {
                    if va + vb != 0 {
                        entries.push((da, va + vb));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        entries.extend_from_slice(&self.entries[i..]);
        entries.extend_from_slice(&other.entries[j..]);
        LexVec {
            entries,
            infinite: false,
        }
    }
}

impl PartialOrd for LexVec {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for LexVec {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.infinite, other.infinite) {
            (true, true) => return Ordering::Equal,
            (true, false) => return Ordering::Greater,
            (false, true) => return Ordering::Less,
            (false, false) => {}
        }
        // Compare dimension by dimension in increasing dimension order;
        // missing entries are zero.
        let (mut i, mut j) = (0, 0);
        loop {
            let a = self.entries.get(i);
            let b = other.entries.get(j);
            match (a, b) {
                (None, None) => return Ordering::Equal,
                (Some(&(_, va)), None) => {
                    // Remaining dims of self vs implicit zeros of other.
                    return va.cmp(&0).then_with(|| {
                        self.entries[i + 1..]
                            .iter()
                            .map(|&(_, v)| v.cmp(&0))
                            .find(|o| *o != Ordering::Equal)
                            .unwrap_or(Ordering::Equal)
                    });
                }
                (None, Some(&(_, vb))) => {
                    return 0.cmp(&vb).then_with(|| {
                        other.entries[j + 1..]
                            .iter()
                            .map(|&(_, v)| 0.cmp(&v))
                            .find(|o| *o != Ordering::Equal)
                            .unwrap_or(Ordering::Equal)
                    });
                }
                (Some(&(da, va)), Some(&(db, vb))) => match da.cmp(&db) {
                    Ordering::Less => {
                        // self has an explicit entry at an earlier dimension,
                        // other implicitly has zero there.
                        match va.cmp(&0) {
                            Ordering::Equal => i += 1,
                            o => return o,
                        }
                    }
                    Ordering::Greater => match 0.cmp(&vb) {
                        Ordering::Equal => j += 1,
                        o => return o,
                    },
                    Ordering::Equal => match va.cmp(&vb) {
                        Ordering::Equal => {
                            i += 1;
                            j += 1;
                        }
                        o => return o,
                    },
                },
            }
        }
    }
}

/// The lexicographic selective dioid over [`LexVec`] weight vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lexicographic;

impl Dioid for Lexicographic {
    type V = LexVec;

    fn one() -> Self::V {
        LexVec::identity()
    }

    fn zero() -> Self::V {
        LexVec::infinity()
    }

    fn times(a: &Self::V, b: &Self::V) -> Self::V {
        if a.infinite || b.infinite {
            LexVec::infinity()
        } else {
            a.add(b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_vectors_compare_lexicographically() {
        // (1, 5) vs (2, 0): first dimension decides.
        let a = Lexicographic::times(&LexVec::unit(0, 1), &LexVec::unit(1, 5));
        let b = LexVec::unit(0, 2);
        assert!(a < b);
        // Equal first dimension: second decides.
        let c = Lexicographic::times(&LexVec::unit(0, 1), &LexVec::unit(1, 3));
        assert!(c < a);
    }

    #[test]
    fn addition_merges_dimensions() {
        let a = Lexicographic::times(&LexVec::unit(0, 2), &LexVec::unit(2, 7));
        assert_eq!(a.component(0), 2);
        assert_eq!(a.component(1), 0);
        assert_eq!(a.component(2), 7);
        let b = Lexicographic::times(&a, &LexVec::unit(0, -2));
        assert_eq!(b.component(0), 0);
    }

    #[test]
    fn infinity_is_absorbing_and_maximal() {
        let x = LexVec::unit(3, -100);
        assert!(LexVec::infinity() > x);
        assert_eq!(
            Lexicographic::times(&LexVec::infinity(), &x),
            LexVec::infinity()
        );
    }

    #[test]
    fn negative_components_rank_before_implicit_zeros() {
        let neg = LexVec::unit(1, -4);
        let zero = LexVec::identity();
        assert!(neg < zero);
        assert!(LexVec::unit(1, 4) > zero);
    }
}
