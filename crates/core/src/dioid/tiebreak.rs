//! Consistent tie-breaking via a product dioid (§6.3).
//!
//! When a cyclic query is decomposed into several trees whose outputs are not
//! disjoint (e.g. PANDA-style decompositions), the UT-DP union enumerator
//! removes duplicates on the fly — which only works with constant delay if
//! duplicates of the same output tuple arrive *consecutively*. The paper
//! guarantees this by extending the ranking function with a second,
//! lexicographic dimension over witness identifiers so that no two *distinct*
//! outputs ever compare equal.
//!
//! [`TieBreak<D>`] wraps any selective dioid `D` with exactly this
//! construction: weights become pairs `(w, id)` compared first on `w` and
//! then on the lexicographic witness id.

use super::Dioid;
use std::cmp::Ordering;
use std::marker::PhantomData;

/// A weight of the base dioid paired with a lexicographic witness identifier.
///
/// The identifier is a sorted list of `(dimension, tuple id)` pairs; `⊗`
/// merges the lists, so the id of a full solution is the (canonically
/// ordered) multiset of its input-tuple identifiers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TieBroken<V> {
    /// The weight under the base dioid.
    pub weight: V,
    /// Sorted `(dimension, identifier)` pairs identifying the witness.
    pub id: Vec<(u32, u64)>,
}

impl<V> TieBroken<V> {
    /// A weight with an empty identifier (used for the dioid identities).
    pub fn bare(weight: V) -> Self {
        TieBroken {
            weight,
            id: Vec::new(),
        }
    }

    /// A weight tagged with a single `(dimension, id)` witness component.
    pub fn tagged(weight: V, dim: u32, id: u64) -> Self {
        TieBroken {
            weight,
            id: vec![(dim, id)],
        }
    }
}

impl<V: Ord> PartialOrd for TieBroken<V> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<V: Ord> Ord for TieBroken<V> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.weight
            .cmp(&other.weight)
            .then_with(|| self.id.cmp(&other.id))
    }
}

/// The tie-breaking product dioid over a base dioid `D` (§6.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TieBreak<D>(PhantomData<D>);

impl<D: Dioid> Dioid for TieBreak<D> {
    type V = TieBroken<D::V>;

    fn one() -> Self::V {
        TieBroken::bare(D::one())
    }

    fn zero() -> Self::V {
        TieBroken::bare(D::zero())
    }

    fn times(a: &Self::V, b: &Self::V) -> Self::V {
        let weight = D::times(&a.weight, &b.weight);
        // Keep 0̄ absorbing: once the base weight collapses to the base 0̄,
        // the witness id no longer matters (the element cannot be part of
        // any solution), so return the canonical 0̄.
        if weight == D::zero() {
            return Self::zero();
        }
        // Merge the two sorted id lists.
        let mut id = Vec::with_capacity(a.id.len() + b.id.len());
        let (mut i, mut j) = (0, 0);
        while i < a.id.len() && j < b.id.len() {
            if a.id[i] <= b.id[j] {
                id.push(a.id[i]);
                i += 1;
            } else {
                id.push(b.id[j]);
                j += 1;
            }
        }
        id.extend_from_slice(&a.id[i..]);
        id.extend_from_slice(&b.id[j..]);
        TieBroken { weight, id }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dioid::{OrderedF64, TropicalMin};

    type T = TieBreak<TropicalMin>;

    #[test]
    fn base_weight_dominates_comparison() {
        let a = TieBroken::tagged(OrderedF64::from(1.0), 0, 99);
        let b = TieBroken::tagged(OrderedF64::from(2.0), 0, 1);
        assert!(a < b);
    }

    #[test]
    fn equal_weights_fall_back_to_witness_id() {
        let a = TieBroken::tagged(OrderedF64::from(5.0), 0, 1);
        let b = TieBroken::tagged(OrderedF64::from(5.0), 0, 2);
        assert!(a < b);
        let c = T::times(&a, &TieBroken::tagged(OrderedF64::ZERO, 1, 7));
        let d = T::times(&a, &TieBroken::tagged(OrderedF64::ZERO, 1, 8));
        assert!(c < d);
    }

    #[test]
    fn times_merges_ids_sorted_and_adds_weights() {
        let a = TieBroken::tagged(OrderedF64::from(1.0), 2, 10);
        let b = TieBroken::tagged(OrderedF64::from(2.0), 0, 4);
        let p = T::times(&a, &b);
        assert_eq!(p.weight, OrderedF64::from(3.0));
        assert_eq!(p.id, vec![(0, 4), (2, 10)]);
    }

    #[test]
    fn identical_witnesses_compare_equal() {
        let a = T::times(
            &TieBroken::tagged(OrderedF64::from(1.0), 0, 4),
            &TieBroken::tagged(OrderedF64::from(2.0), 1, 9),
        );
        let b = T::times(
            &TieBroken::tagged(OrderedF64::from(2.0), 1, 9),
            &TieBroken::tagged(OrderedF64::from(1.0), 0, 4),
        );
        assert_eq!(a, b);
    }
}
