//! The max-times dioid used to simulate bag semantics (§6.4).

use super::Dioid;
use std::cmp::Ordering;

/// A non-negative multiplicity; larger multiplicities rank **earlier**.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Multiplicity(pub f64);

impl Multiplicity {
    /// Construct from a non-negative count/probability. Negative inputs are
    /// clamped to zero (the dioid's 0̄).
    pub fn new(v: f64) -> Self {
        Multiplicity(if v.is_nan() || v < 0.0 { 0.0 } else { v })
    }

    /// The numeric multiplicity.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for Multiplicity {}

impl PartialOrd for Multiplicity {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Multiplicity {
    fn cmp(&self, other: &Self) -> Ordering {
        // Larger multiplicity first.
        other.0.total_cmp(&self.0)
    }
}

/// The dioid `([0,∞), max, ×, 0, 1)` (§6.4).
///
/// If every input tuple's weight is its multiplicity in a bag-semantics
/// relation, the top-ranked answer under `MaxTimes` is the output tuple with
/// the largest multiplicity, and its weight is that multiplicity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaxTimes;

impl Dioid for MaxTimes {
    type V = Multiplicity;

    fn one() -> Self::V {
        Multiplicity(1.0)
    }

    fn zero() -> Self::V {
        Multiplicity(0.0)
    }

    fn times(a: &Self::V, b: &Self::V) -> Self::V {
        Multiplicity(a.0 * b.0)
    }

    fn try_divide(a: &Self::V, b: &Self::V) -> Option<Self::V> {
        if b.0 > 0.0 && a.0.is_finite() && b.0.is_finite() {
            Some(Multiplicity(a.0 / b.0))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_multiplicity_ranks_first() {
        assert!(Multiplicity::new(5.0) < Multiplicity::new(2.0));
        assert!(MaxTimes::zero() > Multiplicity::new(0.001));
    }

    #[test]
    fn product_and_identities() {
        let a = Multiplicity::new(3.0);
        let b = Multiplicity::new(4.0);
        assert_eq!(MaxTimes::times(&a, &b), Multiplicity::new(12.0));
        assert_eq!(MaxTimes::times(&MaxTimes::one(), &a), a);
        assert_eq!(MaxTimes::times(&MaxTimes::zero(), &a), MaxTimes::zero());
    }

    #[test]
    fn negative_input_clamped() {
        assert_eq!(Multiplicity::new(-3.0), MaxTimes::zero());
    }
}
