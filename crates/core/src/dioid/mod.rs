//! Selective dioids — the algebraic structures behind the ranking function.
//!
//! A *selective dioid* (§2.2, Definition 3 of the paper) is a semiring
//! `(W, ⊕, ⊗, 0̄, 1̄)` whose addition `⊕` is *selective*: it always returns one
//! of its operands, and hence induces a total order on `W` via
//! `x ≤ y  ⇔  x ⊕ y = x`.
//!
//! The any-k algorithms only rely on this structure: `⊗` aggregates input
//! weights into a solution weight, and the order induced by `⊕` ranks
//! solutions. We therefore model a dioid as a type implementing [`Dioid`]
//! whose value type `V` carries a total order (`Ord`) that *is* the induced
//! order, with `cmp`-minimal values ranked first.
//!
//! Provided instances (§6.4):
//!
//! | Instance | `(W, ⊕, ⊗, 0̄, 1̄)` | Use |
//! |---|---|---|
//! | [`TropicalMin`] | `(ℝ∞, min, +, ∞, 0)` | sum-of-weights, ascending (default) |
//! | [`TropicalMax`] | `(ℝ∪{−∞}, max, +, −∞, 0)` | heaviest answers first |
//! | [`BooleanDioid`] | `({0,1}, ∨, ∧, 0, 1)` with inverted order | unranked enumeration / Boolean CQs |
//! | [`MaxTimes`] | `([0,∞), max, ×, 0, 1)` | bag-semantics multiplicity ranking |
//! | [`Lexicographic`] | vectors under element-wise `+`, lexicographic order | per-relation lexicographic ranking (§2.2) |
//! | [`TieBreak<D>`] | product of `D` with a lexicographic witness id (§6.3) | consistent tie-breaking for UT-DP duplicate elimination |

mod boolean;
mod lex;
mod maxtimes;
mod minmax;
mod ordered_f64;
mod tiebreak;
mod tropical;

pub use boolean::{BoolRank, BooleanDioid};
pub use lex::{LexVec, Lexicographic};
pub use maxtimes::{MaxTimes, Multiplicity};
pub use minmax::MinMaxDioid;
pub use ordered_f64::OrderedF64;
pub use tiebreak::{TieBreak, TieBroken};
pub use tropical::{MaxWeight, TropicalMax, TropicalMin};

use std::fmt::Debug;

/// A selective dioid over value type [`Dioid::V`].
///
/// The trait is implemented by zero-sized marker types; all operations are
/// associated functions so that instances, enumerators and candidates never
/// need to carry a dioid object around.
///
/// # Laws
///
/// Implementations must satisfy the selective-dioid axioms:
///
/// * `times` is associative with identity [`Dioid::one`];
/// * the order of `V` (its `Ord` impl) is total, [`Dioid::zero`] is the
///   maximum (worst) element, and `one ⊗ x = x`;
/// * `times` is monotone (non-decreasing) in each argument with respect to
///   the order — the distributivity of `⊗` over the selective `⊕`, which is
///   exactly Bellman's principle of optimality (§6.4);
/// * `zero` is absorbing: `times(zero, x) = zero`.
///
/// These laws are exercised by the property tests in
/// `crates/core/tests/dioid_laws.rs`.
pub trait Dioid: Clone + Debug + 'static {
    /// The carrier set `W`. Its `Ord` implementation must be the total order
    /// induced by the selective `⊕` (smallest = best ranked). Values must be
    /// `Send + Sync` so the bottom-up phase can sweep stages with scoped
    /// worker threads (all provided carriers are plain data).
    type V: Clone + Ord + Debug + Send + Sync;

    /// The multiplicative identity `1̄` (the weight of an empty combination).
    fn one() -> Self::V;

    /// The additive identity `0̄` (the "infinitely bad" weight). It must be
    /// the greatest element of the order and absorbing for [`Dioid::times`].
    fn zero() -> Self::V;

    /// The aggregation operator `⊗`.
    fn times(a: &Self::V, b: &Self::V) -> Self::V;

    /// The selective addition `⊕`: returns the better (smaller) operand.
    ///
    /// Provided in terms of the order; implementations rarely override it.
    fn plus(a: &Self::V, b: &Self::V) -> Self::V {
        if a <= b {
            a.clone()
        } else {
            b.clone()
        }
    }

    /// Optional inverse of `⊗` (§6.2): returns `x` such that
    /// `times(b, x) = a`, if the monoid `(W, ⊗, 1̄)` has inverses.
    ///
    /// The default returns `None`; algorithms must not rely on it for
    /// correctness (they fall back to `O(ℓ)` recomputation as discussed in
    /// §6.2), but may use it as a fast path.
    fn try_divide(_a: &Self::V, _b: &Self::V) -> Option<Self::V> {
        None
    }
}

/// Aggregate an iterator of dioid values with `⊗`, starting from `1̄`.
pub fn times_all<D: Dioid>(values: impl IntoIterator<Item = D::V>) -> D::V {
    values
        .into_iter()
        .fold(D::one(), |acc, v| D::times(&acc, &v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plus_is_selective_min() {
        let a = OrderedF64::from(3.0);
        let b = OrderedF64::from(5.0);
        assert_eq!(TropicalMin::plus(&a, &b), a);
        assert_eq!(TropicalMin::plus(&b, &a), a);
        assert_eq!(TropicalMin::plus(&a, &a), a);
    }

    #[test]
    fn times_all_folds_from_one() {
        let vals = [1.0, 2.0, 3.5].map(OrderedF64::from);
        assert_eq!(times_all::<TropicalMin>(vals), OrderedF64::from(6.5));
        let empty: [OrderedF64; 0] = [];
        assert_eq!(times_all::<TropicalMin>(empty), TropicalMin::one());
    }
}
