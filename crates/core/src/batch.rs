//! The `Batch` baseline: materialise every solution, then sort (§4.3, §7).
//!
//! At the T-DP level this corresponds to running the Yannakakis-style
//! bottom-up reduction (already part of [`TdpInstance`] construction),
//! enumerating the full unranked result by backtracking over the pruned
//! instance, and finally sorting by weight. Its time-to-first is therefore
//! `Ω(|out| log |out|)` — the quantity the any-k algorithms beat.

use crate::dioid::Dioid;
use crate::solution::Solution;
use crate::tdp::{NodeId, TdpInstance};

/// Ranked enumeration by full materialisation and sorting.
///
/// The full result is produced lazily on the first call to `next()`, so
/// constructing a `Batch` is free; iterating it pays the entire cost up
/// front, like a blocking sort operator would.
#[derive(Debug)]
pub struct Batch<'a, D: Dioid> {
    inst: &'a TdpInstance<D>,
    sorted: Option<std::vec::IntoIter<Solution<D>>>,
}

impl<'a, D: Dioid> Batch<'a, D> {
    /// Create a batch enumerator over `inst`.
    pub fn new(inst: &'a TdpInstance<D>) -> Self {
        Batch { inst, sorted: None }
    }

    /// Enumerate the full (unranked) result by backtracking over the pruned
    /// instance. Exposed for the experiment harness ("Batch (No sort)" in the
    /// paper's plots) and for output-equality tests.
    pub fn enumerate_unranked(inst: &TdpInstance<D>) -> Vec<Solution<D>> {
        let ell = inst.solution_len();
        let mut out = Vec::new();
        if !inst.has_solution() {
            return out;
        }
        if ell == 0 {
            out.push(Solution::new(D::one(), Vec::new()));
            return out;
        }
        // Iterative backtracking over serial positions. `choice_idx[pos]` is
        // the index of the next successor to try at `pos`.
        let mut states: Vec<NodeId> = Vec::with_capacity(ell);
        let mut weights: Vec<D::V> = Vec::with_capacity(ell);
        let mut choice_idx: Vec<usize> = vec![0; ell];
        let mut pos = 0usize;
        loop {
            let parent_state = match inst.parent_pos(pos) {
                None => NodeId::ROOT,
                Some(p) => states[p],
            };
            let sid = inst.serial_order()[pos];
            let slot = inst.stage(sid).slot_in_parent;
            let succs = inst.successors(parent_state, slot);
            // Successor lists are compacted at build time, so every entry is
            // a live choice; just advance the per-position cursor.
            let idx = choice_idx[pos];
            let found = succs.get(idx).copied();
            choice_idx[pos] = idx + 1;
            match found {
                Some(next_state) => {
                    let w_prev = weights.last().cloned().unwrap_or_else(D::one);
                    weights.push(D::times(&w_prev, inst.weight(next_state)));
                    states.push(next_state);
                    if pos + 1 == ell {
                        out.push(Solution::new(weights[ell - 1].clone(), states.clone()));
                        // Stay at the last position; try its next successor.
                        states.pop();
                        weights.pop();
                    } else {
                        pos += 1;
                        choice_idx[pos] = 0;
                    }
                }
                None => {
                    // Exhausted this position: backtrack.
                    if pos == 0 {
                        break;
                    }
                    pos -= 1;
                    states.pop();
                    weights.pop();
                }
            }
        }
        out
    }

    fn materialise(&mut self) {
        let mut all = Self::enumerate_unranked(self.inst);
        all.sort_by(|a, b| {
            a.weight
                .cmp(&b.weight)
                .then_with(|| a.states.cmp(&b.states))
        });
        self.sorted = Some(all.into_iter());
    }
}

impl<D: Dioid> Iterator for Batch<'_, D> {
    type Item = Solution<D>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.sorted.is_none() {
            self.materialise();
        }
        self.sorted.as_mut().unwrap().next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dioid::{OrderedF64, TropicalMin};
    use crate::tdp::TdpBuilder;

    #[test]
    fn batch_produces_sorted_full_output() {
        let mut b = TdpBuilder::<TropicalMin>::serial(2);
        let a1 = b.add_state(1, 3.0.into());
        let a2 = b.add_state(1, 1.0.into());
        let c1 = b.add_state(2, 10.0.into());
        let c2 = b.add_state(2, 5.0.into());
        for &a in &[a1, a2] {
            b.connect_root(a);
            for &c in &[c1, c2] {
                b.connect(a, c);
            }
        }
        let inst = b.build();
        let weights: Vec<OrderedF64> = Batch::new(&inst).map(|s| s.weight).collect();
        assert_eq!(
            weights,
            vec![
                OrderedF64::from(6.0),
                OrderedF64::from(8.0),
                OrderedF64::from(11.0),
                OrderedF64::from(13.0)
            ]
        );
    }

    #[test]
    fn unranked_enumeration_skips_pruned_branches() {
        let mut b = TdpBuilder::<TropicalMin>::serial(3);
        let a = b.add_state(1, 1.0.into());
        let live = b.add_state(2, 2.0.into());
        let dead = b.add_state(2, 0.1.into());
        let z = b.add_state(3, 4.0.into());
        b.connect_root(a);
        b.connect(a, live);
        b.connect(a, dead);
        b.connect(live, z);
        let inst = b.build();
        let all = Batch::enumerate_unranked(&inst);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].weight, OrderedF64::from(7.0));
    }

    #[test]
    fn batch_on_tree_instance() {
        let mut b = TdpBuilder::<TropicalMin>::new();
        let center = b.add_stage_under_root("c", true);
        let left = b.add_stage("l", center, true);
        let right = b.add_stage("r", center, true);
        let c = b.add_state(center.index(), 0.0.into());
        let l1 = b.add_state(left.index(), 1.0.into());
        let l2 = b.add_state(left.index(), 2.0.into());
        let r1 = b.add_state(right.index(), 10.0.into());
        b.connect_root(c);
        b.connect(c, l1);
        b.connect(c, l2);
        b.connect(c, r1);
        let inst = b.build();
        let weights: Vec<OrderedF64> = Batch::new(&inst).map(|s| s.weight).collect();
        assert_eq!(
            weights,
            vec![OrderedF64::from(11.0), OrderedF64::from(12.0)]
        );
    }

    #[test]
    fn empty_instance_yields_nothing() {
        let inst = TdpBuilder::<TropicalMin>::serial(2).build();
        assert_eq!(Batch::new(&inst).count(), 0);
    }
}
