//! Incremental patching of built T-DP instances (delta ingestion).
//!
//! A built [`TdpInstance`] is normally immutable; re-building one from
//! scratch costs the full compile + bottom-up (`O(ℓn)`), even when an input
//! delta touched a handful of tuples. This module implements the cheap
//! alternative: [`apply_patch`] edits the instance structure in place and
//! **re-sweeps only the dirty cone** of the bottom-up DP — the edited states
//! plus every ancestor whose `π₁` actually changed — instead of re-evaluating
//! all states.
//!
//! ## Retained topology
//!
//! [`TdpBuilder::build`](super::TdpBuilder) compacts pruned states out of the
//! successor CSR, which destroys exactly the information a patch needs: an
//! edge into a pruned state must come back if a later insert makes that state
//! viable again. Instances built with
//! [`TdpBuilder::retain_topology`](super::TdpBuilder::retain_topology) keep
//! the **full** pre-compaction CSR (plus per-node "killed" flags) alongside
//! the compacted one; [`apply_patch`] edits the full CSR, sweeps, and then
//! re-derives the compacted CSR in one `O(E)` pass — enumeration hot loops
//! still only ever see compacted lists.
//!
//! ## The sweep
//!
//! Stages are processed children-first (reverse serial order, root last), so
//! when a dirty state is re-evaluated all of its successors' `π₁` values are
//! final. Re-evaluation uses the same arithmetic as the build-time bottom-up
//! phase — `⊕` over each full successor row (states with `π₁ = 0̄` contribute
//! nothing), `⊗` across slots in slot order — so patched values are
//! bit-identical to a from-scratch rebuild over the same data: `⊕` is
//! selective (order-independent) and the `⊗` fold order per state is fixed
//! by the stage tree, not by successor-list order. Dirtiness propagates to a
//! state's predecessors only when its `π₁` changed, which is what keeps the
//! sweep proportional to the affected cone rather than the instance.
//!
//! Killed states (deleted input tuples) keep `π₁ = 0̄` permanently and are
//! excluded from re-evaluation; their rows and in-edges are dropped from the
//! full CSR so no later patch can resurrect them.

use super::{Node, NodeId, StageId, TdpInstance};
use crate::dioid::Dioid;

/// The full pre-compaction successor topology, retained at build time so
/// patches can re-link edges into states the compaction dropped.
#[derive(Debug, Clone)]
pub(crate) struct RetainedTopology {
    /// Full CSR row offsets per slot id (edges into pruned states included).
    pub(crate) succ_offsets: Vec<u32>,
    /// Full successor lists, contiguous.
    pub(crate) succ_data: Vec<NodeId>,
    /// States killed by patches: permanently `π₁ = 0̄`, never re-evaluated,
    /// dropped from every successor row.
    pub(crate) dead: Vec<bool>,
}

impl RetainedTopology {
    pub(crate) fn new(succ_offsets: Vec<u32>, succ_data: Vec<NodeId>, num_nodes: usize) -> Self {
        RetainedTopology {
            succ_offsets,
            succ_data,
            dead: vec![false; num_nodes],
        }
    }
}

/// A batch of structural edits to a built [`TdpInstance`], applied by
/// [`apply_patch`].
///
/// New states receive ids deterministically: the `i`-th entry of
/// [`TdpPatch::new_nodes`] becomes `NodeId(instance.num_nodes() + i)`
/// ([`TdpPatch::add_node`] hands the id out at queue time), so edges among
/// new states can be queued before the patch is applied.
#[derive(Debug, Clone)]
pub struct TdpPatch<D: Dioid> {
    /// States to append: `(stage, decision weight, payload)`.
    pub new_nodes: Vec<(StageId, D::V, u64)>,
    /// Decisions to add: `(parent state, slot, child state)`. Either side may
    /// be a new state.
    pub add_edges: Vec<(NodeId, u32, NodeId)>,
    /// Decisions to drop: `(parent state, slot, child state)`.
    pub remove_edges: Vec<(NodeId, u32, NodeId)>,
    /// States to kill (deleted input tuples): `π₁` forced to `0̄` forever,
    /// every incident edge dropped.
    pub kill_nodes: Vec<NodeId>,
    /// Payload rewrites `(state, new payload)` — used when a delta compacts
    /// the tuple-id space of surviving input tuples.
    pub payload_updates: Vec<(NodeId, u64)>,
}

impl<D: Dioid> Default for TdpPatch<D> {
    fn default() -> Self {
        Self::new()
    }
}

impl<D: Dioid> TdpPatch<D> {
    /// An empty patch.
    pub fn new() -> Self {
        TdpPatch {
            new_nodes: Vec::new(),
            add_edges: Vec::new(),
            remove_edges: Vec::new(),
            kill_nodes: Vec::new(),
            payload_updates: Vec::new(),
        }
    }

    /// True if applying the patch would change nothing.
    pub fn is_empty(&self) -> bool {
        self.new_nodes.is_empty()
            && self.add_edges.is_empty()
            && self.remove_edges.is_empty()
            && self.kill_nodes.is_empty()
            && self.payload_updates.is_empty()
    }

    /// Queue a new state for `instance` and return the id it **will** have
    /// once the patch is applied (valid immediately for queueing edges).
    pub fn add_node(
        &mut self,
        instance: &TdpInstance<D>,
        stage: StageId,
        weight: D::V,
        payload: u64,
    ) -> NodeId {
        assert!(
            stage != StageId::ROOT && stage.index() < instance.num_stages(),
            "invalid stage {stage:?} for a patched state"
        );
        let id = NodeId((instance.num_nodes() + self.new_nodes.len()) as u32);
        self.new_nodes.push((stage, weight, payload));
        id
    }
}

/// Why [`apply_patch`] refused to run. The instance is left unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatchError {
    /// The instance was built without
    /// [`TdpBuilder::retain_topology`](super::TdpBuilder::retain_topology),
    /// so the pre-compaction successor lists needed for patching are gone.
    TopologyNotRetained,
}

impl std::fmt::Display for PatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PatchError::TopologyNotRetained => write!(
                f,
                "instance was built without retain_topology; \
                 full successor lists are unavailable for patching"
            ),
        }
    }
}

impl std::error::Error for PatchError {}

/// What a patch sweep actually did — the observable cost of the dirty cone.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PatchStats {
    /// States re-evaluated by the dirty sweep (edited + changed ancestors).
    pub nodes_reevaluated: usize,
    /// Total states after the patch.
    pub nodes_total: usize,
    /// Edges in the full retained CSR after the patch.
    pub full_edges: usize,
    /// Edges surviving in the compacted (enumeration-facing) CSR.
    pub live_edges: usize,
}

/// Apply `patch` to `instance` in place: edit the retained full CSR, re-sweep
/// the dirty cone of the bottom-up DP, and re-derive the compacted CSR. See
/// the module docs for the exact semantics and the bit-identity argument.
///
/// On `Err` the instance is unchanged.
///
/// # Panics
/// Panics if the patch references out-of-range states/stages or slots, or if
/// the patched instance would overflow the `u32` slot-id/edge space — the
/// same invariants [`TdpBuilder::build`](super::TdpBuilder::build) asserts.
pub fn apply_patch<D: Dioid>(
    instance: &mut TdpInstance<D>,
    patch: &TdpPatch<D>,
) -> Result<PatchStats, PatchError> {
    if instance.retained.is_none() {
        return Err(PatchError::TopologyNotRetained);
    }
    crate::faults::checkpoint("core.patch");
    let mut retained = instance.retained.take().expect("checked above");
    let zero = D::zero();

    // 1. Payload rewrites (pure metadata; no DP impact).
    for &(n, payload) in &patch.payload_updates {
        instance.nodes[n.index()].payload = payload;
    }

    // 2. Append new states. Slot ids of existing states are unchanged (new
    //    slots go on the end), so queued edge references stay valid.
    let old_num_nodes = instance.nodes.len();
    for (i, (stage, weight, payload)) in patch.new_nodes.iter().enumerate() {
        assert!(
            *stage != StageId::ROOT && stage.index() < instance.stages.len(),
            "invalid stage {stage:?} in patch"
        );
        let id = NodeId((old_num_nodes + i) as u32);
        instance.nodes.push(Node {
            stage: *stage,
            weight: weight.clone(),
            payload: *payload,
        });
        instance.stages[stage.index()].nodes.push(id);
        let slots = instance.stages[stage.index()].children.len();
        let prev = *instance.slot_offsets.last().expect("non-empty") as usize;
        assert!(
            prev + slots <= u32::MAX as usize,
            "patched instance exceeds u32 slot-id space"
        );
        instance.slot_offsets.push((prev + slots) as u32);
        instance.subtree_opt.push(D::zero());
        instance
            .branch_opt
            .extend(std::iter::repeat_with(D::zero).take(slots));
        retained.dead.push(false);
    }
    let num_nodes = instance.nodes.len();
    let num_slots = *instance.slot_offsets.last().expect("non-empty") as usize;

    // 3. Kill states: permanently pruned, excluded from the sweep.
    for &n in &patch.kill_nodes {
        retained.dead[n.index()] = true;
        instance.subtree_opt[n.index()] = D::zero();
    }

    // 4. Rebuild the full CSR with the edge edits applied, seeding the dirty
    //    set with every live state whose successor row changed (plus all new
    //    states). Surviving edges keep their order; additions append in
    //    queue order — successor-list order does not affect DP values (see
    //    module docs). Slot ids are visited in ascending order below, so the
    //    edits are sorted once and merged with cursors instead of per-slot
    //    hash lookups (the lookup would otherwise dominate: every slot of
    //    every state pays it, patch or no patch).
    let mut adds: Vec<(u32, NodeId)> = Vec::with_capacity(patch.add_edges.len());
    for &(parent, slot, child) in &patch.add_edges {
        assert!(
            (slot as usize)
                < instance.stages[instance.nodes[parent.index()].stage.index()]
                    .children
                    .len(),
            "patch edge slot {slot} out of range for {parent:?}"
        );
        adds.push((instance.slot_id(parent, slot), child));
    }
    adds.sort_by_key(|&(d, _)| d);
    let mut removes: Vec<(u32, u32)> = patch
        .remove_edges
        .iter()
        .map(|&(parent, slot, child)| (instance.slot_id(parent, slot), child.0))
        .collect();
    removes.sort_unstable();

    let mut dirty = vec![false; num_nodes];
    dirty[old_num_nodes..num_nodes].fill(true);

    let old_slot_count = retained.succ_offsets.len() - 1;
    let mut full_offsets: Vec<u32> = Vec::with_capacity(num_slots + 1);
    full_offsets.push(0);
    let mut full_data: Vec<NodeId> =
        Vec::with_capacity(retained.succ_data.len() + patch.add_edges.len());
    let mut add_cursor = 0usize;
    let mut rem_cursor = 0usize;
    for (n, dirty_n) in dirty.iter_mut().enumerate() {
        let owner_dead = retained.dead[n];
        let first = instance.slot_offsets[n] as usize;
        let last = instance.slot_offsets[n + 1] as usize;
        for d in first..last {
            let mut changed = false;
            while rem_cursor < removes.len() && (removes[rem_cursor].0 as usize) < d {
                rem_cursor += 1;
            }
            let mut rem_end = rem_cursor;
            while rem_end < removes.len() && removes[rem_end].0 as usize == d {
                rem_end += 1;
            }
            let row_removes = &removes[rem_cursor..rem_end];
            if d < old_slot_count {
                let start = retained.succ_offsets[d] as usize;
                let end = retained.succ_offsets[d + 1] as usize;
                for &t in &retained.succ_data[start..end] {
                    if owner_dead
                        || retained.dead[t.index()]
                        || row_removes.iter().any(|r| r.1 == t.0)
                    {
                        changed = true;
                        continue;
                    }
                    full_data.push(t);
                }
            }
            while add_cursor < adds.len() && (adds[add_cursor].0 as usize) < d {
                add_cursor += 1;
            }
            while add_cursor < adds.len() && adds[add_cursor].0 as usize == d {
                let t = adds[add_cursor].1;
                add_cursor += 1;
                if owner_dead || retained.dead[t.index()] {
                    continue;
                }
                full_data.push(t);
                changed = true;
            }
            if changed && !owner_dead {
                *dirty_n = true;
            }
            full_offsets.push(full_data.len() as u32);
        }
    }
    assert!(
        full_data.len() <= u32::MAX as usize,
        "patched instance exceeds u32 successor-offset space"
    );

    // 5+6. Dirty sweep, children-first (reverse serial order, then the
    //    root): every successor π₁ a re-evaluation reads is already final.
    //    Dirtiness propagates *forward*: a re-evaluation whose π₁ actually
    //    changed marks its state (and its stage) `changed`; when a parent
    //    stage is processed, states that are not structurally dirty scan
    //    their rows into changed child stages for a changed successor — no
    //    reverse CSR is ever materialised. Stages none of whose child stages
    //    changed skip the scan entirely, so untouched branches of the join
    //    tree cost one flag check per state.
    let stage_order: Vec<StageId> = instance
        .serial_order
        .iter()
        .rev()
        .copied()
        .chain(std::iter::once(StageId::ROOT))
        .collect();
    let mut changed = vec![false; num_nodes];
    let mut stage_changed = vec![false; instance.stages.len()];
    let mut nodes_reevaluated = 0usize;
    for sid in stage_order {
        let num_stage_slots = instance.stages[sid.index()].children.len();
        // Slots worth scanning for changed successors: only those whose
        // child stage re-evaluated at least one state to a new π₁.
        let scan_slots: Vec<usize> = (0..num_stage_slots)
            .filter(|&off| stage_changed[instance.stages[sid.index()].children[off].index()])
            .collect();
        for idx in 0..instance.stages[sid.index()].nodes.len() {
            let nid = instance.stages[sid.index()].nodes[idx];
            let n = nid.index();
            if retained.dead[n] {
                continue;
            }
            let first = instance.slot_offsets[n] as usize;
            let needs_eval = dirty[n]
                || scan_slots.iter().any(|&off| {
                    let d = first + off;
                    let start = full_offsets[d] as usize;
                    let end = full_offsets[d + 1] as usize;
                    full_data[start..end].iter().any(|t| changed[t.index()])
                });
            if !needs_eval {
                continue;
            }
            nodes_reevaluated += 1;
            // Same arithmetic as the build-time eval: ⊕ per full row
            // (skipping π₁ = 0̄), ⊗ across slots in slot order.
            let mut total = D::one();
            for off in 0..num_stage_slots {
                let d = first + off;
                let start = full_offsets[d] as usize;
                let end = full_offsets[d + 1] as usize;
                let mut best = D::zero();
                for &t in &full_data[start..end] {
                    let sub = &instance.subtree_opt[t.index()];
                    if *sub == zero {
                        continue;
                    }
                    let value = D::times(&instance.nodes[t.index()].weight, sub);
                    best = D::plus(&best, &value);
                }
                total = D::times(&total, &best);
                instance.branch_opt[d] = best;
            }
            if instance.subtree_opt[n] != total {
                instance.subtree_opt[n] = total;
                changed[n] = true;
                stage_changed[sid.index()] = true;
            }
        }
    }

    // 7. Re-derive the compacted CSR the enumeration hot loops consume, the
    //    same way build-time compaction does: drop rows of pruned owners and
    //    edges into pruned targets (killed states have π₁ = 0̄, so they fall
    //    out here too). Liveness is flattened to a bit per state first — one
    //    sequential pass — so the per-edge filter reads a byte instead of
    //    comparing dioid values at random offsets.
    let live: Vec<bool> = instance.subtree_opt.iter().map(|v| *v != zero).collect();
    let mut compact_offsets: Vec<u32> = Vec::with_capacity(num_slots + 1);
    compact_offsets.push(0);
    let mut compact_data: Vec<NodeId> = Vec::with_capacity(full_data.len());
    for n in 0..num_nodes {
        let keep_owner = live[n];
        let first = instance.slot_offsets[n] as usize;
        let last = instance.slot_offsets[n + 1] as usize;
        for d in first..last {
            if keep_owner {
                let start = full_offsets[d] as usize;
                let end = full_offsets[d + 1] as usize;
                for &t in &full_data[start..end] {
                    if live[t.index()] {
                        compact_data.push(t);
                    }
                }
            }
            compact_offsets.push(compact_data.len() as u32);
        }
    }
    instance.succ_offsets = compact_offsets;
    instance.succ_data = compact_data;

    let stats = PatchStats {
        nodes_reevaluated,
        nodes_total: num_nodes,
        full_edges: full_data.len(),
        live_edges: instance.succ_data.len(),
    };
    retained.succ_offsets = full_offsets;
    retained.succ_data = full_data;
    instance.retained = Some(retained);
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dioid::{OrderedF64, TropicalMin};
    use crate::tdp::{top1_solution, TdpBuilder};

    fn chain_builder() -> TdpBuilder<TropicalMin> {
        let mut b = TdpBuilder::<TropicalMin>::serial(3);
        b.retain_topology(true);
        b
    }

    /// A 3-stage chain: 1 -{a}- 2 -{m1,m2}- 3 -{z}.
    fn chain() -> (TdpInstance<TropicalMin>, [NodeId; 4]) {
        let mut b = chain_builder();
        let a = b.add_state(1, 1.0.into());
        let m1 = b.add_state(2, 10.0.into());
        let m2 = b.add_state(2, 20.0.into());
        let z = b.add_state(3, 100.0.into());
        b.connect_root(a);
        b.connect(a, m1);
        b.connect(a, m2);
        b.connect(m1, z);
        b.connect(m2, z);
        (b.build(), [a, m1, m2, z])
    }

    #[test]
    fn patch_requires_retained_topology() {
        let mut b = TdpBuilder::<TropicalMin>::serial(2);
        let a = b.add_state(1, 1.0.into());
        let z = b.add_state(2, 2.0.into());
        b.connect_root(a);
        b.connect(a, z);
        let mut inst = b.build();
        let patch = TdpPatch::<TropicalMin>::new();
        assert_eq!(
            apply_patch(&mut inst, &patch),
            Err(PatchError::TopologyNotRetained)
        );
    }

    #[test]
    fn empty_patch_changes_nothing() {
        let (mut inst, _) = chain();
        let before = *inst.optimum();
        let edges = inst.num_edges();
        let stats = apply_patch(&mut inst, &TdpPatch::new()).unwrap();
        assert_eq!(stats.nodes_reevaluated, 0);
        assert_eq!(*inst.optimum(), before);
        assert_eq!(inst.num_edges(), edges);
        assert!(inst.supports_patch(), "retained topology survives");
    }

    #[test]
    fn killing_the_best_midpoint_reroutes_the_optimum() {
        let (mut inst, [a, m1, m2, _z]) = chain();
        assert_eq!(*inst.optimum(), OrderedF64::from(111.0));
        let mut patch = TdpPatch::new();
        patch.kill_nodes.push(m1);
        patch.remove_edges.push((a, 0, m1));
        let stats = apply_patch(&mut inst, &patch).unwrap();
        assert_eq!(*inst.optimum(), OrderedF64::from(121.0), "reroutes via m2");
        assert_eq!(inst.count_solutions(), 1);
        assert_eq!(inst.successors(a, 0), &[m2]);
        assert!(stats.nodes_reevaluated >= 2, "a and root re-swept");
        let (states, w) = top1_solution(&inst).unwrap();
        assert_eq!(states[1], m2);
        assert_eq!(w, OrderedF64::from(121.0));
    }

    #[test]
    fn inserting_a_better_midpoint_improves_the_optimum() {
        let (mut inst, [a, _m1, _m2, z]) = chain();
        let mut patch = TdpPatch::new();
        let m3 = patch.add_node(&inst, StageId(2), 2.0.into(), 77);
        patch.add_edges.push((a, 0, m3));
        patch.add_edges.push((m3, 0, z));
        apply_patch(&mut inst, &patch).unwrap();
        assert_eq!(*inst.optimum(), OrderedF64::from(103.0));
        assert_eq!(inst.count_solutions(), 3);
        assert_eq!(inst.payload(m3), 77);
        let (states, _) = top1_solution(&inst).unwrap();
        assert_eq!(states[1], m3);
    }

    #[test]
    fn an_insert_can_resurrect_a_pruned_state() {
        // m2 pruned at build time (no edge to stage 3); the retained full CSR
        // still holds a→m2, so adding m2→z revives the branch.
        let mut b = chain_builder();
        let a = b.add_state(1, 1.0.into());
        let m1 = b.add_state(2, 10.0.into());
        let m2 = b.add_state(2, 5.0.into());
        let z = b.add_state(3, 100.0.into());
        b.connect_root(a);
        b.connect(a, m1);
        b.connect(a, m2);
        b.connect(m1, z);
        let mut inst = b.build();
        assert_eq!(*inst.subtree_opt(m2), TropicalMin::zero(), "pruned");
        assert_eq!(inst.count_solutions(), 1);

        let mut patch = TdpPatch::new();
        patch.add_edges.push((m2, 0, z));
        apply_patch(&mut inst, &patch).unwrap();
        assert_ne!(*inst.subtree_opt(m2), TropicalMin::zero(), "revived");
        assert_eq!(*inst.optimum(), OrderedF64::from(106.0));
        assert_eq!(inst.count_solutions(), 2);
        assert_eq!(inst.successors(a, 0), &[m1, m2], "compaction re-admits m2");
    }

    #[test]
    fn patched_instance_matches_a_from_scratch_rebuild() {
        // Apply a mixed patch (kill + insert + payload rewrite), then build
        // the same final shape from scratch: π₁ values must be bit-identical
        // state-for-state.
        let (mut inst, [a, m1, _m2, z]) = chain();
        let mut patch = TdpPatch::new();
        patch.kill_nodes.push(m1);
        patch.remove_edges.push((a, 0, m1));
        patch.remove_edges.push((m1, 0, z));
        let m3 = patch.add_node(&inst, StageId(2), 7.0.into(), 9);
        patch.add_edges.push((a, 0, m3));
        patch.add_edges.push((m3, 0, z));
        patch.payload_updates.push((z, 42));
        apply_patch(&mut inst, &patch).unwrap();

        let mut b = TdpBuilder::<TropicalMin>::serial(3);
        let a2 = b.add_state(1, 1.0.into());
        let m2b = b.add_state(2, 20.0.into());
        let m3b = b.add_state(2, 7.0.into());
        let z2 = b.add_state(3, 100.0.into());
        b.connect_root(a2);
        b.connect(a2, m2b);
        b.connect(a2, m3b);
        b.connect(m2b, z2);
        b.connect(m3b, z2);
        let rebuilt = b.build();

        assert_eq!(*inst.optimum(), *rebuilt.optimum());
        assert_eq!(inst.count_solutions(), rebuilt.count_solutions());
        assert_eq!(*inst.subtree_opt(a), *rebuilt.subtree_opt(a2));
        assert_eq!(inst.payload(z), 42);
        let (_, w1) = top1_solution(&inst).unwrap();
        let (_, w2) = top1_solution(&rebuilt).unwrap();
        assert_eq!(w1, w2);
    }

    #[test]
    fn killed_states_stay_dead_across_later_patches() {
        let (mut inst, [a, m1, _m2, _z]) = chain();
        let mut p1 = TdpPatch::new();
        p1.kill_nodes.push(m1);
        p1.remove_edges.push((a, 0, m1));
        apply_patch(&mut inst, &p1).unwrap();

        // A later patch trying to link back into the killed state is a no-op.
        let mut p2 = TdpPatch::new();
        p2.add_edges.push((a, 0, m1));
        apply_patch(&mut inst, &p2).unwrap();
        assert_eq!(*inst.subtree_opt(m1), TropicalMin::zero());
        assert_eq!(inst.count_solutions(), 1);
    }

    #[test]
    fn dirty_cone_is_local_in_a_star() {
        // Star: center with two leaf branches. Editing one branch must not
        // re-evaluate the other branch's states.
        let mut b = TdpBuilder::<TropicalMin>::new();
        let center = b.add_stage_under_root("center", true);
        let left = b.add_stage("left", center, true);
        let right = b.add_stage("right", center, true);
        b.retain_topology(true);
        let c = b.add_state(center.index(), 1.0.into());
        let l1 = b.add_state(left.index(), 10.0.into());
        let r: Vec<NodeId> = (0..100)
            .map(|i| b.add_state(right.index(), (100.0 + i as f64).into()))
            .collect();
        b.connect_root(c);
        b.connect(c, l1);
        for &ri in &r {
            b.connect(c, ri);
        }
        let mut inst = b.build();
        assert_eq!(*inst.optimum(), OrderedF64::from(111.0));

        let mut patch = TdpPatch::new();
        let l2 = patch.add_node(&inst, left, 5.0.into(), 0);
        patch.add_edges.push((c, 0, l2));
        let stats = apply_patch(&mut inst, &patch).unwrap();
        assert_eq!(*inst.optimum(), OrderedF64::from(106.0));
        // Only l2, c, and the root are re-evaluated — not the 100 right
        // states.
        assert_eq!(stats.nodes_reevaluated, 3);
    }
}
