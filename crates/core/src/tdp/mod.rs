//! Tree-based Dynamic Programming (T-DP) instances (§3, §5.1).
//!
//! A T-DP instance is a rooted tree of *stages*; each stage holds *states*
//! (nodes), and a *decision* connects a state of a stage to a state of one of
//! its child stages. A **solution** picks exactly one state per (non-root)
//! stage such that every parent–child pair of picked states is connected.
//!
//! Serial DP — the path-query case of §3 and §4 — is the special case where
//! the stage tree is a single chain.
//!
//! Weights live on states: following the paper's equi-join encoding (Fig. 3),
//! the weight of the decision `(s, s')` is the weight of the target state
//! `s'`, so a solution's weight is the `⊗`-aggregate of the weights of its
//! states. The artificial root state `s₀` has weight `1̄`.
//!
//! The instance is immutable after [`TdpBuilder::build`], which also runs the
//! standard DP **bottom-up phase** (Eq. 2 / Eq. 7): it computes, for every
//! state, the weight of its optimal subtree completion and prunes states that
//! cannot reach a full solution (`π₁ = 0̄`).
//!
//! ## Memory layout: CSR with dense slot ids
//!
//! The any-k guarantees bound the *per-result* delay, so the constant factor
//! of every choice-set access dominates real wall-clock. All per-(state,
//! branch) data therefore lives in flat CSR (compressed sparse row) arrays
//! instead of nested vectors:
//!
//! * Every pair `(node, slot)` — a state together with one child stage of its
//!   stage — is assigned a dense **slot id**: `slot_offsets[n]` is the first
//!   slot id of node `n` (one consecutive id per child stage), so
//!   `slot_id(n, s) = slot_offsets[n] + s` and `slot_offsets` has
//!   `num_nodes + 1` entries. Slot ids index both the successor CSR and
//!   `branch_opt`, and give downstream consumers (e.g. the `anyk_part`
//!   successor-structure table) a perfect, hash-free key.
//! * All successor lists live contiguously in one `succ_data: Vec<NodeId>`;
//!   the list of slot id `d` is `succ_data[succ_offsets[d]..succ_offsets[d+1]]`.
//! * `branch_opt: Vec<V>` is keyed by slot id; `subtree_opt: Vec<V>` by node.
//!
//! [`TdpBuilder::build`] additionally **compacts pruned states out of every
//! successor list** after the bottom-up phase: a surviving list contains only
//! states with `π₁ ≠ 0̄` (and pruned states keep empty lists), so
//! [`TdpInstance::choices`] iterates a plain slice — no per-iteration
//! pruning filter, no branch mispredictions in the enumeration hot loops.

mod bottom_up;
mod builder;
mod delta;

pub use bottom_up::top1_solution;
pub use builder::TdpBuilder;
pub use delta::{apply_patch, PatchError, PatchStats, TdpPatch};

/// The bottom-up worker count the next [`TdpBuilder::build`] will use:
/// `ANYK_THREADS` if set (clamped to ≥ 1), else the machine's available
/// parallelism. Exposed so harnesses can *record* the count that was
/// actually in effect without re-implementing the resolution.
pub fn default_bottom_up_threads() -> usize {
    bottom_up::threads_from_env()
}

use crate::dioid::Dioid;

/// Identifier of a stage within a [`TdpInstance`]. Stage `0` is the
/// artificial root stage containing only the start state `s₀`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StageId(pub u32);

impl StageId {
    /// The artificial root stage.
    pub const ROOT: StageId = StageId(0);

    /// The stage id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a state (node) within a [`TdpInstance`]. Node `0` is the
/// artificial start state `s₀`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The artificial start state `s₀`.
    pub const ROOT: NodeId = NodeId(0);

    /// The node id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A stage of the T-DP problem.
#[derive(Debug, Clone)]
pub struct Stage {
    /// The parent stage (`None` only for the root stage).
    pub parent: Option<StageId>,
    /// Child stages in insertion order; the position of a child in this list
    /// is its *slot*, used to index per-state adjacency lists.
    pub children: Vec<StageId>,
    /// The slot of this stage within its parent's `children` list.
    pub slot_in_parent: u32,
    /// Human-readable label (e.g. the relation/atom this stage encodes).
    pub label: String,
    /// Whether states of this stage carry payloads that belong to the output
    /// witness. Auxiliary stages (e.g. equi-join "value nodes") set this to
    /// `false`.
    pub is_output: bool,
    /// States belonging to this stage.
    pub nodes: Vec<NodeId>,
}

/// A state of the T-DP problem.
#[derive(Debug, Clone)]
pub struct Node<V> {
    /// The stage this state belongs to.
    pub stage: StageId,
    /// The weight of every decision *into* this state (Fig. 3 encoding).
    pub weight: V,
    /// Opaque user payload, typically an input-tuple identifier; carried
    /// through to [`crate::Solution`] witnesses.
    pub payload: u64,
}

/// An immutable T-DP instance, ready for ranked enumeration.
///
/// Construct one with [`TdpBuilder`]. See the module docs for the flat CSR
/// memory layout.
#[derive(Debug, Clone)]
pub struct TdpInstance<D: Dioid> {
    pub(crate) stages: Vec<Stage>,
    pub(crate) nodes: Vec<Node<D::V>>,
    /// Dense slot-id base per node: node `n`'s slots occupy ids
    /// `slot_offsets[n]..slot_offsets[n + 1]` (one per child stage of its
    /// stage). Length `num_nodes + 1`.
    pub(crate) slot_offsets: Vec<u32>,
    /// CSR row offsets into `succ_data`, keyed by slot id. Length
    /// `num_slot_ids + 1`.
    pub(crate) succ_offsets: Vec<u32>,
    /// All successor lists, contiguous. After [`TdpBuilder::build`] these
    /// contain only unpruned states (and pruned states own empty lists).
    pub(crate) succ_data: Vec<NodeId>,
    /// `π₁(s)`: weight of the optimal subtree completion rooted at `s`
    /// (excluding `s`'s own weight). `0̄` for pruned states. Keyed by node.
    pub(crate) subtree_opt: Vec<D::V>,
    /// `branch_opt[slot_id]`: optimal completion restricted to one branch,
    /// i.e. `min over successors t of (w(t) ⊗ π₁(t))`. Keyed by slot id.
    pub(crate) branch_opt: Vec<D::V>,
    /// Non-root stages serialised so that every parent precedes its children
    /// (§5.1 "tree order"). Position `j` (0-based) of this list is the
    /// "serial position `j+1`" of the paper.
    pub(crate) serial_order: Vec<StageId>,
    /// For each serial position (0-based, aligned with `serial_order`): the
    /// serial position of the parent stage, or `None` if the parent is the
    /// root stage.
    pub(crate) parent_pos: Vec<Option<usize>>,
    /// For each serial position `j`: the "pending branches" used to complete
    /// a prefix of positions `< j` optimally — pairs `(prefix position,
    /// slot)` of branches that hang off the prefix but are not covered by the
    /// subtree of the stage at position `j` (see `anyk_part`).
    pub(crate) pending: Vec<Vec<(Option<usize>, u32)>>,
    /// The full pre-compaction successor topology, kept only when the
    /// builder was asked to [`TdpBuilder::retain_topology`] — required by
    /// [`apply_patch`] (delta ingestion). `None` for ordinary instances.
    pub(crate) retained: Option<delta::RetainedTopology>,
}

impl<D: Dioid> TdpInstance<D> {
    /// Number of stages, including the artificial root stage.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Number of states, including the artificial start state `s₀`.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of decisions (edges) in the pruned instance: decisions into
    /// pruned states are compacted away by [`TdpBuilder::build`] and not
    /// counted.
    pub fn num_edges(&self) -> usize {
        self.succ_data.len()
    }

    /// The number of non-root stages, i.e. the length ℓ of a solution.
    pub fn solution_len(&self) -> usize {
        self.serial_order.len()
    }

    /// The dense slot id of `(node, slot)` — the key into [`Self::branch_opt`]
    /// and the successor CSR, and a perfect hash for per-choice-set tables.
    #[inline]
    pub fn slot_id(&self, id: NodeId, slot: u32) -> u32 {
        self.slot_offsets[id.index()] + slot
    }

    /// Total number of `(node, slot)` pairs, i.e. the exclusive upper bound
    /// of [`Self::slot_id`].
    pub fn num_slot_ids(&self) -> usize {
        *self.slot_offsets.last().expect("slot_offsets is non-empty") as usize
    }

    /// Stage metadata.
    pub fn stage(&self, id: StageId) -> &Stage {
        &self.stages[id.index()]
    }

    /// State metadata.
    pub fn node(&self, id: NodeId) -> &Node<D::V> {
        &self.nodes[id.index()]
    }

    /// The weight of (every decision into) state `id`.
    #[inline]
    pub fn weight(&self, id: NodeId) -> &D::V {
        &self.nodes[id.index()].weight
    }

    /// The payload of state `id`.
    pub fn payload(&self, id: NodeId) -> u64 {
        self.nodes[id.index()].payload
    }

    /// `π₁(s)`: the weight of the best completion of the subtree below `s`
    /// (not including `s`'s own weight). Equals `0̄` iff `s` was pruned by the
    /// bottom-up phase, i.e. cannot be part of any solution.
    #[inline]
    pub fn subtree_opt(&self, id: NodeId) -> &D::V {
        &self.subtree_opt[id.index()]
    }

    /// The optimal completion of the branch `slot` of state `id`.
    #[inline]
    pub fn branch_opt(&self, id: NodeId, slot: u32) -> &D::V {
        &self.branch_opt[self.slot_id(id, slot) as usize]
    }

    /// Successor states of `id` in the `slot`-th child stage of its stage.
    ///
    /// After [`TdpBuilder::build`] the returned slice contains only unpruned
    /// states; pruned states have empty successor lists.
    #[inline]
    pub fn successors(&self, id: NodeId, slot: u32) -> &[NodeId] {
        let d = self.slot_id(id, slot) as usize;
        &self.succ_data[self.succ_offsets[d] as usize..self.succ_offsets[d + 1] as usize]
    }

    /// The stages in serial (parents-first) order, excluding the root stage.
    pub fn serial_order(&self) -> &[StageId] {
        &self.serial_order
    }

    /// For serial position `pos` (0-based), the serial position of the parent
    /// stage, or `None` if the parent is the root stage.
    pub fn parent_pos(&self, pos: usize) -> Option<usize> {
        self.parent_pos[pos]
    }

    /// The weight of the overall optimal solution, or `0̄` if the instance has
    /// no solution.
    pub fn optimum(&self) -> &D::V {
        self.subtree_opt(NodeId::ROOT)
    }

    /// True iff the instance has at least one solution.
    pub fn has_solution(&self) -> bool {
        *self.optimum() != D::zero()
    }

    /// The value of the choice `(s → t)`: `w(t) ⊗ π₁(t)` (the best solution
    /// weight of the branch through `t`). `0̄` if `t` is pruned.
    #[inline]
    pub fn choice_value(&self, target: NodeId) -> D::V {
        D::times(self.weight(target), self.subtree_opt(target))
    }

    /// Iterate over the `(successor, choice value)` pairs of the choice set
    /// `Choices(s, slot)`. Successor lists are compacted at build time, so no
    /// per-iteration pruning filter is needed.
    pub fn choices(&self, id: NodeId, slot: u32) -> impl Iterator<Item = (NodeId, D::V)> + '_ {
        self.successors(id, slot)
            .iter()
            .map(move |&t| (t, self.choice_value(t)))
    }

    /// Count the total number of solutions by stage-wise suffix counting
    /// (exact, without enumerating them). Saturates at `u128::MAX`.
    ///
    /// This is the quantity `Π*(1)` used in the proof of Theorem 11.
    pub fn count_solutions(&self) -> u128 {
        let mut counts: Vec<u128> = vec![0; self.nodes.len()];
        // Process stages children-first (reverse serial order), ending with
        // the root stage; compacted successor lists make pruned branches
        // contribute 0 without any explicit filtering.
        for &sid in self
            .serial_order
            .iter()
            .rev()
            .chain(std::iter::once(&StageId::ROOT))
        {
            let stage = &self.stages[sid.index()];
            let num_slots = stage.children.len();
            for &nid in &stage.nodes {
                let mut total: u128 = 1;
                for slot in 0..num_slots {
                    let branch: u128 = self
                        .successors(nid, slot as u32)
                        .iter()
                        .map(|t| counts[t.index()])
                        .fold(0u128, |a, b| a.saturating_add(b));
                    total = total.saturating_mul(branch);
                }
                counts[nid.index()] = total;
            }
        }
        counts[NodeId::ROOT.index()]
    }

    /// The "pending branches" of serial position `pos` (see the module docs
    /// of [`crate::anyk_part`]).
    pub(crate) fn pending_branches(&self, pos: usize) -> &[(Option<usize>, u32)] {
        &self.pending[pos]
    }

    /// True if this instance retained its full pre-compaction topology and
    /// can therefore be edited with [`apply_patch`].
    pub fn supports_patch(&self) -> bool {
        self.retained.is_some()
    }

    /// Approximate heap bytes of the retained full topology (0 for ordinary
    /// instances) — the memory cost of keeping an instance patchable.
    pub fn retained_topology_bytes(&self) -> usize {
        self.retained.as_ref().map_or(0, |r| {
            r.succ_offsets.len() * std::mem::size_of::<u32>()
                + r.succ_data.len() * std::mem::size_of::<NodeId>()
                + r.dead.len()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dioid::{OrderedF64, TropicalMin};

    fn cartesian_3() -> TdpInstance<TropicalMin> {
        let mut b = TdpBuilder::<TropicalMin>::serial(3);
        let s1: Vec<_> = [1.0, 2.0, 3.0]
            .iter()
            .map(|&w| b.add_state(1, w.into()))
            .collect();
        let s2: Vec<_> = [10.0, 20.0, 30.0]
            .iter()
            .map(|&w| b.add_state(2, w.into()))
            .collect();
        let s3: Vec<_> = [100.0, 200.0, 300.0]
            .iter()
            .map(|&w| b.add_state(3, w.into()))
            .collect();
        for &a in &s1 {
            b.connect_root(a);
        }
        for &a in &s1 {
            for &c in &s2 {
                b.connect(a, c);
            }
        }
        for &a in &s2 {
            for &c in &s3 {
                b.connect(a, c);
            }
        }
        b.build()
    }

    #[test]
    fn cartesian_product_bottom_up_optimum() {
        let inst = cartesian_3();
        assert_eq!(inst.solution_len(), 3);
        assert!(inst.has_solution());
        assert_eq!(*inst.optimum(), OrderedF64::from(111.0));
        assert_eq!(inst.count_solutions(), 27);
    }

    #[test]
    fn pruning_removes_dead_states() {
        // Stage 2 state "dead" has no successors in stage 3 → must be pruned.
        let mut b = TdpBuilder::<TropicalMin>::serial(3);
        let a = b.add_state(1, 1.0.into());
        let good = b.add_state(2, 5.0.into());
        let dead = b.add_state(2, 0.5.into());
        let z = b.add_state(3, 7.0.into());
        b.connect_root(a);
        b.connect(a, good);
        b.connect(a, dead);
        b.connect(good, z);
        let inst = b.build();
        assert_eq!(*inst.subtree_opt(dead), TropicalMin::zero());
        assert_eq!(*inst.optimum(), OrderedF64::from(13.0));
        assert_eq!(inst.count_solutions(), 1);
        // Compaction removed the decision into `dead` and emptied its lists.
        assert_eq!(inst.successors(a, 0), &[good]);
        assert_eq!(inst.num_edges(), 3);
    }

    #[test]
    fn star_tree_optimum_multiplies_branches() {
        // Root stage 1 with two child stages 2 and 3 (a "star").
        let mut b = TdpBuilder::<TropicalMin>::new();
        let s1 = b.add_stage_under_root("center", true);
        let s2 = b.add_stage("left", s1, true);
        let s3 = b.add_stage("right", s1, true);
        let c = b.add_state(s1.index(), 1.0.into());
        let l1 = b.add_state(s2.index(), 10.0.into());
        let l2 = b.add_state(s2.index(), 20.0.into());
        let r1 = b.add_state(s3.index(), 100.0.into());
        b.connect_root(c);
        b.connect(c, l1);
        b.connect(c, l2);
        b.connect(c, r1);
        let inst = b.build();
        assert_eq!(*inst.optimum(), OrderedF64::from(111.0));
        assert_eq!(inst.count_solutions(), 2);
    }

    #[test]
    fn empty_instance_has_no_solution() {
        let b = TdpBuilder::<TropicalMin>::serial(2);
        let inst = b.build();
        assert!(!inst.has_solution());
        assert_eq!(inst.count_solutions(), 0);
    }

    #[test]
    fn slot_ids_are_dense_and_per_node_contiguous() {
        let mut b = TdpBuilder::<TropicalMin>::new();
        let center = b.add_stage_under_root("center", true);
        let _left = b.add_stage("left", center, true);
        let _right = b.add_stage("right", center, true);
        let c1 = b.add_state(center.index(), 1.0.into());
        let c2 = b.add_state(center.index(), 2.0.into());
        b.connect_root(c1);
        b.connect_root(c2);
        let inst = b.build();
        // Root has one slot (id 0); each center state has two.
        assert_eq!(inst.slot_id(NodeId::ROOT, 0), 0);
        assert_eq!(inst.slot_id(c1, 0), 1);
        assert_eq!(inst.slot_id(c1, 1), 2);
        assert_eq!(inst.slot_id(c2, 0), 3);
        assert_eq!(inst.slot_id(c2, 1), 4);
        assert_eq!(inst.num_slot_ids(), 5);
    }
}
