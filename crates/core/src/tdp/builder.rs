//! Construction of [`TdpInstance`]s.

use super::{bottom_up, Node, NodeId, Stage, StageId, TdpInstance};
use crate::dioid::Dioid;

/// Builder for [`TdpInstance`]s.
///
/// A builder starts with the artificial root stage (stage `0`) containing the
/// single start state `s₀`. Stages are added under the root or under other
/// stages, states are added to stages, and decisions connect states of a
/// stage to states of one of its child stages. [`TdpBuilder::build`] freezes
/// the instance and runs the DP bottom-up phase.
///
/// Decisions are accumulated in one flat `(parent, slot, child)` list — no
/// per-state adjacency vectors — and scattered into the successor CSR by a
/// counting sort at [`TdpBuilder::build`] time. Adding a state and adding a
/// decision are therefore both amortised `O(1)` pushes into flat memory,
/// which keeps the `O(ℓn)` equi-join compilation allocation-light.
#[derive(Debug, Clone)]
pub struct TdpBuilder<D: Dioid> {
    stages: Vec<Stage>,
    nodes: Vec<Node<D::V>>,
    /// All decisions in insertion order: `(parent node, slot, child node)`.
    edges: Vec<(NodeId, u32, NodeId)>,
    /// Keep the full pre-compaction successor CSR on the built instance so
    /// it can be edited with [`crate::tdp::apply_patch`].
    retain_topology: bool,
}

impl<D: Dioid> Default for TdpBuilder<D> {
    fn default() -> Self {
        Self::new()
    }
}

impl<D: Dioid> TdpBuilder<D> {
    /// A builder with only the artificial root stage and start state `s₀`.
    pub fn new() -> Self {
        let root_stage = Stage {
            parent: None,
            children: Vec::new(),
            slot_in_parent: 0,
            label: "s0".to_string(),
            is_output: false,
            nodes: vec![NodeId::ROOT],
        };
        let root_node = Node {
            stage: StageId::ROOT,
            weight: D::one(),
            payload: u64::MAX,
        };
        TdpBuilder {
            stages: vec![root_stage],
            nodes: vec![root_node],
            edges: Vec::new(),
            retain_topology: false,
        }
    }

    /// Ask [`TdpBuilder::build`] to keep the full pre-compaction successor
    /// topology on the instance, enabling in-place delta maintenance via
    /// [`crate::tdp::apply_patch`] at the cost of one extra CSR copy
    /// (`O(E)` memory). Off by default.
    pub fn retain_topology(&mut self, retain: bool) {
        self.retain_topology = retain;
    }

    /// A builder for a *serial* (path-shaped) problem with `len` stages
    /// chained under the root: stage `i`'s parent is stage `i − 1`.
    ///
    /// This models the path queries of §3/§4; stage indices `1..=len` can be
    /// passed directly to [`TdpBuilder::add_state`].
    pub fn serial(len: usize) -> Self {
        let mut b = Self::new();
        let mut parent = StageId::ROOT;
        for i in 1..=len {
            parent = b.add_stage(&format!("stage{i}"), parent, true);
        }
        b
    }

    /// Add a stage under `parent` and return its id.
    ///
    /// `is_output` controls whether the stage's states contribute payloads to
    /// solution witnesses (auxiliary "value node" stages pass `false`).
    pub fn add_stage(&mut self, label: &str, parent: StageId, is_output: bool) -> StageId {
        let id = StageId(self.stages.len() as u32);
        let slot = self.stages[parent.index()].children.len() as u32;
        self.stages[parent.index()].children.push(id);
        self.stages.push(Stage {
            parent: Some(parent),
            children: Vec::new(),
            slot_in_parent: slot,
            label: label.to_string(),
            is_output,
            nodes: Vec::new(),
        });
        id
    }

    /// Add an output stage directly under the artificial root stage.
    pub fn add_stage_under_root(&mut self, label: &str, is_output: bool) -> StageId {
        self.add_stage(label, StageId::ROOT, is_output)
    }

    /// Add a state with the given weight to the stage with index `stage`
    /// (counting the root stage as `0`) and return its id.
    ///
    /// # Panics
    /// Panics if `stage` does not exist or is the root stage.
    pub fn add_state(&mut self, stage: usize, weight: D::V) -> NodeId {
        self.add_state_with_payload(stage, weight, 0)
    }

    /// Like [`TdpBuilder::add_state`] but with an explicit payload (typically
    /// an input-tuple identifier).
    pub fn add_state_with_payload(&mut self, stage: usize, weight: D::V, payload: u64) -> NodeId {
        assert!(
            stage > 0 && stage < self.stages.len(),
            "invalid stage index {stage}"
        );
        let id = NodeId(self.nodes.len() as u32);
        let stage_id = StageId(stage as u32);
        self.nodes.push(Node {
            stage: stage_id,
            weight,
            payload,
        });
        self.stages[stage].nodes.push(id);
        id
    }

    /// Connect two states with a decision. `child`'s stage must be a child of
    /// `parent`'s stage.
    ///
    /// # Panics
    /// Panics if the stages are not in a parent–child relationship.
    pub fn connect(&mut self, parent: NodeId, child: NodeId) {
        let p_stage = self.nodes[parent.index()].stage;
        let c_stage = self.nodes[child.index()].stage;
        let slot = self.stages[p_stage.index()]
            .children
            .iter()
            .position(|&s| s == c_stage)
            .unwrap_or_else(|| {
                panic!(
                    "stage {:?} ({}) is not a child of stage {:?} ({})",
                    c_stage,
                    self.stages[c_stage.index()].label,
                    p_stage,
                    self.stages[p_stage.index()].label
                )
            });
        self.edges.push((parent, slot as u32, child));
    }

    /// Connect the artificial start state `s₀` to a state whose stage is a
    /// direct child of the root stage.
    pub fn connect_root(&mut self, child: NodeId) {
        self.connect(NodeId::ROOT, child);
    }

    /// Declare that `node` (in a leaf stage) can terminate a solution.
    ///
    /// In this crate's encoding every state of a leaf stage implicitly
    /// connects to the terminal state with weight `1̄`, so this is a
    /// validation aid only: it panics if the node's stage is not a leaf,
    /// catching mis-built instances early.
    pub fn connect_terminal(&mut self, node: NodeId) {
        let stage = self.nodes[node.index()].stage;
        assert!(
            self.stages[stage.index()].children.is_empty(),
            "connect_terminal called on node of non-leaf stage {}",
            self.stages[stage.index()].label
        );
    }

    /// Number of states added so far (including `s₀`).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of stages added so far (including the root stage).
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Freeze the instance: flatten the adjacency into CSR, compute the
    /// serial stage order, run the DP bottom-up phase (pruning + `π₁`), and
    /// compact pruned states out of every successor list.
    ///
    /// The bottom-up phase sweeps large stages with a scoped worker pool
    /// sized by the `ANYK_THREADS` environment variable (default: available
    /// parallelism); see [`TdpBuilder::build_with_threads`] for an explicit
    /// count. The result is bit-identical for every worker count.
    pub fn build(self) -> TdpInstance<D> {
        self.build_with_threads(bottom_up::threads_from_env())
    }

    /// Like [`TdpBuilder::build`] with an explicit bottom-up worker count
    /// (`threads <= 1` forces the serial sweep), independent of the
    /// environment. Useful for deterministic testing of the parallel sweep.
    pub fn build_with_threads(self, threads: usize) -> TdpInstance<D> {
        let serial_order = serialise_stages(&self.stages);
        let parent_pos = compute_parent_positions(&self.stages, &serial_order);
        let pending = compute_pending_branches(&self.stages, &serial_order, &parent_pos);

        // Assign dense slot ids: one consecutive id per (node, child stage of
        // its stage) pair. The CSR always reserves one slot id per child
        // stage, including slots no decision ever targeted.
        let num_nodes = self.nodes.len();
        let mut slot_offsets: Vec<u32> = Vec::with_capacity(num_nodes + 1);
        let mut total_slots = 0usize;
        for node in &self.nodes {
            slot_offsets.push(total_slots as u32);
            total_slots += self.stages[node.stage.index()].children.len();
        }
        assert!(
            total_slots <= u32::MAX as usize,
            "T-DP instance exceeds u32 slot-id space ({total_slots} (node, slot) pairs)"
        );
        slot_offsets.push(total_slots as u32);

        let total_edges = self.edges.len();
        assert!(
            total_edges <= u32::MAX as usize,
            "T-DP instance exceeds u32 successor-offset space ({total_edges} decisions)"
        );
        // Counting sort of the flat decision list into the successor CSR:
        // count per slot id, prefix-sum, then scatter in insertion order
        // (stable, so each successor list keeps its insertion order).
        let mut succ_offsets: Vec<u32> = vec![0; total_slots + 1];
        for &(parent, slot, _) in &self.edges {
            let d = slot_offsets[parent.index()] as usize + slot as usize;
            succ_offsets[d + 1] += 1;
        }
        for i in 0..total_slots {
            succ_offsets[i + 1] += succ_offsets[i];
        }
        let mut succ_data: Vec<NodeId> = vec![NodeId::ROOT; total_edges];
        let mut cursor: Vec<u32> = succ_offsets[..total_slots].to_vec();
        for &(parent, slot, child) in &self.edges {
            let d = slot_offsets[parent.index()] as usize + slot as usize;
            succ_data[cursor[d] as usize] = child;
            cursor[d] += 1;
        }
        drop(cursor);

        let mut instance = TdpInstance {
            stages: self.stages,
            nodes: self.nodes,
            slot_offsets,
            succ_offsets,
            succ_data,
            subtree_opt: Vec::new(),
            branch_opt: Vec::new(),
            serial_order,
            parent_pos,
            pending,
            retained: None,
        };
        bottom_up::run_with_threads(&mut instance, threads);
        if self.retain_topology {
            // Snapshot the full CSR before compaction destroys edges into
            // pruned states — apply_patch needs them to revive such states.
            instance.retained = Some(super::delta::RetainedTopology::new(
                instance.succ_offsets.clone(),
                instance.succ_data.clone(),
                instance.nodes.len(),
            ));
        }
        compact_pruned(&mut instance);
        instance
    }
}

/// Drop every decision into a pruned state (`π₁ = 0̄`), and the entire
/// successor lists of pruned states, rewriting the successor CSR in place.
/// Afterwards [`TdpInstance::choices`] needs no per-iteration filter.
fn compact_pruned<D: Dioid>(instance: &mut TdpInstance<D>) {
    let zero = D::zero();
    let mut write = 0usize;
    let num_nodes = instance.nodes.len();
    // Slot ids are assigned in node order, so walking nodes outer and slots
    // inner visits succ_data strictly left-to-right; `write` never overtakes
    // the read cursor.
    let mut new_offsets: Vec<u32> = Vec::with_capacity(instance.succ_offsets.len());
    new_offsets.push(0);
    for n in 0..num_nodes {
        let keep_owner = instance.subtree_opt[n] != zero;
        let first_slot = instance.slot_offsets[n] as usize;
        let last_slot = instance.slot_offsets[n + 1] as usize;
        for d in first_slot..last_slot {
            if keep_owner {
                let start = instance.succ_offsets[d] as usize;
                let end = instance.succ_offsets[d + 1] as usize;
                for i in start..end {
                    let t = instance.succ_data[i];
                    if instance.subtree_opt[t.index()] != zero {
                        instance.succ_data[write] = t;
                        write += 1;
                    }
                }
            }
            new_offsets.push(write as u32);
        }
    }
    instance.succ_data.truncate(write);
    instance.succ_data.shrink_to_fit();
    instance.succ_offsets = new_offsets;
}

/// Topologically order the non-root stages so that parents come first
/// (depth-first, preserving child insertion order).
fn serialise_stages(stages: &[Stage]) -> Vec<StageId> {
    let mut order = Vec::with_capacity(stages.len().saturating_sub(1));
    let mut stack: Vec<StageId> = stages[StageId::ROOT.index()]
        .children
        .iter()
        .rev()
        .copied()
        .collect();
    while let Some(s) = stack.pop() {
        order.push(s);
        for &c in stages[s.index()].children.iter().rev() {
            stack.push(c);
        }
    }
    order
}

fn compute_parent_positions(stages: &[Stage], serial_order: &[StageId]) -> Vec<Option<usize>> {
    let mut pos_of_stage = vec![usize::MAX; stages.len()];
    for (pos, &sid) in serial_order.iter().enumerate() {
        pos_of_stage[sid.index()] = pos;
    }
    serial_order
        .iter()
        .map(|&sid| {
            let parent = stages[sid.index()]
                .parent
                .expect("non-root stage has a parent");
            if parent == StageId::ROOT {
                None
            } else {
                Some(pos_of_stage[parent.index()])
            }
        })
        .collect()
}

/// For each serial position `j` (0-based), the branches `(prefix position,
/// slot)` that hang off stages strictly before `j` but lead to stages at
/// positions `> j` outside the subtree of position `j`. These are the
/// branches whose optimal completion must be added when scoring an anyK-part
/// candidate that deviates at position `j` (see `anyk_part`).
fn compute_pending_branches(
    stages: &[Stage],
    serial_order: &[StageId],
    parent_pos: &[Option<usize>],
) -> Vec<Vec<(Option<usize>, u32)>> {
    let ell = serial_order.len();
    let mut pending = vec![Vec::new(); ell];
    for (child_pos, &sid) in serial_order.iter().enumerate() {
        let slot = stages[sid.index()].slot_in_parent;
        let ppos = parent_pos[child_pos];
        // The branch rooted at `child_pos` (hanging off `ppos`) is pending for
        // every deviation position j with ppos < j < child_pos — at such j the
        // branch root has not been expanded yet and is not inside j's subtree
        // (subtrees are contiguous in the DFS serial order).
        let lower = ppos.map(|p| p + 1).unwrap_or(0);
        for entry in &mut pending[lower..child_pos] {
            entry.push((ppos, slot));
        }
    }
    pending
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dioid::TropicalMin;

    #[test]
    fn serial_builder_creates_chain() {
        let b = TdpBuilder::<TropicalMin>::serial(4);
        assert_eq!(b.num_stages(), 5);
        let inst = b.build();
        assert_eq!(inst.solution_len(), 4);
        for pos in 0..4 {
            let expected = if pos == 0 { None } else { Some(pos - 1) };
            assert_eq!(inst.parent_pos(pos), expected);
        }
        // A chain has no pending branches anywhere.
        for pos in 0..4 {
            assert!(inst.pending_branches(pos).is_empty());
        }
    }

    #[test]
    fn star_tree_has_pending_branches() {
        // Root stage "center" with three leaf children. Serial order:
        // center(0), a(1), b(2), c(3). A deviation at position 1 (child `a`)
        // still owes the optimal completions of branches b and c from the
        // center, and a deviation at position 2 owes branch c.
        let mut b = TdpBuilder::<TropicalMin>::new();
        let center = b.add_stage_under_root("center", true);
        let _a = b.add_stage("a", center, true);
        let _bs = b.add_stage("b", center, true);
        let _c = b.add_stage("c", center, true);
        let inst = b.build();
        assert_eq!(inst.solution_len(), 4);
        assert_eq!(inst.pending_branches(0), &[]);
        assert_eq!(inst.pending_branches(1), &[(Some(0), 1), (Some(0), 2)]);
        assert_eq!(inst.pending_branches(2), &[(Some(0), 2)]);
        assert_eq!(inst.pending_branches(3), &[]);
    }

    #[test]
    #[should_panic(expected = "is not a child of stage")]
    fn connecting_unrelated_stages_panics() {
        let mut b = TdpBuilder::<TropicalMin>::serial(3);
        let a = b.add_state(1, 1.0.into());
        let c = b.add_state(3, 1.0.into());
        b.connect(a, c);
    }

    #[test]
    #[should_panic(expected = "non-leaf stage")]
    fn connect_terminal_rejects_inner_stage() {
        let mut b = TdpBuilder::<TropicalMin>::serial(2);
        let a = b.add_state(1, 1.0.into());
        b.connect_terminal(a);
    }

    #[test]
    fn deep_tree_serialisation_is_depth_first() {
        let mut b = TdpBuilder::<TropicalMin>::new();
        let s1 = b.add_stage_under_root("s1", true);
        let s2 = b.add_stage("s2", s1, true);
        let s3 = b.add_stage("s3", s1, true);
        let s4 = b.add_stage("s4", s2, true);
        let inst = b.build();
        assert_eq!(inst.serial_order(), &[s1, s2, s4, s3]);
        // Deviating at s2 (pos 1) or s4 (pos 2) owes the s3 branch of s1.
        assert_eq!(inst.pending_branches(1), &[(Some(0), 1)]);
        assert_eq!(inst.pending_branches(2), &[(Some(0), 1)]);
        assert_eq!(inst.pending_branches(3), &[]);
    }
}
