//! The standard DP bottom-up phase (Eq. 2 for serial DP, Eq. 7 for T-DP).
//!
//! Processes stages children-first and computes for every state `s`
//!
//! * `branch_opt(s, c) = min over decisions (s, t) into child stage c of
//!   w(t) ⊗ π₁(t)` — the optimal completion of a single branch, and
//! * `π₁(s) = ⊗ over child stages c of branch_opt(s, c)` — the optimal
//!   completion of the whole subtree below `s`.
//!
//! States with `π₁(s) = 0̄` cannot participate in any solution and are
//! treated as pruned by all enumeration algorithms (they are skipped by
//! [`TdpInstance::choices`]). This is the semi-join–style reduction that the
//! paper identifies with Yannakakis' algorithm on the Boolean semiring (§3).
//!
//! ## Parallel sweep
//!
//! Within one stage the per-state computations are independent: state `s`
//! reads only `π₁` of states in **child** stages (finalised in an earlier
//! pass) and writes only its own `subtree_opt[s]` and `branch_opt` slots
//! (disjoint per state, because slot ids partition by node). The sweep of a
//! large stage is therefore chunked across a scoped worker pool
//! (`std::thread::scope`, no external dependencies). The result is
//! **bit-identical** to the serial sweep: each state's value is computed by
//! the same arithmetic over the same operands regardless of which worker runs
//! it. The pool size defaults to the machine's available parallelism and can
//! be overridden with the `ANYK_THREADS` environment variable (or per call
//! via [`crate::tdp::TdpBuilder::build_with_threads`]).

use super::{NodeId, StageId, TdpInstance};
use crate::dioid::Dioid;

/// Stages smaller than this are swept serially even when a worker pool is
/// available: below it, thread spawn/join overhead dominates the sweep.
const PAR_MIN_STAGE: usize = 4096;

/// The bottom-up worker count: `ANYK_THREADS` if set (values < 1 clamp to 1),
/// else the machine's available parallelism.
pub(crate) fn threads_from_env() -> usize {
    threads_from_value(std::env::var("ANYK_THREADS").ok().as_deref())
}

/// Resolve a worker count from an `ANYK_THREADS`-style setting (split out of
/// [`threads_from_env`] so the clamp itself is unit-testable).
pub(crate) fn threads_from_value(setting: Option<&str>) -> usize {
    match setting.and_then(|s| s.trim().parse::<usize>().ok()) {
        Some(n) => n.max(1),
        None => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
    }
}

/// Raw shared view of the two output buffers, passed to worker threads.
///
/// Safety contract (upheld by [`run_with_threads`]): workers of one stage
/// write disjoint node/slot ranges (each node belongs to exactly one chunk;
/// slot ids are contiguous per node) and read only entries written in
/// *previous* stage passes, after all of that pass's workers joined.
struct Outputs<V> {
    subtree: *mut V,
    branch: *mut V,
}

impl<V> Clone for Outputs<V> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<V> Copy for Outputs<V> {}

// The raw pointers alias a buffer that is only accessed per the disjointness
// contract above; V: Send + Sync is guaranteed by the `Dioid::V` bounds.
unsafe impl<V: Send + Sync> Send for Outputs<V> {}
unsafe impl<V: Send + Sync> Sync for Outputs<V> {}

/// Compute `subtree_opt[nid]` and the `branch_opt` slots of `nid`.
///
/// # Safety
/// `out` must point to buffers of `num_nodes` / `num_slot_ids` initialised
/// values; no other thread may concurrently access `nid`'s entries, and the
/// `subtree` entries of `nid`'s successors must already be finalised.
unsafe fn eval_node<D: Dioid>(
    instance: &TdpInstance<D>,
    out: Outputs<D::V>,
    nid: NodeId,
    num_slots: usize,
) {
    let zero = D::zero();
    let mut total = D::one();
    let first_slot = instance.slot_offsets[nid.index()] as usize;
    for off in 0..num_slots {
        let d = first_slot + off;
        let start = instance.succ_offsets[d] as usize;
        let end = instance.succ_offsets[d + 1] as usize;
        let mut best = D::zero();
        for &t in &instance.succ_data[start..end] {
            let sub = &*out.subtree.add(t.index());
            if *sub == zero {
                continue;
            }
            let value = D::times(&instance.nodes[t.index()].weight, sub);
            best = D::plus(&best, &value);
        }
        total = D::times(&total, &best);
        *out.branch.add(d) = best;
    }
    *out.subtree.add(nid.index()) = total;
}

/// Run the bottom-up phase in place, filling `subtree_opt` and `branch_opt`
/// (the latter keyed by dense slot id, matching the successor CSR), with an
/// explicit worker count (`threads <= 1` means a plain serial sweep). Output
/// is bit-identical for every count.
pub(crate) fn run_with_threads<D: Dioid>(instance: &mut TdpInstance<D>, threads: usize) {
    crate::faults::checkpoint("core.bottom_up");
    let _span = anyk_obs::phase::span(anyk_obs::Phase::BottomUp);
    let num_nodes = instance.nodes.len();
    let mut subtree_opt = vec![D::zero(); num_nodes];
    let mut branch_opt: Vec<D::V> = vec![D::zero(); instance.num_slot_ids()];
    let out = Outputs {
        subtree: subtree_opt.as_mut_ptr(),
        branch: branch_opt.as_mut_ptr(),
    };

    // Children-first traversal: reverse serial order, then the root stage.
    let stage_order: Vec<StageId> = instance
        .serial_order
        .iter()
        .rev()
        .copied()
        .chain(std::iter::once(StageId::ROOT))
        .collect();

    for sid in stage_order {
        let stage = &instance.stages[sid.index()];
        let nodes = &stage.nodes;
        let num_slots = stage.children.len();
        let workers = threads.min(nodes.len() / PAR_MIN_STAGE + 1);
        if workers <= 1 {
            for &nid in nodes {
                // SAFETY: single-threaded sweep; successors live in child
                // stages, finalised by an earlier loop iteration.
                unsafe { eval_node(instance, out, nid, num_slots) };
            }
        } else {
            let chunk_len = nodes.len().div_ceil(workers);
            // SAFETY: chunks partition `stage.nodes`, every node belongs to
            // exactly one stage, and slot ids are contiguous per node — so
            // workers write disjoint entries; reads target child-stage
            // entries finalised before this scope started.
            std::thread::scope(|scope| {
                for chunk in nodes.chunks(chunk_len) {
                    let inst = &*instance;
                    scope.spawn(move || {
                        for &nid in chunk {
                            unsafe { eval_node(inst, out, nid, num_slots) };
                        }
                    });
                }
            });
        }
    }

    instance.subtree_opt = subtree_opt;
    instance.branch_opt = branch_opt;
}

/// Reconstruct the single optimal ("top-1") solution by following optimal
/// decisions top-down, as classic DP would (§3). Returns the states in serial
/// stage order, or `None` if the instance has no solution.
///
/// This is primarily a testing aid: the enumeration algorithms recompute the
/// top-1 solution through their own machinery, and tests check that all of
/// them agree with this direct reconstruction.
pub fn top1_solution<D: Dioid>(instance: &TdpInstance<D>) -> Option<(Vec<NodeId>, D::V)> {
    if !instance.has_solution() {
        return None;
    }
    let ell = instance.solution_len();
    let mut states: Vec<NodeId> = Vec::with_capacity(ell);
    let mut weight = D::one();
    for pos in 0..ell {
        let parent_state = match instance.parent_pos(pos) {
            None => NodeId::ROOT,
            Some(p) => states[p],
        };
        let sid = instance.serial_order[pos];
        let slot = instance.stages[sid.index()].slot_in_parent;
        let (best, _) = instance
            .choices(parent_state, slot)
            .min_by(|a, b| a.1.cmp(&b.1))
            .expect("unpruned state must have at least one choice per slot");
        weight = D::times(&weight, instance.weight(best));
        states.push(best);
    }
    Some((states, weight))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dioid::{OrderedF64, TropicalMin};
    use crate::tdp::TdpBuilder;

    #[test]
    fn top1_matches_example_6() {
        // Example 6/7 of the paper: Cartesian product with weights equal to
        // the tuple labels; the optimum is 1 + 10 + 100 = 111.
        let mut b = TdpBuilder::<TropicalMin>::serial(3);
        let mut per_stage = Vec::new();
        for (stage, weights) in [
            (1usize, [1.0, 2.0, 3.0]),
            (2, [10.0, 20.0, 30.0]),
            (3, [100.0, 200.0, 300.0]),
        ] {
            let ids: Vec<_> = weights
                .iter()
                .map(|&w| b.add_state(stage, w.into()))
                .collect();
            per_stage.push(ids);
        }
        for &a in &per_stage[0] {
            b.connect_root(a);
        }
        for i in 0..2 {
            for &a in &per_stage[i] {
                for &c in &per_stage[i + 1] {
                    b.connect(a, c);
                }
            }
        }
        let inst = b.build();
        let (states, weight) = top1_solution(&inst).unwrap();
        assert_eq!(weight, OrderedF64::from(111.0));
        assert_eq!(states.len(), 3);
        assert_eq!(*inst.weight(states[0]), OrderedF64::from(1.0));
        assert_eq!(*inst.weight(states[1]), OrderedF64::from(10.0));
        assert_eq!(*inst.weight(states[2]), OrderedF64::from(100.0));
    }

    #[test]
    fn pruning_cascades_upwards() {
        // A 3-stage chain where stage 3 is empty: every state must be pruned
        // and there is no solution.
        let mut b = TdpBuilder::<TropicalMin>::serial(3);
        let a = b.add_state(1, 1.0.into());
        let m = b.add_state(2, 2.0.into());
        b.connect_root(a);
        b.connect(a, m);
        let inst = b.build();
        assert!(!inst.has_solution());
        assert_eq!(*inst.subtree_opt(a), TropicalMin::zero());
        assert_eq!(*inst.subtree_opt(m), TropicalMin::zero());
        assert!(top1_solution(&inst).is_none());
    }

    #[test]
    fn branch_opt_is_per_branch_minimum() {
        let mut b = TdpBuilder::<TropicalMin>::new();
        let center = b.add_stage_under_root("center", true);
        let left = b.add_stage("left", center, true);
        let right = b.add_stage("right", center, true);
        let c = b.add_state(center.index(), 0.0.into());
        let l1 = b.add_state(left.index(), 3.0.into());
        let l2 = b.add_state(left.index(), 1.0.into());
        let r1 = b.add_state(right.index(), 5.0.into());
        b.connect_root(c);
        b.connect(c, l1);
        b.connect(c, l2);
        b.connect(c, r1);
        let inst = b.build();
        assert_eq!(*inst.branch_opt(c, 0), OrderedF64::from(1.0));
        assert_eq!(*inst.branch_opt(c, 1), OrderedF64::from(5.0));
        assert_eq!(*inst.subtree_opt(c), OrderedF64::from(6.0));
        assert_eq!(*inst.optimum(), OrderedF64::from(6.0));
    }

    #[test]
    fn threads_setting_parses_and_clamps() {
        // The clamp itself: 0 must never yield 0 workers.
        assert_eq!(threads_from_value(Some("0")), 1);
        assert_eq!(threads_from_value(Some("1")), 1);
        assert_eq!(threads_from_value(Some("8")), 8);
        assert_eq!(threads_from_value(Some(" 3 ")), 3, "whitespace trimmed");
        // Garbage and absence both fall back to available parallelism (>= 1).
        assert!(threads_from_value(Some("lots")) >= 1);
        assert!(threads_from_value(None) >= 1);
    }
}
