//! The anyK-rec algorithm `Recursive` (Algorithm 2, §4.2), generalised to
//! tree-based DP (§5.1).
//!
//! anyK-rec rests on a generalised principle of optimality: if the k-th best
//! solution from a state `s` continues through child `s'` using `s'`'s
//! j-th best subtree solution, then the *next* solution from `s` through `s'`
//! uses `s'`'s (j+1)-st best subtree solution. Every state therefore
//! maintains a **ranked stream** of its subtree solutions, materialised
//! lazily and *shared* among all states that can reach it — this reuse of
//! ranked suffixes is what makes `Recursive` asymptotically faster than
//! sorting for full-result enumeration on some instances (Theorem 11).
//!
//! Following Algorithm 2, the replacement of a popped choice (`next` on the
//! child) is **deferred** until the following solution is requested ("peek
//! instead of popping; the pop happens in the following call"), so producing
//! the top-1 result does not force any deeper rank to be materialised.
//!
//! For a state with several child stages, a subtree solution combines one
//! branch solution per child stage; the combinations are ranked lazily over
//! the Cartesian product of the per-branch streams using the duplicate-free
//! "increment at or after the last non-zero coordinate" frontier scheme —
//! the paper's anyK-part-over-the-product construction specialised to the
//! case where the per-branch streams are already produced in sorted order.

use crate::dioid::Dioid;
use crate::solution::Solution;
use crate::tdp::{NodeId, TdpInstance};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A ranked solution of a single branch `(state, child slot)`: continue into
/// `child` and use that child's `rank`-th subtree solution.
#[derive(Debug, Clone, PartialEq, Eq)]
struct BranchSol<V> {
    /// `w(child) ⊗ (weight of child's rank-th subtree solution)`.
    weight: V,
    child: NodeId,
    rank: u32,
}

impl<V: Ord> PartialOrd for BranchSol<V> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<V: Ord> Ord for BranchSol<V> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.weight
            .cmp(&other.weight)
            .then_with(|| self.child.cmp(&other.child))
            .then_with(|| self.rank.cmp(&other.rank))
    }
}

/// The lazily ranked stream `Π_j(s, c)` of solutions of one branch.
#[derive(Debug)]
struct BranchStream<V> {
    sorted: Vec<BranchSol<V>>,
    frontier: BinaryHeap<Reverse<BranchSol<V>>>,
    /// True if the replacement ("next through the same child") of the most
    /// recently committed element has not been generated yet.
    pending: bool,
}

/// A ranked combination of branch solutions at a multi-child state: one rank
/// per child slot.
#[derive(Debug, Clone, PartialEq, Eq)]
struct MultiSol<V> {
    weight: V,
    ranks: Vec<u32>,
}

impl<V: Ord> PartialOrd for MultiSol<V> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<V: Ord> Ord for MultiSol<V> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.weight
            .cmp(&other.weight)
            .then_with(|| self.ranks.cmp(&other.ranks))
    }
}

/// The lazily ranked stream of *subtree* solutions of a multi-child state.
#[derive(Debug)]
struct MultiStream<V> {
    sorted: Vec<MultiSol<V>>,
    frontier: BinaryHeap<Reverse<MultiSol<V>>>,
    pending: bool,
}

/// The lazily ranked stream of subtree solutions of a state.
#[derive(Debug)]
enum SubtreeStream<V> {
    /// Leaf stage: exactly one (empty) subtree solution of weight `1̄`.
    Leaf,
    /// Exactly one child slot: the subtree stream *is* the branch stream.
    Single,
    /// Two or more child slots: ranked Cartesian product of branch streams.
    Multi(MultiStream<V>),
}

/// Ranked enumeration with the `Recursive` (REA) strategy.
///
/// Construct with [`Recursive::new`] and consume as an [`Iterator`] of
/// [`Solution`]s in non-decreasing weight order.
#[derive(Debug)]
pub struct Recursive<'a, D: Dioid> {
    inst: &'a TdpInstance<D>,
    /// Branch streams, keyed by the instance's dense slot id (lazily
    /// initialised, one flat table instead of per-node vectors).
    branch: Vec<Option<BranchStream<D::V>>>,
    /// Per node: the subtree stream (lazily initialised).
    subtree: Vec<Option<SubtreeStream<D::V>>>,
    next_rank: usize,
    finished: bool,
}

impl<'a, D: Dioid> Recursive<'a, D> {
    /// Create an enumerator over `inst`.
    pub fn new(inst: &'a TdpInstance<D>) -> Self {
        let mut branch = Vec::new();
        branch.resize_with(inst.num_slot_ids(), || None);
        Recursive {
            inst,
            branch,
            subtree: (0..inst.num_nodes()).map(|_| None).collect(),
            next_rank: 0,
            finished: false,
        }
    }

    /// Total number of suffix (branch-stream) elements materialised so far —
    /// the quantity whose sum drives Recursive's amortised TTL (Theorem 11).
    pub fn materialised_suffixes(&self) -> usize {
        self.branch
            .iter()
            .filter_map(|b| b.as_ref())
            .map(|b| b.sorted.len())
            .sum()
    }

    // -- branch streams ----------------------------------------------------

    fn ensure_branch_init(&mut self, node: NodeId, slot: u32) -> usize {
        let d = self.inst.slot_id(node, slot) as usize;
        if self.branch[d].is_some() {
            return d;
        }
        // Choices₁(s): one entry per unpruned successor, at rank 0; the value
        // w(t) ⊗ π₁(t) was already computed by the bottom-up phase.
        let frontier: BinaryHeap<Reverse<BranchSol<D::V>>> = self
            .inst
            .choices(node, slot)
            .map(|(child, value)| {
                Reverse(BranchSol {
                    weight: value,
                    child,
                    rank: 0,
                })
            })
            .collect();
        self.branch[d] = Some(BranchStream {
            sorted: Vec::new(),
            frontier,
            pending: false,
        });
        d
    }

    /// Weight of the `rank`-th solution of branch `(node, slot)`, or `None`
    /// if the branch has fewer solutions. Materialises lazily.
    fn branch_weight(&mut self, node: NodeId, slot: u32, rank: usize) -> Option<D::V> {
        let d = self.ensure_branch_init(node, slot);
        loop {
            // Fast path: already materialised.
            {
                let stream = self.branch[d].as_ref().unwrap();
                if let Some(sol) = stream.sorted.get(rank) {
                    return Some(sol.weight.clone());
                }
            }
            // Deferred replacement of the last committed element (Algorithm 2
            // line 26–31): generate "next through the same child" before the
            // next pop.
            let pending_sol = {
                let stream = self.branch[d].as_mut().unwrap();
                if stream.pending {
                    stream.pending = false;
                    stream.sorted.last().cloned()
                } else {
                    None
                }
            };
            if let Some(last) = pending_sol {
                let next_rank = last.rank + 1;
                let replacement = self
                    .subtree_weight(last.child, next_rank as usize)
                    .map(|w| BranchSol {
                        weight: D::times(self.inst.weight(last.child), &w),
                        child: last.child,
                        rank: next_rank,
                    });
                if let Some(rep) = replacement {
                    let stream = self.branch[d].as_mut().unwrap();
                    stream.frontier.push(Reverse(rep));
                }
            }
            // Commit the next-lightest frontier entry.
            let stream = self.branch[d].as_mut().unwrap();
            match stream.frontier.pop() {
                None => return None,
                Some(Reverse(best)) => {
                    stream.sorted.push(best);
                    stream.pending = true;
                }
            }
        }
    }

    fn branch_sol(&self, node: NodeId, slot: u32, rank: usize) -> &BranchSol<D::V> {
        self.branch[self.inst.slot_id(node, slot) as usize]
            .as_ref()
            .expect("branch stream initialised")
            .sorted
            .get(rank)
            .expect("branch solution materialised")
    }

    // -- subtree streams ---------------------------------------------------

    fn ensure_subtree_init(&mut self, node: NodeId) {
        if self.subtree[node.index()].is_some() {
            return;
        }
        let stage = self.inst.node(node).stage;
        let slots = self.inst.stage(stage).children.len();
        let stream = match slots {
            0 => SubtreeStream::Leaf,
            1 => SubtreeStream::Single,
            _ => {
                // Seed the product frontier with the all-zeros rank vector.
                let mut weight = D::one();
                let mut ok = true;
                for slot in 0..slots {
                    match self.branch_weight(node, slot as u32, 0) {
                        Some(w) => weight = D::times(&weight, &w),
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                let mut frontier = BinaryHeap::new();
                if ok {
                    frontier.push(Reverse(MultiSol {
                        weight,
                        ranks: vec![0; slots],
                    }));
                }
                SubtreeStream::Multi(MultiStream {
                    sorted: Vec::new(),
                    frontier,
                    pending: false,
                })
            }
        };
        self.subtree[node.index()] = Some(stream);
    }

    /// Weight of the `rank`-th subtree solution of `node`, or `None`.
    fn subtree_weight(&mut self, node: NodeId, rank: usize) -> Option<D::V> {
        self.ensure_subtree_init(node);
        match self.subtree[node.index()].as_ref().unwrap() {
            SubtreeStream::Leaf => {
                return if rank == 0 { Some(D::one()) } else { None };
            }
            SubtreeStream::Single => {
                return self.branch_weight(node, 0, rank);
            }
            SubtreeStream::Multi(_) => {}
        }
        loop {
            {
                let SubtreeStream::Multi(m) = self.subtree[node.index()].as_ref().unwrap() else {
                    unreachable!()
                };
                if let Some(sol) = m.sorted.get(rank) {
                    return Some(sol.weight.clone());
                }
            }
            // Deferred successor generation for the last committed element.
            let pending_sol = {
                let SubtreeStream::Multi(m) = self.subtree[node.index()].as_mut().unwrap() else {
                    unreachable!()
                };
                if m.pending {
                    m.pending = false;
                    m.sorted.last().cloned()
                } else {
                    None
                }
            };
            if let Some(last) = pending_sol {
                let successors = self.multi_successors(node, &last);
                let SubtreeStream::Multi(m) = self.subtree[node.index()].as_mut().unwrap() else {
                    unreachable!()
                };
                for s in successors {
                    m.frontier.push(Reverse(s));
                }
            }
            // Commit the next-lightest combination.
            let SubtreeStream::Multi(m) = self.subtree[node.index()].as_mut().unwrap() else {
                unreachable!()
            };
            match m.frontier.pop() {
                None => return None,
                Some(Reverse(best)) => {
                    m.sorted.push(best);
                    m.pending = true;
                }
            }
        }
    }

    /// Duplicate-free successors of a combination in the ranked Cartesian
    /// product: increment coordinate `i` only for `i ≥` the last non-zero
    /// coordinate, so every combination has a unique, lighter predecessor.
    fn multi_successors(&mut self, node: NodeId, last: &MultiSol<D::V>) -> Vec<MultiSol<D::V>> {
        let slots = last.ranks.len();
        let last_nonzero = last.ranks.iter().rposition(|&r| r > 0).unwrap_or(0);
        let mut successors = Vec::new();
        for slot in last_nonzero..slots {
            let mut ranks = last.ranks.clone();
            ranks[slot] += 1;
            // Recompute the combination weight from scratch — no ⊗-inverse
            // required (§6.2), O(number of branches) per successor.
            let mut weight = D::one();
            let mut ok = true;
            for (s, &r) in ranks.iter().enumerate() {
                match self.branch_weight(node, s as u32, r as usize) {
                    Some(w) => weight = D::times(&weight, &w),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                successors.push(MultiSol { weight, ranks });
            }
        }
        successors
    }

    // -- assembly ----------------------------------------------------------

    /// Collect the states of `node`'s `rank`-th subtree solution in serial
    /// (DFS, slot-ordered) stage order, materialising referenced descendant
    /// solutions on demand.
    fn collect_states(&mut self, node: NodeId, rank: usize, out: &mut Vec<NodeId>) {
        // Ensure the solution (and hence its per-branch references) exists.
        let ensured = self.subtree_weight(node, rank);
        debug_assert!(ensured.is_some(), "assembling a non-existent solution");
        let stage = self.inst.node(node).stage;
        let slots = self.inst.stage(stage).children.len();
        if slots == 0 {
            return;
        }
        let ranks: Vec<u32> = if slots == 1 {
            vec![rank as u32]
        } else {
            let SubtreeStream::Multi(m) = self.subtree[node.index()].as_ref().unwrap() else {
                unreachable!()
            };
            m.sorted[rank].ranks.clone()
        };
        for (slot, &r) in ranks.iter().enumerate() {
            // The branch solution is materialised (subtree_weight above
            // guarantees it), so this lookup cannot fail.
            let (child, child_rank) = {
                let sol = self.branch_sol(node, slot as u32, r as usize);
                (sol.child, sol.rank as usize)
            };
            out.push(child);
            self.collect_states(child, child_rank, out);
        }
    }
}

impl<D: Dioid> Iterator for Recursive<'_, D> {
    type Item = Solution<D>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.finished {
            return None;
        }
        if !self.inst.has_solution() {
            self.finished = true;
            return None;
        }
        let rank = self.next_rank;
        match self.subtree_weight(NodeId::ROOT, rank) {
            None => {
                self.finished = true;
                None
            }
            Some(weight) => {
                self.next_rank += 1;
                let mut states = Vec::with_capacity(self.inst.solution_len());
                self.collect_states(NodeId::ROOT, rank, &mut states);
                debug_assert_eq!(states.len(), self.inst.solution_len());
                Some(Solution::new(weight, states))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dioid::{OrderedF64, TropicalMin};
    use crate::tdp::TdpBuilder;

    fn cartesian(per_stage: &[&[f64]]) -> TdpInstance<TropicalMin> {
        let mut b = TdpBuilder::<TropicalMin>::serial(per_stage.len());
        let mut ids: Vec<Vec<NodeId>> = Vec::new();
        for (i, ws) in per_stage.iter().enumerate() {
            ids.push(ws.iter().map(|&w| b.add_state(i + 1, w.into())).collect());
        }
        for &a in &ids[0] {
            b.connect_root(a);
        }
        for i in 0..per_stage.len() - 1 {
            for &a in &ids[i] {
                for &c in &ids[i + 1] {
                    b.connect(a, c);
                }
            }
        }
        b.build()
    }

    #[test]
    fn matches_brute_force_on_cartesian_product() {
        let inst = cartesian(&[
            &[1.0, 2.0, 3.0],
            &[10.0, 20.0, 30.0],
            &[100.0, 200.0, 300.0],
        ]);
        let got: Vec<OrderedF64> = Recursive::new(&inst).map(|s| s.weight).collect();
        let mut expected = Vec::new();
        for a in [1.0, 2.0, 3.0] {
            for b in [10.0, 20.0, 30.0] {
                for c in [100.0, 200.0, 300.0] {
                    expected.push(OrderedF64::from(a + b + c));
                }
            }
        }
        expected.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn example_10_first_solutions() {
        // Figure 4 of the paper: the first few solutions of Example 6.
        let inst = cartesian(&[
            &[1.0, 2.0, 3.0],
            &[10.0, 20.0, 30.0],
            &[100.0, 200.0, 300.0],
        ]);
        let first: Vec<OrderedF64> = Recursive::new(&inst).take(4).map(|s| s.weight).collect();
        assert_eq!(
            first,
            vec![
                OrderedF64::from(111.0),
                OrderedF64::from(112.0),
                OrderedF64::from(113.0),
                OrderedF64::from(121.0)
            ]
        );
    }

    #[test]
    fn top1_does_not_materialise_deep_suffixes() {
        // Producing only the first result must touch one suffix per stage
        // (plus none deeper), not force rank-1/2 solutions anywhere.
        let inst = cartesian(&[&[1.0, 2.0], &[1.0, 2.0], &[1.0, 2.0], &[1.0, 2.0]]);
        let mut rec = Recursive::new(&inst);
        let _ = rec.next().unwrap();
        assert!(
            rec.materialised_suffixes() <= inst.solution_len() + 1,
            "top-1 materialised {} suffixes",
            rec.materialised_suffixes()
        );
    }

    #[test]
    fn star_tree_products_are_ranked_without_duplicates() {
        let mut b = TdpBuilder::<TropicalMin>::new();
        let center = b.add_stage_under_root("center", true);
        let left = b.add_stage("left", center, true);
        let right = b.add_stage("right", center, true);
        let c1 = b.add_state(center.index(), 1.0.into());
        let c2 = b.add_state(center.index(), 5.0.into());
        let ls: Vec<_> = [10.0, 20.0, 30.0]
            .iter()
            .map(|&w| b.add_state(left.index(), w.into()))
            .collect();
        let rs: Vec<_> = [100.0, 200.0]
            .iter()
            .map(|&w| b.add_state(right.index(), w.into()))
            .collect();
        for &c in &[c1, c2] {
            b.connect_root(c);
            for &l in &ls {
                b.connect(c, l);
            }
            for &r in &rs {
                b.connect(c, r);
            }
        }
        let inst = b.build();
        let sols: Vec<_> = Recursive::new(&inst).collect();
        assert_eq!(sols.len(), 12);
        for w in sols.windows(2) {
            assert!(w[0].weight <= w[1].weight);
        }
        let mut witnesses: Vec<Vec<NodeId>> = sols.iter().map(|s| s.states.clone()).collect();
        witnesses.sort();
        witnesses.dedup();
        assert_eq!(witnesses.len(), 12);
    }

    #[test]
    fn weights_match_recomputation() {
        let inst = cartesian(&[&[3.0, 1.0], &[4.0, 2.0], &[9.0, 5.0], &[7.0, 6.0]]);
        for sol in Recursive::new(&inst) {
            assert_eq!(sol.weight, sol.recompute_weight(&inst));
        }
    }

    #[test]
    fn empty_instance_yields_nothing() {
        let inst = TdpBuilder::<TropicalMin>::serial(3).build();
        assert_eq!(Recursive::new(&inst).count(), 0);
    }

    #[test]
    fn suffix_sharing_across_parents() {
        // Two stage-1 states lead to the same stage-2 state: after full
        // enumeration the shared suffix stream must have been materialised
        // only once (2 sorted entries at the shared node's branch, not 4).
        let mut b = TdpBuilder::<TropicalMin>::serial(3);
        let a1 = b.add_state(1, 1.0.into());
        let a2 = b.add_state(1, 2.0.into());
        let shared = b.add_state(2, 5.0.into());
        let c1 = b.add_state(3, 7.0.into());
        let c2 = b.add_state(3, 9.0.into());
        b.connect_root(a1);
        b.connect_root(a2);
        b.connect(a1, shared);
        b.connect(a2, shared);
        b.connect(shared, c1);
        b.connect(shared, c2);
        let inst = b.build();
        let mut rec = Recursive::new(&inst);
        let all: Vec<_> = rec.by_ref().collect();
        assert_eq!(all.len(), 4);
        // Branch stream of `shared` holds its two suffixes exactly once.
        assert_eq!(
            rec.branch[inst.slot_id(shared, 0) as usize]
                .as_ref()
                .unwrap()
                .sorted
                .len(),
            2
        );
    }
}
