//! A no-new-deps failpoint registry for chaos testing the serving stack.
//!
//! Production code is sprinkled with **named sites** — index build, plan
//! compilation, the bottom-up sweep, the paging path — that call
//! [`check`] (fallible paths) or [`checkpoint`] (infallible paths). With no
//! plan installed both are a single relaxed atomic load, so the hooks cost
//! nothing in production. A test installs a [`FaultPlan`] via [`install`],
//! which arms the registry and returns a [`FaultGuard`]; while the guard is
//! alive, hits on planned sites inject a typed error ([`Injected`]) or a
//! panic, on a deterministic schedule ([`Trigger`]).
//!
//! The registry is **global** (hooks live in the bottom of the crate stack
//! and cannot thread a handle through every call), so [`install`] also
//! serialises: a second `install` blocks until the first guard drops. Tests
//! that inject faults therefore never interleave, which keeps hit counting
//! deterministic even under a multi-threaded test harness.
//!
//! Plans can also be described as text — `"engine.compile=error@1"`,
//! `"server.page=panic@3,core.bottom_up=panic"` — via [`FaultPlan::parse`]
//! and the `ANYK_FAULTS` environment variable ([`FaultPlan::from_env`]),
//! so a chaos job can drive the same schedules without recompiling.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

/// The failpoint sites compiled into the workspace, bottom of the stack
/// first. Kept in one place so a chaos suite can iterate over every site.
///
/// * `storage.index_build` — inside `HashIndex::build` (infallible path:
///   error rules are promoted to panics, see [`checkpoint`]).
/// * `core.bottom_up` — start of the bottom-up DP sweep (infallible path).
/// * `engine.compile` — start of plan preparation (fallible).
/// * `engine.page` — per answer pulled inside a cursor page fill
///   (infallible path; a panic here lands mid-stream, mid-page).
/// * `server.open` — session admission, before a cursor is built (fallible).
/// * `server.page` — entry of the service's paging path (fallible).
/// * `net.accept` — after a TCP connection is accepted, before it is handed
///   to a worker (fallible: a fired rule drops the connection).
/// * `net.read` — per socket read inside the server's frame decoder
///   (fallible: a fired rule becomes an I/O error and drops the connection).
/// * `net.write` — per response write on the server side (fallible: ditto).
pub const SITES: [&str; 9] = [
    "storage.index_build",
    "core.bottom_up",
    "engine.compile",
    "engine.page",
    "server.open",
    "server.page",
    "net.accept",
    "net.read",
    "net.write",
];

/// The subset of [`SITES`] hit only by the TCP transport
/// (`anyk_server::net`); in-process serving never reaches them.
pub const NET_SITES: [&str; 3] = ["net.accept", "net.read", "net.write"];

/// What a matched failpoint does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Return [`Injected`] from [`check`] (promoted to a panic at
    /// [`checkpoint`]-only sites, which have no error channel).
    Error,
    /// Panic with a recognisable message. Exercises panic isolation.
    Panic,
}

/// When a rule fires, counted per site from 1 while the plan is installed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Every hit.
    Always,
    /// The `n`-th hit only (1-based); earlier and later hits pass through.
    Nth(u64),
    /// Every hit from the `n`-th on (1-based).
    From(u64),
}

impl Trigger {
    fn fires(self, hit: u64) -> bool {
        match self {
            Trigger::Always => true,
            Trigger::Nth(n) => hit == n,
            Trigger::From(n) => hit >= n,
        }
    }
}

/// A set of failpoint rules: at most one per site (the first rule added for
/// a site wins). Build with the fluent methods or [`FaultPlan::parse`].
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    rules: Vec<(String, FaultAction, Trigger)>,
}

impl FaultPlan {
    /// An empty plan (no site fires).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a rule injecting [`Injected`] at `site` on `trigger`.
    pub fn error(mut self, site: &str, trigger: Trigger) -> Self {
        self.rules
            .push((site.to_string(), FaultAction::Error, trigger));
        self
    }

    /// Add a rule panicking at `site` on `trigger`.
    pub fn panic(mut self, site: &str, trigger: Trigger) -> Self {
        self.rules
            .push((site.to_string(), FaultAction::Panic, trigger));
        self
    }

    /// True when the plan has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    fn rule_for(&self, site: &str) -> Option<(FaultAction, Trigger)> {
        self.rules
            .iter()
            .find(|(s, _, _)| s == site)
            .map(|&(_, a, t)| (a, t))
    }

    /// Parse a comma-separated rule list:
    /// `site=action[@n[+]]` where `action` is `error` or `panic`, `@n`
    /// fires on the n-th hit only, and `@n+` from the n-th hit on (no `@`
    /// means every hit). Example:
    /// `engine.compile=error@1,server.page=panic@3+`.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::new();
        for rule in text.split(',').map(str::trim).filter(|r| !r.is_empty()) {
            let (site, rest) = rule
                .split_once('=')
                .ok_or_else(|| format!("fault rule `{rule}` is missing `=action`"))?;
            let (action_text, trigger) = match rest.split_once('@') {
                None => (rest, Trigger::Always),
                Some((a, n)) => {
                    let (digits, from) = match n.strip_suffix('+') {
                        Some(d) => (d, true),
                        None => (n, false),
                    };
                    let n: u64 = digits
                        .parse()
                        .map_err(|_| format!("fault rule `{rule}` has a bad hit count"))?;
                    if n == 0 {
                        return Err(format!("fault rule `{rule}` hit counts are 1-based"));
                    }
                    (
                        a,
                        if from {
                            Trigger::From(n)
                        } else {
                            Trigger::Nth(n)
                        },
                    )
                }
            };
            let action = match action_text.trim() {
                "error" => FaultAction::Error,
                "panic" => FaultAction::Panic,
                other => return Err(format!("unknown fault action `{other}` in `{rule}`")),
            };
            plan.rules.push((site.trim().to_string(), action, trigger));
        }
        Ok(plan)
    }

    /// The plan described by the `ANYK_FAULTS` environment variable, if set.
    /// `Some(Err(..))` when set but malformed — callers should surface that
    /// loudly rather than silently running without faults.
    pub fn from_env() -> Option<Result<Self, String>> {
        std::env::var("ANYK_FAULTS").ok().map(|v| Self::parse(&v))
    }
}

/// The typed error a fired `Error` rule injects at a [`check`] site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injected {
    /// The failpoint site that fired.
    pub site: &'static str,
}

impl std::fmt::Display for Injected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected fault at failpoint `{}`", self.site)
    }
}

impl std::error::Error for Injected {}

struct Active {
    plan: FaultPlan,
    /// Per-site hit counters, (site, count); sites are few, linear scan.
    hits: Vec<(String, u64)>,
}

/// Fast path: true only while a plan is installed.
static ARMED: AtomicBool = AtomicBool::new(false);
/// The installed plan and its hit counters.
static ACTIVE: Mutex<Option<Active>> = Mutex::new(None);
/// Serialises fault-using tests; held by the [`FaultGuard`].
static SERIAL: Mutex<()> = Mutex::new(());

fn relock<'a, T>(
    r: Result<MutexGuard<'a, T>, std::sync::PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    // A poisoned registry lock only means a test panicked while holding it
    // (e.g. a deliberate `Panic` action unwinding through `check`); the data
    // is a plan + counters and is always structurally consistent.
    r.unwrap_or_else(|p| p.into_inner())
}

/// Arm the registry with `plan` until the returned guard drops.
///
/// Blocks while another guard is alive (fault-using tests serialise), so
/// hit counting is deterministic. Counters start at zero on every install.
#[must_use = "faults disarm when the guard drops"]
pub fn install(plan: FaultPlan) -> FaultGuard {
    let serial = relock(SERIAL.lock());
    *relock(ACTIVE.lock()) = Some(Active {
        plan,
        hits: Vec::new(),
    });
    ARMED.store(true, Ordering::SeqCst);
    FaultGuard { _serial: serial }
}

/// Keeps the installed [`FaultPlan`] armed; disarms on drop.
pub struct FaultGuard {
    _serial: MutexGuard<'static, ()>,
}

impl FaultGuard {
    /// How many times `site` has been hit since this plan was installed
    /// (whether or not a rule fired) — lets tests assert a hook is wired.
    pub fn hits(&self, site: &str) -> u64 {
        relock(ACTIVE.lock())
            .as_ref()
            .and_then(|a| a.hits.iter().find(|(s, _)| s == site))
            .map(|&(_, n)| n)
            .unwrap_or(0)
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        ARMED.store(false, Ordering::SeqCst);
        *relock(ACTIVE.lock()) = None;
    }
}

/// Hit the failpoint `site` on a fallible path. Returns `Err(Injected)`
/// when an armed `Error` rule fires, panics when a `Panic` rule fires,
/// and is a no-op (one relaxed load) otherwise.
pub fn check(site: &'static str) -> Result<(), Injected> {
    if !ARMED.load(Ordering::Relaxed) {
        return Ok(());
    }
    let fired = {
        let mut guard = relock(ACTIVE.lock());
        let Some(active) = guard.as_mut() else {
            return Ok(());
        };
        let hit = match active.hits.iter_mut().find(|(s, _)| s == site) {
            Some((_, n)) => {
                *n += 1;
                *n
            }
            None => {
                active.hits.push((site.to_string(), 1));
                1
            }
        };
        match active.plan.rule_for(site) {
            Some((action, trigger)) if trigger.fires(hit) => Some((action, hit)),
            _ => None,
        }
        // The registry lock is released here, before any unwind, so a
        // `Panic` rule can't poison it for the guard's own teardown.
    };
    match fired {
        None => Ok(()),
        Some((FaultAction::Error, _)) => Err(Injected { site }),
        Some((FaultAction::Panic, hit)) => {
            panic!("injected panic at failpoint `{site}` (hit {hit})")
        }
    }
}

/// Hit the failpoint `site` on an **infallible** path: a fired `Error` rule
/// is promoted to a panic (there is no error channel to inject into).
pub fn checkpoint(site: &'static str) {
    if let Err(injected) = check(site) {
        panic!(
            "injected fault at failpoint `{}` (error promoted to panic on an infallible path)",
            injected.site
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plans_pass_through() {
        // Hold the guard so no concurrently running test can arm a plan.
        let guard = install(FaultPlan::new());
        assert!(check("engine.compile").is_ok());
        checkpoint("core.bottom_up");
        assert_eq!(guard.hits("core.bottom_up"), 1);
    }

    #[test]
    fn nth_trigger_fires_exactly_once() {
        let guard = install(FaultPlan::new().error("engine.compile", Trigger::Nth(2)));
        assert!(check("engine.compile").is_ok());
        assert_eq!(
            check("engine.compile"),
            Err(Injected {
                site: "engine.compile"
            })
        );
        assert!(check("engine.compile").is_ok());
        assert_eq!(guard.hits("engine.compile"), 3);
        assert_eq!(guard.hits("server.page"), 0);
    }

    #[test]
    fn from_trigger_fires_repeatedly_and_unplanned_sites_pass() {
        let _guard = install(FaultPlan::new().error("server.page", Trigger::From(2)));
        assert!(check("server.page").is_ok());
        assert!(check("server.page").is_err());
        assert!(check("server.page").is_err());
        assert!(check("engine.compile").is_ok(), "no rule for this site");
    }

    #[test]
    fn panic_rules_panic_and_the_registry_survives() {
        {
            let _guard = install(FaultPlan::new().panic("engine.page", Trigger::Always));
            let caught = std::panic::catch_unwind(|| check("engine.page"));
            assert!(caught.is_err());
        }
        // Disarmed again after the guard dropped, even though a panic
        // unwound through `check`.
        assert!(check("engine.page").is_ok());
    }

    #[test]
    fn parse_round_trips_the_documented_grammar() {
        let plan =
            FaultPlan::parse("engine.compile=error@1, server.page=panic@3+,core.bottom_up=panic")
                .unwrap();
        assert_eq!(
            plan.rule_for("engine.compile"),
            Some((FaultAction::Error, Trigger::Nth(1)))
        );
        assert_eq!(
            plan.rule_for("server.page"),
            Some((FaultAction::Panic, Trigger::From(3)))
        );
        assert_eq!(
            plan.rule_for("core.bottom_up"),
            Some((FaultAction::Panic, Trigger::Always))
        );
        assert!(FaultPlan::parse("nope").is_err());
        assert!(FaultPlan::parse("a=explode").is_err());
        assert!(FaultPlan::parse("a=error@0").is_err());
        assert!(FaultPlan::parse("a=error@x").is_err());
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }
}
