//! # anyk-core
//!
//! Ranked enumeration ("any-k") over tree-based dynamic programming problems,
//! following *"Optimal Algorithms for Ranked Enumeration of Answers to Full
//! Conjunctive Queries"* (Tziavelis et al., VLDB 2020).
//!
//! The crate is independent of any relational machinery: it operates on
//! abstract **T-DP instances** — multi-stage DAGs whose stages are organised
//! in a rooted tree and whose solutions are one state per stage (§3, §5.1 of
//! the paper). Serial DP (path queries) is the special case of a tree that is
//! a single chain.
//!
//! ## Contents
//!
//! * [`dioid`] — selective dioids, the algebraic structures that define the
//!   ranking function (§2.2, §6.4): tropical min-plus / max-plus, Boolean,
//!   max-times ("bag"), lexicographic, and a tie-breaking product dioid.
//! * [`tdp`] — the T-DP instance model, a builder, and the standard DP
//!   bottom-up phase (variable elimination on the dioid, §3).
//! * [`anyk_part`] — the anyK-part family (Algorithm 1): `Eager`, `Lazy`,
//!   `All` and the paper's new `Take2` successor structures (§4.1).
//! * [`anyk_rec`] — the anyK-rec algorithm `Recursive` (REA, Algorithm 2),
//!   generalised to trees via ranked Cartesian products of branch streams
//!   (§4.2, §5.1).
//! * [`batch`] — the `Batch` baseline: enumerate everything, then sort (§4.3).
//! * [`union`] — UT-DP: ranked enumeration over a union of T-DP instances
//!   with consecutive-duplicate elimination (§5.2, §6.3).
//! * [`metrics`] — lightweight instrumentation used by the experiment harness.
//!
//! ## Quick example
//!
//! ```
//! use anyk_core::dioid::TropicalMin;
//! use anyk_core::tdp::TdpBuilder;
//! use anyk_core::{AnyKAlgorithm, ranked_enumerate};
//!
//! // Cartesian product R1 x R2 x R3 from Example 6 of the paper:
//! // three serial stages with weights 1..3, 10..30, 100..300.
//! let mut b = TdpBuilder::<TropicalMin>::serial(3);
//! let s1: Vec<_> = [1.0, 2.0, 3.0].iter().map(|&w| b.add_state(1, w.into())).collect();
//! let s2: Vec<_> = [10.0, 20.0, 30.0].iter().map(|&w| b.add_state(2, w.into())).collect();
//! let s3: Vec<_> = [100.0, 200.0, 300.0].iter().map(|&w| b.add_state(3, w.into())).collect();
//! for &a in &s1 { b.connect_root(a); }
//! for &a in &s1 { for &b_ in &s2 { b.connect(a, b_); } }
//! for &a in &s2 { for &b_ in &s3 { b.connect(a, b_); } }
//! for &a in &s3 { b.connect_terminal(a); }
//! let instance = b.build();
//!
//! let results: Vec<_> = ranked_enumerate(&instance, AnyKAlgorithm::Take2).take(3).collect();
//! assert_eq!(results[0].weight, 111.0.into());
//! assert_eq!(results[1].weight, 112.0.into());
//! assert_eq!(results[2].weight, 113.0.into());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod anyk_part;
pub mod anyk_rec;
pub mod batch;
pub mod dioid;
pub mod faults;
pub mod metrics;
pub mod solution;
pub mod tdp;
pub mod union;

pub use anyk_part::{AnyKPart, MemoryStats, SuccessorKind};
pub use anyk_rec::Recursive;
pub use batch::Batch;
pub use dioid::{Dioid, OrderedF64, TropicalMin};
pub use solution::Solution;
pub use tdp::{NodeId, StageId, TdpBuilder, TdpInstance};
pub use union::UnionEnumerator;

/// The ranked-enumeration strategies implemented by this crate (§4, §7).
///
/// All strategies produce the same output — every T-DP solution exactly once,
/// in non-decreasing weight order — but they differ in pre-processing cost,
/// delay, and total time as analysed in Fig. 5 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnyKAlgorithm {
    /// anyK-part with fully pre-sorted choice sets (`Eager`, §4.1.3).
    Eager,
    /// anyK-part with incrementally sorted choice heaps (`Lazy`, Chang et al.).
    Lazy,
    /// anyK-part that returns all sibling choices as successors (`All`, Yang et al.).
    All,
    /// anyK-part with binary-heap partial order and two successors (`Take2`, this paper).
    Take2,
    /// anyK-rec / Recursive Enumeration Algorithm (REA).
    Recursive,
    /// Batch: materialise every solution, then sort.
    Batch,
}

impl AnyKAlgorithm {
    /// All algorithm variants, in the order used by the experiment plots.
    pub const ALL: [AnyKAlgorithm; 6] = [
        AnyKAlgorithm::Recursive,
        AnyKAlgorithm::Take2,
        AnyKAlgorithm::Lazy,
        AnyKAlgorithm::Eager,
        AnyKAlgorithm::All,
        AnyKAlgorithm::Batch,
    ];

    /// Short display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            AnyKAlgorithm::Eager => "Eager",
            AnyKAlgorithm::Lazy => "Lazy",
            AnyKAlgorithm::All => "All",
            AnyKAlgorithm::Take2 => "Take2",
            AnyKAlgorithm::Recursive => "Recursive",
            AnyKAlgorithm::Batch => "Batch",
        }
    }
}

impl std::fmt::Display for AnyKAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A ranked stream of T-DP solutions that can also report the live MEM(k)
/// footprint of its data structures.
///
/// Every enumerator in this crate implements it; the provided `live_mem`
/// default returns `None` for algorithms whose memory is not organised in
/// the candidate-queue / prefix-arena / successor-structure shape the
/// paper's MEM(k) study measures (`Recursive`, `Batch`).
pub trait SolutionStream<D: Dioid>: Iterator<Item = Solution<D>> + Send {
    /// A MEM(k) snapshot of the enumerator's current data structures, or
    /// `None` when the algorithm does not track one. Cheap relative to a
    /// page of answers (it scans the successor-structure table), but not
    /// per-answer cheap — call it at page granularity.
    fn live_mem(&self) -> Option<MemoryStats> {
        None
    }
}

/// A boxed ranked-enumeration iterator over a T-DP instance.
///
/// The box is [`Send`]: every enumerator in this crate is plain data (heaps,
/// arenas, stream buffers) borrowing a `Sync` instance, so a partially
/// consumed iterator can be *suspended* — parked in a session table, moved
/// to another thread — and *resumed* later, continuing the exact same
/// ranked stream. Suspension is free: the candidate queue, shared-prefix
/// arena, and successor/stream structures simply stay alive inside the
/// iterator value between `next()` calls; no state is rebuilt on resume and
/// nothing is allocated per suspension point. Being a [`SolutionStream`],
/// the box also reports live MEM(k) where the algorithm tracks it.
pub type RankedIter<'a, D> = Box<dyn SolutionStream<D> + 'a>;

impl<D: Dioid> SolutionStream<D> for AnyKPart<'_, D> {
    fn live_mem(&self) -> Option<MemoryStats> {
        Some(self.memory_stats())
    }
}

impl<D: Dioid> SolutionStream<D> for Recursive<'_, D> {}

impl<D: Dioid> SolutionStream<D> for Batch<'_, D> {}

/// Run ranked enumeration over `instance` with the chosen algorithm.
///
/// Returns an iterator producing every solution exactly once in
/// non-decreasing weight order. The iterator borrows the instance.
pub fn ranked_enumerate<D: Dioid>(
    instance: &TdpInstance<D>,
    algorithm: AnyKAlgorithm,
) -> RankedIter<'_, D> {
    match algorithm {
        AnyKAlgorithm::Eager => Box::new(AnyKPart::new(instance, SuccessorKind::Eager)),
        AnyKAlgorithm::Lazy => Box::new(AnyKPart::new(instance, SuccessorKind::Lazy)),
        AnyKAlgorithm::All => Box::new(AnyKPart::new(instance, SuccessorKind::All)),
        AnyKAlgorithm::Take2 => Box::new(AnyKPart::new(instance, SuccessorKind::Take2)),
        AnyKAlgorithm::Recursive => Box::new(Recursive::new(instance)),
        AnyKAlgorithm::Batch => Box::new(Batch::new(instance)),
    }
}
