//! UT-DP: ranked enumeration over a **union** of T-DP problems (§5.2),
//! with on-the-fly elimination of consecutive duplicates (§5.3, §6.3).
//!
//! A cyclic query is decomposed into a union of trees; each tree is compiled
//! into its own T-DP instance and enumerated independently. The union
//! enumerator merges the per-tree ranked streams through one top-level
//! priority queue — exactly the paper's `Union` structure — and, because the
//! engine feeds it tie-broken keys (or disjoint decompositions), duplicates
//! of the same answer arrive consecutively and are dropped with `O(1)` extra
//! delay per answer (data complexity).
//!
//! The enumerator is generic over `(key, item)` pairs so that the engine can
//! merge already-assembled answers: `key` is the ranking weight (with
//! tie-breaking if needed) and `item` the answer identity used for duplicate
//! detection.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Heap entry: ordered by key, then by source index for determinism.
struct Entry<K, T> {
    key: K,
    source: usize,
    item: T,
}

impl<K: Ord, T> PartialEq for Entry<K, T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.source == other.source
    }
}
impl<K: Ord, T> Eq for Entry<K, T> {}
impl<K: Ord, T> PartialOrd for Entry<K, T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<K: Ord, T> Ord for Entry<K, T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key
            .cmp(&other.key)
            .then_with(|| self.source.cmp(&other.source))
    }
}

/// Merges several ranked streams into one ranked stream, optionally dropping
/// consecutive duplicates.
///
/// Each source must itself yield `(key, item)` pairs in non-decreasing `key`
/// order; the merged stream is then globally non-decreasing.
pub struct UnionEnumerator<K, T, I>
where
    K: Ord,
    I: Iterator<Item = (K, T)>,
{
    sources: Vec<I>,
    heap: BinaryHeap<Reverse<Entry<K, T>>>,
    last_emitted: Option<T>,
    dedup: bool,
    started: bool,
}

impl<K, T, I> UnionEnumerator<K, T, I>
where
    K: Ord,
    T: PartialEq + Clone,
    I: Iterator<Item = (K, T)>,
{
    /// Merge `sources` without duplicate elimination (disjoint decompositions
    /// such as the simple-cycle decomposition of §5.3.1).
    pub fn new(sources: Vec<I>) -> Self {
        Self::with_dedup(sources, false)
    }

    /// Merge `sources`, dropping an answer if it is identical to the
    /// immediately preceding one (non-disjoint decompositions; requires
    /// tie-broken keys so duplicates arrive consecutively, §6.3).
    pub fn deduplicating(sources: Vec<I>) -> Self {
        Self::with_dedup(sources, true)
    }

    fn with_dedup(sources: Vec<I>, dedup: bool) -> Self {
        UnionEnumerator {
            sources,
            heap: BinaryHeap::new(),
            last_emitted: None,
            dedup,
            started: false,
        }
    }

    /// The underlying source streams (exhausted sources stay in place), so
    /// a caller that built the union from stat-reporting sources can
    /// aggregate their live state — e.g. summing MEM(k) across the trees of
    /// a cycle decomposition mid-enumeration.
    pub fn sources(&self) -> &[I] {
        &self.sources
    }

    fn pull(&mut self, source: usize) {
        if let Some((key, item)) = self.sources[source].next() {
            self.heap.push(Reverse(Entry { key, source, item }));
        }
    }

    fn start(&mut self) {
        self.started = true;
        for i in 0..self.sources.len() {
            self.pull(i);
        }
    }
}

impl<K, T, I> Iterator for UnionEnumerator<K, T, I>
where
    K: Ord,
    T: PartialEq + Clone,
    I: Iterator<Item = (K, T)>,
{
    type Item = (K, T);

    fn next(&mut self) -> Option<Self::Item> {
        if !self.started {
            self.start();
        }
        loop {
            let Reverse(entry) = self.heap.pop()?;
            self.pull(entry.source);
            if self.dedup {
                if let Some(last) = &self.last_emitted {
                    if *last == entry.item {
                        continue;
                    }
                }
                self.last_emitted = Some(entry.item.clone());
            }
            return Some((entry.key, entry.item));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_two_sorted_streams() {
        let a = vec![(1, "a1"), (4, "a4"), (6, "a6")];
        let b = vec![(2, "b2"), (3, "b3"), (7, "b7")];
        let merged: Vec<i32> = UnionEnumerator::new(vec![a.into_iter(), b.into_iter()])
            .map(|(k, _)| k)
            .collect();
        assert_eq!(merged, vec![1, 2, 3, 4, 6, 7]);
    }

    #[test]
    fn deduplicates_consecutive_identical_items() {
        // Both streams produce the same answers (as a non-disjoint
        // decomposition would); keys are unique per answer so duplicates are
        // adjacent in the merged stream.
        let a = vec![(1, "x"), (2, "y"), (5, "z")];
        let b = vec![(1, "x"), (2, "y"), (5, "z")];
        let merged: Vec<&str> = UnionEnumerator::deduplicating(vec![a.into_iter(), b.into_iter()])
            .map(|(_, t)| t)
            .collect();
        assert_eq!(merged, vec!["x", "y", "z"]);
    }

    #[test]
    fn without_dedup_duplicates_are_kept() {
        let a = vec![(1, "x")];
        let b = vec![(1, "x")];
        let merged: Vec<&str> = UnionEnumerator::new(vec![a.into_iter(), b.into_iter()])
            .map(|(_, t)| t)
            .collect();
        assert_eq!(merged, vec!["x", "x"]);
    }

    #[test]
    fn empty_sources_are_fine() {
        let sources: Vec<std::vec::IntoIter<(i32, &str)>> =
            vec![Vec::new().into_iter(), vec![(3, "only")].into_iter()];
        let merged: Vec<&str> = UnionEnumerator::new(sources).map(|(_, t)| t).collect();
        assert_eq!(merged, vec!["only"]);
    }

    #[test]
    fn ordering_is_stable_across_many_sources() {
        let sources: Vec<std::vec::IntoIter<(i32, usize)>> = (0..5)
            .map(|i| {
                (0..10)
                    .map(|k| (k * 5 + i, i as usize))
                    .collect::<Vec<_>>()
                    .into_iter()
            })
            .collect();
        let merged: Vec<i32> = UnionEnumerator::new(sources).map(|(k, _)| k).collect();
        let mut expected = merged.clone();
        expected.sort();
        assert_eq!(merged, expected);
        assert_eq!(merged.len(), 50);
    }
}
