//! The anyK-part family of ranked-enumeration algorithms (Algorithm 1, §4.1).
//!
//! anyK-part follows the Lawler/Hoffman–Pavley "repeated partitioning"
//! paradigm: a candidate describes the best solution of a *subspace* —
//! solutions that share a fixed prefix of states (in serial stage order) and
//! deviate at one stage to a specific non-optimal choice, completing the rest
//! of the stages optimally. A priority queue `Cand` holds one candidate per
//! explored subspace; popping the minimum yields the next ranked solution and
//! spawns the candidates of the newly created subspaces.
//!
//! ## Candidate weights on trees without an inverse
//!
//! A candidate's priority is the weight of the best solution of its subspace:
//!
//! ```text
//!   prefixWeight(1..j−1) ⊗ w(s) ⊗ π₁(s) ⊗ (pending-branch completions at j)
//! ```
//!
//! where the deviation picks state `s` at serial position `j`. The last
//! factor covers branches that hang off the prefix but lie outside `s`'s
//! subtree (they are still completed optimally); for serial (path) problems
//! it is empty. This formulation needs no `⊗`-inverse (§6.2) and costs
//! `O(ℓ)` per candidate, which is the paper's no-inverse bound.
//!
//! ## Hot-loop layout
//!
//! The expansion loop is allocation- and hash-free: successor structures live
//! in a dense table keyed by the instance's [slot id](TdpInstance::slot_id)
//! (one `Vec` indexing operation instead of a `HashMap<(NodeId, u32), _>`
//! probe), choices inside a structure are addressed by dense index (see
//! [`successor`]), the sibling scratch buffer is reused across expansions,
//! and prefixes are shared through an append-only arena. The only per-result
//! allocation is the output [`Solution`]'s own state vector.

mod successor;

use successor::SuccState;
pub use successor::SuccessorKind;

use crate::dioid::Dioid;
use crate::solution::Solution;
use crate::tdp::{NodeId, TdpInstance};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Sentinel for "empty prefix" in the prefix arena.
const NO_PREFIX: u32 = u32::MAX;

/// A MEM(k) snapshot of one [`AnyKPart`] enumerator — the quantities behind
/// the paper's memory study (§7): how much state the algorithm holds after
/// emitting `emitted` results. Obtain via [`AnyKPart::memory_stats`];
/// aggregate across the instances of a UT-DP union with
/// [`MemoryStats::absorb`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Results emitted when the snapshot was taken (the `k` of MEM(k)).
    pub emitted: usize,
    /// Candidates currently in the priority queue.
    pub candidates: usize,
    /// Entries in the shared-prefix arena (each is one state reference).
    pub prefix_arena_entries: usize,
    /// Size of the dense successor-structure table (one slot per
    /// (state, branch) pair of the instance).
    pub structure_table_slots: usize,
    /// Successor structures materialised so far (lazy initialisation touches
    /// only the choice sets the enumeration actually visited).
    pub structures_allocated: usize,
    /// Total choices held across all materialised successor structures.
    pub structure_choices: usize,
}

impl MemoryStats {
    /// The snapshot collapsed to one scalar "resident units" figure —
    /// candidates + arena entries + successor-table slots + materialised
    /// choices, each of which is one smallish heap value. This is the unit
    /// a serving layer's MEM(k)-derived memory budget accounts in: relative
    /// growth is what matters for admission, not exact bytes.
    pub fn resident_units(&self) -> u64 {
        (self.candidates
            + self.prefix_arena_entries
            + self.structure_table_slots
            + self.structure_choices) as u64
    }

    /// Accumulate another snapshot into this one (summing every field), for
    /// aggregating across the trees of a union plan.
    pub fn absorb(&mut self, other: &MemoryStats) {
        self.emitted += other.emitted;
        self.candidates += other.candidates;
        self.prefix_arena_entries += other.prefix_arena_entries;
        self.structure_table_slots += other.structure_table_slots;
        self.structures_allocated += other.structures_allocated;
        self.structure_choices += other.structure_choices;
    }
}

/// One entry of the shared-prefix arena. Prefixes are immutable linked lists
/// so that candidates reference them in `O(1)` instead of copying `O(ℓ)`
/// states (§4.3.2).
#[derive(Debug, Clone)]
struct PrefixEntry<V> {
    parent: u32,
    node: NodeId,
    /// `⊗`-aggregate of the prefix's state weights up to and including `node`.
    weight: V,
}

/// A Lawler candidate: the best solution of one subspace.
#[derive(Debug, Clone)]
struct Candidate<V> {
    /// Weight of the best solution in the subspace (the priority).
    total: V,
    /// Arena index of the prefix covering serial positions `0..r−1`
    /// (`NO_PREFIX` for the empty prefix).
    prefix: u32,
    /// Serial position of the deviation.
    r: u32,
    /// The deviated-to state at position `r`.
    last: NodeId,
    /// Index of `last` within the successor structure of its choice set
    /// (resolves `Succ` queries by array arithmetic, without a lookup).
    last_idx: u32,
}

impl<V: Ord> PartialEq for Candidate<V> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl<V: Ord> Eq for Candidate<V> {}
impl<V: Ord> PartialOrd for Candidate<V> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<V: Ord> Ord for Candidate<V> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.total
            .cmp(&other.total)
            .then_with(|| self.r.cmp(&other.r))
            .then_with(|| self.last.cmp(&other.last))
            .then_with(|| self.prefix.cmp(&other.prefix))
    }
}

/// Ranked enumeration over a T-DP instance with the anyK-part strategy.
///
/// Construct with [`AnyKPart::new`] and consume as an [`Iterator`] of
/// [`Solution`]s in non-decreasing weight order. The choice of
/// [`SuccessorKind`] selects the `Eager` / `Lazy` / `All` / `Take2` variant.
#[derive(Debug)]
pub struct AnyKPart<'a, D: Dioid> {
    inst: &'a TdpInstance<D>,
    kind: SuccessorKind,
    /// Successor structures, keyed by dense slot id; entries are initialised
    /// on first access (§7: lazy initialisation keeps TT(k) small for small
    /// k). The table itself is allocated once, up front.
    structures: Vec<Option<SuccState<D>>>,
    cand: BinaryHeap<Reverse<Candidate<D::V>>>,
    arena: Vec<PrefixEntry<D::V>>,
    /// Reused scratch for sibling choice indices during expansion.
    succ_buf: Vec<u32>,
    started: bool,
    finished: bool,
    /// Emitted count (k so far), exposed for instrumentation.
    emitted: usize,
}

impl<'a, D: Dioid> AnyKPart<'a, D> {
    /// Create an enumerator over `inst` using the given successor structure.
    pub fn new(inst: &'a TdpInstance<D>, kind: SuccessorKind) -> Self {
        let ell = inst.solution_len();
        let mut structures = Vec::new();
        structures.resize_with(inst.num_slot_ids(), || None);
        AnyKPart {
            inst,
            kind,
            structures,
            // Each emitted result pushes O(ℓ) new candidates and arena
            // entries; pre-size for a handful of results so short top-k runs
            // never reallocate.
            cand: BinaryHeap::with_capacity(4 * ell + 16),
            arena: Vec::with_capacity(8 * ell + 16),
            succ_buf: Vec::new(),
            started: false,
            finished: false,
            emitted: 0,
        }
    }

    /// Number of solutions emitted so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// Current size of the candidate priority queue (for the MEM(k) study).
    pub fn candidate_count(&self) -> usize {
        self.cand.len()
    }

    /// A MEM(k) snapshot of the enumerator's data-structure footprint after
    /// `emitted()` results: candidate queue, shared-prefix arena, and the
    /// successor-structure table (how many of its slots were materialised and
    /// how many choices they hold in total).
    pub fn memory_stats(&self) -> MemoryStats {
        let mut structures_allocated = 0usize;
        let mut structure_choices = 0usize;
        for s in self.structures.iter().flatten() {
            structures_allocated += 1;
            structure_choices += s.len();
        }
        MemoryStats {
            emitted: self.emitted,
            candidates: self.cand.len(),
            prefix_arena_entries: self.arena.len(),
            structure_table_slots: self.structures.len(),
            structures_allocated,
            structure_choices,
        }
    }

    /// The successor structure for the choice set `(state, slot)`, created on
    /// first access.
    fn structure(&mut self, node: NodeId, slot: u32) -> (usize, &mut SuccState<D>) {
        let d = self.inst.slot_id(node, slot) as usize;
        if self.structures[d].is_none() {
            let choices: Vec<_> = self.inst.choices(node, slot).collect();
            self.structures[d] = Some(SuccState::new(self.kind, choices));
        }
        (d, self.structures[d].as_mut().expect("just initialised"))
    }

    /// Parent state of serial position `pos`, given the solution states
    /// chosen so far (`states[0..pos]` filled).
    fn parent_state(&self, states: &[NodeId], pos: usize) -> NodeId {
        match self.inst.parent_pos(pos) {
            None => NodeId::ROOT,
            Some(p) => states[p],
        }
    }

    /// Slot (within the parent stage) of the stage at serial position `pos`.
    fn slot_of(&self, pos: usize) -> u32 {
        let sid = self.inst.serial_order()[pos];
        self.inst.stage(sid).slot_in_parent
    }

    /// `⊗`-aggregate of the optimal completions of the branches that are
    /// pending at a deviation at position `pos`, given the prefix states.
    fn pending_completion(&self, states: &[NodeId], pos: usize) -> D::V {
        let mut acc = D::one();
        for &(prefix_pos, slot) in self.inst.pending_branches(pos) {
            let owner = match prefix_pos {
                None => NodeId::ROOT,
                Some(p) => states[p],
            };
            acc = D::times(&acc, self.inst.branch_opt(owner, slot));
        }
        acc
    }

    fn initialise(&mut self) {
        self.started = true;
        if self.inst.solution_len() == 0 || !self.inst.has_solution() {
            // Degenerate instances: a zero-length problem has exactly one
            // (empty) solution of weight 1̄; an unsatisfiable one has none.
            if self.inst.solution_len() == 0 && self.inst.has_solution() {
                // handled in next(): emit a single empty solution.
            } else {
                self.finished = true;
            }
            return;
        }
        let slot = self.slot_of(0);
        let (_, st) = self.structure(NodeId::ROOT, slot);
        let top_idx = st.top();
        let top = st.choice(top_idx).0;
        let total = self.inst.optimum().clone();
        self.cand.push(Reverse(Candidate {
            total,
            prefix: NO_PREFIX,
            r: 0,
            last: top,
            last_idx: top_idx,
        }));
    }

    fn expand(&mut self, cand: Candidate<D::V>) -> Solution<D> {
        let ell = self.inst.solution_len();
        let r = cand.r as usize;

        // Reconstruct the prefix states (serial positions 0..r) directly into
        // the output vector; it is handed to the Solution at the end, so this
        // is the expansion's only allocation.
        let mut states: Vec<NodeId> = Vec::with_capacity(ell);
        let mut idx = cand.prefix;
        while idx != NO_PREFIX {
            let entry = &self.arena[idx as usize];
            states.push(entry.node);
            idx = entry.parent;
        }
        states.reverse();
        debug_assert_eq!(states.len(), r);

        let mut prefix_weight = if cand.prefix == NO_PREFIX {
            D::one()
        } else {
            self.arena[cand.prefix as usize].weight.clone()
        };
        let mut prefix_idx = cand.prefix;
        let mut current = cand.last;
        let mut current_idx = cand.last_idx;
        let mut succ_buf = std::mem::take(&mut self.succ_buf);

        for pos in r..ell {
            // 1. Generate the new candidates of the subspaces created by
            //    deviating away from `current` at this position.
            let tail = self.parent_state(&states, pos);
            let slot = self.slot_of(pos);
            succ_buf.clear();
            let (d, st) = self.structure(tail, slot);
            st.successors(current_idx, &mut succ_buf);
            if !succ_buf.is_empty() {
                let pending = self.pending_completion(&states, pos);
                let st = self.structures[d].as_ref().expect("initialised above");
                for &sibling_idx in &succ_buf {
                    let (s, value) = st.choice(sibling_idx);
                    let total = D::times(&D::times(&prefix_weight, value), &pending);
                    self.cand.push(Reverse(Candidate {
                        total,
                        prefix: prefix_idx,
                        r: pos as u32,
                        last: *s,
                        last_idx: sibling_idx,
                    }));
                }
            }

            // 2. Append `current` to the prefix.
            prefix_weight = D::times(&prefix_weight, self.inst.weight(current));
            self.arena.push(PrefixEntry {
                parent: prefix_idx,
                node: current,
                weight: prefix_weight.clone(),
            });
            prefix_idx = (self.arena.len() - 1) as u32;
            states.push(current);

            // 3. Follow the optimal choice into the next position.
            if pos + 1 < ell {
                let tail_next = self.parent_state(&states, pos + 1);
                let slot_next = self.slot_of(pos + 1);
                let (_, st) = self.structure(tail_next, slot_next);
                current_idx = st.top();
                current = st.choice(current_idx).0;
            }
        }

        self.succ_buf = succ_buf;
        Solution::new(cand.total, states)
    }
}

impl<D: Dioid> Iterator for AnyKPart<'_, D> {
    type Item = Solution<D>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.finished {
            return None;
        }
        if !self.started {
            self.initialise();
            if self.inst.solution_len() == 0 && self.inst.has_solution() {
                self.finished = true;
                self.emitted += 1;
                return Some(Solution::new(D::one(), Vec::new()));
            }
            if self.finished {
                return None;
            }
        }
        match self.cand.pop() {
            None => {
                self.finished = true;
                None
            }
            Some(Reverse(cand)) => {
                let sol = self.expand(cand);
                self.emitted += 1;
                Some(sol)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dioid::{OrderedF64, TropicalMin};
    use crate::tdp::TdpBuilder;

    /// Example 6/8/9 of the paper: the 3-relation Cartesian product.
    fn cartesian_3() -> TdpInstance<TropicalMin> {
        let mut b = TdpBuilder::<TropicalMin>::serial(3);
        let s1: Vec<_> = [1.0, 2.0, 3.0]
            .iter()
            .map(|&w| b.add_state(1, w.into()))
            .collect();
        let s2: Vec<_> = [10.0, 20.0, 30.0]
            .iter()
            .map(|&w| b.add_state(2, w.into()))
            .collect();
        let s3: Vec<_> = [100.0, 200.0, 300.0]
            .iter()
            .map(|&w| b.add_state(3, w.into()))
            .collect();
        for &a in &s1 {
            b.connect_root(a);
        }
        for &a in &s1 {
            for &c in &s2 {
                b.connect(a, c);
            }
        }
        for &a in &s2 {
            for &c in &s3 {
                b.connect(a, c);
            }
        }
        b.build()
    }

    fn run(kind: SuccessorKind, inst: &TdpInstance<TropicalMin>) -> Vec<OrderedF64> {
        AnyKPart::new(inst, kind).map(|s| s.weight).collect()
    }

    #[test]
    fn enumerates_cartesian_product_in_order_with_all_variants() {
        let inst = cartesian_3();
        // Brute-force expected weights.
        let mut expected = Vec::new();
        for a in [1.0, 2.0, 3.0] {
            for b in [10.0, 20.0, 30.0] {
                for c in [100.0, 200.0, 300.0] {
                    expected.push(OrderedF64::from(a + b + c));
                }
            }
        }
        expected.sort();
        for kind in [
            SuccessorKind::Eager,
            SuccessorKind::Lazy,
            SuccessorKind::All,
            SuccessorKind::Take2,
        ] {
            let got = run(kind, &inst);
            assert_eq!(got, expected, "variant {kind:?}");
        }
    }

    #[test]
    fn example_9_first_two_solutions() {
        let inst = cartesian_3();
        let sols: Vec<_> = AnyKPart::new(&inst, SuccessorKind::Eager).take(2).collect();
        assert_eq!(sols[0].weight, OrderedF64::from(111.0));
        assert_eq!(sols[1].weight, OrderedF64::from(112.0));
        // The second solution deviates at the first stage ("2" instead of "1").
        assert_eq!(*inst.weight(sols[1].states[0]), OrderedF64::from(2.0));
    }

    #[test]
    fn tree_instance_is_enumerated_completely() {
        // A star: center with two leaf branches; 2×2 combinations per center.
        let mut b = TdpBuilder::<TropicalMin>::new();
        let center = b.add_stage_under_root("center", true);
        let left = b.add_stage("left", center, true);
        let right = b.add_stage("right", center, true);
        let c1 = b.add_state(center.index(), 1.0.into());
        let c2 = b.add_state(center.index(), 2.0.into());
        let l1 = b.add_state(left.index(), 10.0.into());
        let l2 = b.add_state(left.index(), 20.0.into());
        let r1 = b.add_state(right.index(), 100.0.into());
        let r2 = b.add_state(right.index(), 200.0.into());
        for &c in &[c1, c2] {
            b.connect_root(c);
            for &l in &[l1, l2] {
                b.connect(c, l);
            }
            for &r in &[r1, r2] {
                b.connect(c, r);
            }
        }
        let inst = b.build();
        let mut expected = Vec::new();
        for c in [1.0, 2.0] {
            for l in [10.0, 20.0] {
                for r in [100.0, 200.0] {
                    expected.push(OrderedF64::from(c + l + r));
                }
            }
        }
        expected.sort();
        for kind in [
            SuccessorKind::Eager,
            SuccessorKind::Lazy,
            SuccessorKind::All,
            SuccessorKind::Take2,
        ] {
            assert_eq!(run(kind, &inst), expected, "variant {kind:?}");
        }
    }

    #[test]
    fn empty_instance_yields_nothing() {
        let inst = TdpBuilder::<TropicalMin>::serial(2).build();
        assert_eq!(run(SuccessorKind::Take2, &inst).len(), 0);
    }

    #[test]
    fn weights_match_recomputation_from_states() {
        let inst = cartesian_3();
        for sol in AnyKPart::new(&inst, SuccessorKind::Take2) {
            assert_eq!(sol.weight, sol.recompute_weight(&inst));
        }
    }
}
