//! Successor structures for the anyK-part family (§4.1.3).
//!
//! Algorithm 1 is parameterised by how the choice set `Choices₁(s)` of a
//! state is organised and how `Succ(s, y)` — "which choices may follow `y`" —
//! is answered. The four instantiations studied in the paper are implemented
//! here:
//!
//! * [`SuccessorKind::Eager`]: choice sets are fully sorted (lazily, on first
//!   access); the successor of a choice is the next one in sort order.
//! * [`SuccessorKind::Lazy`]: choice sets are binary heaps that are
//!   incrementally drained into a sorted list (Chang et al.); asymptotically
//!   cheaper pre-processing than `Eager`.
//! * [`SuccessorKind::All`]: no pre-processing at all; when the best choice
//!   is expanded, *all* other choices become candidates at once (Yang et al.).
//! * [`SuccessorKind::Take2`]: the paper's new structure — the choice set is
//!   heapified once (linear time) and the "successors" of a choice are its
//!   two children in the heap's tree order. The heap is never popped; it only
//!   serves as a partial order that is compatible with the weight order.
//!
//! ## Index-based addressing
//!
//! Choices are addressed by their **dense index** within the structure
//! (position in the sorted order for `Eager`/`Lazy`, position in the original
//! choice array for `All`, position in the array-embedded heap for `Take2`).
//! The enumerator carries the index of the choice it followed alongside the
//! chosen state, so `Succ` resolves successors by pure array arithmetic — no
//! `NodeId → position` hash lookup anywhere in the expansion hot loop.

use crate::dioid::Dioid;
use crate::tdp::NodeId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which successor structure an [`crate::AnyKPart`] enumerator uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SuccessorKind {
    /// Fully sort every choice set on first access.
    Eager,
    /// Incrementally convert a per-choice-set heap into a sorted list.
    Lazy,
    /// Return every non-optimal choice as a successor of the optimal one.
    All,
    /// Heapify once; successors of a choice are its two heap children.
    Take2,
}

/// A single choice: a successor state together with the value
/// `w(s') ⊗ π₁(s')` of the best solution using it.
pub(crate) type Choice<V> = (NodeId, V);

/// The per-(state, slot) successor structure. Created lazily by the
/// enumerator the first time a choice set is touched, and stored in a dense
/// table keyed by the instance's slot id.
#[derive(Debug)]
pub(crate) enum SuccState<D: Dioid> {
    Eager(EagerChoices<D::V>),
    Lazy(LazyChoices<D::V>),
    All(AllChoices<D::V>),
    Take2(Take2Choices<D::V>),
}

impl<D: Dioid> SuccState<D> {
    /// Build the structure for a choice set. `choices` must be non-empty and
    /// contain only unpruned successors.
    pub(crate) fn new(kind: SuccessorKind, choices: Vec<Choice<D::V>>) -> Self {
        debug_assert!(!choices.is_empty());
        match kind {
            SuccessorKind::Eager => SuccState::Eager(EagerChoices::new(choices)),
            SuccessorKind::Lazy => SuccState::Lazy(LazyChoices::new(choices)),
            SuccessorKind::All => SuccState::All(AllChoices::new(choices)),
            SuccessorKind::Take2 => SuccState::Take2(Take2Choices::new(choices)),
        }
    }

    /// The index of the best choice (the one followed by optimal expansion).
    pub(crate) fn top(&self) -> u32 {
        match self {
            SuccState::Eager(_) | SuccState::Lazy(_) | SuccState::Take2(_) => 0,
            SuccState::All(s) => s.top_idx as u32,
        }
    }

    /// The `(state, value)` of the choice at `idx`. Only indices previously
    /// handed out by [`Self::top`] or [`Self::successors`] are valid.
    #[inline]
    pub(crate) fn choice(&self, idx: u32) -> &Choice<D::V> {
        match self {
            SuccState::Eager(s) => &s.sorted[idx as usize],
            SuccState::Lazy(s) => &s.sorted[idx as usize],
            SuccState::All(s) => &s.choices[idx as usize],
            SuccState::Take2(s) => &s.heap[idx as usize],
        }
    }

    /// Number of choices held by the structure (sorted prefix + residual
    /// heap for `Lazy`) — the per-structure term of the MEM(k) accounting.
    pub(crate) fn len(&self) -> usize {
        match self {
            SuccState::Eager(s) => s.sorted.len(),
            SuccState::Lazy(s) => s.sorted.len() + s.heap.len(),
            SuccState::All(s) => s.choices.len(),
            SuccState::Take2(s) => s.heap.len(),
        }
    }

    /// Append to `out` the indices of the successors of the choice at `idx`.
    ///
    /// The contract (sufficient for the correctness of Algorithm 1) is that
    /// the true next-best choice after `idx` is either appended here or was
    /// already produced as a successor of an earlier choice of this set under
    /// the same prefix.
    pub(crate) fn successors(&mut self, idx: u32, out: &mut Vec<u32>) {
        match self {
            SuccState::Eager(s) => s.successors(idx, out),
            SuccState::Lazy(s) => s.successors(idx, out),
            SuccState::All(s) => s.successors(idx, out),
            SuccState::Take2(s) => s.successors(idx, out),
        }
    }
}

fn sort_key<V: Ord + Clone>(c: &Choice<V>) -> (V, NodeId) {
    (c.1.clone(), c.0)
}

// ---------------------------------------------------------------------------
// Eager
// ---------------------------------------------------------------------------

/// Fully sorted choice list; a choice's index is its rank, so its successor
/// is simply the next index.
#[derive(Debug)]
pub(crate) struct EagerChoices<V> {
    sorted: Vec<Choice<V>>,
}

impl<V: Ord + Clone> EagerChoices<V> {
    fn new(mut choices: Vec<Choice<V>>) -> Self {
        choices.sort_by_key(sort_key);
        EagerChoices { sorted: choices }
    }

    fn successors(&self, idx: u32, out: &mut Vec<u32>) {
        if (idx as usize + 1) < self.sorted.len() {
            out.push(idx + 1);
        }
    }
}

// ---------------------------------------------------------------------------
// Lazy
// ---------------------------------------------------------------------------

/// A binary heap that is drained into a sorted prefix on demand; indices
/// refer to positions in the sorted prefix, which is stable once
/// materialised. Following §4.1.3, the top two choices are materialised
/// eagerly because almost every successor request asks for the second-best
/// choice.
#[derive(Debug)]
pub(crate) struct LazyChoices<V> {
    sorted: Vec<Choice<V>>,
    heap: BinaryHeap<Reverse<(V, NodeId)>>,
}

impl<V: Ord + Clone> LazyChoices<V> {
    fn new(choices: Vec<Choice<V>>) -> Self {
        let heap: BinaryHeap<Reverse<(V, NodeId)>> =
            choices.into_iter().map(|(n, v)| Reverse((v, n))).collect();
        let mut lazy = LazyChoices {
            sorted: Vec::new(),
            heap,
        };
        // Pop the top two choices up front (§4.1.3): almost every successor
        // request during result expansion asks for the second-best choice.
        for _ in 0..2 {
            lazy.pop_into_sorted();
        }
        lazy
    }

    fn pop_into_sorted(&mut self) {
        if let Some(Reverse((v, n))) = self.heap.pop() {
            self.sorted.push((n, v));
        }
    }

    fn successors(&mut self, idx: u32, out: &mut Vec<u32>) {
        // Indices are only handed out for materialised choices, so at most
        // one drain step is needed to expose the next-ranked choice.
        let next = idx as usize + 1;
        while self.sorted.len() <= next && !self.heap.is_empty() {
            self.pop_into_sorted();
        }
        if next < self.sorted.len() {
            out.push(next as u32);
        }
    }
}

// ---------------------------------------------------------------------------
// All
// ---------------------------------------------------------------------------

/// No pre-processing: only the best choice is identified. When it is
/// expanded, every other choice is returned as a potential successor; all
/// other choices have an empty successor set (their true successors were
/// inserted together with them).
#[derive(Debug)]
pub(crate) struct AllChoices<V> {
    choices: Vec<Choice<V>>,
    top_idx: usize,
}

impl<V: Ord + Clone> AllChoices<V> {
    fn new(choices: Vec<Choice<V>>) -> Self {
        let top_idx = choices
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| sort_key(c))
            .map(|(i, _)| i)
            .expect("non-empty choice set");
        AllChoices { choices, top_idx }
    }

    fn successors(&self, idx: u32, out: &mut Vec<u32>) {
        if idx as usize == self.top_idx {
            out.extend((0..self.choices.len() as u32).filter(|&i| i != idx));
        }
    }
}

// ---------------------------------------------------------------------------
// Take2
// ---------------------------------------------------------------------------

/// The choice set stored as an array-embedded binary min-heap (built once in
/// linear time). The heap is never popped: `Succ(s, y)` returns the (at most
/// two) children of `y` in the heap tree, whose values are ≥ `y`'s value, so
/// inserting them the moment `y` is expanded never violates rank order, and
/// every choice is produced exactly once — by its unique heap parent.
#[derive(Debug)]
pub(crate) struct Take2Choices<V> {
    heap: Vec<Choice<V>>,
}

impl<V: Ord + Clone> Take2Choices<V> {
    fn new(mut choices: Vec<Choice<V>>) -> Self {
        heapify_min(&mut choices);
        Take2Choices { heap: choices }
    }

    fn successors(&self, idx: u32, out: &mut Vec<u32>) {
        let len = self.heap.len() as u32;
        let left = 2 * idx + 1;
        if left < len {
            out.push(left);
        }
        if left + 1 < len {
            out.push(left + 1);
        }
    }
}

/// Floyd's linear-time bottom-up heap construction for an array-embedded
/// binary min-heap ordered by `(value, node id)`.
fn heapify_min<V: Ord + Clone>(v: &mut [Choice<V>]) {
    let n = v.len();
    if n <= 1 {
        return;
    }
    for start in (0..n / 2).rev() {
        sift_down(v, start);
    }
}

fn sift_down<V: Ord + Clone>(v: &mut [Choice<V>], mut i: usize) {
    let n = v.len();
    loop {
        let l = 2 * i + 1;
        let r = 2 * i + 2;
        let mut smallest = i;
        if l < n && sort_key(&v[l]) < sort_key(&v[smallest]) {
            smallest = l;
        }
        if r < n && sort_key(&v[r]) < sort_key(&v[smallest]) {
            smallest = r;
        }
        if smallest == i {
            return;
        }
        v.swap(i, smallest);
        i = smallest;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dioid::{OrderedF64, TropicalMin};
    use std::collections::HashMap;

    fn choices(vals: &[f64]) -> Vec<Choice<OrderedF64>> {
        vals.iter()
            .enumerate()
            .map(|(i, &v)| (NodeId(i as u32 + 1), OrderedF64::from(v)))
            .collect()
    }

    fn node_at(s: &SuccState<TropicalMin>, idx: u32) -> NodeId {
        s.choice(idx).0
    }

    #[test]
    fn eager_returns_true_successor() {
        let mut s = SuccState::<TropicalMin>::new(SuccessorKind::Eager, choices(&[5.0, 1.0, 3.0]));
        let top = s.top();
        assert_eq!(node_at(&s, top), NodeId(2));
        let mut out = Vec::new();
        s.successors(top, &mut out);
        assert_eq!(
            out.iter().map(|&i| node_at(&s, i)).collect::<Vec<_>>(),
            vec![NodeId(3)]
        );
        let second = out[0];
        out.clear();
        s.successors(second, &mut out);
        assert_eq!(
            out.iter().map(|&i| node_at(&s, i)).collect::<Vec<_>>(),
            vec![NodeId(1)]
        );
        let third = out[0];
        out.clear();
        s.successors(third, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn lazy_drains_incrementally_and_matches_eager() {
        let vals = [8.0, 2.0, 9.0, 4.0, 6.0];
        let mut lazy = SuccState::<TropicalMin>::new(SuccessorKind::Lazy, choices(&vals));
        let mut eager = SuccState::<TropicalMin>::new(SuccessorKind::Eager, choices(&vals));
        assert_eq!(node_at(&lazy, lazy.top()), node_at(&eager, eager.top()));
        let mut cur = lazy.top();
        // Walk the entire chain of true successors through both structures:
        // both address by rank, so the indices coincide.
        for _ in 0..vals.len() {
            let (mut a, mut b) = (Vec::new(), Vec::new());
            lazy.successors(cur, &mut a);
            eager.successors(cur, &mut b);
            assert_eq!(a, b);
            let nodes_a: Vec<_> = a.iter().map(|&i| node_at(&lazy, i)).collect();
            let nodes_b: Vec<_> = b.iter().map(|&i| node_at(&eager, i)).collect();
            assert_eq!(nodes_a, nodes_b);
            match a.first() {
                Some(&n) => cur = n,
                None => break,
            }
        }
    }

    #[test]
    fn all_returns_everything_for_top_and_nothing_otherwise() {
        let mut s = SuccState::<TropicalMin>::new(SuccessorKind::All, choices(&[5.0, 1.0, 3.0]));
        let mut out = Vec::new();
        let top = s.top();
        s.successors(top, &mut out);
        let mut nodes: Vec<_> = out.iter().map(|&i| node_at(&s, i)).collect();
        nodes.sort();
        assert_eq!(nodes, vec![NodeId(1), NodeId(3)]);
        let non_top = out[0];
        out.clear();
        s.successors(non_top, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn take2_heap_children_cover_all_choices_exactly_once() {
        let vals = [7.0, 3.0, 9.0, 1.0, 5.0, 2.0, 8.0];
        let mut s = SuccState::<TropicalMin>::new(SuccessorKind::Take2, choices(&vals));
        // BFS from the top: every choice must be reached exactly once.
        let mut seen = vec![s.top()];
        let mut frontier = vec![s.top()];
        while let Some(cur) = frontier.pop() {
            let mut out = Vec::new();
            s.successors(cur, &mut out);
            for i in out {
                assert!(!seen.contains(&i), "duplicate successor index {i}");
                seen.push(i);
                frontier.push(i);
            }
        }
        assert_eq!(seen.len(), vals.len());
    }

    #[test]
    fn take2_children_are_never_lighter_than_parent() {
        let vals = [7.0, 3.0, 9.0, 1.0, 5.0, 2.0, 8.0, 4.0, 6.0];
        let cs = choices(&vals);
        let lookup: HashMap<NodeId, OrderedF64> = cs.iter().cloned().collect();
        let mut s = SuccState::<TropicalMin>::new(SuccessorKind::Take2, cs);
        let mut frontier = vec![s.top()];
        while let Some(cur) = frontier.pop() {
            let mut out = Vec::new();
            s.successors(cur, &mut out);
            for i in out {
                assert!(lookup[&node_at(&s, i)] >= lookup[&node_at(&s, cur)]);
                frontier.push(i);
            }
        }
    }
}
