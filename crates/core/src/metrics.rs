//! Lightweight instrumentation used by the experiment harness.
//!
//! The paper's evaluation reports time-to-first (TTF), time-to-k-th result
//! (TT(k)), time-to-last (TTL), and the delay between consecutive results.
//! [`EnumerationTrace`] records the clock reading at which each result was
//! produced and derives those quantities; it is deliberately minimal so that
//! recording adds only one [`Clock`] read per result.
//!
//! Time comes from the injectable [`anyk_obs::Clock`] — production traces
//! use the monotonic default, tests hand in a
//! [`ManualClock`](anyk_obs::ManualClock) and script exact delays. For
//! *serving-path* delay measurement (per-answer recording inside a live
//! cursor, flushed to shared per-plan histograms) see
//! [`anyk_obs::DelayRecorder`]; this trace keeps every emission time and so
//! suits offline runs, not million-answer production sessions.

use anyk_obs::{Clock, HistogramSnapshot, LocalHistogram, MonotonicClock};
use std::sync::Arc;
use std::time::Duration;

/// A recording of one ranked-enumeration run.
#[derive(Debug, Clone)]
pub struct EnumerationTrace {
    clock: Arc<dyn Clock>,
    origin_nanos: u64,
    /// Elapsed time (since construction) at which the i-th result was
    /// emitted.
    emit_times: Vec<Duration>,
}

impl Default for EnumerationTrace {
    fn default() -> Self {
        Self::new()
    }
}

impl EnumerationTrace {
    /// Start a new trace on the monotonic clock; the clock starts
    /// immediately.
    pub fn new() -> Self {
        Self::with_clock(Arc::new(MonotonicClock::new()))
    }

    /// Start a new trace on an injected clock (origin = the clock's reading
    /// at this call). A [`ManualClock`](anyk_obs::ManualClock) makes every
    /// derived statistic exactly scriptable.
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        let origin_nanos = clock.now_nanos();
        EnumerationTrace {
            clock,
            origin_nanos,
            emit_times: Vec::new(),
        }
    }

    /// Record that one more result has just been produced.
    pub fn record(&mut self) {
        let nanos = self.clock.now_nanos().saturating_sub(self.origin_nanos);
        self.emit_times.push(Duration::from_nanos(nanos));
    }

    /// Number of results recorded.
    pub fn count(&self) -> usize {
        self.emit_times.len()
    }

    /// Time-to-first result, if any result was produced.
    pub fn ttf(&self) -> Option<Duration> {
        self.emit_times.first().copied()
    }

    /// Time to the `k`-th result (1-based), if produced.
    pub fn tt(&self, k: usize) -> Option<Duration> {
        if k == 0 {
            return None;
        }
        self.emit_times.get(k - 1).copied()
    }

    /// Time-to-last result (equals `tt(count())`).
    pub fn ttl(&self) -> Option<Duration> {
        self.emit_times.last().copied()
    }

    /// Maximum delay between consecutive results (including the delay before
    /// the first one).
    pub fn max_delay(&self) -> Option<Duration> {
        if self.emit_times.is_empty() {
            return None;
        }
        let mut max = self.emit_times[0];
        for w in self.emit_times.windows(2) {
            max = max.max(w[1] - w[0]);
        }
        Some(max)
    }

    /// Mean delay between results (TTL divided by the number of results).
    pub fn mean_delay(&self) -> Option<Duration> {
        let ttl = self.ttl()?;
        Some(ttl / self.emit_times.len() as u32)
    }

    /// The consecutive-result delays folded into the shared log-bucketed
    /// histogram type ([`anyk_obs::HistogramSnapshot`]) — the same bucket
    /// math the serving path uses, so bench percentiles and service
    /// percentiles are directly comparable. The first result's delay is its
    /// TTF, matching [`EnumerationTrace::max_delay`].
    pub fn delay_histogram(&self) -> HistogramSnapshot {
        let mut hist = LocalHistogram::new();
        let mut prev = Duration::ZERO;
        for &t in &self.emit_times {
            let gap = t.saturating_sub(prev);
            hist.record(u64::try_from(gap.as_nanos()).unwrap_or(u64::MAX));
            prev = t;
        }
        hist.snapshot()
    }

    /// The full series of `(k, elapsed)` pairs — the exact data behind the
    /// "#results over time" plots (Figs. 10–13).
    pub fn series(&self) -> impl Iterator<Item = (usize, Duration)> + '_ {
        self.emit_times.iter().enumerate().map(|(i, d)| (i + 1, *d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyk_obs::ManualClock;

    fn traced(n: usize, limit: Option<usize>) -> (EnumerationTrace, usize) {
        let mut trace = EnumerationTrace::new();
        let mut produced = 0;
        for _ in 0..n {
            if let Some(l) = limit {
                if produced >= l {
                    break;
                }
            }
            trace.record();
            produced += 1;
        }
        (trace, produced)
    }

    #[test]
    fn trace_records_monotone_times() {
        let (trace, n) = traced(100, Some(10));
        assert_eq!(n, 10);
        assert_eq!(trace.count(), 10);
        assert!(trace.ttf().unwrap() <= trace.ttl().unwrap());
        assert_eq!(trace.tt(10), trace.ttl());
        assert!(trace.tt(11).is_none());
        assert!(trace.max_delay().is_some());
        assert!(trace.mean_delay().unwrap() <= trace.ttl().unwrap());
    }

    #[test]
    fn empty_trace_has_no_statistics() {
        let (trace, n) = traced(0, None);
        assert_eq!(n, 0);
        assert!(trace.ttf().is_none());
        assert!(trace.ttl().is_none());
        assert!(trace.max_delay().is_none());
        assert!(trace.delay_histogram().is_empty());
    }

    #[test]
    fn series_is_one_based_and_complete() {
        let (trace, _) = traced(5, None);
        let ks: Vec<usize> = trace.series().map(|(k, _)| k).collect();
        assert_eq!(ks, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn manual_clock_scripts_exact_delays() {
        // Regression: the trace used to call `Instant::now()` directly,
        // which made delay assertions non-deterministic. With the clock
        // threaded through, a scripted schedule yields exact statistics.
        let clock = Arc::new(ManualClock::new());
        let mut trace = EnumerationTrace::with_clock(clock.clone() as Arc<dyn Clock>);

        clock.advance(Duration::from_millis(7)); // TTF
        trace.record();
        clock.advance(Duration::from_millis(2));
        trace.record();
        clock.advance(Duration::from_millis(5));
        trace.record();
        clock.advance(Duration::from_millis(1));
        trace.record();

        assert_eq!(trace.ttf(), Some(Duration::from_millis(7)));
        assert_eq!(trace.tt(3), Some(Duration::from_millis(14)));
        assert_eq!(trace.ttl(), Some(Duration::from_millis(15)));
        assert_eq!(trace.max_delay(), Some(Duration::from_millis(7)));
        assert_eq!(
            trace.mean_delay(),
            Some(Duration::from_millis(15) / 4),
            "TTL / count exactly"
        );

        let hist = trace.delay_histogram();
        assert_eq!(hist.count(), 4);
        assert_eq!(hist.sum(), 15_000_000);
        assert_eq!(hist.max(), 7_000_000);
    }

    #[test]
    fn with_clock_origin_is_the_current_reading() {
        let clock = Arc::new(ManualClock::new());
        clock.advance(Duration::from_secs(100));
        let mut trace = EnumerationTrace::with_clock(clock.clone() as Arc<dyn Clock>);
        clock.advance(Duration::from_millis(3));
        trace.record();
        assert_eq!(
            trace.ttf(),
            Some(Duration::from_millis(3)),
            "elapsed is measured from construction, not the clock's origin"
        );
    }

    #[test]
    fn driving_a_trace_over_an_iterator_counts_and_limits() {
        // What the retired `trace_enumeration` helper did, written directly
        // against the surviving API: pull an iterator, record each item,
        // stop at the limit.
        let mut trace = EnumerationTrace::new();
        let mut produced = 0;
        for _ in 0..5 {
            if produced >= 3 {
                break;
            }
            trace.record();
            produced += 1;
        }
        assert_eq!(produced, 3);
        assert_eq!(trace.count(), 3);
    }
}
