//! Lightweight instrumentation used by the experiment harness.
//!
//! The paper's evaluation reports time-to-first (TTF), time-to-k-th result
//! (TT(k)), time-to-last (TTL), and the delay between consecutive results.
//! [`EnumerationTrace`] records the wall-clock time at which each result was
//! produced and derives those quantities; it is deliberately minimal so that
//! recording adds only an `Instant::now()` per result.

use std::time::{Duration, Instant};

/// A recording of one ranked-enumeration run.
#[derive(Debug, Clone)]
pub struct EnumerationTrace {
    start: Instant,
    /// Elapsed time (since `start`) at which the i-th result was emitted.
    emit_times: Vec<Duration>,
}

impl Default for EnumerationTrace {
    fn default() -> Self {
        Self::new()
    }
}

impl EnumerationTrace {
    /// Start a new trace; the clock starts immediately.
    pub fn new() -> Self {
        EnumerationTrace {
            start: Instant::now(),
            emit_times: Vec::new(),
        }
    }

    /// Record that one more result has just been produced.
    pub fn record(&mut self) {
        self.emit_times.push(self.start.elapsed());
    }

    /// Number of results recorded.
    pub fn count(&self) -> usize {
        self.emit_times.len()
    }

    /// Time-to-first result, if any result was produced.
    pub fn ttf(&self) -> Option<Duration> {
        self.emit_times.first().copied()
    }

    /// Time to the `k`-th result (1-based), if produced.
    pub fn tt(&self, k: usize) -> Option<Duration> {
        if k == 0 {
            return None;
        }
        self.emit_times.get(k - 1).copied()
    }

    /// Time-to-last result (equals `tt(count())`).
    pub fn ttl(&self) -> Option<Duration> {
        self.emit_times.last().copied()
    }

    /// Maximum delay between consecutive results (including the delay before
    /// the first one).
    pub fn max_delay(&self) -> Option<Duration> {
        if self.emit_times.is_empty() {
            return None;
        }
        let mut max = self.emit_times[0];
        for w in self.emit_times.windows(2) {
            max = max.max(w[1] - w[0]);
        }
        Some(max)
    }

    /// Mean delay between results (TTL divided by the number of results).
    pub fn mean_delay(&self) -> Option<Duration> {
        let ttl = self.ttl()?;
        Some(ttl / self.emit_times.len() as u32)
    }

    /// The full series of `(k, elapsed)` pairs — the exact data behind the
    /// "#results over time" plots (Figs. 10–13).
    pub fn series(&self) -> impl Iterator<Item = (usize, Duration)> + '_ {
        self.emit_times.iter().enumerate().map(|(i, d)| (i + 1, *d))
    }
}

/// Convenience: run `iter`, pulling at most `limit` items (or all if `None`),
/// and return the trace together with the number of items produced.
pub fn trace_enumeration<I: Iterator>(iter: I, limit: Option<usize>) -> (EnumerationTrace, usize) {
    let mut trace = EnumerationTrace::new();
    let mut produced = 0;
    for _item in iter {
        trace.record();
        produced += 1;
        if let Some(l) = limit {
            if produced >= l {
                break;
            }
        }
    }
    (trace, produced)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_records_monotone_times() {
        let (trace, n) = trace_enumeration(0..100, Some(10));
        assert_eq!(n, 10);
        assert_eq!(trace.count(), 10);
        assert!(trace.ttf().unwrap() <= trace.ttl().unwrap());
        assert_eq!(trace.tt(10), trace.ttl());
        assert!(trace.tt(11).is_none());
        assert!(trace.max_delay().is_some());
        assert!(trace.mean_delay().unwrap() <= trace.ttl().unwrap());
    }

    #[test]
    fn empty_trace_has_no_statistics() {
        let (trace, n) = trace_enumeration(std::iter::empty::<u8>(), None);
        assert_eq!(n, 0);
        assert!(trace.ttf().is_none());
        assert!(trace.ttl().is_none());
        assert!(trace.max_delay().is_none());
    }

    #[test]
    fn series_is_one_based_and_complete() {
        let (trace, _) = trace_enumeration(0..5, None);
        let ks: Vec<usize> = trace.series().map(|(k, _)| k).collect();
        assert_eq!(ks, vec![1, 2, 3, 4, 5]);
    }
}
