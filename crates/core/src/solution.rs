//! Solutions (ranked answers) produced by the enumeration algorithms.

use crate::dioid::Dioid;
use crate::tdp::{NodeId, TdpInstance};

/// A single T-DP solution: one state per non-root stage, plus its weight.
///
/// The states are listed in the instance's serial stage order
/// ([`TdpInstance::serial_order`]). Use [`Solution::witness`] to extract the
/// payloads (input-tuple identifiers) of the output stages, skipping
/// auxiliary stages such as equi-join value nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution<D: Dioid> {
    /// The solution's weight under the instance's dioid.
    pub weight: D::V,
    /// One state per non-root stage, in serial stage order.
    pub states: Vec<NodeId>,
}

impl<D: Dioid> Solution<D> {
    /// Create a solution from its states (serial order) and weight.
    pub fn new(weight: D::V, states: Vec<NodeId>) -> Self {
        Solution { weight, states }
    }

    /// The payloads of the states belonging to *output* stages, in serial
    /// stage order. This is the witness `(r₁, …, r_ℓ)` of the query answer.
    pub fn witness(&self, instance: &TdpInstance<D>) -> Vec<u64> {
        self.states
            .iter()
            .zip(instance.serial_order())
            .filter(|(_, sid)| instance.stage(**sid).is_output)
            .map(|(nid, _)| instance.payload(*nid))
            .collect()
    }

    /// Recompute the solution weight directly as the `⊗`-aggregate of its
    /// states' weights. Used by tests to validate the weights maintained
    /// incrementally by the enumeration algorithms.
    pub fn recompute_weight(&self, instance: &TdpInstance<D>) -> D::V {
        self.states
            .iter()
            .fold(D::one(), |acc, nid| D::times(&acc, instance.weight(*nid)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dioid::{OrderedF64, TropicalMin};
    use crate::tdp::TdpBuilder;

    #[test]
    fn witness_skips_non_output_stages() {
        let mut b = TdpBuilder::<TropicalMin>::new();
        let s1 = b.add_stage_under_root("r1", true);
        let v = b.add_stage("join-value", s1, false);
        let s2 = b.add_stage("r2", v, true);
        let a = b.add_state_with_payload(s1.index(), 1.0.into(), 10);
        let j = b.add_state_with_payload(v.index(), 0.0.into(), 999);
        let c = b.add_state_with_payload(s2.index(), 2.0.into(), 20);
        b.connect_root(a);
        b.connect(a, j);
        b.connect(j, c);
        let inst = b.build();
        let sol = Solution::<TropicalMin>::new(OrderedF64::from(3.0), vec![a, j, c]);
        assert_eq!(sol.witness(&inst), vec![10, 20]);
        assert_eq!(sol.recompute_weight(&inst), OrderedF64::from(3.0));
    }
}
