//! Fixed-size, allocation-free, lock-free log-bucketed latency histograms.
//!
//! The layout is log-linear (HDR-style): values below [`SUB_BUCKETS`] get one
//! exact bucket each; above that, every power of two is split into
//! [`SUB_BUCKETS`] linear sub-buckets. With 32 sub-buckets a bucket spans at
//! most 1/32 ≈ 3.1% of its value, so reporting the bucket midpoint is off by
//! at most ~1.6% — comfortably inside the "~2.5% relative error" budget — at
//! a fixed cost of [`NUM_BUCKETS`] = 1920 `u64` slots (15 KiB) covering the
//! full `u64` nanosecond range (0 ns … ~584 years) with no configuration.
//!
//! Two flavours share the bucket math:
//!
//! * [`LatencyHistogram`] — atomic, `&self`-recording, safe to hammer from
//!   many threads (`fetch_add(1, Relaxed)` per sample). Used for anything
//!   shared: per-plan TTF/delay/page distributions, the global page
//!   histogram.
//! * [`LocalHistogram`] — plain `u64`s for single-threaded recorders (the
//!   per-cursor delay recorder), where even relaxed atomics would be wasted
//!   work on the per-answer hot path.
//!
//! Both produce a [`HistogramSnapshot`], which is mergeable (bucket-wise
//! addition — associative and commutative) and answers percentile queries.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per power of two; also the threshold below which every value
/// has an exact bucket.
pub const SUB_BUCKETS: usize = 32;
const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros(); // 5

/// Total bucket count: one exact range plus 59 log ranges of 32 each.
pub const NUM_BUCKETS: usize = SUB_BUCKETS * (64 - SUB_BITS as usize + 1); // 1920

/// The bucket index a value lands in. Total order preserving: `a <= b`
/// implies `bucket_index(a) <= bucket_index(b)`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros(); // >= SUB_BITS
    let shift = msb - SUB_BITS;
    // `value >> shift` is in [SUB_BUCKETS, 2*SUB_BUCKETS).
    let sub = ((value >> shift) as usize) - SUB_BUCKETS;
    ((msb - SUB_BITS + 1) as usize) * SUB_BUCKETS + sub
}

/// The smallest value mapping to bucket `index`.
pub fn bucket_low(index: usize) -> u64 {
    debug_assert!(index < NUM_BUCKETS);
    if index < SUB_BUCKETS {
        return index as u64;
    }
    let msb = (index / SUB_BUCKETS - 1) as u32 + SUB_BITS;
    let sub = (index % SUB_BUCKETS) as u64;
    (SUB_BUCKETS as u64 + sub) << (msb - SUB_BITS)
}

/// The largest value mapping to bucket `index`.
pub fn bucket_high(index: usize) -> u64 {
    debug_assert!(index < NUM_BUCKETS);
    if index + 1 == NUM_BUCKETS {
        u64::MAX
    } else {
        bucket_low(index + 1) - 1
    }
}

/// The representative (midpoint) value reported for bucket `index`.
fn bucket_mid(index: usize) -> u64 {
    let low = bucket_low(index);
    low + (bucket_high(index) - low) / 2
}

/// A lock-free histogram: concurrent `record` calls never block, never
/// allocate, and are never lost (each is one relaxed `fetch_add` per
/// counter). Snapshots read whole `u64`s, so they are torn-read-free;
/// increments racing a snapshot land in either that snapshot or the next.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram (one fixed 15 KiB allocation, then allocation-free).
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        LatencyHistogram {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample (typically nanoseconds). Lock-free, allocation-free.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Bulk-merge primitive: add `n` samples to bucket `index` without
    /// touching the totals (callers follow up with [`Self::add_totals`]).
    pub(crate) fn add_bucket(&self, index: usize, n: u64) {
        self.buckets[index].fetch_add(n, Ordering::Relaxed);
    }

    /// Bulk-merge primitive: fold externally accumulated totals in.
    pub(crate) fn add_totals(&self, count: u64, sum: u64, max: u64) {
        self.count.fetch_add(count, Ordering::Relaxed);
        self.sum.fetch_add(sum, Ordering::Relaxed);
        self.max.fetch_max(max, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        // Derive the count from the buckets themselves so every snapshot is
        // internally consistent even while writers race the scan (`count` /
        // `sum` / `max` may momentarily run ahead of or behind the buckets).
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// The six-number summary served on the wire.
    pub fn summary(&self) -> HistogramSummary {
        self.snapshot().summary()
    }
}

/// A plain (non-atomic) histogram for single-threaded recorders: identical
/// bucket math to [`LatencyHistogram`] at plain-integer-add cost.
#[derive(Debug, Clone)]
pub struct LocalHistogram {
    buckets: Box<[u64]>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LocalHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalHistogram {
    /// An empty histogram (one fixed allocation at construction).
    pub fn new() -> Self {
        LocalHistogram {
            buckets: vec![0u64; NUM_BUCKETS].into_boxed_slice(),
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Record one sample. A handful of plain integer ops — this is the
    /// per-answer hot path of the delay recorder.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        // Wrap like the atomic `fetch_add` would: a sum of u64::MAX-scale
        // samples is already meaningless, but the two flavours must agree.
        self.sum = self.sum.wrapping_add(value);
        if value > self.max {
            self.max = value;
        }
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// A copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.to_vec(),
            count: self.count,
            sum: self.sum,
            max: self.max,
        }
    }

    pub(crate) fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    pub(crate) fn totals(&self) -> (u64, u64, u64) {
        (self.count, self.sum, self.max)
    }
}

/// An owned, mergeable copy of a histogram's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no samples.
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Samples in the snapshot.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (for means over exact totals).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample observed (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample value (0 if empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Fold `other` into `self` bucket-wise. Merging is associative and
    /// commutative, so shard/thread-local histograms can be combined in any
    /// order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q` in `(0, 1]`: the representative (midpoint)
    /// of the bucket holding the `ceil(q·count)`-th smallest sample, clamped
    /// to the observed maximum. Off from the true sample by at most one
    /// bucket width (≤ 1/32 of the value). Returns 0 for an empty snapshot.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_mid(i).min(self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// The six-number summary served on the wire.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            max: self.max,
            p50: self.p50(),
            p90: self.p90(),
            p99: self.p99(),
        }
    }
}

/// The fixed-width summary of one histogram: what crosses the wire in a
/// stats snapshot. All fields are plain `u64` nanosecond values, so the
/// encoding round-trips byte-exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample (exact).
    pub max: u64,
    /// Median (bucket midpoint).
    pub p50: u64,
    /// 90th percentile (bucket midpoint).
    pub p90: u64,
    /// 99th percentile (bucket midpoint).
    pub p99: u64,
}

impl HistogramSummary {
    /// Mean sample value (0 if empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_exhaustive() {
        // Exact range.
        for v in 0..SUB_BUCKETS as u64 {
            assert_eq!(bucket_index(v), v as usize);
        }
        // Boundaries: every bucket's low maps back to the bucket, and lows
        // are strictly increasing.
        let mut prev_low = None;
        for i in 0..NUM_BUCKETS {
            let low = bucket_low(i);
            assert_eq!(bucket_index(low), i, "low of bucket {i}");
            assert_eq!(bucket_index(bucket_high(i)), i, "high of bucket {i}");
            if let Some(p) = prev_low {
                assert!(low > p);
            }
            prev_low = Some(low);
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_relative_width_is_bounded() {
        for i in SUB_BUCKETS..NUM_BUCKETS - 1 {
            let low = bucket_low(i);
            let width = bucket_high(i) - low + 1;
            // Width is at most low/32: midpoint error ≤ ~1.6%.
            assert!(width as f64 <= low as f64 / SUB_BUCKETS as f64 + 1.0);
        }
    }

    #[test]
    fn percentiles_on_known_data() {
        let h = LatencyHistogram::new();
        for v in 1..=100u64 {
            h.record(v * 10); // 10, 20, ..., 1000 (some land in log buckets)
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.max(), 1000);
        assert_eq!(s.sum(), (1..=100u64).map(|v| v * 10).sum::<u64>());
        // p50 is the 50th sample = 500; allow one bucket of slack.
        let p50 = s.p50();
        let idx = bucket_index(500);
        assert!(p50 >= bucket_low(idx) && p50 <= bucket_high(idx), "{p50}");
        // p99 is the 99th sample = 990.
        let p99 = s.p99();
        let idx = bucket_index(990);
        assert!(p99 >= bucket_low(idx) && p99 <= bucket_high(idx), "{p99}");
    }

    #[test]
    fn local_and_atomic_agree() {
        let atomic = LatencyHistogram::new();
        let mut local = LocalHistogram::new();
        for v in [0, 1, 31, 32, 33, 1000, 123_456_789, u64::MAX] {
            atomic.record(v);
            local.record(v);
        }
        assert_eq!(atomic.snapshot(), local.snapshot());
    }

    #[test]
    fn merge_adds_counts_and_keeps_max() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record(10);
        a.record(20);
        b.record(1_000_000);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 3);
        assert_eq!(m.max(), 1_000_000);
        assert_eq!(m.sum(), 1_000_030);
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = LatencyHistogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.mean(), 0);
        assert_eq!(s, HistogramSnapshot::empty());
    }
}
