//! Phase-timing spans: where does the wall-clock go, per pipeline stage?
//!
//! The prep pipeline (index build → compile → bottom-up sweep), delta
//! refresh, snapshot rotation, and the wire's read/write halves each get a
//! process-global `(count, total_nanos, max_nanos)` accumulator. A
//! [`PhaseSpan`] is an RAII guard: construct it entering the phase, drop it
//! leaving; recording is two relaxed `fetch_add`s and one `fetch_max`, and
//! an unarmed span (recording switched off) costs one relaxed load.
//!
//! Phases may nest — [`Phase::Compile`] wholly contains
//! [`Phase::BottomUp`] and usually several [`Phase::IndexBuild`]s — so the
//! per-phase totals answer "how much time did stage X contribute", not "what
//! fraction of a disjoint pie is stage X".
//!
//! The accumulators are process-global statics rather than per-service
//! state so the leaf crates (storage's index build, core's bottom-up sweep)
//! can record without any plumbing through their APIs; a process hosting two
//! services sees their phases merged.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// An instrumented pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Phase {
    /// One `HashIndex::build` pass over a relation (storage layer).
    IndexBuild = 0,
    /// Whole-plan compilation: validation, join-tree / cycle-decomposition
    /// selection, T-DP compilation, bottom-up phase (engine layer).
    Compile = 1,
    /// The bottom-up dynamic-programming sweep (core layer).
    BottomUp = 2,
    /// Delta-maintenance of a cached plan (`PreparedQuery::refresh`).
    Refresh = 3,
    /// Snapshot rotation / delta ingestion under the service's rotation
    /// lock (`QueryService::ingest` / `rotate`).
    Rotation = 4,
    /// Reading one request frame off a connection (includes waiting for the
    /// client to send it, so idle connections inflate this phase's totals).
    WireRead = 5,
    /// Encoding and writing one response frame to a connection.
    WireWrite = 6,
    /// Hash-partitioning a database snapshot into shard databases
    /// (`Database::partition` driven by the engine's sharded preparation).
    ShardPartition = 7,
    /// One shard's compile + preprocess inside a sharded preparation; the
    /// per-shard spans overlap in wall-clock (they run under
    /// `std::thread::scope`), so this phase's total exceeds the elapsed
    /// prep time whenever sharding actually parallelises.
    ShardPrep = 8,
}

/// Number of phases (array sizing).
pub const PHASE_COUNT: usize = 9;

impl Phase {
    /// All phases in wire/display order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::IndexBuild,
        Phase::Compile,
        Phase::BottomUp,
        Phase::Refresh,
        Phase::Rotation,
        Phase::WireRead,
        Phase::WireWrite,
        Phase::ShardPartition,
        Phase::ShardPrep,
    ];

    /// Stable snake_case name (wire rendering, Prometheus labels).
    pub fn name(self) -> &'static str {
        match self {
            Phase::IndexBuild => "index_build",
            Phase::Compile => "compile",
            Phase::BottomUp => "bottom_up",
            Phase::Refresh => "refresh",
            Phase::Rotation => "rotation",
            Phase::WireRead => "wire_read",
            Phase::WireWrite => "wire_write",
            Phase::ShardPartition => "shard_partition",
            Phase::ShardPrep => "shard_prep",
        }
    }

    /// Inverse of the `repr(u8)` discriminant (wire decoding).
    pub fn from_u8(b: u8) -> Option<Phase> {
        Phase::ALL.get(b as usize).copied()
    }
}

struct PhaseCell {
    count: AtomicU64,
    total_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl PhaseCell {
    const fn new() -> Self {
        PhaseCell {
            count: AtomicU64::new(0),
            total_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
        }
    }
}

#[allow(clippy::declare_interior_mutable_const)]
const CELL_INIT: PhaseCell = PhaseCell::new();
static CELLS: [PhaseCell; PHASE_COUNT] = [CELL_INIT; PHASE_COUNT];

/// Start timing `phase`; the span records on drop. Returns an unarmed
/// (no-op) span when recording is switched off ([`crate::set_recording`]).
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub fn span(phase: Phase) -> PhaseSpan {
    PhaseSpan {
        phase,
        start: crate::recording_enabled().then(Instant::now),
    }
}

/// RAII guard for one phase execution (see [`span`]).
#[derive(Debug)]
pub struct PhaseSpan {
    phase: Phase,
    start: Option<Instant>,
}

impl Drop for PhaseSpan {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let cell = &CELLS[self.phase as usize];
            cell.count.fetch_add(1, Ordering::Relaxed);
            cell.total_nanos.fetch_add(nanos, Ordering::Relaxed);
            cell.max_nanos.fetch_max(nanos, Ordering::Relaxed);
        }
    }
}

/// A point-in-time reading of one phase's accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSnapshot {
    /// Which phase.
    pub phase: Phase,
    /// Completed spans.
    pub count: u64,
    /// Total nanoseconds across all spans.
    pub total_nanos: u64,
    /// Longest single span, nanoseconds.
    pub max_nanos: u64,
}

impl PhaseSnapshot {
    /// Mean span duration in nanoseconds (0 if no spans).
    pub fn mean_nanos(&self) -> u64 {
        self.total_nanos.checked_div(self.count).unwrap_or(0)
    }
}

/// Read every phase accumulator (in [`Phase::ALL`] order).
pub fn snapshot_phases() -> Vec<PhaseSnapshot> {
    Phase::ALL
        .iter()
        .map(|&phase| {
            let cell = &CELLS[phase as usize];
            PhaseSnapshot {
                phase,
                count: cell.count.load(Ordering::Relaxed),
                total_nanos: cell.total_nanos.load(Ordering::Relaxed),
                max_nanos: cell.max_nanos.load(Ordering::Relaxed),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(phase: Phase) -> PhaseSnapshot {
        snapshot_phases()
            .into_iter()
            .find(|p| p.phase == phase)
            .unwrap()
    }

    #[test]
    fn span_accumulates_count_and_time() {
        let _guard = crate::RECORDING_TEST_LOCK.lock().unwrap();
        crate::set_recording(true);
        // Globals are shared across parallel tests: assert deltas only.
        let before = read(Phase::Rotation);
        {
            let _s = span(Phase::Rotation);
            std::hint::black_box(0u64);
        }
        let after = read(Phase::Rotation);
        assert!(after.count > before.count);
        assert!(after.total_nanos >= before.total_nanos);
        assert!(after.max_nanos >= before.max_nanos);
    }

    #[test]
    fn phase_names_round_trip() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_u8(p as u8), Some(p));
        }
        assert_eq!(Phase::from_u8(PHASE_COUNT as u8), None);
        let names: std::collections::HashSet<_> = Phase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), PHASE_COUNT, "names are distinct");
    }
}
