//! Injectable time source for deadlines, delay recording, and event rings.
//!
//! Nothing on a measured path calls [`std::time::Instant::now`] directly:
//! every timestamp decision goes through a [`Clock`] handed in at
//! construction. Production uses [`MonotonicClock`] (process-monotonic,
//! immune to wall-clock steps); tests inject a [`ManualClock`] and *advance
//! time by hand*, which makes TTL expiry, idle reaping, delay assertions,
//! and every chaos schedule in the test suites fully deterministic — no
//! sleeps, no flakes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotone time source measured in nanoseconds from an arbitrary origin.
///
/// Implementations must be monotone non-decreasing across threads; the
/// absolute origin is irrelevant because consumers only ever compare
/// differences against configured [`Duration`]s.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Nanoseconds elapsed since the clock's origin.
    fn now_nanos(&self) -> u64;

    /// Convenience: the current reading as a [`Duration`] since the origin.
    fn now(&self) -> Duration {
        Duration::from_nanos(self.now_nanos())
    }
}

/// The production clock: [`Instant`]-backed, origin = construction time.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_nanos(&self) -> u64 {
        // Saturate rather than wrap: a u64 of nanoseconds spans ~584 years.
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A hand-cranked clock for deterministic tests: time only moves when
/// [`ManualClock::advance`] (or [`ManualClock::set_nanos`]) is called.
///
/// Share it via `Arc` and keep a second handle to drive it:
///
/// ```
/// use anyk_obs::{Clock, ManualClock};
/// use std::sync::Arc;
/// use std::time::Duration;
///
/// let clock = Arc::new(ManualClock::new());
/// assert_eq!(clock.now_nanos(), 0);
/// clock.advance(Duration::from_secs(30));
/// assert_eq!(clock.now(), Duration::from_secs(30));
/// ```
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    /// A clock frozen at its origin (reading 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Move time forward by `d`.
    pub fn advance(&self, d: Duration) {
        let d = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.nanos.fetch_add(d, Ordering::SeqCst);
    }

    /// Jump straight to an absolute reading (must not move backwards for
    /// the monotonicity contract to hold; this is not checked).
    pub fn set_nanos(&self, nanos: u64) {
        self.nanos.store(nanos, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_moves_forward() {
        let c = MonotonicClock::new();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_only_moves_by_hand() {
        let c = ManualClock::new();
        assert_eq!(c.now_nanos(), 0);
        assert_eq!(c.now_nanos(), 0, "frozen until advanced");
        c.advance(Duration::from_millis(5));
        assert_eq!(c.now(), Duration::from_millis(5));
        c.set_nanos(42);
        assert_eq!(c.now_nanos(), 42);
    }
}
