//! Per-cursor delay recording and the per-plan distribution registry.
//!
//! The paper's guarantees are *per answer*: TTF, TT(k), and bounded delay
//! between consecutive results. [`DelayRecorder`] measures exactly that at
//! the engine's expansion loop: one [`Clock`] read per answer plus a few
//! plain integer adds into a cursor-local [`LocalHistogram`] — no atomics,
//! no allocation, no locks on the hot path. At page boundaries (and on
//! drop) the recorder *flushes* the increment since the last flush into the
//! shared, atomic per-plan histograms ([`PlanObs`]), so service-wide stats
//! stay fresh without taxing the loop.
//!
//! Recording is gated by a process-wide runtime switch
//! ([`set_recording`] / [`recording_enabled`]), the knob the overhead
//! benchmark flips to prove instrumentation stays under its budget.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

use crate::hist::{HistogramSnapshot, HistogramSummary, LatencyHistogram, LocalHistogram};
use crate::Clock;

static RECORDING: AtomicBool = AtomicBool::new(true);

/// Turn per-answer delay recording and phase spans on or off process-wide.
/// Takes effect for cursors opened (and spans started) after the call.
pub fn set_recording(on: bool) {
    RECORDING.store(on, Ordering::Relaxed);
}

/// Whether recording is currently enabled (one relaxed load).
pub fn recording_enabled() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// The shared per-plan distributions: everything the stats endpoint reports
/// about one plan key. All histograms are lock-free ([`LatencyHistogram`]).
#[derive(Debug, Default)]
pub struct PlanObs {
    /// Time-to-first-answer per session (nanoseconds).
    pub ttf: LatencyHistogram,
    /// Delay between consecutive answers (nanoseconds; the first answer's
    /// delay is its TTF, matching `EnumerationTrace` semantics).
    pub delay: LatencyHistogram,
    /// Wall time of one `next_page` service call (nanoseconds).
    pub page: LatencyHistogram,
}

/// A decoded-side copy of one plan's summaries (see [`PlanRegistry::summaries`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanSummaries {
    /// TTF distribution summary.
    pub ttf: HistogramSummary,
    /// Inter-answer delay distribution summary.
    pub delay: HistogramSummary,
    /// Page service-latency distribution summary.
    pub page: HistogramSummary,
}

/// Get-or-insert registry of [`PlanObs`] keyed by canonical plan key.
///
/// Lookups happen at session open (cold path); the hot loop only ever
/// touches the `Arc<PlanObs>` it was handed. The map is unbounded but keyed
/// by *distinct prepared plans*, which the service's plan cache already
/// bounds in practice.
#[derive(Debug, Default)]
pub struct PlanRegistry {
    plans: RwLock<HashMap<String, Arc<PlanObs>>>,
}

impl PlanRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared observation block for `plan_key`, created on first use.
    pub fn handle(&self, plan_key: &str) -> Arc<PlanObs> {
        if let Some(p) = self.plans.read().unwrap().get(plan_key) {
            return Arc::clone(p);
        }
        let mut w = self.plans.write().unwrap();
        Arc::clone(w.entry(plan_key.to_string()).or_default())
    }

    /// Summaries for every plan, sorted by key (stable wire order).
    pub fn summaries(&self) -> Vec<(String, PlanSummaries)> {
        let r = self.plans.read().unwrap();
        let mut out: Vec<(String, PlanSummaries)> = r
            .iter()
            .map(|(k, p)| {
                (
                    k.clone(),
                    PlanSummaries {
                        ttf: p.ttf.summary(),
                        delay: p.delay.summary(),
                        page: p.page.summary(),
                    },
                )
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Number of plans observed so far.
    pub fn len(&self) -> usize {
        self.plans.read().unwrap().len()
    }

    /// Whether no plan has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Measures per-answer delay and TTF for one cursor.
///
/// Owned by the cursor (single-threaded); [`DelayRecorder::observe_answer`]
/// is the only hot call. A recorder optionally carries an `Arc<PlanObs>` —
/// the plan-wide sink its local counts are flushed into.
#[derive(Debug)]
pub struct DelayRecorder {
    clock: Arc<dyn Clock>,
    plan: Option<Arc<PlanObs>>,
    opened: u64,
    last: u64,
    ttf: Option<u64>,
    local: LocalHistogram,
    /// Flush bookkeeping: per-bucket counts already pushed to `plan`.
    flushed_buckets: Option<Box<[u64]>>,
    flushed_count: u64,
    flushed_sum: u64,
    flushed_ttf: bool,
}

impl DelayRecorder {
    /// Start recording now (the construction instant is the session-open
    /// reference for TTF). `plan` is the shared sink flushes feed, if any.
    pub fn new(clock: Arc<dyn Clock>, plan: Option<Arc<PlanObs>>) -> Self {
        let opened = clock.now_nanos();
        let flushed_buckets = plan
            .is_some()
            .then(|| vec![0u64; crate::hist::NUM_BUCKETS].into_boxed_slice());
        DelayRecorder {
            clock,
            plan,
            opened,
            last: opened,
            ttf: None,
            local: LocalHistogram::new(),
            flushed_buckets,
            flushed_count: 0,
            flushed_sum: 0,
            flushed_ttf: false,
        }
    }

    /// Record one produced answer: one clock read plus a handful of plain
    /// integer ops. The first answer's delay doubles as the TTF.
    #[inline]
    pub fn observe_answer(&mut self) {
        let now = self.clock.now_nanos();
        let gap = now.saturating_sub(self.last);
        self.last = now;
        if self.ttf.is_none() {
            self.ttf = Some(now.saturating_sub(self.opened));
        }
        self.local.record(gap);
    }

    /// Push everything recorded since the previous flush into the plan's
    /// shared histograms. Cold path: call at page boundaries. No-op without
    /// a plan sink.
    pub fn flush(&mut self) {
        let (Some(plan), Some(marks)) = (self.plan.as_deref(), self.flushed_buckets.as_deref_mut())
        else {
            return;
        };
        let (count, sum, max) = self.local.totals();
        if count > self.flushed_count {
            for (i, (&have, mark)) in self
                .local
                .buckets()
                .iter()
                .zip(marks.iter_mut())
                .enumerate()
            {
                let delta = have - *mark;
                if delta > 0 {
                    plan.delay.add_bucket(i, delta);
                    *mark = have;
                }
            }
            plan.delay.add_totals(
                count - self.flushed_count,
                sum.wrapping_sub(self.flushed_sum),
                max,
            );
            self.flushed_count = count;
            self.flushed_sum = sum;
        }
        if !self.flushed_ttf {
            if let Some(ttf) = self.ttf {
                plan.ttf.record(ttf);
                self.flushed_ttf = true;
            }
        }
    }

    /// The cursor-local delay distribution recorded so far (the first
    /// answer's delay is its TTF, matching `EnumerationTrace`).
    pub fn delays(&self) -> HistogramSnapshot {
        self.local.snapshot()
    }

    /// Time to first answer in nanoseconds, once one was produced.
    pub fn ttf_nanos(&self) -> Option<u64> {
        self.ttf
    }

    /// Answers observed so far.
    pub fn answers(&self) -> u64 {
        self.local.count()
    }
}

impl Drop for DelayRecorder {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ManualClock;
    use std::time::Duration;

    #[test]
    fn recorder_measures_exact_gaps_on_manual_clock() {
        let clock = Arc::new(ManualClock::new());
        let mut r = DelayRecorder::new(clock.clone() as Arc<dyn Clock>, None);
        clock.advance(Duration::from_micros(5));
        r.observe_answer(); // ttf = 5µs, first delay = 5µs
        clock.advance(Duration::from_micros(3));
        r.observe_answer(); // delay = 3µs
        clock.advance(Duration::from_micros(9));
        r.observe_answer(); // delay = 9µs
        assert_eq!(r.ttf_nanos(), Some(5_000));
        assert_eq!(r.answers(), 3);
        let d = r.delays();
        assert_eq!(d.count(), 3);
        assert_eq!(d.sum(), 17_000);
        assert_eq!(d.max(), 9_000);
    }

    #[test]
    fn flush_is_incremental_not_duplicating() {
        let clock = Arc::new(ManualClock::new());
        let plan = Arc::new(PlanObs::default());
        let mut r = DelayRecorder::new(clock.clone() as Arc<dyn Clock>, Some(Arc::clone(&plan)));
        clock.advance(Duration::from_micros(1));
        r.observe_answer();
        r.flush();
        clock.advance(Duration::from_micros(2));
        r.observe_answer();
        r.flush();
        r.flush(); // idempotent when nothing new happened
        drop(r); // drop flushes too — still no double counting
        let delay = plan.delay.snapshot();
        assert_eq!(delay.count(), 2);
        assert_eq!(delay.sum(), 3_000);
        assert_eq!(plan.ttf.snapshot().count(), 1, "TTF recorded exactly once");
    }

    #[test]
    fn registry_hands_out_one_block_per_key() {
        let reg = PlanRegistry::new();
        let a = reg.handle("path4");
        let b = reg.handle("path4");
        assert!(Arc::ptr_eq(&a, &b));
        let _ = reg.handle("star3");
        assert_eq!(reg.len(), 2);
        a.ttf.record(100);
        let sums = reg.summaries();
        assert_eq!(sums[0].0, "path4");
        assert_eq!(sums[1].0, "star3");
        assert_eq!(sums[0].1.ttf.count, 1);
    }

    #[test]
    fn recording_switch_toggles() {
        let _guard = crate::RECORDING_TEST_LOCK.lock().unwrap();
        assert!(recording_enabled(), "default is on");
        set_recording(false);
        assert!(!recording_enabled());
        set_recording(true);
        assert!(recording_enabled());
    }
}
