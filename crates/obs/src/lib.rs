//! # anyk-obs
//!
//! Observability primitives for the any-k query service — the measurement
//! side of the paper's *time guarantees* (Tziavelis et al., VLDB 2020:
//! TTF, TT(k), and bounded delay between consecutive ranked answers).
//!
//! The crate is dependency-free and sits at the very bottom of the
//! workspace DAG so that every layer — storage's index build, core's
//! bottom-up sweep, the engine's expansion loop, the service, the wire —
//! can record without cycles or plumbing. Four pieces:
//!
//! * [`hist`] — fixed-size, allocation-free, lock-free log-bucketed latency
//!   histograms ([`LatencyHistogram`], ~1.6% midpoint error, 15 KiB flat)
//!   with mergeable [`HistogramSnapshot`]s and p50/p90/p99/max summaries.
//! * [`phase`] — RAII [`phase::span`]s accumulating wall time per pipeline
//!   stage (index build → compile → bottom-up, refresh, rotation, wire
//!   read/write).
//! * [`ring`] — bounded per-session [`EventRing`]s of lifecycle events for
//!   post-mortem dumps.
//! * [`record`] — the per-cursor [`DelayRecorder`] (one [`Clock`] read per
//!   answer, plain integer adds, flushed to shared per-plan histograms at
//!   page boundaries) and the process-wide recording switch
//!   ([`set_recording`]).
//!
//! The injectable [`Clock`] (production [`MonotonicClock`], hand-cranked
//! [`ManualClock`] for deterministic tests) lives here too, re-exported by
//! `anyk-server` for compatibility.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clock;
pub mod hist;
pub mod phase;
pub mod record;
pub mod ring;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use hist::{HistogramSnapshot, HistogramSummary, LatencyHistogram, LocalHistogram};
pub use phase::{Phase, PhaseSnapshot, PhaseSpan};
pub use record::{
    recording_enabled, set_recording, DelayRecorder, PlanObs, PlanRegistry, PlanSummaries,
};
pub use ring::{Event, EventKind, EventRing};

/// Serialises tests that flip the global recording switch (and tests that
/// depend on it being on).
#[cfg(test)]
pub(crate) static RECORDING_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
