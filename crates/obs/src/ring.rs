//! Bounded per-session event rings for post-mortem debugging.
//!
//! Every session keeps its last *N* lifecycle events (open, page pulls,
//! cancellation, expiry, poison, sheds) with timestamps from the service's
//! injectable [`crate::Clock`]. The ring is plain data — it lives inside the
//! session's registry slot, which is already mutex-guarded — so pushing an
//! event is a couple of stores, and a misbehaving session's recent history
//! can be dumped after it has ended (the ring migrates into the session's
//! tombstone).

/// One kind of session-lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// Session admitted and opened (detail: charged MEM units).
    Open = 0,
    /// One page pull completed (detail: answers returned).
    Page = 1,
    /// Session cancelled by the client (detail: answers served in total).
    Cancel = 2,
    /// Session reaped by TTL or idle deadline (detail: answers served).
    Expire = 3,
    /// A page pull panicked; session poisoned (detail: answers served).
    Poison = 4,
    /// A page pull was shed by admission control (detail: unused, 0).
    Shed = 5,
    /// Session closed (detail: answers served in total).
    Close = 6,
}

impl EventKind {
    /// Stable snake_case name for rendering.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Open => "open",
            EventKind::Page => "page",
            EventKind::Cancel => "cancel",
            EventKind::Expire => "expire",
            EventKind::Poison => "poison",
            EventKind::Shed => "shed",
            EventKind::Close => "close",
        }
    }
}

/// One recorded session event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Clock reading when the event happened ([`crate::Clock::now_nanos`]).
    pub at_nanos: u64,
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific payload (see [`EventKind`] docs).
    pub detail: u64,
}

/// A fixed-capacity ring of the most recent [`Event`]s.
#[derive(Debug, Clone)]
pub struct EventRing {
    buf: Vec<Event>,
    cap: usize,
    /// Next write position once the ring is full.
    next: usize,
    /// Events ever pushed (≥ `buf.len()`; the difference is what was
    /// overwritten).
    total: u64,
}

impl EventRing {
    /// A ring keeping the last `capacity` events; `capacity == 0` disables
    /// recording entirely (every push is a no-op).
    pub fn new(capacity: usize) -> Self {
        EventRing {
            buf: Vec::with_capacity(capacity.min(1024)),
            cap: capacity,
            next: 0,
            total: 0,
        }
    }

    /// Record an event, evicting the oldest if full.
    pub fn record(&mut self, at_nanos: u64, kind: EventKind, detail: u64) {
        if self.cap == 0 {
            return;
        }
        let e = Event {
            at_nanos,
            kind,
            detail,
        };
        if self.buf.len() < self.cap {
            self.buf.push(e);
        } else {
            self.buf[self.next] = e;
            self.next = (self.next + 1) % self.cap;
        }
        self.total += 1;
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.buf.len());
        if self.buf.len() == self.cap && self.cap > 0 {
            out.extend_from_slice(&self.buf[self.next..]);
            out.extend_from_slice(&self.buf[..self.next]);
        } else {
            out.extend_from_slice(&self.buf);
        }
        out
    }

    /// Events ever recorded, including overwritten ones.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_most_recent_in_order() {
        let mut r = EventRing::new(3);
        for i in 0..5u64 {
            r.record(i, EventKind::Page, i * 10);
        }
        let ev = r.events();
        assert_eq!(r.total(), 5);
        assert_eq!(ev.len(), 3);
        assert_eq!(
            ev.iter().map(|e| e.at_nanos).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "oldest first, oldest two evicted"
        );
    }

    #[test]
    fn partial_ring_preserves_insertion_order() {
        let mut r = EventRing::new(8);
        r.record(1, EventKind::Open, 0);
        r.record(2, EventKind::Page, 7);
        let ev = r.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].kind, EventKind::Open);
        assert_eq!(ev[1].detail, 7);
    }

    #[test]
    fn zero_capacity_disables_recording() {
        let mut r = EventRing::new(0);
        r.record(1, EventKind::Open, 0);
        assert_eq!(r.total(), 0);
        assert!(r.events().is_empty());
    }
}
