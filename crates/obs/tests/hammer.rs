//! Concurrency hammer for the lock-free histogram: many writer threads,
//! snapshots racing the writers, and an exact accounting check at the end —
//! no lost increments, no torn reads.

use anyk_obs::LatencyHistogram;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

#[test]
fn concurrent_recording_loses_nothing() {
    const WRITERS: usize = 8;
    const PER_WRITER: u64 = 50_000;

    let hist = Arc::new(LatencyHistogram::new());
    let stop = Arc::new(AtomicBool::new(false));

    // A snapshot reader racing the writers: every snapshot it takes must be
    // internally consistent (count == bucket sum, monotone non-decreasing
    // totals) even while increments land mid-scan.
    let reader = {
        let hist = Arc::clone(&hist);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut last_count = 0u64;
            let mut snaps = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let s = hist.snapshot();
                assert!(
                    s.count() >= last_count,
                    "snapshot count went backwards: {} -> {}",
                    last_count,
                    s.count()
                );
                assert!(s.count() <= WRITERS as u64 * PER_WRITER);
                if !s.is_empty() {
                    let p99 = s.p99();
                    assert!(p99 <= s.max(), "p99 {} above observed max {}", p99, s.max());
                }
                last_count = s.count();
                snaps += 1;
            }
            snaps
        })
    };

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let hist = Arc::clone(&hist);
            std::thread::spawn(move || {
                // Deterministic per-writer values spanning linear and log
                // buckets; an xorshift keeps them spread without `rand`.
                let mut x = (w as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let mut sum = 0u64;
                let mut max = 0u64;
                for _ in 0..PER_WRITER {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let v = x % 3_000_000; // up to 3ms in nanos
                    hist.record(v);
                    sum += v;
                    max = max.max(v);
                }
                (sum, max)
            })
        })
        .collect();

    let mut expect_sum = 0u64;
    let mut expect_max = 0u64;
    for w in writers {
        let (sum, max) = w.join().unwrap();
        expect_sum += sum;
        expect_max = expect_max.max(max);
    }
    stop.store(true, Ordering::Relaxed);
    let snaps = reader.join().unwrap();
    assert!(snaps > 0, "reader took at least one racing snapshot");

    let finished = hist.snapshot();
    assert_eq!(
        finished.count(),
        WRITERS as u64 * PER_WRITER,
        "every increment landed"
    );
    assert_eq!(finished.sum(), expect_sum, "sums are exact, not sampled");
    assert_eq!(finished.max(), expect_max);
    assert_eq!(hist.count(), WRITERS as u64 * PER_WRITER);
}

#[test]
fn concurrent_merge_of_thread_local_histograms() {
    // The shard pattern: each thread records into its own histogram, the
    // coordinator merges snapshots. The merged result must equal one
    // histogram fed everything.
    const THREADS: usize = 4;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                let local = LatencyHistogram::new();
                for i in 0..10_000u64 {
                    local.record(i * (t as u64 + 1));
                }
                local.snapshot()
            })
        })
        .collect();

    let reference = LatencyHistogram::new();
    for t in 0..THREADS as u64 {
        for i in 0..10_000u64 {
            reference.record(i * (t + 1));
        }
    }

    let mut merged = anyk_obs::HistogramSnapshot::empty();
    for h in handles {
        merged.merge(&h.join().unwrap());
    }
    assert_eq!(merged, reference.snapshot());
}
