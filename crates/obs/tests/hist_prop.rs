//! Property tests for the log-bucketed histogram against a naive
//! sorted-vec oracle: percentiles must land within one bucket of the exact
//! sample, and merging must be associative (bucket-wise addition).

use anyk_obs::hist::{bucket_high, bucket_index, bucket_low, LatencyHistogram};
use anyk_obs::HistogramSnapshot;
use proptest::prelude::*;

/// Exact percentile on raw samples, same rank convention as the histogram:
/// the `ceil(q·n)`-th smallest sample (1-based, clamped to [1, n]).
fn oracle_percentile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let n = sorted.len() as f64;
    let rank = ((q * n).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn snapshot_of(samples: &[u64]) -> HistogramSnapshot {
    let h = LatencyHistogram::new();
    for &v in samples {
        h.record(v);
    }
    h.snapshot()
}

/// Mixed-magnitude sample strategy: exact-range values, microsecond-ish,
/// and second-ish values, so both linear and log buckets are exercised.
fn samples() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec((0u64..3u64, 0u64..5_000_000_000u64), 1..400).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(band, v)| match band {
                0 => v % 64,
                1 => v % 100_000,
                _ => v,
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn percentiles_match_oracle_within_one_bucket(samples in samples()) {
        let snap = snapshot_of(&samples);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        prop_assert_eq!(snap.count(), samples.len() as u64);
        prop_assert_eq!(snap.max(), *sorted.last().unwrap());
        for &q in &[0.01, 0.25, 0.50, 0.90, 0.99, 1.0] {
            let exact = oracle_percentile(&sorted, q);
            let approx = snap.percentile(q);
            // Same rank convention on both sides, so the approximation is
            // the midpoint of the exact sample's bucket (clamped to max):
            // the error is bounded by that bucket's width.
            let idx = bucket_index(exact);
            let width = bucket_high(idx) - bucket_low(idx);
            let err = approx.abs_diff(exact);
            prop_assert!(
                err <= width.max(1),
                "q={} exact={} approx={} err={} > bucket width {}",
                q, exact, approx, err, width
            );
        }
    }

    #[test]
    fn merge_is_associative_and_matches_concatenation(
        a in samples(),
        b in samples(),
        c in samples(),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));

        // (a ∪ b) ∪ c == a ∪ (b ∪ c)
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);

        // …and both equal the histogram of the concatenated samples.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        let direct = snapshot_of(&all);
        prop_assert_eq!(&left, &direct);

        // Percentiles of the merged snapshot still track the oracle.
        all.sort_unstable();
        let exact = oracle_percentile(&all, 0.99);
        let idx = bucket_index(exact);
        let width = bucket_high(idx) - bucket_low(idx);
        prop_assert!(left.percentile(0.99).abs_diff(exact) <= width.max(1));
    }

    #[test]
    fn bucket_index_is_monotone(a in proptest::arbitrary::any::<u64>(), b in proptest::arbitrary::any::<u64>()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
        // Every value sits inside its own bucket's bounds.
        let idx = bucket_index(a);
        prop_assert!(bucket_low(idx) <= a && a <= bucket_high(idx));
    }
}
