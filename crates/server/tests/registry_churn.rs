//! Randomized registry churn: many threads open/page/cancel/close sessions
//! in seeded-random interleavings while the main thread samples metrics.
//! Invariants under all interleavings: no leaked registry slots, every
//! counter monotone across snapshots, every opened session in exactly one
//! terminal bucket, and the MEM(k) gauge back to zero at the end.

use anyk_server::{QueryService, ServiceMetrics, SessionId};
use anyk_storage::{Database, Relation};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn churn_db() -> Database {
    let mut db = Database::new();
    let mut r1 = Relation::new("R1", 2);
    let mut r2 = Relation::new("R2", 2);
    // A modest join fan-out so streams have a few dozen answers.
    for i in 0..30u64 {
        r1.push_edge(i, i % 5, (i % 7) as f64);
        r2.push_edge(i % 5, i, (i % 11) as f64);
    }
    db.add(r1);
    db.add(r2);
    db
}

const QUERIES: [&str; 3] = [
    "Q(x, y, z) :- R1(x, y), R2(y, z)",
    "Q(x, y, z) :- R1(x, y), R2(y, z) via lazy limit 40",
    "Q(x, y, z) :- R1(x, y), R2(y, z), y = 2 via recursive",
];

fn assert_monotone(prev: &ServiceMetrics, next: &ServiceMetrics) {
    let pairs = [
        (prev.sessions_opened, next.sessions_opened, "opened"),
        (prev.sessions_closed, next.sessions_closed, "closed"),
        (prev.sessions_shed, next.sessions_shed, "shed"),
        (prev.sessions_expired, next.sessions_expired, "expired"),
        (
            prev.sessions_cancelled,
            next.sessions_cancelled,
            "cancelled",
        ),
        (prev.sessions_poisoned, next.sessions_poisoned, "poisoned"),
        (prev.pages_served, next.pages_served, "pages"),
        (prev.answers_served, next.answers_served, "answers"),
        (prev.plan_hits, next.plan_hits, "plan_hits"),
        (prev.plan_misses, next.plan_misses, "plan_misses"),
        (prev.plan_evictions, next.plan_evictions, "plan_evictions"),
        (
            prev.peak_mem_resident_units,
            next.peak_mem_resident_units,
            "peak_mem",
        ),
    ];
    for (a, b, name) in pairs {
        assert!(b >= a, "counter {name} went backwards: {a} -> {b}");
    }
}

#[test]
fn randomized_churn_leaks_no_sessions_and_keeps_metrics_monotone() {
    let service = Arc::new(QueryService::new(churn_db()));
    let running = Arc::new(AtomicBool::new(true));
    const THREADS: u64 = 4;
    const OPS: usize = 400;

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let svc = Arc::clone(&service);
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0xCAFE + t);
                let mut mine: Vec<SessionId> = Vec::new();
                let mut buf = Vec::new();
                for _ in 0..OPS {
                    match rng.gen_range(0..100u32) {
                        // Open (sessions are never shed here: no caps set).
                        0..=24 => {
                            let q = QUERIES[rng.gen_range(0..QUERIES.len())];
                            mine.push(svc.open_session_text(q).expect("uncapped open"));
                        }
                        // Page a random one of ours (possibly ended).
                        25..=69 => {
                            if let Some(&id) = mine.get(rng.gen_range(0..mine.len().max(1))) {
                                let _ = svc.next_page_into(id, rng.gen_range(1usize..8), &mut buf);
                            }
                        }
                        // Cancel without closing (tombstone stays).
                        70..=79 => {
                            if let Some(&id) = mine.get(rng.gen_range(0..mine.len().max(1))) {
                                let _ = svc.cancel_session(id);
                            }
                        }
                        // Close (active or tombstoned — slot must go).
                        80..=94 => {
                            if !mine.is_empty() {
                                let id = mine.swap_remove(rng.gen_range(0..mine.len()));
                                assert!(svc.close_session(id), "ids are never stale here");
                            }
                        }
                        // Status probe.
                        _ => {
                            if let Some(&id) = mine.get(rng.gen_range(0..mine.len().max(1))) {
                                let _ = svc.session_status(id);
                            }
                        }
                    }
                }
                // Every thread cleans up everything it opened.
                for id in mine {
                    assert!(svc.close_session(id));
                }
            })
        })
        .collect();

    // Sample metrics concurrently: every snapshot must be internally
    // consistent and counter-monotone relative to the previous one.
    let mut prev = service.metrics();
    let mut samples = 0u32;
    while running.load(Ordering::Relaxed) && workers.iter().any(|w| !w.is_finished()) {
        let next = service.metrics();
        assert_monotone(&prev, &next);
        assert!(
            next.sessions_opened
                >= next.sessions_closed
                    + next.sessions_expired
                    + next.sessions_cancelled
                    + next.sessions_poisoned,
            "terminal buckets can never exceed opens: {next:?}"
        );
        prev = next;
        samples += 1;
        std::thread::yield_now();
    }
    for w in workers {
        w.join().expect("worker panicked");
    }
    assert!(samples > 0);

    let m = service.metrics();
    assert_eq!(service.tracked_sessions(), 0, "no leaked registry slots");
    assert_eq!(m.active_sessions, 0);
    assert_eq!(m.pages_in_flight, 0);
    assert_eq!(m.mem_resident_units, 0, "all MEM(k) charges returned");
    assert_eq!(
        m.sessions_opened,
        m.sessions_closed + m.sessions_cancelled + m.sessions_expired + m.sessions_poisoned,
        "every opened session landed in exactly one terminal bucket: {m:?}"
    );
    assert_eq!(m.sessions_poisoned, 0, "no faults armed, no panics");
    assert_eq!(m.sessions_expired, 0, "no deadlines configured");
    // The service still works after the storm.
    let id = service.open_session_text(QUERIES[0]).unwrap();
    assert!(!service.next_page(id, 5).unwrap().answers.is_empty());
    service.close_session(id);
}
