//! Network chaos: the `net.*` failpoint sites, a slow-loris client, a
//! mid-page client kill, and graceful shutdown under full client load.
//!
//! The invariants mirror `tests/chaos.rs`, extended across the socket:
//! whatever one connection suffers — injected faults, byte-dribbling,
//! abrupt death — **neighbour connections stream bit-identical pages**, no
//! Governor slot leaks, and the MEM gauge returns to zero once the wreckage
//! drains.

use anyk_datagen::uniform::path_or_star_database;
use anyk_server::faults::{self, FaultPlan, Trigger};
use anyk_server::net::{AnyKClient, AnyKServer, ClientConfig, ClientError, NetConfig, WireError};
use anyk_server::{Answer, QueryService, ServiceConfig};
use anyk_storage::Database;
use rand::{rngs::SmallRng, SeedableRng};
use std::io::Write;
use std::net::TcpStream;
use std::sync::{Arc, Mutex, Once};
use std::time::{Duration, Instant};

const QUERY: &str = "Q(a, b, c, d) :- R1(a, b), R2(b, c), R3(c, d)";

/// The failpoint registry is process-global; serialize every test in this
/// file across its whole body (same rationale as tests/chaos.rs).
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static SERIAL: Mutex<()> = Mutex::new(());
    SERIAL
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn quiet_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("failpoint") {
                default(info);
            }
        }));
    });
}

fn wide_db() -> Database {
    let mut rng = SmallRng::seed_from_u64(0xBEEF_CAFE);
    path_or_star_database(3, 40, &mut rng)
}

fn start_server(net: NetConfig) -> (Arc<QueryService>, AnyKServer) {
    let service = Arc::new(QueryService::with_config(
        wide_db(),
        ServiceConfig::default(),
    ));
    let server = AnyKServer::bind(Arc::clone(&service), ("127.0.0.1", 0), net).unwrap();
    (service, server)
}

fn client_for(server: &AnyKServer) -> AnyKClient {
    AnyKClient::connect(
        server.local_addr(),
        ClientConfig {
            read_timeout: Duration::from_secs(10),
            initial_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(50),
            ..ClientConfig::default()
        },
    )
}

/// Reference stream, computed in-process once per test.
fn reference_stream(service: &QueryService, text: &str) -> Vec<Answer> {
    let id = service.open_session_text(text).unwrap();
    let mut all = Vec::new();
    loop {
        let page = service.next_page(id, 500).unwrap();
        let done = page.done;
        all.extend(page.answers);
        if done {
            break;
        }
    }
    service.close_session(id);
    all
}

/// Wait (bounded) for the server to reap disconnected sessions, then assert
/// the gauges drained.
fn assert_drained(service: &QueryService) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        let m = service.metrics();
        if m.active_sessions == 0 && m.mem_resident_units == 0 {
            assert_eq!(m.pages_in_flight, 0, "all page permits returned: {m:?}");
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("gauges never drained: {:?}", service.metrics());
}

#[test]
fn net_read_fault_is_typed_then_contained_and_neighbours_stream_on() {
    let _serial = serial();
    quiet_injected_panics();
    let (service, mut server) = start_server(NetConfig::default());
    let text = format!("{QUERY} via lazy");
    let reference = reference_stream(&service, &text);

    // Error action: the victim's next read "fails"; it gets the typed fault
    // frame and the connection closes, reaping its session.
    {
        let mut victim = client_for(&server);
        let session = victim.open_session(&text).unwrap();
        let _ = victim.next_page(session, 3).unwrap();
        let guard = faults::install(FaultPlan::new().error("net.read", Trigger::Always));
        match victim.next_page(session, 3) {
            Err(ClientError::Remote(WireError::Fault(site))) => assert_eq!(site, "net.read"),
            // The fault can also race the frame write; a dropped connection
            // is equally contained.
            Err(ClientError::Io(_)) => {}
            other => panic!("expected typed fault or drop, got {other:?}"),
        }
        drop(guard);
        assert!(guard_hits_ok(&service, &text, &reference, &server));
    }
    assert_drained(&service);

    // Panic action: contained by the worker's catch_unwind — the victim's
    // connection dies, the worker (and its neighbours) keep serving.
    {
        let mut victim = client_for(&server);
        let session = victim.open_session(&text).unwrap();
        let _ = victim.next_page(session, 3).unwrap();
        let guard = faults::install(FaultPlan::new().panic("net.read", Trigger::Always));
        assert!(victim.next_page(session, 3).is_err());
        drop(guard);
        assert!(guard_hits_ok(&service, &text, &reference, &server));
    }
    assert_drained(&service);
    server.shutdown();
}

/// Post-fault health probe: a fresh client must stream the full reference,
/// bit-identically.
fn guard_hits_ok(
    service: &QueryService,
    text: &str,
    reference: &[Answer],
    server: &AnyKServer,
) -> bool {
    let mut probe = client_for(server);
    let got = probe.collect_all(text, 64).unwrap();
    assert_eq!(got, reference, "neighbour stream must be bit-identical");
    for (a, b) in got.iter().zip(reference) {
        assert_eq!(a.weight().to_bits(), b.weight().to_bits());
    }
    let _ = service;
    true
}

#[test]
fn net_write_fault_drops_the_reply_and_reaps_the_session() {
    let _serial = serial();
    quiet_injected_panics();
    let (service, mut server) = start_server(NetConfig::default());
    let text = format!("{QUERY} via take2");
    let reference = reference_stream(&service, &text);

    for panic_action in [false, true] {
        let mut victim = client_for(&server);
        let session = victim.open_session(&text).unwrap();
        let _ = victim.next_page(session, 2).unwrap();
        let plan = if panic_action {
            FaultPlan::new().panic("net.write", Trigger::Always)
        } else {
            FaultPlan::new().error("net.write", Trigger::Always)
        };
        let guard = faults::install(plan);
        // The page is pulled server-side but its reply "fails" to write:
        // from the client it is a dead connection, from the server a
        // disconnect that closes the session.
        assert!(victim.next_page(session, 2).is_err());
        drop(guard);
        assert!(guard_hits_ok(&service, &text, &reference, &server));
        assert_drained(&service);
    }
    server.shutdown();
}

#[test]
fn net_accept_fault_drops_new_connections_but_spares_established_ones() {
    let _serial = serial();
    quiet_injected_panics();
    let (service, mut server) = start_server(NetConfig::default());
    let text = format!("{QUERY} via eager");
    let reference = reference_stream(&service, &text);

    let mut established = client_for(&server);
    let session = established.open_session(&text).unwrap();
    let first = established.next_page(session, 5).unwrap();
    assert_eq!(first.answers[..], reference[..5]);

    let mut offset = 5;
    for panic_action in [false, true] {
        let plan = if panic_action {
            FaultPlan::new().panic("net.accept", Trigger::Always)
        } else {
            FaultPlan::new().error("net.accept", Trigger::Always)
        };
        let guard = faults::install(plan);
        // New connections are dropped pre-handshake (the dial itself
        // succeeds in the kernel; the first exchange dies)...
        let mut newcomer = AnyKClient::connect(
            server.local_addr(),
            ClientConfig {
                max_retries: 1,
                ..ClientConfig::default()
            },
        );
        assert!(newcomer.ping().is_err(), "accept fault must drop newcomers");
        // ...while the established connection pages on, mid-stream.
        let next = established.next_page(session, 5).unwrap();
        assert_eq!(next.answers[..], reference[offset..offset + 5]);
        offset += 5;
        drop(guard);
    }
    // Disarmed: newcomers connect again, and the accept thread survived the
    // panic action.
    assert!(guard_hits_ok(&service, &text, &reference, &server));
    assert!(established.close(session).unwrap());
    assert_drained(&service);
    let m = service.metrics();
    assert!(m.connections_accepted >= 2, "{m:?}");
    server.shutdown();
}

#[test]
fn slow_loris_is_cut_at_the_frame_deadline_while_neighbours_stream() {
    let _serial = serial();
    let (service, mut server) = start_server(NetConfig {
        frame_deadline: Duration::from_millis(200),
        ..NetConfig::default()
    });
    let text = format!("{QUERY} via all");
    let reference = reference_stream(&service, &text);

    // The loris: dribbles a syntactically valid OpenSession frame one byte
    // at a time, far slower than the frame deadline allows.
    let addr = server.local_addr();
    let loris = std::thread::spawn(move || {
        let mut s = TcpStream::connect(addr).unwrap();
        let payload = b"Q(a, b, c, d) :- R1(a, b), R2(b, c), R3(c, d)";
        let mut frame = vec![0xA7u8, 1, 0x03, 0];
        frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        frame.extend_from_slice(payload);
        let mut fed = 0usize;
        for byte in frame {
            if s.write_all(&[byte]).is_err() {
                break; // server cut us off
            }
            let _ = s.flush();
            fed += 1;
            std::thread::sleep(Duration::from_millis(40));
        }
        fed
    });

    // While the loris dribbles, a neighbour streams the whole query —
    // bit-identically and without waiting on the loris's worker.
    let mut neighbour = client_for(&server);
    let got = neighbour.collect_all(&text, 32).unwrap();
    assert_eq!(got, reference);

    // Kernel buffering means a few writes can "succeed" after the cut, so
    // `fed` is diagnostic only; the cut itself shows up as a read timeout.
    let fed = loris.join().unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while service.metrics().net_read_timeouts == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let m = service.metrics();
    assert!(
        m.net_read_timeouts >= 1,
        "loris (cut after {fed} bytes) counted as a read timeout: {m:?}"
    );
    assert_eq!(m.sessions_opened, m.sessions_closed, "loris opened nothing");
    assert_drained(&service);
    server.shutdown();
}

#[test]
fn mid_page_client_kill_reaps_sessions_while_neighbours_stream() {
    let _serial = serial();
    let (service, mut server) = start_server(NetConfig::default());
    let text = format!("{QUERY} via recursive");
    let reference = reference_stream(&service, &text);

    // The victim opens two sessions, pulls some pages, and vanishes without
    // closing anything (process-kill semantics: the socket just dies).
    let mut victim = client_for(&server);
    let s1 = victim.open_session(&text).unwrap();
    let s2 = victim.open_session(&text).unwrap();
    let _ = victim.next_page(s1, 10).unwrap();
    let _ = victim.next_page(s2, 10).unwrap();
    assert_eq!(service.metrics().active_sessions, 2);
    victim.disconnect();

    // Concurrent neighbours stream bit-identical pages throughout.
    let mut handles = Vec::new();
    for i in 0..4 {
        let addr = server.local_addr();
        let text = text.clone();
        let reference = reference.clone();
        handles.push(std::thread::spawn(move || {
            let mut c = AnyKClient::connect(
                addr,
                ClientConfig {
                    initial_backoff: Duration::from_millis(2),
                    ..ClientConfig::default()
                },
            );
            let got = c.collect_all(&text, 16 + i).unwrap();
            assert_eq!(got, reference);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_drained(&service);
    server.shutdown();
    let m = service.metrics();
    assert_eq!(m.mem_resident_units, 0, "{m:?}");
}

#[test]
fn graceful_shutdown_under_load_drains_and_zeroes_the_mem_gauge() {
    let _serial = serial();
    // Workers == clients: every connection is being actively served when
    // the plug is pulled (a smaller pool would just park the surplus
    // connections in the accept queue, where shutdown answers them with
    // `ErrShuttingDown` — a different, less demanding drain path).
    let (service, mut server) = start_server(NetConfig {
        workers: 16,
        ..NetConfig::default()
    });
    let text = format!("{QUERY} via lazy");
    let _warm = reference_stream(&service, &text); // plan compiled once

    // 16 clients stream pages in a loop until the server goes away.
    let stop_barrier = Arc::new(std::sync::Barrier::new(17));
    let mut handles = Vec::new();
    for _ in 0..16 {
        let addr = server.local_addr();
        let text = text.clone();
        let barrier = Arc::clone(&stop_barrier);
        handles.push(std::thread::spawn(move || {
            let mut c = AnyKClient::connect(
                addr,
                ClientConfig {
                    initial_backoff: Duration::from_millis(1),
                    max_retries: 1, // no redial storms once the server is gone
                    ..ClientConfig::default()
                },
            );
            let mut started = false;
            'outer: while let Ok(session) = c.open_session(&text) {
                loop {
                    if !started {
                        // First page in flight: release the main thread to
                        // pull the plug mid-stream.
                        started = true;
                        barrier.wait();
                    }
                    match c.next_page(session, 7) {
                        Ok(page) if page.done => break,
                        Ok(_) => {}
                        Err(_) => break 'outer,
                    }
                }
                let _ = c.close(session);
            }
        }));
    }
    // Every client is mid-page; shut down under full load.
    stop_barrier.wait();
    let t0 = Instant::now();
    server.shutdown();
    let drain = t0.elapsed();
    assert!(
        drain < Duration::from_secs(30),
        "shutdown drained in {drain:?}, expected well under its deadline"
    );
    for h in handles {
        h.join().unwrap(); // no wedged client threads
    }
    let m = service.metrics();
    assert_eq!(m.active_sessions, 0, "all sessions closed on drain: {m:?}");
    assert_eq!(m.mem_resident_units, 0, "MEM gauge back to zero: {m:?}");
    assert_eq!(m.pages_in_flight, 0, "{m:?}");
    assert!(m.connections_drained_on_shutdown >= 1, "{m:?}");
    assert_eq!(
        m.sessions_opened,
        m.sessions_closed + m.sessions_cancelled + m.sessions_expired + m.sessions_poisoned,
        "every session landed in a lifecycle bucket: {m:?}"
    );
}
