//! Differential suite for sharded serving: a service configured to shard
//! its plans must stay answer-for-answer interchangeable with an unsharded
//! service and with a rebuild from scratch, *across randomized delta
//! ingestion*. Each round applies the same random [`DeltaBatch`] to a
//! sharded service (per-shard refresh), an unsharded service (single-plan
//! refresh), and a fresh service over the post-delta snapshot (rebuild),
//! then compares the three ranked streams bit-for-bit — weights, values,
//! witnesses, and order. Weights are random and distinct, so the ranked
//! order is unique and the comparison is exact.
//!
//! CI runs this file twice: once with `ANYK_THREADS=1` (serial per-shard
//! preprocessing) and once at the machine default, so the merge cannot hide
//! a thread-count-dependent ordering bug.

use anyk_server::{Answer, QueryService, ServiceConfig, SessionId};
use anyk_storage::{Database, DeltaBatch, Relation, Tuple, Value};
use std::collections::HashSet;
use std::sync::Arc;

const QUERY: &str = "Q(x, y, z) :- R1(x, y), R2(y, z)";

/// Deterministic xorshift64* so failures reproduce from the seed alone.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Globally distinct random weights — the ranked order is unique, so any
/// divergence between the three streams is a real bug, not a tie artifact.
struct Weights {
    rng: Rng,
    used: HashSet<u64>,
}

impl Weights {
    fn new(seed: u64) -> Self {
        Weights {
            rng: Rng::new(seed),
            used: HashSet::new(),
        }
    }

    fn next(&mut self) -> f64 {
        loop {
            let raw = self.rng.below(1 << 40);
            if self.used.insert(raw) {
                return raw as f64 / 1024.0;
            }
        }
    }
}

/// The shared base instance. Deterministic in `seed`, so calling it three
/// times yields three bit-identical databases (the services cannot share
/// one — each owns its copy and ingests independently).
fn base_db(seed: u64, rows: u64, fanout: u64) -> Database {
    let mut weights = Weights::new(seed);
    let mut rng = Rng::new(seed ^ 0x9E37_79B9);
    let mut db = Database::new();
    let mut r1 = Relation::new("R1", 2);
    let mut r2 = Relation::new("R2", 2);
    for _ in 0..rows {
        r1.push_edge(rng.below(fanout), rng.below(fanout), weights.next());
        r2.push_edge(rng.below(fanout), rng.below(fanout), weights.next());
    }
    db.add(r1);
    db.add(r2);
    db
}

/// A random batch over the current snapshot: per relation, delete a few
/// live tuples and insert a few random ones over the same key domain (some
/// join, some dangle).
fn random_batch(db: &Database, weights: &mut Weights, fanout: u64, edits: usize) -> DeltaBatch {
    let mut rng = Rng::new(weights.rng.next());
    let mut batch = DeltaBatch::new();
    for rel in db.relations() {
        let mut deleted = HashSet::new();
        for _ in 0..edits {
            if !rel.is_empty() {
                let tid = rng.below(rel.len() as u64) as usize;
                if deleted.insert(tid) {
                    batch = batch.delete(rel.name(), tid);
                }
            }
            batch = batch.insert(
                rel.name(),
                Tuple::new(
                    vec![rng.below(fanout) as Value, rng.below(fanout) as Value],
                    weights.next(),
                ),
            );
        }
    }
    batch
}

/// Open a session for [`QUERY`] and drain it at the given page size.
fn drain(service: &QueryService, page_size: usize) -> Vec<Answer> {
    let id: SessionId = service.open_session_text(QUERY).expect("open session");
    let mut answers = Vec::new();
    loop {
        let page = service.next_page(id, page_size).expect("page pull");
        answers.extend(page.answers);
        if page.done {
            break;
        }
    }
    service.close_session(id);
    answers
}

#[test]
fn sharded_ingest_matches_unsharded_ingest_and_rebuild_across_rounds() {
    const SEED: u64 = 0x5A4D;
    const ROWS: u64 = 60;
    const FANOUT: u64 = 11;

    let sharded = QueryService::with_config(
        base_db(SEED, ROWS, FANOUT),
        ServiceConfig {
            shards: Some(3),
            ..ServiceConfig::default()
        },
    );
    let plain = QueryService::with_config(base_db(SEED, ROWS, FANOUT), ServiceConfig::default());

    // Populate both plan caches *before* the first delta, so every later
    // round exercises the refresh path rather than a cold compile.
    let first_sharded = drain(&sharded, 7);
    let first_plain = drain(&plain, 7);
    assert_eq!(first_sharded, first_plain, "pre-ingest streams diverged");
    assert!(
        !first_sharded.is_empty(),
        "base instance produced no answers — the differential would be vacuous"
    );
    assert_eq!(
        sharded.metrics().sharded_sessions_opened,
        1,
        "the sharded service must actually shard this query"
    );

    // Our own snapshot chain mirrors the deltas for the rebuild reference.
    let mut snap = Arc::new(base_db(SEED, ROWS, FANOUT));
    let mut weights = Weights::new(SEED ^ 0xD1F);
    // Burn the rows the base builder consumed so batch weights stay
    // distinct from base weights.
    for _ in 0..2 * ROWS {
        weights.next();
    }

    for (round, &page_size) in [1usize, 3, 64, 7].iter().enumerate() {
        let batch = random_batch(&snap, &mut weights, FANOUT, 6);
        snap = Arc::new(snap.apply_delta(&batch).expect("apply delta"));

        let a = sharded.ingest(&batch).expect("sharded ingest");
        let b = plain.ingest(&batch).expect("plain ingest");
        assert_eq!(a, b, "round {round}: generations diverged");
        assert_eq!(a, snap.generation(), "round {round}: snapshot chain off");

        let rebuild = QueryService::over(Arc::clone(&snap), ServiceConfig::default());
        let from_sharded = drain(&sharded, page_size);
        let from_plain = drain(&plain, page_size);
        let from_rebuild = drain(&rebuild, page_size);
        assert_eq!(
            from_sharded, from_plain,
            "round {round}: sharded ingest diverged from unsharded ingest"
        );
        assert_eq!(
            from_plain, from_rebuild,
            "round {round}: refreshed plans diverged from a from-scratch rebuild"
        );
    }

    // Ingestion must have *refreshed* the sharded plan each round, never
    // fallen back to recompiling it.
    let m = sharded.metrics();
    assert_eq!(m.plans_refreshed, 4, "one refresh per ingest round");
    assert_eq!(
        m.plans_recompiled, 0,
        "refresh never fell back to recompile"
    );
    assert_eq!(
        m.sharded_sessions_opened, 5,
        "every drain of the sharded service used the sharded plan"
    );
}

#[test]
fn spec_level_shards_survive_ingest_rounds_too() {
    // Same differential, but the sharding comes from the query text
    // (`shards 4`) against a service with no default shards — the other
    // half of the configuration surface.
    const SEED: u64 = 0xBEE;
    const ROWS: u64 = 40;
    const FANOUT: u64 = 9;
    let sharded_text = format!("{QUERY} shards 4");

    let service = QueryService::with_config(base_db(SEED, ROWS, FANOUT), ServiceConfig::default());
    let mut snap = Arc::new(base_db(SEED, ROWS, FANOUT));
    let mut weights = Weights::new(SEED ^ 0xF00D);
    for _ in 0..2 * ROWS {
        weights.next();
    }

    let drain_text = |svc: &QueryService, text: &str, page: usize| {
        let id = svc.open_session_text(text).expect("open");
        let mut out = Vec::new();
        loop {
            let p = svc.next_page(id, page).expect("page");
            out.extend(p.answers);
            if p.done {
                break;
            }
        }
        svc.close_session(id);
        out
    };

    // Warm both plans (sharded and unsharded live side by side in one
    // cache under distinct keys).
    let warm_sharded = drain_text(&service, &sharded_text, 5);
    let warm_plain = drain_text(&service, QUERY, 5);
    assert_eq!(warm_sharded, warm_plain);
    assert!(service.metrics().sharded_sessions_opened >= 1);

    for round in 0..3 {
        let batch = random_batch(&snap, &mut weights, FANOUT, 5);
        snap = Arc::new(snap.apply_delta(&batch).expect("apply delta"));
        service.ingest(&batch).expect("ingest");

        let rebuild = QueryService::over(Arc::clone(&snap), ServiceConfig::default());
        let s = drain_text(&service, &sharded_text, 4);
        let u = drain_text(&service, QUERY, 4);
        let r = drain_text(&rebuild, QUERY, 4);
        assert_eq!(s, u, "round {round}: spec-sharded diverged from unsharded");
        assert_eq!(u, r, "round {round}: refreshed diverged from rebuild");
    }
}

#[test]
fn concurrent_sharded_sessions_stream_bit_identically() {
    // Eight threads share one sharded plan, each draining its own session
    // at a different page size (including 1, so some merges advance one
    // answer at a time while siblings pull big pages). Every stream must
    // equal the unsharded reference bit-for-bit, and the MEM gauge must
    // return to zero when the crowd is gone.
    const SEED: u64 = 0xC0C0;
    const ROWS: u64 = 80;
    const FANOUT: u64 = 13;

    let sharded = QueryService::with_config(
        base_db(SEED, ROWS, FANOUT),
        ServiceConfig {
            shards: Some(4),
            ..ServiceConfig::default()
        },
    );
    let reference = drain(
        &QueryService::with_config(base_db(SEED, ROWS, FANOUT), ServiceConfig::default()),
        17,
    );
    assert!(!reference.is_empty(), "vacuous instance");

    let page_sizes = [1usize, 2, 3, 5, 8, 13, 64, 1000];
    std::thread::scope(|scope| {
        for &page_size in &page_sizes {
            let sharded = &sharded;
            let reference = &reference;
            scope.spawn(move || {
                let got = drain(sharded, page_size);
                assert_eq!(&got, reference, "page size {page_size}");
            });
        }
    });

    let m = sharded.metrics();
    assert_eq!(m.sharded_sessions_opened, page_sizes.len() as u64);
    assert_eq!(m.active_sessions, 0, "every session closed");
    assert_eq!(m.mem_resident_units, 0, "MEM gauge back to zero");
}
