//! Wire-protocol conformance and robustness.
//!
//! Two halves:
//!
//! * **Round-trip proof** — every ranked stream served over a real TCP
//!   socket is `==`-identical (including `f64` weight bits and witness
//!   provenance) to the in-process [`QueryService`] stream for the same
//!   `QuerySpec`, across all six algorithms and page sizes including 1.
//! * **Robustness** — fuzz-ish raw-byte attacks on the decoder (truncated
//!   header, torn mid-frame disconnect, oversize length prefix, garbage
//!   version byte, zero-length frames) end in a typed protocol error or a
//!   clean drop: no panic, no leaked session, and neighbour connections
//!   keep streaming.

use anyk_core::AnyKAlgorithm;
use anyk_server::net::{
    AnyKClient, AnyKServer, ClientConfig, ClientError, NetConfig, Response, StatusCode, WireError,
    WireOverloadReason,
};
use anyk_server::{Answer, QueryService, QuerySpec};
use anyk_storage::{Database, Relation};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const ALGORITHMS: [AnyKAlgorithm; 6] = [
    AnyKAlgorithm::Eager,
    AnyKAlgorithm::Lazy,
    AnyKAlgorithm::All,
    AnyKAlgorithm::Take2,
    AnyKAlgorithm::Recursive,
    AnyKAlgorithm::Batch,
];

const QUERY: &str = "Q(x, y, z) :- R1(x, y), R2(y, z)";

fn path_db() -> Database {
    let mut db = Database::new();
    let mut r1 = Relation::new("R1", 2);
    let mut r2 = Relation::new("R2", 2);
    // A deterministic 12×12 bipartite-ish path with weight ties, so ranked
    // order actually exercises tie-breaking across the wire.
    for i in 0..12u64 {
        for j in 0..12u64 {
            if (i + j) % 3 != 0 {
                r1.push_edge(i, 100 + j, ((i * 7 + j * 5) % 11) as f64);
            }
            if (i * j) % 4 != 1 {
                r2.push_edge(100 + i, 200 + j, ((i * 3 + j) % 13) as f64);
            }
        }
    }
    db.add(r1);
    db.add(r2);
    db
}

fn start_server(cfg: NetConfig) -> (Arc<QueryService>, AnyKServer) {
    let service = Arc::new(QueryService::new(path_db()));
    let server = AnyKServer::bind(Arc::clone(&service), ("127.0.0.1", 0), cfg).unwrap();
    (service, server)
}

fn quick_client(server: &AnyKServer) -> AnyKClient {
    AnyKClient::connect(
        server.local_addr(),
        ClientConfig {
            read_timeout: Duration::from_secs(10),
            initial_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(50),
            ..ClientConfig::default()
        },
    )
}

/// Stream `text` to exhaustion in-process, `page_size` answers per pull.
fn in_process_stream(service: &QueryService, text: &str, page_size: usize) -> Vec<Answer> {
    let id = service.open_session_text(text).unwrap();
    let mut all = Vec::new();
    loop {
        let page = service.next_page(id, page_size).unwrap();
        let done = page.done;
        all.extend(page.answers);
        if done {
            break;
        }
    }
    assert!(service.close_session(id));
    all
}

#[test]
fn tcp_streams_are_bit_identical_to_in_process_for_all_algorithms_and_page_sizes() {
    let (service, mut server) = start_server(NetConfig::default());
    let mut client = quick_client(&server);
    // The one-shot in-process reference stream per algorithm.
    for algorithm in ALGORITHMS {
        let text = format!("{QUERY} via {}", format!("{algorithm:?}").to_lowercase());
        let reference = in_process_stream(&service, &text, 1 << 20);
        assert!(!reference.is_empty(), "query must produce answers");
        for page_size in [1usize, 2, 7, 100, 100_000] {
            let over_tcp = client.collect_all(&text, page_size).unwrap();
            assert_eq!(
                over_tcp, reference,
                "{algorithm:?} page_size={page_size}: TCP stream must equal in-process"
            );
            for (a, b) in over_tcp.iter().zip(&reference) {
                assert_eq!(
                    a.weight().to_bits(),
                    b.weight().to_bits(),
                    "weights must round-trip bit-identically"
                );
                assert_eq!(a.witness(), b.witness(), "witness provenance preserved");
            }
        }
    }
    assert_eq!(service.session_count(), 0, "no leaked sessions");
    server.shutdown();
    assert_eq!(service.metrics().mem_resident_units, 0);
}

#[test]
fn prepare_returns_the_canonical_plan_key_and_hits_the_cache() {
    let (service, mut server) = start_server(NetConfig::default());
    let mut client = quick_client(&server);
    let key = client.prepare(QUERY).unwrap();
    assert_eq!(key, QuerySpec::parse(QUERY).unwrap().plan_key());
    // An alpha-renamed variant shares the plan.
    let renamed = "Q(a, b, c) :- R1(a, b), R2(b, c)";
    assert_eq!(client.prepare(renamed).unwrap(), key);
    let m = service.metrics();
    assert_eq!(m.plan_misses, 1);
    assert!(m.plan_hits >= 1);
    server.shutdown();
}

#[test]
fn remote_errors_are_typed() {
    let (_service, mut server) = start_server(NetConfig::default());
    let mut client = quick_client(&server);
    // Parse failure.
    match client.prepare("this is not a query") {
        Err(ClientError::Remote(WireError::Parse(_))) => {}
        other => panic!("expected typed parse error, got {other:?}"),
    }
    // Engine failure (unknown relation).
    match client.prepare("Q(x, y) :- Nope(x, y)") {
        Err(ClientError::Remote(WireError::Engine(_))) => {}
        other => panic!("expected typed engine error, got {other:?}"),
    }
    // Unknown session handle.
    match client.next_page(anyk_server::net::RemoteSession(999), 10) {
        Err(ClientError::Remote(WireError::UnknownSession(999))) => {}
        other => panic!("expected typed unknown-session error, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn session_handles_are_connection_scoped() {
    let (service, mut server) = start_server(NetConfig::default());
    let mut alice = quick_client(&server);
    let mut eve = quick_client(&server);
    let session = alice.open_session(&format!("{QUERY} via lazy")).unwrap();
    // Eve guesses Alice's handle: her connection's namespace is empty, so
    // the guess misses — she can neither read nor cancel Alice's stream.
    match eve.next_page(session, 10) {
        Err(ClientError::Remote(WireError::UnknownSession(_))) => {}
        other => panic!("expected isolation, got {other:?}"),
    }
    match eve.cancel(session) {
        Err(ClientError::Remote(WireError::UnknownSession(_))) => {}
        other => panic!("expected isolation, got {other:?}"),
    }
    // Alice still streams fine afterwards.
    let page = alice.next_page(session, 5).unwrap();
    assert_eq!(page.answers.len(), 5);
    assert!(alice.close(session).unwrap());
    assert_eq!(service.session_count(), 0);
    server.shutdown();
}

#[test]
fn disconnect_closes_owned_sessions() {
    let (service, mut server) = start_server(NetConfig::default());
    let mut client = quick_client(&server);
    let s1 = client.open_session(&format!("{QUERY} via take2")).unwrap();
    let _ = client.next_page(s1, 3).unwrap();
    let _s2 = client.open_session(&format!("{QUERY} via eager")).unwrap();
    assert_eq!(service.session_count(), 2);
    client.disconnect();
    // The server notices the EOF and closes both sessions; poll briefly.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while service.session_count() != 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "sessions not reaped after disconnect: {}",
            service.session_count()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(service.metrics().mem_resident_units, 0, "MEM gauge drained");
    server.shutdown();
}

#[test]
fn connection_cap_sheds_with_retry_after_before_handshake_work() {
    let (service, mut server) = start_server(NetConfig {
        max_connections: 1,
        retry_after_hint: Duration::from_micros(777),
        ..NetConfig::default()
    });
    let mut holder = quick_client(&server);
    holder.ping().unwrap(); // connection 1 is live and registered
    let mut extra = AnyKClient::connect(
        server.local_addr(),
        ClientConfig {
            max_retries: 2,
            initial_backoff: Duration::from_millis(1),
            ..ClientConfig::default()
        },
    );
    match extra.open_session(QUERY) {
        Err(ClientError::Remote(WireError::Overloaded {
            reason: WireOverloadReason::Connections,
            retry_after,
        })) => assert_eq!(retry_after, Duration::from_micros(777)),
        other => panic!("expected connection-cap shed, got {other:?}"),
    }
    let m = service.metrics();
    assert!(m.connections_shed_at_accept >= 1, "{m:?}");
    assert_eq!(m.sessions_opened, 0, "shed before any session work");
    // The capped server still serves its live connection.
    holder.ping().unwrap();
    server.shutdown();
}

// ---------------------------------------------------------------- raw bytes

/// A hand-rolled frame: the attacker's view of the wire.
fn raw_frame(version: u8, kind: u8, reserved: u8, payload: &[u8]) -> Vec<u8> {
    let mut f = vec![0xA7, version, kind, reserved];
    f.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    f.extend_from_slice(payload);
    f
}

/// Read one response frame (header + payload) off a raw socket.
fn read_raw_response(stream: &mut TcpStream) -> Option<(u8, Vec<u8>)> {
    let mut header = [0u8; 8];
    stream.read_exact(&mut header).ok()?;
    assert_eq!(header[0], 0xA7);
    assert_eq!(header[1], 1);
    let len = u32::from_be_bytes(header[4..8].try_into().unwrap()) as usize;
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).ok()?;
    Some((header[2], payload))
}

fn decode_raw_response(stream: &mut TcpStream) -> Option<Response> {
    let (kind, payload) = read_raw_response(stream)?;
    Some(Response::decode(kind, &payload).unwrap())
}

/// Assert the server is still healthy: a fresh well-behaved client streams
/// a full query, and no sessions are left behind.
fn assert_server_healthy(server: &AnyKServer, service: &QueryService) {
    let mut client = quick_client(server);
    let all = client
        .collect_all(&format!("{QUERY} via lazy"), 50)
        .unwrap();
    assert!(!all.is_empty());
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while service.session_count() != 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(service.session_count(), 0, "no leaked sessions");
}

#[test]
fn raw_byte_attacks_get_typed_errors_or_clean_drops_and_leak_nothing() {
    let (service, mut server) = start_server(NetConfig {
        max_frame_bytes: 64 * 1024,
        ..NetConfig::default()
    });
    let addr = server.local_addr();
    let connect = || TcpStream::connect(addr).unwrap();

    // 1. Truncated header: 3 bytes then close → server drops silently.
    {
        let mut s = connect();
        s.write_all(&[0xA7, 1, 0x01]).unwrap();
        drop(s);
    }
    // 2. Torn mid-frame: a full header promising 10 payload bytes, then 4
    //    bytes, then disconnect → clean drop, no reply.
    {
        let mut s = connect();
        let mut frame = raw_frame(1, 0x02, 0, &[b'Q'; 10]);
        frame.truncate(8 + 4);
        s.write_all(&frame).unwrap();
        drop(s);
    }
    // 3. Oversize length prefix: announced 2^31 payload → typed
    //    ErrFrameTooLarge carrying the server's cap, then close.
    {
        let mut s = connect();
        let mut header = vec![0xA7, 1, 0x02, 0];
        header.extend_from_slice(&(1u32 << 31).to_be_bytes());
        s.write_all(&header).unwrap();
        match decode_raw_response(&mut s) {
            Some(Response::Err(WireError::FrameTooLarge { max })) => {
                assert_eq!(max, 64 * 1024)
            }
            other => panic!("expected ErrFrameTooLarge, got {other:?}"),
        }
        assert!(decode_raw_response(&mut s).is_none(), "connection closed");
    }
    // 4. Garbage version byte → typed ErrUnsupportedVersion naming the one
    //    version the server speaks.
    {
        let mut s = connect();
        s.write_all(&raw_frame(42, 0x01, 0, &[])).unwrap();
        match decode_raw_response(&mut s) {
            Some(Response::Err(WireError::UnsupportedVersion { supported: 1 })) => {}
            other => panic!("expected ErrUnsupportedVersion, got {other:?}"),
        }
    }
    // 5. Garbage magic byte (an HTTP probe, say) → typed protocol error.
    {
        let mut s = connect();
        s.write_all(b"GET / HTTP/1.1\r\n").unwrap();
        match decode_raw_response(&mut s) {
            Some(Response::Err(WireError::Protocol(_))) => {}
            other => panic!("expected ErrProtocol, got {other:?}"),
        }
    }
    // 6. Zero-length frame for an op that requires a payload → typed
    //    protocol error; zero-length Ping is legal and gets Pong.
    {
        let mut s = connect();
        s.write_all(&raw_frame(1, 0x05, 0, &[])).unwrap(); // Cancel, no id
        match decode_raw_response(&mut s) {
            Some(Response::Err(WireError::Protocol(_))) => {}
            other => panic!("expected ErrProtocol, got {other:?}"),
        }
        let mut s = connect();
        s.write_all(&raw_frame(1, 0x01, 0, &[])).unwrap();
        assert!(matches!(decode_raw_response(&mut s), Some(Response::Pong)));
    }
    // 7. Non-zero reserved byte → typed protocol error.
    {
        let mut s = connect();
        s.write_all(&raw_frame(1, 0x01, 9, &[])).unwrap();
        match decode_raw_response(&mut s) {
            Some(Response::Err(WireError::Protocol(_))) => {}
            other => panic!("expected ErrProtocol, got {other:?}"),
        }
    }
    // 8. Unknown opcode → typed protocol error.
    {
        let mut s = connect();
        s.write_all(&raw_frame(1, 0x7F, 0, &[])).unwrap();
        match decode_raw_response(&mut s) {
            Some(Response::Err(WireError::Protocol(_))) => {}
            other => panic!("expected ErrProtocol, got {other:?}"),
        }
    }
    // 9. A session opened over raw bytes, then a torn disconnect mid-stream:
    //    the session must be reaped.
    {
        let mut s = connect();
        let text = format!("{QUERY} via eager");
        s.write_all(&raw_frame(1, 0x03, 0, text.as_bytes()))
            .unwrap();
        match decode_raw_response(&mut s) {
            Some(Response::SessionOpened(_)) => {}
            other => panic!("expected SessionOpened, got {other:?}"),
        }
        // Tear a NextPage frame in half and vanish.
        let mut next = raw_frame(1, 0x04, 0, &[0; 12]);
        next.truncate(10);
        s.write_all(&next).unwrap();
        drop(s);
    }
    // 10. Stats requests are bodyless: a trailing byte is a typed protocol
    //     error, while a bare raw-byte Stats frame gets a real snapshot.
    {
        let mut s = connect();
        s.write_all(&raw_frame(1, 0x08, 0, &[0])).unwrap();
        match decode_raw_response(&mut s) {
            Some(Response::Err(WireError::Protocol(_))) => {}
            other => panic!("expected ErrProtocol, got {other:?}"),
        }
        let mut s = connect();
        s.write_all(&raw_frame(1, 0x08, 0, &[])).unwrap();
        match decode_raw_response(&mut s) {
            Some(Response::Stats(stats)) => {
                assert_eq!(stats.version, anyk_server::STATS_VERSION)
            }
            other => panic!("expected Stats, got {other:?}"),
        }
    }

    assert_server_healthy(&server, &service);
    let m = service.metrics();
    assert_eq!(
        m.mem_resident_units, 0,
        "MEM gauge zero after the abuse: {m:?}"
    );
    server.shutdown();
}

#[test]
fn client_rejects_oversize_response_frames_before_allocation() {
    let (_service, mut server) = start_server(NetConfig::default());
    let mut tiny = AnyKClient::connect(
        server.local_addr(),
        ClientConfig {
            // Small enough that a page of answers cannot fit, large enough
            // for SessionOpened (8 bytes).
            max_frame_bytes: 16,
            ..ClientConfig::default()
        },
    );
    let session = tiny.open_session(&format!("{QUERY} via take2")).unwrap();
    match tiny.next_page(session, 100) {
        Err(ClientError::FrameTooLarge { len, max: 16 }) => assert!(len > 16),
        other => panic!("expected client-side FrameTooLarge, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn server_substitutes_frame_too_large_when_a_page_exceeds_its_own_cap() {
    // A server whose frame cap is tiny but whose page clamp is generous:
    // the encoded page overflows the cap and the typed error goes out
    // instead of an unframeable response.
    let (_service, mut server) = start_server(NetConfig {
        max_frame_bytes: 256,
        max_page_size: 4096,
        ..NetConfig::default()
    });
    let mut client = quick_client(&server);
    let session = client.open_session(&format!("{QUERY} via lazy")).unwrap();
    match client.next_page(session, 4096) {
        Err(ClientError::Remote(WireError::FrameTooLarge { max: 256 })) => {}
        // A small page may legitimately fit; the query here is big enough
        // that it never does.
        other => panic!("expected server-side FrameTooLarge, got {other:?}"),
    }
    // The oversize pull's answers are gone (documented loss — the server
    // clamp exists to make this unreachable in sane configs), but the
    // connection survives and small pages over a fresh session stream fine.
    client.close(session).unwrap();
    let session = client.open_session(&format!("{QUERY} via lazy")).unwrap();
    let page = client.next_page(session, 1).unwrap();
    assert_eq!(page.answers.len(), 1);
    client.close(session).unwrap();
    server.shutdown();
}

#[test]
fn shutdown_rejects_new_connections_and_queued_ones_get_shutting_down() {
    let (_service, mut server) = start_server(NetConfig::default());
    let addr = server.local_addr();
    let mut client = quick_client(&server);
    client.ping().unwrap();
    server.shutdown();
    // After shutdown the listener is gone: dials fail outright.
    assert!(
        TcpStream::connect(addr).is_err() || {
            // A TIME_WAIT race can let one connect through; it must then be
            // unable to complete a request.
            let mut c = quick_client(&server);
            c.ping().is_err()
        }
    );
    // The old connection is closed too.
    assert!(client.ping().is_err());
}

#[test]
fn stats_over_tcp_report_delay_percentiles_for_a_live_workload() {
    let (service, mut server) = start_server(NetConfig::default());
    let mut client = quick_client(&server);

    // Drive a real ranked stream to exhaustion, then scrape.
    let text = format!("{QUERY} via take2");
    let session = client.open_session(&text).unwrap();
    let mut pages = 0u64;
    let mut answers = 0u64;
    loop {
        let page = client.next_page(session, 16).unwrap();
        pages += 1;
        answers += page.answers.len() as u64;
        if page.done {
            break;
        }
    }
    client.close(session).unwrap();
    assert!(answers > 16, "workload streamed more than one page");

    let stats = client.stats().unwrap();
    assert_eq!(stats.version, anyk_server::STATS_VERSION);
    assert_eq!(stats.generation, 0);
    assert_eq!(stats.metrics, service.metrics(), "wire scrape ≡ in-process");
    assert!(stats.metrics.answers_served >= answers);
    assert!(stats.page_latency.count >= pages, "every pull was timed");

    // The prep pipeline and the wire itself left phase timings behind.
    let phase = |p| stats.phases.iter().find(|s| s.phase == p);
    for p in [
        anyk_server::Phase::Compile,
        anyk_server::Phase::WireRead,
        anyk_server::Phase::WireWrite,
    ] {
        let s = phase(p).unwrap_or_else(|| panic!("no {} phase timing", p.name()));
        assert!(s.count >= 1, "{} never fired", p.name());
        assert!(s.total_nanos >= s.max_nanos);
    }

    // The tentpole claim: per-plan TTF and per-answer delay percentiles,
    // keyed by the canonical plan key, served over TCP.
    let key = QuerySpec::parse(&text).unwrap().plan_key();
    let (_, sums) = stats
        .plans
        .iter()
        .find(|(k, _)| *k == key)
        .expect("plan distributions keyed by canonical plan key");
    assert_eq!(sums.ttf.count, 1, "one session, one TTF");
    assert!(sums.ttf.max > 0);
    assert_eq!(sums.delay.count, answers, "one delay sample per answer");
    assert!(sums.delay.p50 <= sums.delay.p90 && sums.delay.p90 <= sums.delay.p99);
    assert!(sums.delay.p99 <= sums.delay.max && sums.delay.max > 0);
    assert!(sums.page.count >= pages);

    // And the text rendering carries the same surface for scrapers.
    let prom = stats.render_prometheus();
    assert!(prom.contains("anyk_plan_delay_nanos{plan="));
    assert!(prom.contains("anyk_phase_count{phase=\"wire_read\"}"));
    assert!(prom.contains("anyk_page_latency_nanos_count"));

    server.shutdown();
}

#[test]
fn status_codes_cover_every_service_error_variant() {
    // A compile-time-ish sanity net: the status byte space the server can
    // emit is closed over the ServiceError taxonomy.
    for status in [
        StatusCode::ErrParse,
        StatusCode::ErrEngine,
        StatusCode::ErrUnknownSession,
        StatusCode::ErrOverloaded,
        StatusCode::ErrSessionExpired,
        StatusCode::ErrSessionCancelled,
        StatusCode::ErrSessionPoisoned,
        StatusCode::ErrFault,
        StatusCode::ErrPanicked,
    ] {
        assert!(status as u8 >= 0xC0);
    }
}
