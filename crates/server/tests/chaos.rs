//! Chaos suite: fault injection, panic isolation, cancellation, deadlines,
//! and overload shedding for the query service.
//!
//! Everything here is deterministic: time comes from a [`ManualClock`],
//! randomness from seeded [`SmallRng`]s, and faults from explicitly
//! installed [`FaultPlan`]s (whose install guard serialises fault-armed
//! tests process-wide, so hit counters never race).

use anyk_core::AnyKAlgorithm;
use anyk_datagen::uniform::path_or_star_database;
use anyk_server::faults::{self, FaultPlan, Trigger, SITES};
use anyk_server::{
    Answer, Clock, GovernorConfig, ManualClock, OverloadReason, QueryService, ServiceConfig,
    ServiceError, ServiceMetrics, SessionId, SessionState,
};
use anyk_storage::{Database, DeltaBatch, Relation, Tuple};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::sync::{Arc, Mutex, Once};
use std::time::Duration;

const ALGORITHMS: [AnyKAlgorithm; 6] = [
    AnyKAlgorithm::Eager,
    AnyKAlgorithm::Lazy,
    AnyKAlgorithm::All,
    AnyKAlgorithm::Take2,
    AnyKAlgorithm::Recursive,
    AnyKAlgorithm::Batch,
];

/// The failpoint registry is process-global, and its install guard only
/// serializes tests *while armed* — a test that arms and disarms repeatedly
/// leaves windows where a concurrently running test's sessions would hit
/// its plans. Serialize every test in this file across its whole body.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static SERIAL: Mutex<()> = Mutex::new(());
    SERIAL
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Injected panics are part of the plan here; keep them out of the test
/// output while still printing genuine (assertion) panics.
fn quiet_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("failpoint") {
                default(info);
            }
        }));
    });
}

fn small_path_db() -> Database {
    let mut db = Database::new();
    let mut r1 = Relation::new("R1", 2);
    r1.push_edge(1, 10, 1.0);
    r1.push_edge(2, 20, 4.0);
    r1.push_edge(3, 10, 9.0);
    let mut r2 = Relation::new("R2", 2);
    r2.push_edge(10, 5, 2.0);
    r2.push_edge(20, 6, 1.0);
    db.add(r1);
    db.add(r2);
    db
}

fn wide_path_db(seed: u64) -> Database {
    let mut rng = SmallRng::seed_from_u64(seed);
    path_or_star_database(3, 40, &mut rng)
}

const SMALL_QUERY: &str = "Q(x, y, z) :- R1(x, y), R2(y, z)";
const WIDE_QUERY: &str = "Q(a, b, c, d) :- R1(a, b), R2(b, c), R3(c, d)";

fn assert_metrics_consistent(service: &QueryService) {
    let m = service.metrics();
    assert_eq!(
        m.sessions_opened,
        m.active_sessions
            + m.sessions_closed
            + m.sessions_expired
            + m.sessions_cancelled
            + m.sessions_poisoned,
        "every opened session is in exactly one lifecycle bucket: {m:?}"
    );
    assert_eq!(m.pages_in_flight, 0, "all page permits returned");
}

/// Every failpoint site, under both actions, is contained to a typed error
/// — and the service is fully healthy the moment the plan disarms.
#[test]
fn every_failpoint_site_is_contained() {
    let _serial = serial();
    quiet_injected_panics();
    // `net.*` sites sit on the TCP transport, which an in-process service
    // never reaches; tests/net_chaos.rs drives those.
    for site in SITES.iter().copied().filter(|s| !s.starts_with("net.")) {
        for panic_action in [false, true] {
            let service = QueryService::new(small_path_db());
            let plan = if panic_action {
                FaultPlan::new().panic(site, Trigger::Always)
            } else {
                FaultPlan::new().error(site, Trigger::Always)
            };
            let guard = faults::install(plan);
            match service.open_session_text(SMALL_QUERY) {
                Err(err) => {
                    // Preparation-path sites kill the open with a typed
                    // error; `check` sites inject `Fault`, infallible-path
                    // checkpoints and panic actions are contained panics.
                    match (site, panic_action) {
                        ("server.open" | "engine.compile", false) => {
                            assert!(matches!(err, ServiceError::Fault(_)), "{site}: {err}")
                        }
                        _ => {
                            assert!(
                                matches!(err, ServiceError::Panicked { .. }),
                                "{site}: {err}"
                            )
                        }
                    }
                }
                Ok(id) => {
                    // Paging-path sites let the open through and hit pulls.
                    assert!(
                        matches!(site, "engine.page" | "server.page"),
                        "site {site} should have failed the open"
                    );
                    let err = service.next_page(id, 10).unwrap_err();
                    match (site, panic_action) {
                        ("server.page", false) => {
                            assert!(matches!(err, ServiceError::Fault(_)), "{site}: {err}")
                        }
                        _ => {
                            assert!(
                                matches!(err, ServiceError::Panicked { .. }),
                                "{site}: {err}"
                            )
                        }
                    }
                    // A faulted pull retires nothing by itself (transient
                    // errors are retryable); release the slot explicitly.
                    service.close_session(id);
                }
            }
            assert!(guard.hits(site) >= 1, "failpoint {site} was exercised");
            drop(guard);
            // Disarmed: the same service serves the same query perfectly.
            let id = service.open_session_text(SMALL_QUERY).unwrap();
            let page = service.next_page(id, 100).unwrap();
            assert_eq!(page.answers.len(), 3, "{site}: healthy after disarm");
            assert!(page.done);
            service.close_session(id);
            assert_eq!(service.metrics().mem_resident_units, 0, "{site}");
            assert_metrics_consistent(&service);
        }
    }
}

/// A panic mid-stream poisons exactly one session: its neighbour, paging
/// the same plan concurrently, still produces the bit-identical stream.
#[test]
fn a_panicking_session_never_perturbs_its_neighbours() {
    let _serial = serial();
    quiet_injected_panics();
    let service = QueryService::new(wide_path_db(7));
    let one_shot: Vec<Answer> = {
        let prepared = service.prepare_text(WIDE_QUERY).unwrap();
        prepared.enumerate(AnyKAlgorithm::Take2).collect()
    };
    assert!(one_shot.len() > 20, "enough answers to page through");

    let healthy = service.open_session_text(WIDE_QUERY).unwrap();
    let doomed = service.open_session_text(WIDE_QUERY).unwrap();
    let mut got = service.next_page(healthy, 5).unwrap().answers;

    {
        let _guard = faults::install(FaultPlan::new().panic("engine.page", Trigger::Nth(3)));
        let err = service.next_page(doomed, 10).unwrap_err();
        assert!(matches!(err, ServiceError::Panicked { .. }));
        assert!(err.to_string().contains("engine.page"), "{err}");
    }

    // The doomed session is poisoned — typed error, state visible, memory
    // released — while the registry stays unlocked and unpoisoned.
    assert!(matches!(
        service.next_page(doomed, 1),
        Err(ServiceError::SessionPoisoned(_))
    ));
    assert_eq!(
        service.session_status(doomed).unwrap().state,
        SessionState::Poisoned
    );
    let m = service.metrics();
    assert_eq!(m.sessions_poisoned, 1);
    assert_eq!(m.active_sessions, 1, "only the healthy session");

    // The neighbour pages on, bit-identically to the one-shot stream.
    loop {
        let page = service.next_page(healthy, 7).unwrap();
        got.extend(page.answers);
        if page.done {
            break;
        }
    }
    assert_eq!(got, one_shot, "neighbour stream is bit-identical");

    // And the service still accepts fresh sessions.
    let fresh = service.open_session_text(WIDE_QUERY).unwrap();
    assert!(!service.next_page(fresh, 1).unwrap().answers.is_empty());
    service.close_session(healthy);
    service.close_session(doomed);
    service.close_session(fresh);
    assert_eq!(service.tracked_sessions(), 0);
    assert_eq!(service.metrics().mem_resident_units, 0);
    assert_metrics_consistent(&service);
}

/// Cancellation from another thread stops an in-flight pull between
/// answers; whichever way the race resolves, the stream stays a prefix of
/// the one-shot stream and every resource comes back.
#[test]
fn cancelling_an_in_flight_pull_yields_a_valid_prefix() {
    let _serial = serial();
    let service = Arc::new(QueryService::new(wide_path_db(11)));
    let one_shot: Vec<Answer> = {
        let prepared = service.prepare_text(WIDE_QUERY).unwrap();
        prepared.enumerate(AnyKAlgorithm::Lazy).collect()
    };
    let id = service
        .open_session_text(&format!("{WIDE_QUERY} via lazy"))
        .unwrap();

    let svc = Arc::clone(&service);
    let puller = std::thread::spawn(move || {
        let mut out = Vec::new();
        let done = svc.next_page_into(id, usize::MAX, &mut out);
        (done, out)
    });
    // Race the pull deliberately; both interleavings must be clean.
    let _ = service.cancel_session(id);
    let (done, answers) = puller.join().expect("pull thread must not panic");
    match done {
        Ok(done) => {
            assert!(done, "a cancelled or exhausted pull reports done");
            assert_eq!(answers.as_slice(), &one_shot[..answers.len()], "prefix");
        }
        Err(e) => assert!(
            matches!(e, ServiceError::SessionCancelled(_)),
            "cancel won before the pull started: {e}"
        ),
    }
    let m = service.metrics();
    assert_eq!(m.active_sessions, 0);
    assert_eq!(m.mem_resident_units, 0);
    assert_eq!(m.sessions_cancelled, 1);
    assert_metrics_consistent(&service);
}

/// 2× the session cap arrives at once: exactly `cap` sessions are admitted,
/// the rest shed with a typed, retry-hinted error, and a close frees a slot.
#[test]
fn concurrent_overload_sheds_exactly_to_the_cap() {
    let _serial = serial();
    let service = Arc::new(QueryService::with_config(
        small_path_db(),
        ServiceConfig {
            governor: GovernorConfig {
                max_sessions: Some(4),
                ..GovernorConfig::default()
            },
            ..ServiceConfig::default()
        },
    ));
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let svc = Arc::clone(&service);
            std::thread::spawn(move || svc.open_session_text(SMALL_QUERY))
        })
        .collect();
    let mut admitted = Vec::new();
    let mut shed = 0;
    for h in handles {
        match h.join().unwrap() {
            Ok(id) => admitted.push(id),
            Err(ServiceError::Overloaded {
                reason: OverloadReason::Sessions,
                retry_after_hint,
            }) => {
                assert!(retry_after_hint > Duration::ZERO);
                shed += 1;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert_eq!(admitted.len(), 4, "cap admits exactly 4");
    assert_eq!(shed, 4);
    let m = service.metrics();
    assert_eq!(m.sessions_opened, 4);
    assert_eq!(m.sessions_shed, 4);
    // Admitted sessions all page correctly, and a close frees a slot.
    for &id in &admitted {
        assert_eq!(service.next_page(id, 100).unwrap().answers.len(), 3);
    }
    service.close_session(admitted[0]);
    assert!(service.open_session_text(SMALL_QUERY).is_ok());
    assert_metrics_consistent(&service);
}

/// The `ANYK_FAULTS` env grammar drives the same registry as programmatic
/// plans: `@n+` triggers fire from the n-th hit on.
#[test]
fn env_fault_plans_follow_the_documented_grammar() {
    let _serial = serial();
    std::env::set_var("ANYK_FAULTS", "server.page=error@2+");
    let plan = FaultPlan::from_env()
        .expect("variable is set")
        .expect("grammar is valid");
    std::env::remove_var("ANYK_FAULTS");

    let service = QueryService::new(small_path_db());
    let id = service.open_session_text(SMALL_QUERY).unwrap();
    let guard = faults::install(plan);
    assert!(service.next_page(id, 1).is_ok(), "hit 1 passes through");
    assert!(matches!(
        service.next_page(id, 1),
        Err(ServiceError::Fault(i)) if i.site == "server.page"
    ));
    assert!(matches!(
        service.next_page(id, 1),
        Err(ServiceError::Fault(_))
    ));
    assert_eq!(guard.hits("server.page"), 3);
    drop(guard);
    assert!(service.next_page(id, 1).is_ok(), "disarmed");
}

/// The big one: seeded random schedules of open/page/cancel/close/expire
/// with intermittent error *and* panic faults, across all six algorithms.
/// Afterwards the registry must be drained, the MEM(k) gauge must be back
/// to zero, and every opened session accounted for in exactly one bucket.
#[test]
fn random_kill_cancel_fault_schedules_leak_nothing() {
    let _serial = serial();
    quiet_injected_panics();
    for (a, &algorithm) in ALGORITHMS.iter().enumerate() {
        let clock = Arc::new(ManualClock::new());
        let service = QueryService::with_config(
            wide_path_db(23 + a as u64),
            ServiceConfig {
                governor: GovernorConfig {
                    max_sessions: Some(12),
                    max_pages_in_flight: Some(8),
                    memory_budget_units: Some(200_000),
                    session_ttl: Some(Duration::from_secs(120)),
                    idle_timeout: Some(Duration::from_secs(45)),
                    ..GovernorConfig::default()
                },
                clock: Some(Arc::clone(&clock) as Arc<dyn Clock>),
                ..ServiceConfig::default()
            },
        );
        let mut rng = SmallRng::seed_from_u64(0xC4A0_5000 + a as u64);
        let mut live: Vec<SessionId> = Vec::new();
        let algo_name = format!("{algorithm:?}").to_lowercase();
        let open_text = format!("{WIDE_QUERY} via {algo_name}");

        for _step in 0..150 {
            // Some steps run with a fault armed at a random site.
            let guard = if rng.gen_bool(0.2) {
                let site = SITES[rng.gen_range(0..SITES.len())];
                let plan = if rng.gen_bool(0.5) {
                    FaultPlan::new().error(site, Trigger::Always)
                } else {
                    FaultPlan::new().panic(site, Trigger::Always)
                };
                Some(faults::install(plan))
            } else {
                None
            };
            match rng.gen_range(0..100u32) {
                0..=29 => {
                    if let Ok(id) = service.open_session_text(&open_text) {
                        live.push(id);
                    }
                }
                30..=74 => {
                    if !live.is_empty() {
                        let id = live[rng.gen_range(0..live.len())];
                        let _ = service.next_page(id, rng.gen_range(1usize..16));
                    }
                }
                75..=82 => {
                    if !live.is_empty() {
                        let id = live[rng.gen_range(0..live.len())];
                        let _ = service.cancel_session(id);
                    }
                }
                83..=90 => {
                    if !live.is_empty() {
                        let id = live.swap_remove(rng.gen_range(0..live.len()));
                        service.close_session(id);
                    }
                }
                91..=96 => clock.advance(Duration::from_secs(rng.gen_range(1u64..30))),
                _ => {
                    service.sweep_expired();
                }
            }
            drop(guard);
        }

        for id in live.drain(..) {
            service.close_session(id);
        }
        let m: ServiceMetrics = service.metrics();
        assert_eq!(service.tracked_sessions(), 0, "{algorithm:?}: no leaks");
        assert_eq!(m.active_sessions, 0, "{algorithm:?}");
        assert_eq!(m.mem_resident_units, 0, "{algorithm:?}: budget returned");
        assert_metrics_consistent(&service);
        assert!(m.sessions_opened > 0, "{algorithm:?}: schedule opened work");

        // After all that chaos the service still serves, verbatim.
        let id = service.open_session_text(&open_text).unwrap();
        let mut n = 0;
        loop {
            let page = service.next_page(id, 16).unwrap();
            n += page.answers.len();
            if page.done {
                break;
            }
        }
        let expected: usize = {
            let prepared = service.prepare_text(WIDE_QUERY).unwrap();
            prepared.enumerate(algorithm).count()
        };
        assert_eq!(n, expected, "{algorithm:?}: exact stream after chaos");
        service.close_session(id);
    }
}

/// A random but always-valid delta against `db`: one delete and a couple of
/// in-domain inserts per touched relation (the generator's join columns
/// live in 1..=4 for `n = 40`, so inserts keep joining).
fn random_batch(db: &Database, rng: &mut SmallRng) -> DeltaBatch {
    let names: Vec<String> = db.relations().map(|r| r.name().to_string()).collect();
    let mut batch = DeltaBatch::new();
    for name in names {
        if rng.gen_bool(0.5) {
            continue;
        }
        let len = db.expect(&name).len();
        batch = batch.delete(&name, rng.gen_range(0..len));
        for _ in 0..rng.gen_range(1usize..4) {
            let values = vec![rng.gen_range(1u64..=4), rng.gen_range(1u64..=4)];
            let weight = rng.gen_range(0..10_000) as f64 / 100.0;
            batch = batch.insert(&name, Tuple::new(values, weight));
        }
    }
    if batch.is_empty() {
        // Never hand the service a no-op round; always edit something.
        batch = batch.delete("R2", rng.gen_range(0..db.expect("R2").len()));
    }
    batch
}

/// Rotation + ingestion under concurrency: each round opens 8 paging
/// sessions, edits the served snapshot out from under them (delta ingest,
/// or a wholesale rotate on the last round), then drives the old crew to
/// random fates — stream-to-exhaustion, cancel, or kill — on concurrent
/// threads. Sessions that finish must stream **bit-identical** to their
/// pinned pre-edit snapshot; sessions opened after the edit must stream
/// bit-identical to a from-scratch service over an independently maintained
/// shadow copy (the delta ≡ rebuild guarantee). Every retired generation
/// must release its residency, MEM must return to zero, and a sweep with
/// generous deadlines must reap nothing.
#[test]
fn rotation_and_ingestion_under_concurrent_chaos_pin_generations() {
    let _serial = serial();
    const ROUNDS: usize = 4;
    const CREW: usize = 8;
    let clock = Arc::new(ManualClock::new());
    let service = Arc::new(QueryService::with_config(
        wide_path_db(31),
        ServiceConfig {
            governor: GovernorConfig {
                session_ttl: Some(Duration::from_secs(3_600)),
                idle_timeout: Some(Duration::from_secs(3_600)),
                ..GovernorConfig::default()
            },
            clock: Some(Arc::clone(&clock) as Arc<dyn Clock>),
            ..ServiceConfig::default()
        },
    ));
    // The shadow replays every edit independently; comparing streams against
    // a service built fresh over it is the delta-vs-rebuild differential.
    let mut shadow = wide_path_db(31);
    let mut rng = SmallRng::seed_from_u64(0x0DE1_7A01);

    for round in 0..ROUNDS {
        let oracle = QueryService::new(shadow.clone());
        let generation_before = service.current_generation();
        let mut crew: Vec<(SessionId, AnyKAlgorithm, Vec<Answer>)> = Vec::new();
        for i in 0..CREW {
            let algorithm = ALGORITHMS[(round + i) % ALGORITHMS.len()];
            let algo_name = format!("{algorithm:?}").to_lowercase();
            let text = format!("{WIDE_QUERY} via {algo_name}");
            let id = service.open_session_text(&text).unwrap();
            let first = service.next_page(id, rng.gen_range(1usize..8)).unwrap();
            crew.push((id, algorithm, first.answers));
        }

        // Edit the served snapshot while all 8 sessions are mid-stream.
        if round == ROUNDS - 1 {
            let replacement = wide_path_db(100 + round as u64);
            shadow = replacement.clone();
            assert_eq!(service.rotate(replacement), generation_before + 1);
        } else {
            let batch = random_batch(&shadow, &mut rng);
            shadow = shadow.apply_delta(&batch).unwrap();
            assert_eq!(service.ingest(&batch).unwrap(), generation_before + 1);
        }
        assert_eq!(service.current_generation(), generation_before + 1);

        // With generous deadlines nothing is expired; the sweep must not
        // reap sessions merely because their generation was rotated away.
        clock.advance(Duration::from_secs(5));
        assert_eq!(service.sweep_expired(), 0, "round {round}: nothing stale");

        std::thread::scope(|scope| {
            for (id, algorithm, first) in crew.drain(..) {
                let svc = &service;
                let oracle = &oracle;
                let fate = rng.gen_range(0..4u32);
                let mut rng = SmallRng::seed_from_u64(rng.gen());
                scope.spawn(move || {
                    assert_eq!(
                        svc.session_status(id).unwrap().generation,
                        generation_before,
                        "{algorithm:?}: session stays pinned to its snapshot"
                    );
                    match fate {
                        0 | 1 => {
                            // Stream to exhaustion across the edit.
                            let mut got = first;
                            loop {
                                let page = svc.next_page(id, rng.gen_range(1usize..16)).unwrap();
                                got.extend(page.answers);
                                if page.done {
                                    break;
                                }
                            }
                            let expected: Vec<Answer> = oracle
                                .prepare_text(WIDE_QUERY)
                                .unwrap()
                                .enumerate(algorithm)
                                .collect();
                            assert_eq!(
                                got, expected,
                                "{algorithm:?}: pinned stream bit-identical across the edit"
                            );
                            svc.close_session(id);
                        }
                        2 => {
                            svc.cancel_session(id).unwrap();
                            svc.close_session(id);
                        }
                        _ => {
                            // Kill: drop the session cold, mid-stream.
                            svc.close_session(id);
                        }
                    }
                });
            }
        });

        // The whole pre-edit crew is gone: its generation must have retired
        // and returned both its snapshot residency and its MEM(k).
        let m = service.metrics();
        assert_eq!(
            m.active_generations, 1,
            "round {round}: old generation freed"
        );
        assert_eq!(m.mem_resident_units, 0, "round {round}");
        assert_eq!(m.snapshots_retired as usize, round + 1, "round {round}");

        // A fresh session sees exactly what a from-scratch rebuild serves.
        let algorithm = ALGORITHMS[round % ALGORITHMS.len()];
        let algo_name = format!("{algorithm:?}").to_lowercase();
        let text = format!("{WIDE_QUERY} via {algo_name}");
        let id = service.open_session_text(&text).unwrap();
        let mut got = Vec::new();
        loop {
            let page = service.next_page(id, 16).unwrap();
            got.extend(page.answers);
            if page.done {
                break;
            }
        }
        let rebuilt = QueryService::new(shadow.clone());
        let expected: Vec<Answer> = rebuilt
            .prepare_text(WIDE_QUERY)
            .unwrap()
            .enumerate(algorithm)
            .collect();
        assert_eq!(
            got, expected,
            "round {round}, {algorithm:?}: delta-maintained ≡ from-scratch rebuild"
        );
        service.close_session(id);
    }

    let m = service.metrics();
    let current_units: u64 = shadow.relations().map(|r| r.len() as u64).sum();
    assert_eq!(service.tracked_sessions(), 0, "no session leaks");
    assert_eq!(m.mem_resident_units, 0);
    assert_eq!(m.active_generations, 1);
    assert_eq!(m.snapshot_resident_units, current_units);
    assert_eq!(m.snapshots_retired as usize, ROUNDS);
    assert_eq!(m.deltas_ingested as usize, ROUNDS - 1);
    assert_eq!(m.generations_rotated, 1);
    assert!(
        m.plans_refreshed >= 1,
        "at least one ingest carried the cached plan by delta refresh"
    );
    assert_eq!(service.sweep_expired(), 0, "final sweep reaps nothing");
    assert_metrics_consistent(&service);
}

/// Deadlines under an injected clock: TTL and idle expiry both reap, and
/// the tombstone keeps the id typed until the client closes it.
#[test]
fn deadlines_fire_deterministically_under_manual_clock() {
    let _serial = serial();
    let clock = Arc::new(ManualClock::new());
    let service = QueryService::with_config(
        small_path_db(),
        ServiceConfig {
            governor: GovernorConfig {
                session_ttl: Some(Duration::from_secs(100)),
                idle_timeout: Some(Duration::from_secs(10)),
                ..GovernorConfig::default()
            },
            clock: Some(Arc::clone(&clock) as Arc<dyn Clock>),
            ..ServiceConfig::default()
        },
    );
    // Idle expiry: no pulls for > 10s.
    let idle = service.open_session_text(SMALL_QUERY).unwrap();
    clock.advance(Duration::from_secs(10));
    assert_eq!(service.sweep_expired(), 1);
    assert!(matches!(
        service.next_page(idle, 1),
        Err(ServiceError::SessionExpired(_))
    ));
    // TTL expiry: kept warm with pulls, but the total lifetime cap bites.
    let busy = service.open_session_text(SMALL_QUERY).unwrap();
    for _ in 0..12 {
        clock.advance(Duration::from_secs(9));
        let _ = service.next_page(busy, 1); // refreshes idle, not TTL
    }
    assert_eq!(
        service.session_status(busy).unwrap().state,
        SessionState::Expired
    );
    let m = service.metrics();
    assert_eq!(m.sessions_expired, 2);
    assert_eq!(m.mem_resident_units, 0);
    assert!(service.close_session(idle));
    assert!(service.close_session(busy));
    assert_eq!(service.tracked_sessions(), 0);
    assert_metrics_consistent(&service);
}
