//! The stats snapshot the observability endpoint serves.
//!
//! [`StatsSnapshot`] bundles everything [`QueryService::stats_snapshot`]
//! scrapes — the atomic [`ServiceMetrics`] counters, the process-wide phase
//! timings, the service-wide page-latency summary, and per-plan TTF / delay
//! / page distributions — behind an explicit `version` so wire peers can
//! reject layouts they do not understand. [`StatsSnapshot::render_prometheus`]
//! turns one snapshot into the Prometheus text exposition format for
//! scrape-style consumers.
//!
//! [`QueryService::stats_snapshot`]: crate::QueryService::stats_snapshot

use crate::service::ServiceMetrics;
use anyk_obs::{HistogramSummary, PhaseSnapshot, PlanSummaries};

/// Layout version of [`StatsSnapshot`] (bumped whenever a field is added,
/// removed, or reordered — including [`ServiceMetrics::fields`] entries).
pub const STATS_VERSION: u32 = 2;

/// One consistent scrape of the service's observability surface: counters,
/// phase timings, and latency distributions in one versioned bundle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Layout version ([`STATS_VERSION`] for snapshots produced by this
    /// build).
    pub version: u32,
    /// The snapshot generation serving new sessions, taken from the same
    /// critical section as `metrics` (never disagrees with
    /// `metrics.current_generation`).
    pub generation: u64,
    /// Every counter and gauge, scraped atomically.
    pub metrics: ServiceMetrics,
    /// Process-wide phase timing accumulators (index build, compile,
    /// bottom-up sweep, refresh, rotation, wire read/write).
    pub phases: Vec<PhaseSnapshot>,
    /// Service-wide `next_page` latency distribution across all plans.
    pub page_latency: HistogramSummary,
    /// Per-plan distributions, sorted by canonical plan key.
    pub plans: Vec<(String, PlanSummaries)>,
}

/// Escape a label value per the Prometheus text format (`\`, `"`, newline).
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Append one histogram summary as `<metric>{<labels>quantile="…"}` lines
/// plus `_count` / `_sum` / `_max` companions.
fn push_summary(out: &mut String, metric: &str, labels: &str, s: &HistogramSummary) {
    use std::fmt::Write as _;
    let sep = if labels.is_empty() { "" } else { "," };
    for (q, v) in [("0.5", s.p50), ("0.9", s.p90), ("0.99", s.p99)] {
        let _ = writeln!(out, "{metric}{{{labels}{sep}quantile=\"{q}\"}} {v}");
    }
    let brace = if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    };
    let _ = writeln!(out, "{metric}_count{brace} {}", s.count);
    let _ = writeln!(out, "{metric}_sum{brace} {}", s.sum);
    let _ = writeln!(out, "{metric}_max{brace} {}", s.max);
}

impl StatsSnapshot {
    /// Render the snapshot in the Prometheus text exposition format. All
    /// durations are nanoseconds (suffix `_nanos`); quantile lines follow
    /// the summary-metric convention so dashboards can plot p50/p90/p99
    /// delay directly against the paper's delay guarantees.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        const GAUGES: [&str; 7] = [
            "active_sessions",
            "pages_in_flight",
            "mem_resident_units",
            "current_generation",
            "active_generations",
            "snapshot_resident_units",
            "peak_mem_resident_units",
        ];
        let mut out = String::new();
        let _ = writeln!(out, "anyk_stats_version {}", self.version);
        let _ = writeln!(out, "anyk_generation {}", self.generation);
        for (name, value) in self.metrics.fields() {
            let kind = if GAUGES.contains(&name) {
                "gauge"
            } else {
                "counter"
            };
            let _ = writeln!(out, "# TYPE anyk_{name} {kind}");
            let _ = writeln!(out, "anyk_{name} {value}");
        }
        for p in &self.phases {
            let label = format!("phase=\"{}\"", p.phase.name());
            let _ = writeln!(out, "anyk_phase_count{{{label}}} {}", p.count);
            let _ = writeln!(out, "anyk_phase_nanos_total{{{label}}} {}", p.total_nanos);
            let _ = writeln!(out, "anyk_phase_max_nanos{{{label}}} {}", p.max_nanos);
        }
        push_summary(&mut out, "anyk_page_latency_nanos", "", &self.page_latency);
        for (key, sums) in &self.plans {
            let label = format!("plan=\"{}\"", escape_label(key));
            push_summary(&mut out, "anyk_plan_ttf_nanos", &label, &sums.ttf);
            push_summary(&mut out, "anyk_plan_delay_nanos", &label, &sums.delay);
            push_summary(&mut out, "anyk_plan_page_nanos", &label, &sums.page);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyk_obs::Phase;

    fn sample() -> StatsSnapshot {
        let metrics = ServiceMetrics {
            sessions_opened: 3,
            answers_served: 41,
            current_generation: 7,
            ..Default::default()
        };
        StatsSnapshot {
            version: STATS_VERSION,
            generation: 7,
            metrics,
            phases: vec![PhaseSnapshot {
                phase: Phase::Compile,
                count: 2,
                total_nanos: 9000,
                max_nanos: 6000,
            }],
            page_latency: HistogramSummary {
                count: 5,
                sum: 5000,
                max: 2000,
                p50: 900,
                p90: 1900,
                p99: 2000,
            },
            plans: vec![("Q(x) :- R(x, \"lit\")".to_owned(), PlanSummaries::default())],
        }
    }

    #[test]
    fn prometheus_rendering_covers_every_section() {
        let text = sample().render_prometheus();
        assert!(text.contains("anyk_stats_version 2"));
        assert!(text.contains("anyk_generation 7"));
        assert!(text.contains("# TYPE anyk_sessions_opened counter"));
        assert!(text.contains("anyk_sessions_opened 3"));
        assert!(text.contains("# TYPE anyk_active_sessions gauge"));
        assert!(text.contains("anyk_phase_count{phase=\"compile\"} 2"));
        assert!(text.contains("anyk_phase_nanos_total{phase=\"compile\"} 9000"));
        assert!(text.contains("anyk_page_latency_nanos{quantile=\"0.5\"} 900"));
        assert!(text.contains("anyk_page_latency_nanos_count 5"));
        assert!(
            text.contains("anyk_plan_ttf_nanos{plan=\"Q(x) :- R(x, \\\"lit\\\")\",quantile="),
            "label values are escaped"
        );
    }

    #[test]
    fn metrics_field_round_trip_is_lossless() {
        let metrics = sample().metrics;
        let values: Vec<u64> = metrics.fields().iter().map(|(_, v)| *v).collect();
        let arr: [u64; ServiceMetrics::FIELD_COUNT] = values.try_into().unwrap();
        assert_eq!(ServiceMetrics::from_values(&arr), metrics);
    }
}
