//! Service-level errors.

use crate::service::SessionId;
use anyk_engine::EngineError;
use anyk_query::ParseError;
use std::time::Duration;

/// Which resource cap shed an overloaded request; see
/// [`ServiceError::Overloaded`] and [`crate::GovernorConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadReason {
    /// The concurrent-session cap ([`crate::GovernorConfig::max_sessions`]).
    Sessions,
    /// The in-flight page cap
    /// ([`crate::GovernorConfig::max_pages_in_flight`]).
    PagesInFlight,
    /// The global MEM(k) budget
    /// ([`crate::GovernorConfig::memory_budget_units`]).
    Memory,
}

impl std::fmt::Display for OverloadReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            OverloadReason::Sessions => "concurrent-session cap reached",
            OverloadReason::PagesInFlight => "in-flight page cap reached",
            OverloadReason::Memory => "MEM(k) memory budget exhausted",
        })
    }
}

/// Errors surfaced by [`crate::QueryService`].
#[derive(Debug)]
pub enum ServiceError {
    /// The session id is unknown: never issued, or already closed.
    UnknownSession(SessionId),
    /// The textual query could not be parsed (syntax error, unknown
    /// ranking/algorithm, invalid head or predicate). Carries the byte
    /// offset of the offending token.
    Parse(ParseError),
    /// Query preparation failed (unknown relation, arity mismatch,
    /// constant/column type mismatch, unsupported cyclic query, ...).
    Engine(EngineError),
    /// The request was shed by admission control: a resource cap is
    /// currently exhausted. Transient by construction — retry after
    /// `retry_after_hint` (or back off further under sustained load).
    Overloaded {
        /// Which cap shed the request.
        reason: OverloadReason,
        /// Suggested client back-off before retrying.
        retry_after_hint: Duration,
    },
    /// The session outlived its TTL or idle deadline and was reaped; its
    /// enumeration state is gone. Re-open the query to start over.
    SessionExpired(SessionId),
    /// The session was cancelled ([`crate::QueryService::cancel_session`]);
    /// its enumeration state is gone.
    SessionCancelled(SessionId),
    /// A previous page pull on this session panicked; the session was
    /// isolated and its state discarded. Other sessions are unaffected.
    SessionPoisoned(SessionId),
    /// A delta batch could not be applied to the current snapshot (unknown
    /// relation, arity mismatch, delete id out of range). Validation runs
    /// before any work, so the served snapshot is untouched.
    Delta(anyk_storage::DeltaError),
    /// A chaos-testing failpoint fired on the serving path (see
    /// [`crate::faults`]); never produced unless a fault plan is armed.
    Fault(anyk_core::faults::Injected),
    /// Enumeration or preparation panicked; the panic was contained to this
    /// one request (see the crate docs on panic isolation) and the offending
    /// session, if any, was poisoned. `context` carries the panic payload.
    Panicked {
        /// The panic message, when it was a string payload.
        context: String,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownSession(id) => {
                write!(f, "unknown (or already closed) session {id}")
            }
            ServiceError::Parse(e) => write!(f, "invalid query text: {e}"),
            ServiceError::Engine(e) => write!(f, "query preparation failed: {e}"),
            ServiceError::Overloaded {
                reason,
                retry_after_hint,
            } => write!(
                f,
                "service overloaded ({reason}); retry after {retry_after_hint:?}"
            ),
            ServiceError::SessionExpired(id) => {
                write!(f, "{id} expired (TTL or idle deadline) and was reaped")
            }
            ServiceError::SessionCancelled(id) => write!(f, "{id} was cancelled"),
            ServiceError::SessionPoisoned(id) => write!(
                f,
                "{id} was poisoned by a panic in an earlier page pull and is closed"
            ),
            ServiceError::Delta(e) => write!(f, "delta batch rejected: {e}"),
            ServiceError::Fault(e) => write!(f, "{e}"),
            ServiceError::Panicked { context } => {
                write!(f, "request panicked (isolated): {context}")
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Engine(e) => Some(e),
            ServiceError::Parse(e) => Some(e),
            ServiceError::Delta(e) => Some(e),
            ServiceError::Fault(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for ServiceError {
    fn from(e: EngineError) -> Self {
        // A parse failure wrapped by the engine is still a parse failure to
        // service clients — keep the variant stable regardless of the path
        // the text took. Likewise an injected fault stays a fault whether
        // it fired in the engine or the server.
        match e {
            EngineError::Parse(p) => ServiceError::Parse(p),
            EngineError::Fault(i) => ServiceError::Fault(i),
            other => ServiceError::Engine(other),
        }
    }
}

impl From<ParseError> for ServiceError {
    fn from(e: ParseError) -> Self {
        ServiceError::Parse(e)
    }
}

impl From<anyk_storage::DeltaError> for ServiceError {
    fn from(e: anyk_storage::DeltaError) -> Self {
        ServiceError::Delta(e)
    }
}

impl From<anyk_core::faults::Injected> for ServiceError {
    fn from(e: anyk_core::faults::Injected) -> Self {
        ServiceError::Fault(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_not_debug_dumps() {
        let e = ServiceError::Overloaded {
            reason: OverloadReason::Memory,
            retry_after_hint: Duration::from_millis(50),
        };
        assert!(e.to_string().contains("MEM(k) memory budget"));
        let e = ServiceError::Panicked {
            context: "index out of bounds".into(),
        };
        assert!(e.to_string().contains("isolated"));
        assert!(e.to_string().contains("index out of bounds"));
    }

    #[test]
    fn engine_faults_stay_faults_across_the_layer() {
        let injected = anyk_core::faults::Injected {
            site: "engine.compile",
        };
        let e = ServiceError::from(EngineError::Fault(injected));
        assert!(matches!(e, ServiceError::Fault(i) if i.site == "engine.compile"));
        use std::error::Error;
        assert!(e.source().is_some(), "fault source chain preserved");
    }
}
