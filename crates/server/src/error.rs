//! Service-level errors.

use crate::service::SessionId;
use anyk_engine::EngineError;

/// Errors surfaced by [`crate::QueryService`].
#[derive(Debug)]
pub enum ServiceError {
    /// The session id is unknown: never issued, or already closed.
    UnknownSession(SessionId),
    /// Query preparation failed (unknown relation, arity mismatch,
    /// unsupported cyclic query, ...).
    Engine(EngineError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownSession(id) => {
                write!(f, "unknown (or already closed) session {id}")
            }
            ServiceError::Engine(e) => write!(f, "query preparation failed: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Engine(e) => Some(e),
            ServiceError::UnknownSession(_) => None,
        }
    }
}

impl From<EngineError> for ServiceError {
    fn from(e: EngineError) -> Self {
        ServiceError::Engine(e)
    }
}
