//! Service-level errors.

use crate::service::SessionId;
use anyk_engine::EngineError;
use anyk_query::ParseError;

/// Errors surfaced by [`crate::QueryService`].
#[derive(Debug)]
pub enum ServiceError {
    /// The session id is unknown: never issued, or already closed.
    UnknownSession(SessionId),
    /// The textual query could not be parsed (syntax error, unknown
    /// ranking/algorithm, invalid head or predicate). Carries the byte
    /// offset of the offending token.
    Parse(ParseError),
    /// Query preparation failed (unknown relation, arity mismatch,
    /// constant/column type mismatch, unsupported cyclic query, ...).
    Engine(EngineError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownSession(id) => {
                write!(f, "unknown (or already closed) session {id}")
            }
            ServiceError::Parse(e) => write!(f, "invalid query text: {e}"),
            ServiceError::Engine(e) => write!(f, "query preparation failed: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Engine(e) => Some(e),
            ServiceError::Parse(e) => Some(e),
            ServiceError::UnknownSession(_) => None,
        }
    }
}

impl From<EngineError> for ServiceError {
    fn from(e: EngineError) -> Self {
        // A parse failure wrapped by the engine is still a parse failure to
        // service clients — keep the variant stable regardless of the path
        // the text took.
        match e {
            EngineError::Parse(p) => ServiceError::Parse(p),
            other => ServiceError::Engine(other),
        }
    }
}

impl From<ParseError> for ServiceError {
    fn from(e: ParseError) -> Self {
        ServiceError::Parse(e)
    }
}
