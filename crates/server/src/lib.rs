//! # anyk-server
//!
//! A query-service subsystem over the any-k engine: long-lived, concurrent,
//! resumable ranked enumeration — the serving seam between the paper's
//! algorithms (Tziavelis et al., VLDB 2020) and a system that answers many
//! clients over one shared database snapshot.
//!
//! The any-k algorithms are *anytime* by construction: after one
//! preprocessing pass, answers stream out one at a time in rank order with
//! logarithmic delay. That maps naturally onto a service in which clients
//! **pull pages** of ranked answers and may pause between pages for
//! arbitrarily long:
//!
//! * [`QueryService`] owns an `Arc`-shared, read-mostly
//!   [`Database`](anyk_storage::Database) snapshot whose index cache is
//!   LRU-bounded and `RwLock`-sharded, so many sessions preprocess and
//!   enumerate concurrently without blocking each other.
//! * [`QueryService::open_session_text`] is the one entry point from a
//!   string to ranked pages: it parses the textual query language
//!   (`Q(x, z) :- R(x, y), S(y, z), y = 7 rank by sum limit 1000`, see
//!   [`anyk_query::parse`]), pushes the selections down to filtered
//!   relation copies, and opens a session — parse and validation failures
//!   surface as typed [`ServiceError::Parse`] / [`ServiceError::Engine`]
//!   values, never panics.
//! * [`QueryService::prepare`] / [`QueryService::prepare_spec`] compile a
//!   request **once** (selection pushdown, join-tree or cycle
//!   decomposition, T-DP compilation, bottom-up phase) and memoise the
//!   resulting [`PreparedQuery`] keyed by **canonical spec text**
//!   ([`anyk_query::QuerySpec::plan_key`]): alpha-renamed variants of one
//!   query — and the same query built via `QueryBuilder` — share a single
//!   cache entry, while per-request `via …` / `limit …` clauses apply to
//!   the session, not the plan.
//! * [`QueryService::open_session`] hands out a [`SessionId`] backed by an
//!   [`AnswerCursor`](anyk_engine::AnswerCursor): the live any-k iterator
//!   state (candidate queue, shared-prefix arena, successor structures,
//!   union heap) is retained **per session**, which is what makes sessions
//!   suspendable mid-enumeration and resumable later — suspension is simply
//!   not calling [`QueryService::next_page`] for a while.
//!
//! **Determinism guarantee:** concatenating the pages of a session yields a
//! stream bit-identical to the one-shot
//! [`PreparedQuery::enumerate`](anyk_engine::PreparedQuery::enumerate)
//! stream for the same algorithm, regardless of page sizes, suspensions, or
//! what other sessions do concurrently.
//!
//! ## Example
//!
//! ```
//! use anyk_core::AnyKAlgorithm;
//! use anyk_query::QueryBuilder;
//! use anyk_server::QueryService;
//! use anyk_storage::{Database, Relation};
//!
//! let mut db = Database::new();
//! let mut r1 = Relation::new("R1", 2);
//! r1.push_edge(1, 10, 1.0);
//! r1.push_edge(2, 20, 4.0);
//! let mut r2 = Relation::new("R2", 2);
//! r2.push_edge(10, 5, 2.0);
//! r2.push_edge(20, 6, 1.0);
//! db.add(r1);
//! db.add(r2);
//!
//! let service = QueryService::new(db);
//! let query = QueryBuilder::path(2).build();
//!
//! // Two independent clients over the same prepared plan.
//! let a = service.open_session(&query, AnyKAlgorithm::Take2).unwrap();
//! let b = service.open_session(&query, AnyKAlgorithm::Lazy).unwrap();
//!
//! let first = service.next_page(a, 1).unwrap();
//! assert_eq!(first.answers[0].weight(), 3.0);
//! // Session `a` is now suspended; session `b` streams independently.
//! let all = service.next_page(b, 100).unwrap();
//! assert_eq!(all.answers.len(), 2);
//! assert!(all.done);
//! // Resume `a` where it left off.
//! let rest = service.next_page(a, 100).unwrap();
//! assert_eq!(rest.answers.len(), 1);
//!
//! assert_eq!(service.metrics().plan_hits, 1, "second session reused the plan");
//! service.close_session(a);
//! service.close_session(b);
//! ```
//!
//! ## Session lifecycle
//!
//! Every session walks one edge path of this diagram; the registry slot
//! holds the live state, and ended sessions leave a tiny *tombstone* so
//! clients get a typed error ([`ServiceError::SessionExpired`] /
//! [`ServiceError::SessionCancelled`] / [`ServiceError::SessionPoisoned`])
//! instead of an ambiguous `UnknownSession`:
//!
//! ```text
//!                    open_session*            next_page (stream ends)
//!   [admission] ───────────────────▶ Active ─────────────────────▶ Drained
//!        │ shed: Overloaded            │                              │
//!        ▼                             │ TTL/idle deadline            │
//!   (no session)                       ├────────────────▶ Expired     │
//!                                      │ cancel_session              close_session
//!                                      ├────────────────▶ Cancelled   │
//!                                      │ panic in a page pull         │
//!                                      └────────────────▶ Poisoned    │
//!                                                            │        ▼
//!                                          close_session ────┴──▶ (slot freed)
//! ```
//!
//! * **Admission** ([`GovernorConfig`]): opens are shed with
//!   [`ServiceError::Overloaded`] when the concurrent-session cap, the
//!   in-flight page cap, or the global MEM(k) memory budget would be
//!   exceeded; the error carries a `retry_after_hint` for client back-off.
//! * **Deadlines** are driven by an injectable [`Clock`]
//!   ([`ServiceConfig::clock`]): production uses a monotonic clock, tests a
//!   [`ManualClock`], which makes expiry and the chaos suite fully
//!   deterministic. Expired sessions are reaped opportunistically on every
//!   open and explicitly via [`QueryService::sweep_expired`]; a session
//!   with a pull in flight re-checks its own deadline on the next pull.
//! * **Cancellation** is cooperative and answer-granular: the cursor checks
//!   a shared token between answers, so
//!   [`QueryService::cancel_session`] stops an in-flight pull within one
//!   any-k delay and the partial page (still valid, still in rank order) is
//!   delivered.
//! * **Panic isolation**: a panic inside a page pull (or plan compilation)
//!   is caught *inside* the session's mutex scope — the session is marked
//!   `Poisoned`, its cursor and memory charge are released, **no registry
//!   lock is ever poisoned**, and every other session keeps paging
//!   bit-identically. The caller gets [`ServiceError::Panicked`] with the
//!   panic message.
//!
//! ## Snapshot rotation & delta ingestion
//!
//! The service never mutates the data it serves. [`QueryService::over`]
//! **seals** the database it is handed — any leftover mutable handle that
//! tries [`Database::add`](anyk_storage::Database::add) afterwards panics
//! instead of swapping a relation under live sessions — and new data only
//! ever enters as a **new generation**:
//!
//! ```text
//!            over(db)                 ingest(batch) / rotate(db)
//!   [unsealed db] ──▶ gen 0 (sealed) ─────────────▶ gen 1 (sealed) ──▶ …
//!                        ▲ current                     ▲ current
//!                        │                             │
//!            sessions opened before the edit stay      │ new sessions,
//!            *pinned* to gen 0 and stream it to        │ new plans
//!            the end, bit-identically                  │
//!                        │                             │
//!                        ▼ last pinned session ends    │
//!                  gen 0 retired: snapshot dropped,    │
//!                  residency returned to the Governor  │
//! ```
//!
//! * **Generation pinning**: [`QueryService::open_session`] binds the
//!   session to the snapshot current *at open*; rotation never perturbs an
//!   in-flight stream ([`SessionStatus::generation`] says which one).
//!   A retired snapshot is dropped with its **last** pinned session, and
//!   its tuple residency ([`ServiceMetrics::snapshot_resident_units`],
//!   [`ServiceMetrics::active_generations`]) is released then.
//! * **Plan cache keying**: cached plans are keyed by
//!   `(generation, plan_key)`, so a rotated snapshot can never serve a
//!   stale plan — and neither can the storage-level index cache, whose
//!   entries carry the generation too.
//! * **Delta ingestion** ([`QueryService::ingest`]): a
//!   [`DeltaBatch`](anyk_storage::DeltaBatch) of per-relation deletes and
//!   inserts is validated, applied to a **copy** of the current snapshot,
//!   and served as the next generation. Cached delta-capable plans are
//!   carried forward by re-sweeping only the **dirty cone** of the
//!   bottom-up DP (a small fraction of a full compile); the rest are
//!   recompiled. Either way the differential guarantee holds: every ranked
//!   stream from a delta-maintained instance is **bit-identical** to one
//!   from a from-scratch rebuild, across all six any-k algorithms.
//! * **Wholesale rotation** ([`QueryService::rotate`]) swaps in unrelated
//!   data: the plan cache starts cold, pinned sessions still finish their
//!   old generation.
//!
//! ## Sharded enumeration
//!
//! [`ServiceConfig::shards`] (or a per-request `shards N` clause in the
//! query text) turns a plan into a **hash-partitioned** ensemble: the
//! service picks one join variable bound at a single, consistent column of
//! every relation it touches, splits those relations by a hash of that
//! column ([`anyk_storage::ShardSpec`]), and compiles one independent T-DP
//! instance per shard **in parallel** — one `ShardPrep` phase span per
//! shard, wall-clock roughly `prep / shards` on a machine with that many
//! cores. Sessions over a sharded plan stream through a ranked k-way merge
//! (the UT-DP union discipline of §5.2 of the paper).
//!
//! The invariants the implementation maintains:
//!
//! * **Partitioning** — every answer lives in exactly one shard: relations
//!   binding the shard variable are split by the hash of its column;
//!   relations not binding it are replicated (`Arc`-shared, not copied).
//!   The dictionary, schema, and generation are shared/propagated, and
//!   witness tuple ids are remapped shard-local → global, so a sharded
//!   answer is byte-for-byte the unsharded answer.
//! * **Merge ordering** — shard streams merge by `(encoded weight, head
//!   values)`, a total order independent of the shard count: the merged
//!   stream is **bit-identical** to the unsharded stream for every
//!   algorithm and page size whenever weights are distinct (under exact
//!   weight ties, the same answer *set* arrives with ties ordered by head
//!   values).
//! * **MEM accounting** — a sharded cursor reports the *sum* of its shard
//!   streams' live MEM(k), so the governor's memory budget governs sharded
//!   and unsharded sessions through one gauge.
//! * **Ingestion** — [`QueryService::ingest`] routes each delta row to its
//!   shard by the same hash and patches each shard's dirty cone; the
//!   refreshed ensemble streams bit-identically to a from-scratch rebuild.
//! * **Fallback** — queries the partitioner cannot cover (selection
//!   predicates, self-joins) silently fall back to the single-stream plan;
//!   [`ServiceMetrics::shards_prepared`] and
//!   [`ServiceMetrics::sharded_sessions_opened`] say what actually ran.
//!
//! Sharded and unsharded plans are distinct cache entries (the key gains a
//! `#shards=N` suffix), so flipping the shard count never serves a plan of
//! the wrong shape.
//!
//! ## Tuning the governor
//!
//! * `max_sessions` bounds *suspended state*: each open session parks its
//!   enumeration structures. Size it from the MEM(k) profile of your
//!   workload (see [`PreparedQuery::mem_profile`](anyk_engine::PreparedQuery::mem_profile)).
//! * `max_pages_in_flight` bounds *CPU overcommit* — pulls beyond it shed
//!   instead of queueing. A good default is your worker-thread count.
//! * `memory_budget_units` is denominated in MEM(k) units (live entries in
//!   candidate queues + prefix arenas + successor structures,
//!   [`anyk_core::MemoryStats::resident_units`]); sessions are re-charged
//!   their actual footprint after every page, so the budget tracks reality,
//!   not a static estimate. `Recursive`/`Batch` cursors, which do not
//!   expose those structures, are charged the flat
//!   `untracked_session_units` rate.
//! * `session_ttl` caps total session lifetime; `idle_timeout` reclaims
//!   abandoned sessions. Both `None` (the default) means sessions live
//!   until closed, exactly like the pre-governance service.
//!
//! ## Fault injection
//!
//! The [`faults`] module (re-exported from `anyk_core`) is a
//! no-dependencies failpoint registry wired through the whole stack —
//! index build, bottom-up preprocessing, plan compilation, the paging
//! path, and the service entry points. Tests (and operators, via the
//! `ANYK_FAULTS` environment variable) arm error or panic faults at named
//! sites to prove the containment story above; unarmed, every hook is one
//! relaxed atomic load.
//!
//! ## Serving over TCP
//!
//! The [`net`] module is the wire: [`net::AnyKServer`] exposes a
//! `QueryService` on a `std::net::TcpListener` behind a length-prefixed,
//! versioned binary protocol (fully specified in [`net::protocol`]), and
//! [`net::AnyKClient`] is the matching blocking client. The transport is
//! semantics-free — every TCP-served ranked stream is bit-identical to the
//! in-process stream for the same `QuerySpec` — and every
//! [`ServiceError`] variant crosses the wire as a typed status code, so
//! remote clients see the same `Overloaded { retry_after_hint }` /
//! `SessionExpired` / `SessionPoisoned` taxonomy in-process callers do.
//!
//! ```no_run
//! use anyk_server::net::{AnyKClient, AnyKServer, ClientConfig, NetConfig};
//! use anyk_server::QueryService;
//! use anyk_storage::Database;
//! use std::sync::Arc;
//!
//! let service = Arc::new(QueryService::new(Database::new()));
//! let mut server =
//!     AnyKServer::bind(service, ("127.0.0.1", 0), NetConfig::default()).unwrap();
//! let mut client = AnyKClient::connect(server.local_addr(), ClientConfig::default());
//! client.ping().unwrap();
//! server.shutdown(); // drains in-flight pages, closes sessions, joins
//! ```
//!
//! ### Tuning the transport
//!
//! * `NetConfig::workers` is the serving parallelism — connections beyond
//!   it queue at the accept channel. Pair it with
//!   `GovernorConfig::max_pages_in_flight ≈ workers` so the two layers
//!   agree on CPU overcommit.
//! * `NetConfig::max_connections` bounds live connections (served +
//!   queued); beyond it, accepts shed with a protocol-level
//!   `Overloaded { retry_after }` **before** any handshake or session work
//!   — the cheapest possible rejection under connection floods.
//! * `read_timeout`/`write_timeout` are OS socket deadlines (a parked-idle
//!   connection is reaped after `read_timeout`); `frame_deadline` bounds
//!   one whole frame's wall time on the injectable [`Clock`], which is what
//!   defeats slow-loris clients dribbling a byte per timeout window.
//! * `max_frame_bytes` caps frames in both directions (announced-length
//!   rejection, no allocation); `max_page_size` clamps page requests so
//!   response frames stay under that cap.
//! * Session handles are **per-connection**: a connection can only address
//!   sessions it opened, and all of them are closed when it disconnects —
//!   cleanly, torn, timed-out, or shed — so the Governor's MEM gauge
//!   returns to zero when the clients go away. Reconnecting clients re-open
//!   and re-enumerate (determinism makes the replay bit-identical).
//!
//! ## Observing the service
//!
//! The paper's contract is stated in *per-answer time*: TTF (time to first
//! answer), TT(k), and a bounded delay between consecutive results. The
//! observability layer (crate `anyk-obs`, re-exported here) measures exactly
//! those quantities in production, cheaply enough to leave on:
//!
//! * **Delay histograms** — every cursor carries a
//!   [`DelayRecorder`](anyk_obs::DelayRecorder): one monotonic-clock read
//!   per answer into a cursor-local, allocation-free log-bucketed histogram
//!   (~2.5 % relative error), flushed into shared lock-free per-plan
//!   atomics at page boundaries. The per-plan distributions — TTF,
//!   inter-answer delay, and page service latency, keyed by
//!   [`QuerySpec::plan_key`] — are what
//!   [`QueryService::stats_snapshot`] reports as [`PlanSummaries`]:
//!   plot `delay.p99` against the theoretical `O(log n)` delay bound and a
//!   regression is a dashboard artifact, not a bisection. In-process
//!   callers get the same distribution per cursor via
//!   [`AnswerCursor::delay_histogram`].
//! * **Phase spans** — the expensive one-off phases (index build, plan
//!   compile, bottom-up sweep, delta refresh, snapshot rotation, wire
//!   read/write) accumulate `(count, total, max)` into process-wide
//!   [`PhaseSnapshot`]s, so a scrape separates *preprocessing* cost from
//!   *enumeration* cost — the paper's central distinction. Note that
//!   `wire_read` spans cover the blocking wait for the next request, so
//!   they include client think time by design: the figure bounds how long
//!   workers sit in reads, not pure socket cost.
//! * **Session traces** — each session keeps a bounded [`EventRing`]
//!   (capacity [`ServiceConfig::session_event_capacity`]; 0 disables) of
//!   lifecycle [`Event`]s: open, every page pull, shed pulls, and its
//!   terminal cancel/expire/poison/close, timestamped by the injectable
//!   [`Clock`]. The ring migrates into the session's tombstone, so
//!   [`QueryService::session_trace`] answers "what happened to session X?"
//!   *after* it died. Size the ring to your paging pattern: pages dominate,
//!   so ~2× the expected pulls per session keeps whole lifecycles.
//! * **The Stats opcode** — `0x08` on the wire returns a versioned
//!   [`StatsSnapshot`]: every [`ServiceMetrics`] counter, the phase table,
//!   the service-wide page-latency summary, and the per-plan distributions,
//!   all scraped in one request ([`net::AnyKClient::stats`]). The
//!   `generation` field comes from the same critical section as the
//!   counters, so a scrape racing [`QueryService::rotate`] still describes
//!   one consistent generation. [`StatsSnapshot::render_prometheus`] turns
//!   a snapshot into the Prometheus text format for scrape-style pipelines.
//! * **The recording switch** — [`set_recording`]`(false)` turns the
//!   per-answer clock reads and histogram stores off process-wide (session
//!   event rings and plain counters stay on). The overhead benchmark keeps
//!   recording honest: enabled-vs-disabled on the hot path must stay within
//!   a few percent.
//!
//! [`DelayRecorder`]: anyk_obs::DelayRecorder
//! [`EventRing`]: anyk_obs::EventRing
//! [`AnswerCursor::delay_histogram`]: anyk_engine::AnswerCursor::delay_histogram
//! [`QuerySpec::plan_key`]: anyk_query::QuerySpec::plan_key

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod clock;
mod error;
mod governor;
pub mod net;
mod service;
mod stats;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use error::{OverloadReason, ServiceError};
pub use governor::GovernorConfig;
pub use service::{
    QueryService, ServiceConfig, ServiceMetrics, SessionId, SessionState, SessionStatus,
    DEFAULT_ALGORITHM,
};
pub use stats::{StatsSnapshot, STATS_VERSION};

// Re-exported so stats/trace consumers can name the observability types
// (histogram summaries, phase timings, session events, the recording
// switch) without depending on anyk-obs directly.
pub use anyk_obs::{
    recording_enabled, set_recording, Event, EventKind, HistogramSummary, Phase, PhaseSnapshot,
    PlanSummaries,
};

// The failpoint registry lives in anyk-core (the bottom of the crate DAG,
// so every layer can host hooks); service users reach it as
// `anyk_server::faults`.
pub use anyk_core::faults;

// Re-exported so service callers can name the page/cursor/request types
// without depending on anyk-engine / anyk-query directly.
pub use anyk_engine::{
    Answer, AnswerCursor, CancellationToken, Page, PreparedQuery, ShardedCursor,
    ShardedPreparedQuery,
};
pub use anyk_query::{ParseError, QuerySpec};

// Re-exported so ingestion callers can build delta batches without
// depending on anyk-storage directly.
pub use anyk_storage::{DeltaBatch, DeltaError, RelationDelta};
