//! # anyk-server
//!
//! A query-service subsystem over the any-k engine: long-lived, concurrent,
//! resumable ranked enumeration — the serving seam between the paper's
//! algorithms (Tziavelis et al., VLDB 2020) and a system that answers many
//! clients over one shared database snapshot.
//!
//! The any-k algorithms are *anytime* by construction: after one
//! preprocessing pass, answers stream out one at a time in rank order with
//! logarithmic delay. That maps naturally onto a service in which clients
//! **pull pages** of ranked answers and may pause between pages for
//! arbitrarily long:
//!
//! * [`QueryService`] owns an `Arc`-shared, read-mostly
//!   [`Database`](anyk_storage::Database) snapshot whose index cache is
//!   LRU-bounded and `RwLock`-sharded, so many sessions preprocess and
//!   enumerate concurrently without blocking each other.
//! * [`QueryService::open_session_text`] is the one entry point from a
//!   string to ranked pages: it parses the textual query language
//!   (`Q(x, z) :- R(x, y), S(y, z), y = 7 rank by sum limit 1000`, see
//!   [`anyk_query::parse`]), pushes the selections down to filtered
//!   relation copies, and opens a session — parse and validation failures
//!   surface as typed [`ServiceError::Parse`] / [`ServiceError::Engine`]
//!   values, never panics.
//! * [`QueryService::prepare`] / [`QueryService::prepare_spec`] compile a
//!   request **once** (selection pushdown, join-tree or cycle
//!   decomposition, T-DP compilation, bottom-up phase) and memoise the
//!   resulting [`PreparedQuery`] keyed by **canonical spec text**
//!   ([`anyk_query::QuerySpec::plan_key`]): alpha-renamed variants of one
//!   query — and the same query built via `QueryBuilder` — share a single
//!   cache entry, while per-request `via …` / `limit …` clauses apply to
//!   the session, not the plan.
//! * [`QueryService::open_session`] hands out a [`SessionId`] backed by an
//!   [`AnswerCursor`](anyk_engine::AnswerCursor): the live any-k iterator
//!   state (candidate queue, shared-prefix arena, successor structures,
//!   union heap) is retained **per session**, which is what makes sessions
//!   suspendable mid-enumeration and resumable later — suspension is simply
//!   not calling [`QueryService::next_page`] for a while.
//!
//! **Determinism guarantee:** concatenating the pages of a session yields a
//! stream bit-identical to the one-shot
//! [`PreparedQuery::enumerate`](anyk_engine::PreparedQuery::enumerate)
//! stream for the same algorithm, regardless of page sizes, suspensions, or
//! what other sessions do concurrently.
//!
//! ## Example
//!
//! ```
//! use anyk_core::AnyKAlgorithm;
//! use anyk_query::QueryBuilder;
//! use anyk_server::QueryService;
//! use anyk_storage::{Database, Relation};
//!
//! let mut db = Database::new();
//! let mut r1 = Relation::new("R1", 2);
//! r1.push_edge(1, 10, 1.0);
//! r1.push_edge(2, 20, 4.0);
//! let mut r2 = Relation::new("R2", 2);
//! r2.push_edge(10, 5, 2.0);
//! r2.push_edge(20, 6, 1.0);
//! db.add(r1);
//! db.add(r2);
//!
//! let service = QueryService::new(db);
//! let query = QueryBuilder::path(2).build();
//!
//! // Two independent clients over the same prepared plan.
//! let a = service.open_session(&query, AnyKAlgorithm::Take2).unwrap();
//! let b = service.open_session(&query, AnyKAlgorithm::Lazy).unwrap();
//!
//! let first = service.next_page(a, 1).unwrap();
//! assert_eq!(first.answers[0].weight(), 3.0);
//! // Session `a` is now suspended; session `b` streams independently.
//! let all = service.next_page(b, 100).unwrap();
//! assert_eq!(all.answers.len(), 2);
//! assert!(all.done);
//! // Resume `a` where it left off.
//! let rest = service.next_page(a, 100).unwrap();
//! assert_eq!(rest.answers.len(), 1);
//!
//! assert_eq!(service.metrics().plan_hits, 1, "second session reused the plan");
//! service.close_session(a);
//! service.close_session(b);
//! ```
//!
//! ## What this crate is not (yet)
//!
//! There is no transport: callers are in-process threads. The service is
//! the seam where an async RPC front end, admission control, or cross-node
//! sharding would plug in — each session is already a `Send` value behind a
//! stable id, so a transport only has to map connections to [`SessionId`]s.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod error;
mod service;

pub use error::ServiceError;
pub use service::{
    QueryService, ServiceConfig, ServiceMetrics, SessionId, SessionStatus, DEFAULT_ALGORITHM,
};

// Re-exported so service callers can name the page/cursor/request types
// without depending on anyk-engine / anyk-query directly.
pub use anyk_engine::{Answer, AnswerCursor, Page, PreparedQuery};
pub use anyk_query::{ParseError, QuerySpec};
