//! The any-k wire protocol: a length-prefixed, versioned binary framing
//! shared by [`AnyKServer`](crate::net::AnyKServer) and
//! [`AnyKClient`](crate::net::AnyKClient).
//!
//! # Frame layout
//!
//! Every message — request or response — is one frame:
//!
//! ```text
//! offset  size  field
//!      0     1  magic     0xA7 (rejects line noise and HTTP probes cheaply)
//!      1     1  version   protocol version, currently 1
//!      2     1  kind      request opcode (0x01..) or response status (0x80..)
//!      3     1  reserved  must be 0
//!      4     4  length    payload byte count, u32 big-endian
//!      8     n  payload   kind-specific, n = length
//! ```
//!
//! `length` is capped by each side's `max_frame_bytes`; a peer announcing a
//! larger payload is rejected **before** any allocation
//! ([`FrameReadError::TooLarge`]), so a hostile length prefix cannot balloon
//! memory. All multi-byte integers are big-endian; `f64` weights travel as
//! their IEEE-754 bit pattern (`f64::to_bits`), so ranked streams round-trip
//! the wire **bit-identically**.
//!
//! # Version negotiation
//!
//! Every frame carries the version byte. A server receiving an unsupported
//! version answers [`StatusCode::ErrUnsupportedVersion`] whose payload is
//! the one version it speaks, then closes; a client can reconnect speaking
//! that version. (With a single deployed version this degenerates to a typed
//! rejection, which is the point: old clients get a diagnosable error, not a
//! hang or a garbage parse.)
//!
//! # Request opcodes
//!
//! | op | name | payload |
//! |----|------|---------|
//! | `0x01` | `Ping` | empty |
//! | `0x02` | `Prepare` | query text (UTF-8) |
//! | `0x03` | `OpenSession` | query text (UTF-8) |
//! | `0x04` | `NextPage` | `u64` session, `u32` page size |
//! | `0x05` | `Cancel` | `u64` session |
//! | `0x06` | `Close` | `u64` session |
//! | `0x07` | `Ingest` | delta batch (see below) |
//! | `0x08` | `Stats` | empty |
//!
//! Session ids are **per-connection** handles issued by `OpenSession`; a
//! connection can only address sessions it opened itself, so one client can
//! never cancel or read another's stream.
//!
//! An `Ingest` payload is a [`DeltaBatch`]: `u16` relation count, then per
//! relation `u16` name length + UTF-8 name, `u32` delete count + `u64` per
//! deleted tuple id, `u32` insert count + per inserted tuple `u16` arity,
//! arity × `u64` values, `u64` weight bits. Weights travel as bit patterns,
//! so the server ingests exactly the tuples the client built.
//!
//! # Response statuses
//!
//! Success (`0x80..`): `Pong` (empty), `Prepared` (canonical plan key,
//! UTF-8), `SessionOpened` (`u64` id), `Page` (`u8` done, `u32` count,
//! `count` × answer), `Cancelled` (empty), `Closed` (`u8` existed),
//! `Ingested` (`u64` new generation id), `Stats` (a versioned
//! [`StatsSnapshot`]: `u32` layout version, `u64` generation, `u16` metric
//! count + that many `u64` counters in [`ServiceMetrics::fields`] order,
//! `u8` phase count + per phase `u8` id and `u64` count/total/max nanos,
//! one 6 × `u64` page-latency summary, `u16` plan count + per plan a
//! length-prefixed UTF-8 key and three 6 × `u64` summaries —
//! count/sum/max/p50/p90/p99 — for TTF, delay, and page latency).
//!
//! An answer is `u64` weight bits, `u16` arity, arity × `u64` values,
//! `u16` witness count, count × (`u32` atom index, `u64` tuple id) — the
//! full [`Answer`] including provenance, so a TCP stream equals the
//! in-process stream under `==`.
//!
//! Errors (`0xC0..`) map every [`ServiceError`] variant plus the
//! transport-level failures; see [`StatusCode`]. `ErrOverloaded` carries the
//! shedding reason and the governor's `retry_after_hint` in microseconds, so
//! well-behaved clients back off exactly as in-process callers do.

use crate::error::{OverloadReason, ServiceError};
use crate::service::ServiceMetrics;
use crate::stats::{StatsSnapshot, STATS_VERSION};
use anyk_engine::{Answer, Page};
use anyk_obs::{HistogramSummary, Phase, PhaseSnapshot, PlanSummaries};
use anyk_storage::{DeltaBatch, RelationDelta, Tuple};
use std::io::{self, Read, Write};
use std::time::Duration;

/// First byte of every frame.
pub const MAGIC: u8 = 0xA7;
/// The protocol version this build speaks.
pub const VERSION: u8 = 1;
/// Bytes in a frame header.
pub const HEADER_LEN: usize = 8;
/// Default cap on a frame's payload length (1 MiB) — both directions.
pub const DEFAULT_MAX_FRAME_BYTES: u32 = 1 << 20;

/// Request opcodes (client → server).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum OpCode {
    /// Liveness probe; answered with `Pong`.
    Ping = 0x01,
    /// Compile (or cache-hit) a textual query; answered with `Prepared`.
    Prepare = 0x02,
    /// Open a paged session from query text; answered with `SessionOpened`.
    OpenSession = 0x03,
    /// Pull the next page of a session; answered with `Page`.
    NextPage = 0x04,
    /// Cancel a session; answered with `Cancelled`.
    Cancel = 0x05,
    /// Close a session; answered with `Closed`.
    Close = 0x06,
    /// Apply a delta batch, rotating the served snapshot; answered with
    /// `Ingested`.
    Ingest = 0x07,
    /// Scrape the observability surface (counters, phase timings, per-plan
    /// latency percentiles); answered with `Stats`.
    Stats = 0x08,
}

impl OpCode {
    fn from_byte(b: u8) -> Option<Self> {
        Some(match b {
            0x01 => OpCode::Ping,
            0x02 => OpCode::Prepare,
            0x03 => OpCode::OpenSession,
            0x04 => OpCode::NextPage,
            0x05 => OpCode::Cancel,
            0x06 => OpCode::Close,
            0x07 => OpCode::Ingest,
            0x08 => OpCode::Stats,
            _ => return None,
        })
    }
}

/// Response status codes (server → client). `0x80..` succeed, `0xC0..` are
/// typed errors carrying enough payload to reconstruct the service-side
/// error on the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
#[allow(missing_docs)] // the variants mirror documented Request/ServiceError shapes
pub enum StatusCode {
    Pong = 0x80,
    Prepared = 0x81,
    SessionOpened = 0x82,
    Page = 0x83,
    Cancelled = 0x84,
    Closed = 0x85,
    Ingested = 0x86,
    Stats = 0x87,
    ErrProtocol = 0xC0,
    ErrUnsupportedVersion = 0xC1,
    ErrFrameTooLarge = 0xC2,
    ErrShuttingDown = 0xC3,
    ErrParse = 0xC4,
    ErrEngine = 0xC5,
    ErrUnknownSession = 0xC6,
    ErrOverloaded = 0xC7,
    ErrSessionExpired = 0xC8,
    ErrSessionCancelled = 0xC9,
    ErrSessionPoisoned = 0xCA,
    ErrFault = 0xCB,
    ErrPanicked = 0xCC,
    ErrDelta = 0xCD,
}

impl StatusCode {
    fn from_byte(b: u8) -> Option<Self> {
        Some(match b {
            0x80 => StatusCode::Pong,
            0x81 => StatusCode::Prepared,
            0x82 => StatusCode::SessionOpened,
            0x83 => StatusCode::Page,
            0x84 => StatusCode::Cancelled,
            0x85 => StatusCode::Closed,
            0x86 => StatusCode::Ingested,
            0x87 => StatusCode::Stats,
            0xC0 => StatusCode::ErrProtocol,
            0xC1 => StatusCode::ErrUnsupportedVersion,
            0xC2 => StatusCode::ErrFrameTooLarge,
            0xC3 => StatusCode::ErrShuttingDown,
            0xC4 => StatusCode::ErrParse,
            0xC5 => StatusCode::ErrEngine,
            0xC6 => StatusCode::ErrUnknownSession,
            0xC7 => StatusCode::ErrOverloaded,
            0xC8 => StatusCode::ErrSessionExpired,
            0xC9 => StatusCode::ErrSessionCancelled,
            0xCA => StatusCode::ErrSessionPoisoned,
            0xCB => StatusCode::ErrFault,
            0xCC => StatusCode::ErrPanicked,
            0xCD => StatusCode::ErrDelta,
            _ => return None,
        })
    }
}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Compile (or cache-hit) `text` in the query language.
    Prepare(String),
    /// Open a session over `text`.
    OpenSession(String),
    /// Pull up to `page_size` answers from session `session`.
    NextPage {
        /// The connection-scoped session handle.
        session: u64,
        /// Maximum answers in the page.
        page_size: u32,
    },
    /// Cancel session `session`.
    Cancel(u64),
    /// Close session `session`, releasing its state.
    Close(u64),
    /// Apply a delta batch: the served snapshot rotates to a new generation
    /// while open sessions keep streaming their pinned one.
    Ingest(DeltaBatch),
    /// Scrape the service's observability snapshot.
    Stats,
}

/// A decoded response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// The plan compiled (or was cached); carries the canonical plan key.
    Prepared(String),
    /// A session opened under this connection-scoped handle.
    SessionOpened(u64),
    /// One page of ranked answers.
    Page(Page),
    /// The session was cancelled.
    Cancelled,
    /// The session was closed; `existed` is false for unknown handles.
    Closed {
        /// Whether the handle named a live session.
        existed: bool,
    },
    /// The delta batch was applied; carries the new generation id.
    Ingested(u64),
    /// One consistent observability scrape; see [`StatsSnapshot`].
    Stats(Box<StatsSnapshot>),
    /// Typed failure; see [`WireError`].
    Err(WireError),
}

/// The typed error statuses a server can answer with — every
/// [`ServiceError`] variant plus the transport-level failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The peer broke the framing or sent an undecodable payload; the
    /// connection closes after this frame.
    Protocol(String),
    /// The frame's version byte is not spoken here; payload names the one
    /// supported version.
    UnsupportedVersion {
        /// The version the server speaks.
        supported: u8,
    },
    /// The announced payload length exceeds the receiver's cap.
    FrameTooLarge {
        /// The receiver's `max_frame_bytes`.
        max: u32,
    },
    /// The server is draining for shutdown; reconnect later.
    ShuttingDown,
    /// [`ServiceError::Parse`], as its display string.
    Parse(String),
    /// [`ServiceError::Engine`], as its display string.
    Engine(String),
    /// [`ServiceError::UnknownSession`] (or a handle this connection never
    /// opened).
    UnknownSession(u64),
    /// [`ServiceError::Overloaded`]: shed by admission control (or the
    /// transport's connection cap); retry after the hint.
    Overloaded {
        /// Which cap shed the request.
        reason: WireOverloadReason,
        /// Suggested client back-off.
        retry_after: Duration,
    },
    /// [`ServiceError::SessionExpired`].
    SessionExpired(u64),
    /// [`ServiceError::SessionCancelled`].
    SessionCancelled(u64),
    /// [`ServiceError::SessionPoisoned`].
    SessionPoisoned(u64),
    /// [`ServiceError::Fault`]: an armed failpoint fired; carries the site.
    Fault(String),
    /// [`ServiceError::Panicked`]: the panic was contained server-side.
    Panicked(String),
    /// [`ServiceError::Delta`], as its display string: the batch was
    /// rejected up front and the served snapshot is unchanged.
    Delta(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Protocol(d) => write!(f, "protocol violation: {d}"),
            WireError::UnsupportedVersion { supported } => {
                write!(
                    f,
                    "unsupported protocol version (server speaks {supported})"
                )
            }
            WireError::FrameTooLarge { max } => {
                write!(f, "frame exceeds the receiver's cap of {max} bytes")
            }
            WireError::ShuttingDown => f.write_str("server is shutting down"),
            WireError::Parse(m) => write!(f, "invalid query text: {m}"),
            WireError::Engine(m) => write!(f, "query preparation failed: {m}"),
            WireError::UnknownSession(s) => write!(f, "unknown session handle {s}"),
            WireError::Overloaded {
                reason,
                retry_after,
            } => write!(
                f,
                "server overloaded ({reason:?}); retry after {retry_after:?}"
            ),
            WireError::SessionExpired(s) => write!(f, "session {s} expired"),
            WireError::SessionCancelled(s) => write!(f, "session {s} was cancelled"),
            WireError::SessionPoisoned(s) => write!(f, "session {s} was poisoned"),
            WireError::Fault(site) => write!(f, "injected fault at failpoint `{site}`"),
            WireError::Panicked(c) => write!(f, "request panicked server-side (isolated): {c}"),
            WireError::Delta(m) => write!(f, "delta batch rejected: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

/// [`OverloadReason`] plus the transport's own cap, as it travels the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum WireOverloadReason {
    /// [`OverloadReason::Sessions`].
    Sessions = 0,
    /// [`OverloadReason::PagesInFlight`].
    PagesInFlight = 1,
    /// [`OverloadReason::Memory`].
    Memory = 2,
    /// The transport's connection cap
    /// ([`crate::net::NetConfig::max_connections`]); shed before handshake.
    Connections = 3,
}

impl WireOverloadReason {
    fn from_byte(b: u8) -> Option<Self> {
        Some(match b {
            0 => WireOverloadReason::Sessions,
            1 => WireOverloadReason::PagesInFlight,
            2 => WireOverloadReason::Memory,
            3 => WireOverloadReason::Connections,
            _ => return None,
        })
    }
}

impl From<OverloadReason> for WireOverloadReason {
    fn from(r: OverloadReason) -> Self {
        match r {
            OverloadReason::Sessions => WireOverloadReason::Sessions,
            OverloadReason::PagesInFlight => WireOverloadReason::PagesInFlight,
            OverloadReason::Memory => WireOverloadReason::Memory,
        }
    }
}

// ---------------------------------------------------------------- encoding

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

/// A strict little payload reader: every decode must consume exactly the
/// bytes it was given, so trailing garbage is a protocol error, not silence.
struct PayloadReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        PayloadReader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| WireError::Protocol("payload truncated".into()))?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn rest_utf8(&mut self) -> Result<String, WireError> {
        let bytes = self.take(self.bytes.len() - self.pos)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Protocol("payload is not valid UTF-8".into()))
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(WireError::Protocol(format!(
                "{} trailing payload bytes",
                self.bytes.len() - self.pos
            )))
        }
    }
}

fn encode_answer(buf: &mut Vec<u8>, a: &Answer) {
    put_u64(buf, a.weight().to_bits());
    let values = a.values();
    put_u16(buf, values.len() as u16);
    for &v in values {
        put_u64(buf, v);
    }
    let witness = a.witness();
    put_u16(buf, witness.len() as u16);
    for &(atom, tuple) in witness {
        put_u32(buf, atom as u32);
        put_u64(buf, tuple as u64);
    }
}

fn decode_answer(r: &mut PayloadReader<'_>) -> Result<Answer, WireError> {
    let weight = f64::from_bits(r.u64()?);
    let arity = r.u16()? as usize;
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        values.push(r.u64()?);
    }
    let nwitness = r.u16()? as usize;
    let mut witness = Vec::with_capacity(nwitness);
    for _ in 0..nwitness {
        let atom = r.u32()? as usize;
        let tuple = r.u64()? as usize;
        witness.push((atom, tuple));
    }
    Ok(Answer::new(weight, values, witness))
}

fn encode_batch(buf: &mut Vec<u8>, batch: &DeltaBatch) {
    put_u16(buf, batch.relations.len() as u16);
    for delta in &batch.relations {
        put_u16(buf, delta.relation.len() as u16);
        buf.extend_from_slice(delta.relation.as_bytes());
        put_u32(buf, delta.deletes.len() as u32);
        for &tid in &delta.deletes {
            put_u64(buf, tid as u64);
        }
        put_u32(buf, delta.inserts.len() as u32);
        for tuple in &delta.inserts {
            put_u16(buf, tuple.arity() as u16);
            for &v in tuple.values() {
                put_u64(buf, v);
            }
            put_u64(buf, tuple.weight().to_bits());
        }
    }
}

fn decode_batch(r: &mut PayloadReader<'_>) -> Result<DeltaBatch, WireError> {
    let nrelations = r.u16()? as usize;
    let mut relations = Vec::with_capacity(nrelations.min(64));
    for _ in 0..nrelations {
        let name_len = r.u16()? as usize;
        let name = String::from_utf8(r.take(name_len)?.to_vec())
            .map_err(|_| WireError::Protocol("relation name is not valid UTF-8".into()))?;
        let mut delta = RelationDelta::new(name);
        let ndeletes = r.u32()? as usize;
        delta.deletes.reserve(ndeletes.min(1 << 16));
        for _ in 0..ndeletes {
            delta.deletes.push(r.u64()? as usize);
        }
        let ninserts = r.u32()? as usize;
        delta.inserts.reserve(ninserts.min(1 << 16));
        for _ in 0..ninserts {
            let arity = r.u16()? as usize;
            let mut values = Vec::with_capacity(arity);
            for _ in 0..arity {
                values.push(r.u64()?);
            }
            let weight = f64::from_bits(r.u64()?);
            delta.inserts.push(Tuple::new(values, weight));
        }
        relations.push(delta);
    }
    Ok(DeltaBatch { relations })
}

fn encode_summary(buf: &mut Vec<u8>, s: &HistogramSummary) {
    put_u64(buf, s.count);
    put_u64(buf, s.sum);
    put_u64(buf, s.max);
    put_u64(buf, s.p50);
    put_u64(buf, s.p90);
    put_u64(buf, s.p99);
}

fn decode_summary(r: &mut PayloadReader<'_>) -> Result<HistogramSummary, WireError> {
    Ok(HistogramSummary {
        count: r.u64()?,
        sum: r.u64()?,
        max: r.u64()?,
        p50: r.u64()?,
        p90: r.u64()?,
        p99: r.u64()?,
    })
}

fn encode_stats(buf: &mut Vec<u8>, s: &StatsSnapshot) {
    put_u32(buf, s.version);
    put_u64(buf, s.generation);
    let fields = s.metrics.fields();
    put_u16(buf, fields.len() as u16);
    for (_, value) in fields {
        put_u64(buf, value);
    }
    buf.push(s.phases.len() as u8);
    for p in &s.phases {
        buf.push(p.phase as u8);
        put_u64(buf, p.count);
        put_u64(buf, p.total_nanos);
        put_u64(buf, p.max_nanos);
    }
    encode_summary(buf, &s.page_latency);
    put_u16(buf, s.plans.len() as u16);
    for (key, sums) in &s.plans {
        put_u16(buf, key.len() as u16);
        buf.extend_from_slice(key.as_bytes());
        encode_summary(buf, &sums.ttf);
        encode_summary(buf, &sums.delay);
        encode_summary(buf, &sums.page);
    }
}

fn decode_stats(r: &mut PayloadReader<'_>) -> Result<StatsSnapshot, WireError> {
    let version = r.u32()?;
    if version != STATS_VERSION {
        return Err(WireError::Protocol(format!(
            "unsupported stats layout version {version} (expected {STATS_VERSION})"
        )));
    }
    let generation = r.u64()?;
    let nmetrics = r.u16()? as usize;
    if nmetrics != ServiceMetrics::FIELD_COUNT {
        return Err(WireError::Protocol(format!(
            "stats frame carries {nmetrics} metrics (expected {})",
            ServiceMetrics::FIELD_COUNT
        )));
    }
    let mut values = [0u64; ServiceMetrics::FIELD_COUNT];
    for v in values.iter_mut() {
        *v = r.u64()?;
    }
    let metrics = ServiceMetrics::from_values(&values);
    let nphases = r.u8()? as usize;
    let mut phases = Vec::with_capacity(nphases.min(64));
    for _ in 0..nphases {
        let id = r.u8()?;
        let phase = Phase::from_u8(id)
            .ok_or_else(|| WireError::Protocol(format!("unknown phase id {id}")))?;
        phases.push(PhaseSnapshot {
            phase,
            count: r.u64()?,
            total_nanos: r.u64()?,
            max_nanos: r.u64()?,
        });
    }
    let page_latency = decode_summary(r)?;
    let nplans = r.u16()? as usize;
    let mut plans = Vec::with_capacity(nplans.min(1 << 10));
    for _ in 0..nplans {
        let key_len = r.u16()? as usize;
        let key = String::from_utf8(r.take(key_len)?.to_vec())
            .map_err(|_| WireError::Protocol("plan key is not valid UTF-8".into()))?;
        let sums = PlanSummaries {
            ttf: decode_summary(r)?,
            delay: decode_summary(r)?,
            page: decode_summary(r)?,
        };
        plans.push((key, sums));
    }
    Ok(StatsSnapshot {
        version,
        generation,
        metrics,
        phases,
        page_latency,
        plans,
    })
}

impl Request {
    /// The frame kind byte of this request.
    pub fn opcode(&self) -> OpCode {
        match self {
            Request::Ping => OpCode::Ping,
            Request::Prepare(_) => OpCode::Prepare,
            Request::OpenSession(_) => OpCode::OpenSession,
            Request::NextPage { .. } => OpCode::NextPage,
            Request::Cancel(_) => OpCode::Cancel,
            Request::Close(_) => OpCode::Close,
            Request::Ingest(_) => OpCode::Ingest,
            Request::Stats => OpCode::Stats,
        }
    }

    fn encode_payload(&self, buf: &mut Vec<u8>) {
        match self {
            Request::Ping | Request::Stats => {}
            Request::Prepare(text) | Request::OpenSession(text) => {
                buf.extend_from_slice(text.as_bytes())
            }
            Request::NextPage { session, page_size } => {
                put_u64(buf, *session);
                put_u32(buf, *page_size);
            }
            Request::Cancel(s) | Request::Close(s) => put_u64(buf, *s),
            Request::Ingest(batch) => encode_batch(buf, batch),
        }
    }

    /// Decode the payload of a request frame whose kind byte was `kind`.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<Self, WireError> {
        let op = OpCode::from_byte(kind)
            .ok_or_else(|| WireError::Protocol(format!("unknown request opcode {kind:#04x}")))?;
        let mut r = PayloadReader::new(payload);
        let req = match op {
            OpCode::Ping => Request::Ping,
            OpCode::Prepare => Request::Prepare(r.rest_utf8()?),
            OpCode::OpenSession => Request::OpenSession(r.rest_utf8()?),
            OpCode::NextPage => Request::NextPage {
                session: r.u64()?,
                page_size: r.u32()?,
            },
            OpCode::Cancel => Request::Cancel(r.u64()?),
            OpCode::Close => Request::Close(r.u64()?),
            OpCode::Ingest => Request::Ingest(decode_batch(&mut r)?),
            OpCode::Stats => Request::Stats,
        };
        r.finish()?;
        Ok(req)
    }
}

impl Response {
    /// The frame kind byte of this response.
    pub fn status(&self) -> StatusCode {
        match self {
            Response::Pong => StatusCode::Pong,
            Response::Prepared(_) => StatusCode::Prepared,
            Response::SessionOpened(_) => StatusCode::SessionOpened,
            Response::Page(_) => StatusCode::Page,
            Response::Cancelled => StatusCode::Cancelled,
            Response::Closed { .. } => StatusCode::Closed,
            Response::Ingested(_) => StatusCode::Ingested,
            Response::Stats(_) => StatusCode::Stats,
            Response::Err(e) => match e {
                WireError::Protocol(_) => StatusCode::ErrProtocol,
                WireError::UnsupportedVersion { .. } => StatusCode::ErrUnsupportedVersion,
                WireError::FrameTooLarge { .. } => StatusCode::ErrFrameTooLarge,
                WireError::ShuttingDown => StatusCode::ErrShuttingDown,
                WireError::Parse(_) => StatusCode::ErrParse,
                WireError::Engine(_) => StatusCode::ErrEngine,
                WireError::UnknownSession(_) => StatusCode::ErrUnknownSession,
                WireError::Overloaded { .. } => StatusCode::ErrOverloaded,
                WireError::SessionExpired(_) => StatusCode::ErrSessionExpired,
                WireError::SessionCancelled(_) => StatusCode::ErrSessionCancelled,
                WireError::SessionPoisoned(_) => StatusCode::ErrSessionPoisoned,
                WireError::Fault(_) => StatusCode::ErrFault,
                WireError::Panicked(_) => StatusCode::ErrPanicked,
                WireError::Delta(_) => StatusCode::ErrDelta,
            },
        }
    }

    fn encode_payload(&self, buf: &mut Vec<u8>) {
        match self {
            Response::Pong | Response::Cancelled | Response::Err(WireError::ShuttingDown) => {}
            Response::Prepared(key) => buf.extend_from_slice(key.as_bytes()),
            Response::SessionOpened(id) => put_u64(buf, *id),
            Response::Page(page) => {
                buf.push(page.done as u8);
                put_u32(buf, page.answers.len() as u32);
                for a in &page.answers {
                    encode_answer(buf, a);
                }
            }
            Response::Closed { existed } => buf.push(*existed as u8),
            Response::Ingested(generation) => put_u64(buf, *generation),
            Response::Stats(stats) => encode_stats(buf, stats),
            Response::Err(e) => match e {
                WireError::ShuttingDown => unreachable!("handled above"),
                WireError::Protocol(d) => buf.extend_from_slice(d.as_bytes()),
                WireError::UnsupportedVersion { supported } => buf.push(*supported),
                WireError::FrameTooLarge { max } => put_u32(buf, *max),
                WireError::Parse(m) | WireError::Engine(m) => buf.extend_from_slice(m.as_bytes()),
                WireError::UnknownSession(s)
                | WireError::SessionExpired(s)
                | WireError::SessionCancelled(s)
                | WireError::SessionPoisoned(s) => put_u64(buf, *s),
                WireError::Overloaded {
                    reason,
                    retry_after,
                } => {
                    buf.push(*reason as u8);
                    put_u64(buf, retry_after.as_micros().min(u64::MAX as u128) as u64);
                }
                WireError::Fault(site) => buf.extend_from_slice(site.as_bytes()),
                WireError::Panicked(c) => buf.extend_from_slice(c.as_bytes()),
                WireError::Delta(m) => buf.extend_from_slice(m.as_bytes()),
            },
        }
    }

    /// Decode the payload of a response frame whose kind byte was `kind`.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<Self, WireError> {
        let status = StatusCode::from_byte(kind)
            .ok_or_else(|| WireError::Protocol(format!("unknown status code {kind:#04x}")))?;
        let mut r = PayloadReader::new(payload);
        let resp = match status {
            StatusCode::Pong => Response::Pong,
            StatusCode::Prepared => Response::Prepared(r.rest_utf8()?),
            StatusCode::SessionOpened => Response::SessionOpened(r.u64()?),
            StatusCode::Page => {
                let done = r.u8()? != 0;
                let count = r.u32()? as usize;
                // Guarded by the frame cap already; also sanity-bound here so
                // a corrupt count cannot drive a huge reserve.
                let mut answers = Vec::with_capacity(count.min(payload.len() / 8 + 1));
                for _ in 0..count {
                    answers.push(decode_answer(&mut r)?);
                }
                Response::Page(Page { answers, done })
            }
            StatusCode::Cancelled => Response::Cancelled,
            StatusCode::Closed => Response::Closed {
                existed: r.u8()? != 0,
            },
            StatusCode::Ingested => Response::Ingested(r.u64()?),
            StatusCode::Stats => Response::Stats(Box::new(decode_stats(&mut r)?)),
            StatusCode::ErrProtocol => Response::Err(WireError::Protocol(r.rest_utf8()?)),
            StatusCode::ErrUnsupportedVersion => {
                Response::Err(WireError::UnsupportedVersion { supported: r.u8()? })
            }
            StatusCode::ErrFrameTooLarge => {
                Response::Err(WireError::FrameTooLarge { max: r.u32()? })
            }
            StatusCode::ErrShuttingDown => Response::Err(WireError::ShuttingDown),
            StatusCode::ErrParse => Response::Err(WireError::Parse(r.rest_utf8()?)),
            StatusCode::ErrEngine => Response::Err(WireError::Engine(r.rest_utf8()?)),
            StatusCode::ErrUnknownSession => Response::Err(WireError::UnknownSession(r.u64()?)),
            StatusCode::ErrOverloaded => {
                let reason = WireOverloadReason::from_byte(r.u8()?)
                    .ok_or_else(|| WireError::Protocol("bad overload reason".into()))?;
                let retry_after = Duration::from_micros(r.u64()?);
                Response::Err(WireError::Overloaded {
                    reason,
                    retry_after,
                })
            }
            StatusCode::ErrSessionExpired => Response::Err(WireError::SessionExpired(r.u64()?)),
            StatusCode::ErrSessionCancelled => Response::Err(WireError::SessionCancelled(r.u64()?)),
            StatusCode::ErrSessionPoisoned => Response::Err(WireError::SessionPoisoned(r.u64()?)),
            StatusCode::ErrFault => Response::Err(WireError::Fault(r.rest_utf8()?)),
            StatusCode::ErrPanicked => Response::Err(WireError::Panicked(r.rest_utf8()?)),
            StatusCode::ErrDelta => Response::Err(WireError::Delta(r.rest_utf8()?)),
        };
        r.finish()?;
        Ok(resp)
    }

    /// Map a service-side error to its wire form. `session` is the
    /// connection-scoped handle the request named (service-side ids never
    /// travel the wire).
    pub fn from_service_error(err: &ServiceError, session: u64) -> Response {
        Response::Err(match err {
            ServiceError::UnknownSession(_) => WireError::UnknownSession(session),
            ServiceError::Parse(e) => WireError::Parse(e.to_string()),
            ServiceError::Engine(e) => WireError::Engine(e.to_string()),
            ServiceError::Overloaded {
                reason,
                retry_after_hint,
            } => WireError::Overloaded {
                reason: (*reason).into(),
                retry_after: *retry_after_hint,
            },
            ServiceError::SessionExpired(_) => WireError::SessionExpired(session),
            ServiceError::SessionCancelled(_) => WireError::SessionCancelled(session),
            ServiceError::SessionPoisoned(_) => WireError::SessionPoisoned(session),
            ServiceError::Fault(i) => WireError::Fault(i.site.to_string()),
            ServiceError::Panicked { context } => WireError::Panicked(context.clone()),
            ServiceError::Delta(e) => WireError::Delta(e.to_string()),
        })
    }
}

// ----------------------------------------------------------------- framing

/// Why reading one frame stopped without producing a payload.
#[derive(Debug)]
pub enum FrameReadError {
    /// The peer closed cleanly at a frame boundary (0 bytes read).
    CleanEof,
    /// The peer disconnected mid-frame (header or payload torn).
    TornEof,
    /// A per-read timeout fired, or the whole-frame deadline lapsed
    /// (slow-loris defence).
    TimedOut,
    /// The frame announced a payload larger than `max`.
    TooLarge {
        /// The announced payload length.
        len: u32,
        /// The receiver's cap.
        max: u32,
    },
    /// The first byte was not [`MAGIC`].
    BadMagic(u8),
    /// The version byte is not [`VERSION`].
    BadVersion(u8),
    /// The reserved byte was non-zero.
    BadReserved(u8),
    /// Any other I/O failure.
    Io(io::Error),
}

impl std::fmt::Display for FrameReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameReadError::CleanEof => f.write_str("peer closed the connection"),
            FrameReadError::TornEof => f.write_str("peer disconnected mid-frame"),
            FrameReadError::TimedOut => f.write_str("read deadline exceeded"),
            FrameReadError::TooLarge { len, max } => {
                write!(f, "frame announces {len} payload bytes (cap {max})")
            }
            FrameReadError::BadMagic(b) => write!(f, "bad magic byte {b:#04x}"),
            FrameReadError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            FrameReadError::BadReserved(b) => write!(f, "non-zero reserved byte {b:#04x}"),
            FrameReadError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Read exactly `buf.len()` bytes, tolerating partial reads and
/// `Interrupted`, aborting on timeout or when `deadline_exceeded` reports
/// the whole-frame budget is spent. `any_read` is set as soon as at least
/// one byte arrived (distinguishes a clean EOF from a torn frame).
fn read_full(
    stream: &mut impl Read,
    buf: &mut [u8],
    any_read: &mut bool,
    deadline_exceeded: &dyn Fn() -> bool,
) -> Result<(), FrameReadError> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if *any_read {
                    FrameReadError::TornEof
                } else {
                    FrameReadError::CleanEof
                })
            }
            Ok(n) => {
                filled += n;
                *any_read = true;
                if filled < buf.len() && deadline_exceeded() {
                    return Err(FrameReadError::TimedOut);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) => return Err(FrameReadError::TimedOut),
            Err(e) => return Err(FrameReadError::Io(e)),
        }
    }
    Ok(())
}

/// Read one frame: validated header, then payload (reused via `payload`'s
/// allocation). Returns the kind byte. `deadline_exceeded` is consulted
/// after every partial read, bounding the **whole frame's** wall time no
/// matter how slowly the peer dribbles bytes.
pub(crate) fn read_frame(
    stream: &mut impl Read,
    max_frame_bytes: u32,
    payload: &mut Vec<u8>,
    deadline_exceeded: &dyn Fn() -> bool,
) -> Result<u8, FrameReadError> {
    let mut header = [0u8; HEADER_LEN];
    let mut any_read = false;
    read_full(stream, &mut header, &mut any_read, deadline_exceeded)?;
    if header[0] != MAGIC {
        return Err(FrameReadError::BadMagic(header[0]));
    }
    if header[1] != VERSION {
        return Err(FrameReadError::BadVersion(header[1]));
    }
    if header[3] != 0 {
        return Err(FrameReadError::BadReserved(header[3]));
    }
    let kind = header[2];
    let len = u32::from_be_bytes(header[4..8].try_into().unwrap());
    if len > max_frame_bytes {
        // Reject on the announced length alone — nothing is allocated or
        // read, so a hostile length prefix costs the receiver 8 bytes.
        return Err(FrameReadError::TooLarge {
            len,
            max: max_frame_bytes,
        });
    }
    payload.clear();
    payload.resize(len as usize, 0);
    read_full(stream, payload, &mut any_read, deadline_exceeded)?;
    Ok(kind)
}

/// Serialise `kind` + `payload` into `out` as one frame.
pub(crate) fn encode_frame_into(out: &mut Vec<u8>, kind: u8, payload: &[u8]) {
    out.clear();
    out.reserve(HEADER_LEN + payload.len());
    out.push(MAGIC);
    out.push(VERSION);
    out.push(kind);
    out.push(0);
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
}

/// Write a whole frame, tolerating partial writes (`write_all` semantics
/// with `Interrupted` retries).
pub(crate) fn write_frame(stream: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    let mut written = 0;
    while written < frame.len() {
        match stream.write(&frame[written..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "peer stopped accepting bytes mid-frame",
                ))
            }
            Ok(n) => written += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    stream.flush()
}

/// Encode a [`Request`] into `scratch` (header + payload), reusing its
/// allocation.
pub(crate) fn encode_request(scratch: &mut Vec<u8>, payload_buf: &mut Vec<u8>, req: &Request) {
    payload_buf.clear();
    req.encode_payload(payload_buf);
    encode_frame_into(scratch, req.opcode() as u8, payload_buf);
}

/// Encode a [`Response`] into `scratch` (header + payload), reusing its
/// allocation.
pub(crate) fn encode_response(scratch: &mut Vec<u8>, payload_buf: &mut Vec<u8>, resp: &Response) {
    payload_buf.clear();
    resp.encode_payload(payload_buf);
    encode_frame_into(scratch, resp.status() as u8, payload_buf);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let mut payload = Vec::new();
        req.encode_payload(&mut payload);
        let back = Request::decode(req.opcode() as u8, &payload).unwrap();
        assert_eq!(back, req);
    }

    fn roundtrip_response(resp: Response) {
        let mut payload = Vec::new();
        resp.encode_payload(&mut payload);
        let back = Response::decode(resp.status() as u8, &payload).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::Prepare("Q(x, y) :- R(x, y)".into()));
        roundtrip_request(Request::OpenSession("Q(x) :- R(x, x) via lazy".into()));
        roundtrip_request(Request::NextPage {
            session: u64::MAX,
            page_size: 1,
        });
        roundtrip_request(Request::Cancel(7));
        roundtrip_request(Request::Close(0));
    }

    #[test]
    fn ingest_frames_roundtrip_bit_identically() {
        roundtrip_request(Request::Ingest(DeltaBatch::new()));
        let batch = DeltaBatch::new()
            .delete("R1", 3)
            .delete("R1", usize::MAX)
            .insert("R2", Tuple::new(vec![10, 7], 0.5))
            // Awkward weights must survive bit-exactly, like answers do.
            .insert("R2", Tuple::new(vec![u64::MAX], -0.0))
            .insert("S", Tuple::new(vec![], f64::MAX));
        let req = Request::Ingest(batch.clone());
        let mut payload = Vec::new();
        req.encode_payload(&mut payload);
        match Request::decode(OpCode::Ingest as u8, &payload).unwrap() {
            Request::Ingest(back) => {
                assert_eq!(back, batch);
                let weights = |b: &DeltaBatch| -> Vec<u64> {
                    b.relations
                        .iter()
                        .flat_map(|d| d.inserts.iter().map(|t| t.weight().to_bits()))
                        .collect()
                };
                assert_eq!(weights(&back), weights(&batch), "bit-identical weights");
            }
            other => panic!("decoded {other:?}"),
        }
        roundtrip_response(Response::Ingested(42));
        roundtrip_response(Response::Err(WireError::Delta(
            "delta names unknown relation `Nope`".into(),
        )));
    }

    #[test]
    fn responses_roundtrip_including_answers_bit_identically() {
        roundtrip_response(Response::Pong);
        roundtrip_response(Response::Prepared("Q(v0, v1) :- R(v0, v1)".into()));
        roundtrip_response(Response::SessionOpened(3));
        roundtrip_response(Response::Cancelled);
        roundtrip_response(Response::Closed { existed: false });
        let answers = vec![
            Answer::new(3.5, vec![1, 2, 3], vec![(0, 7), (1, 9)]),
            // An awkward weight: negative zero must survive bit-exactly.
            Answer::new(-0.0, vec![], vec![]),
            // Atom indices ride as u32 (a join tree has a handful of atoms);
            // tuple ids as u64.
            Answer::new(
                f64::MAX,
                vec![u64::MAX],
                vec![(u32::MAX as usize, usize::MAX)],
            ),
        ];
        let mut payload = Vec::new();
        let page = Response::Page(Page {
            answers: answers.clone(),
            done: true,
        });
        page.encode_payload(&mut payload);
        match Response::decode(StatusCode::Page as u8, &payload).unwrap() {
            Response::Page(p) => {
                assert!(p.done);
                assert_eq!(p.answers, answers);
                for (a, b) in p.answers.iter().zip(&answers) {
                    assert_eq!(a.weight().to_bits(), b.weight().to_bits(), "bit-identical");
                }
            }
            other => panic!("decoded {other:?}"),
        }
    }

    fn sample_stats() -> StatsSnapshot {
        StatsSnapshot {
            version: STATS_VERSION,
            generation: 9,
            metrics: ServiceMetrics {
                sessions_opened: 4,
                answers_served: 123,
                current_generation: 9,
                ..Default::default()
            },
            phases: vec![
                PhaseSnapshot {
                    phase: Phase::Compile,
                    count: 2,
                    total_nanos: 1_000_000,
                    max_nanos: 700_000,
                },
                PhaseSnapshot {
                    phase: Phase::WireWrite,
                    count: 40,
                    total_nanos: 90_000,
                    max_nanos: 9_000,
                },
            ],
            page_latency: HistogramSummary {
                count: 12,
                sum: 360_000,
                max: 90_000,
                p50: 25_000,
                p90: 70_000,
                p99: 90_000,
            },
            plans: vec![
                (
                    "Q(v0, v1) :- R(v0, v1) rank by sum".to_owned(),
                    PlanSummaries {
                        ttf: HistogramSummary {
                            count: 4,
                            sum: 4_000,
                            max: 2_000,
                            p50: 900,
                            p90: 1_900,
                            p99: 2_000,
                        },
                        delay: HistogramSummary {
                            count: 123,
                            sum: 500_000,
                            max: 50_000,
                            p50: 3_000,
                            p90: 20_000,
                            p99: 48_000,
                        },
                        page: HistogramSummary::default(),
                    },
                ),
                ("Q(v0) :- S(v0, v0)".to_owned(), PlanSummaries::default()),
            ],
        }
    }

    #[test]
    fn stats_requests_and_responses_roundtrip_byte_exactly() {
        roundtrip_request(Request::Stats);
        let stats = sample_stats();
        let resp = Response::Stats(Box::new(stats.clone()));
        let mut payload = Vec::new();
        resp.encode_payload(&mut payload);
        // Byte-exact: re-encoding the decoded snapshot reproduces the
        // original payload bit for bit.
        match Response::decode(StatusCode::Stats as u8, &payload).unwrap() {
            Response::Stats(back) => {
                assert_eq!(*back, stats);
                let mut re = Vec::new();
                Response::Stats(back).encode_payload(&mut re);
                assert_eq!(re, payload, "byte-exact round trip");
            }
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn malformed_stats_frames_are_typed_errors() {
        let mut payload = Vec::new();
        Response::Stats(Box::new(sample_stats())).encode_payload(&mut payload);
        // Truncations at every prefix must be typed protocol errors — never
        // a panic, never a silent partial decode.
        for cut in 0..payload.len() {
            assert!(
                matches!(
                    Response::decode(StatusCode::Stats as u8, &payload[..cut]),
                    Err(WireError::Protocol(_))
                ),
                "truncation at {cut} bytes must fail typed"
            );
        }
        // Trailing garbage is rejected by the strict reader.
        let mut oversize = payload.clone();
        oversize.push(0);
        assert!(matches!(
            Response::decode(StatusCode::Stats as u8, &oversize),
            Err(WireError::Protocol(_))
        ));
        // A stats request opcode carries no payload; any body is an error.
        assert!(matches!(
            Request::decode(OpCode::Stats as u8, &[1]),
            Err(WireError::Protocol(_))
        ));
        // Unknown layout version.
        let mut bad_version = payload.clone();
        bad_version[..4].copy_from_slice(&99u32.to_be_bytes());
        assert!(matches!(
            Response::decode(StatusCode::Stats as u8, &bad_version),
            Err(WireError::Protocol(_))
        ));
        // Metric-count mismatch (claims one fewer metric than the layout).
        let mut bad_count = payload.clone();
        let count_off = 4 + 8;
        bad_count[count_off..count_off + 2]
            .copy_from_slice(&((ServiceMetrics::FIELD_COUNT as u16) - 1).to_be_bytes());
        assert!(matches!(
            Response::decode(StatusCode::Stats as u8, &bad_count),
            Err(WireError::Protocol(_))
        ));
        // Unknown phase id.
        let mut bad_phase = payload.clone();
        let phase_ids_off = count_off + 2 + 8 * ServiceMetrics::FIELD_COUNT + 1;
        bad_phase[phase_ids_off] = 0xEE;
        assert!(matches!(
            Response::decode(StatusCode::Stats as u8, &bad_phase),
            Err(WireError::Protocol(_))
        ));
    }

    #[test]
    fn error_responses_roundtrip() {
        for e in [
            WireError::Protocol("trailing bytes".into()),
            WireError::UnsupportedVersion { supported: 1 },
            WireError::FrameTooLarge { max: 1024 },
            WireError::ShuttingDown,
            WireError::Parse("expected `:-`".into()),
            WireError::Engine("unknown relation `Nope`".into()),
            WireError::UnknownSession(9),
            WireError::Overloaded {
                reason: WireOverloadReason::Connections,
                retry_after: Duration::from_micros(12345),
            },
            WireError::SessionExpired(1),
            WireError::SessionCancelled(2),
            WireError::SessionPoisoned(3),
            WireError::Fault("net.read".into()),
            WireError::Panicked("injected panic".into()),
        ] {
            roundtrip_response(Response::Err(e));
        }
    }

    #[test]
    fn truncated_and_trailing_payloads_are_typed_errors() {
        // NextPage wants 12 bytes.
        assert!(matches!(
            Request::decode(OpCode::NextPage as u8, &[0; 4]),
            Err(WireError::Protocol(_))
        ));
        assert!(matches!(
            Request::decode(OpCode::NextPage as u8, &[0; 13]),
            Err(WireError::Protocol(_))
        ));
        // Zero-length frame where a session id is required.
        assert!(matches!(
            Request::decode(OpCode::Cancel as u8, &[]),
            Err(WireError::Protocol(_))
        ));
        // Unknown opcode / status.
        assert!(matches!(
            Request::decode(0x7F, &[]),
            Err(WireError::Protocol(_))
        ));
        assert!(matches!(
            Response::decode(0x00, &[]),
            Err(WireError::Protocol(_))
        ));
        // Non-UTF-8 query text.
        assert!(matches!(
            Request::decode(OpCode::Prepare as u8, &[0xFF, 0xFE]),
            Err(WireError::Protocol(_))
        ));
    }

    #[test]
    fn frame_reader_polices_header_and_cap() {
        let read =
            |bytes: &[u8], max: u32| read_frame(&mut &bytes[..], max, &mut Vec::new(), &|| false);
        // A well-formed empty Ping frame.
        let mut frame = Vec::new();
        encode_frame_into(&mut frame, OpCode::Ping as u8, &[]);
        assert_eq!(read(&frame, 16).unwrap(), OpCode::Ping as u8);
        // Truncated header → torn EOF; empty input → clean EOF.
        assert!(matches!(
            read(&frame[..3], 16),
            Err(FrameReadError::TornEof)
        ));
        assert!(matches!(read(&[], 16), Err(FrameReadError::CleanEof)));
        // Garbage magic / version / reserved.
        assert!(matches!(
            read(&[0x00; 8], 16),
            Err(FrameReadError::BadMagic(0))
        ));
        let mut bad = frame.clone();
        bad[1] = 99;
        assert!(matches!(
            read(&bad, 16),
            Err(FrameReadError::BadVersion(99))
        ));
        let mut bad = frame.clone();
        bad[3] = 1;
        assert!(matches!(
            read(&bad, 16),
            Err(FrameReadError::BadReserved(1))
        ));
        // Oversize announced length: rejected from the header alone.
        let mut huge = frame.clone();
        huge[4..8].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(
            read(&huge, 16),
            Err(FrameReadError::TooLarge {
                len: u32::MAX,
                max: 16
            })
        ));
        // Torn payload: header promises 4 bytes, stream ends after 2.
        let mut torn = Vec::new();
        encode_frame_into(&mut torn, OpCode::Prepare as u8, b"Q(x)");
        assert!(matches!(
            read(&torn[..HEADER_LEN + 2], 16),
            Err(FrameReadError::TornEof)
        ));
    }

    #[test]
    fn service_errors_map_onto_typed_statuses() {
        use crate::service::SessionId;
        let cases: Vec<(ServiceError, StatusCode)> = vec![
            (
                ServiceError::Overloaded {
                    reason: OverloadReason::Memory,
                    retry_after_hint: Duration::from_millis(50),
                },
                StatusCode::ErrOverloaded,
            ),
            (
                ServiceError::Panicked {
                    context: "boom".into(),
                },
                StatusCode::ErrPanicked,
            ),
            (
                ServiceError::Fault(anyk_core::faults::Injected { site: "net.read" }),
                StatusCode::ErrFault,
            ),
            (
                ServiceError::Delta(anyk_storage::DeltaError::UnknownRelation("Nope".into())),
                StatusCode::ErrDelta,
            ),
        ];
        for (err, status) in cases {
            assert_eq!(Response::from_service_error(&err, 4).status(), status);
        }
        // Session-shaped errors carry the wire handle, not the service id.
        let err = {
            // SessionId has no public constructor; go through Display-free
            // matching instead: UnknownSession carries the handle we pass.
            ServiceError::UnknownSession(SessionId::test_only(42))
        };
        match Response::from_service_error(&err, 4) {
            Response::Err(WireError::UnknownSession(4)) => {}
            other => panic!("{other:?}"),
        }
    }
}
