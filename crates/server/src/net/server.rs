//! [`AnyKServer`]: the blocking TCP front end over
//! [`QueryService`](crate::QueryService).
//!
//! # Threading model
//!
//! One accept thread pulls from a `TcpListener` and feeds accepted
//! connections through an `mpsc` channel to a **bounded pool** of worker
//! threads ([`NetConfig::workers`]); each worker owns one connection at a
//! time and runs its whole request/response loop. There is no per-connection
//! thread, so a flood of connections cannot exhaust the process — beyond the
//! pool, accepted connections queue; beyond [`NetConfig::max_connections`],
//! they are **shed at accept** with a protocol-level
//! `Overloaded { retry_after }` frame before any handshake or session work.
//!
//! # Deadlines
//!
//! Every connection socket gets OS-level read/write timeouts
//! ([`NetConfig::read_timeout`] / [`NetConfig::write_timeout`]), and each
//! frame additionally races a whole-frame deadline
//! ([`NetConfig::frame_deadline`]) measured on the injectable
//! [`Clock`] — the slow-loris defence: a peer dribbling one byte per
//! `read_timeout` never trips the OS timer, but cannot stretch a single
//! frame past the deadline.
//!
//! # Shutdown choreography
//!
//! [`AnyKServer::shutdown`] must unblock threads parked in blocking syscalls
//! without help from the OS:
//!
//! 1. set the shutdown flag (no new work is started);
//! 2. self-connect to the listening address, waking `accept()`; the accept
//!    thread observes the flag and exits, dropping the channel sender;
//! 3. `TcpStream::shutdown(Read)` every live connection, turning each
//!    worker's blocking read into a clean EOF **at the next frame
//!    boundary** — a request already being served finishes and its response
//!    frame is written (in-flight pages drain, never tear);
//! 4. workers drain still-queued connections (answered with
//!    `ErrShuttingDown`), see the channel disconnect, and exit;
//! 5. every connection's sessions are closed as it unwinds, returning the
//!    Governor's MEM gauge to zero; then all threads are joined.

use super::protocol::{
    encode_response, read_frame, write_frame, FrameReadError, Request, Response, WireError,
    WireOverloadReason, DEFAULT_MAX_FRAME_BYTES, VERSION,
};
use crate::clock::{Clock, MonotonicClock};
use crate::service::{QueryService, SessionId};
use anyk_core::faults;
use anyk_query::QuerySpec;
use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Transport-level tuning for [`AnyKServer`]. The defaults suit tests and
/// small deployments; see the crate-level tuning guide for how these caps
/// compose with [`crate::GovernorConfig`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Worker threads serving connections. Also the number of connections
    /// making progress at any instant; accepted connections beyond it queue.
    pub workers: usize,
    /// Cap on connections alive at once (being served *or* queued). Beyond
    /// it, accepts are shed with `Overloaded { reason: Connections }` before
    /// any handshake work.
    pub max_connections: usize,
    /// Per-frame payload cap, both directions (see
    /// [`super::protocol::DEFAULT_MAX_FRAME_BYTES`]).
    pub max_frame_bytes: u32,
    /// OS-level socket read timeout (`set_read_timeout`). Also the idle
    /// lifetime of a connection parked between requests.
    pub read_timeout: Duration,
    /// OS-level socket write timeout (`set_write_timeout`).
    pub write_timeout: Duration,
    /// Wall-clock budget for receiving one whole frame, measured on
    /// [`NetConfig::clock`] — the slow-loris defence.
    pub frame_deadline: Duration,
    /// Server-side clamp on `NextPage` page sizes, bounding response-frame
    /// growth independently of what clients ask for.
    pub max_page_size: usize,
    /// Retry hint carried in connection-cap sheds (admission-control sheds
    /// carry the Governor's own hint).
    pub retry_after_hint: Duration,
    /// Time source for frame deadlines. Injectable for tests
    /// ([`crate::ManualClock`]); defaults to [`MonotonicClock`].
    pub clock: Arc<dyn Clock>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            workers: 8,
            max_connections: 64,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            frame_deadline: Duration::from_secs(10),
            max_page_size: 4096,
            retry_after_hint: Duration::from_millis(50),
            clock: Arc::new(MonotonicClock::new()),
        }
    }
}

struct Shared {
    service: Arc<QueryService>,
    cfg: NetConfig,
    shutdown: AtomicBool,
    /// Live connections (served + queued), compared against
    /// `cfg.max_connections` at accept.
    next_conn_id: AtomicU64,
    /// Read-half handles of live connections, kept so [`AnyKServer::shutdown`]
    /// can unblock workers parked in `read()`. Keyed by connection id; the
    /// map's size is the live-connection gauge.
    live: Mutex<HashMap<u64, TcpStream>>,
}

impl Shared {
    fn bump(&self, f: impl FnOnce(&mut crate::governor::GovState)) {
        self.service.governor().with(f);
    }
}

/// A blocking TCP server exposing a [`QueryService`] over the wire protocol
/// documented in [`super::protocol`]. Construction binds and starts serving
/// immediately; drop (or [`AnyKServer::shutdown`]) drains and joins.
pub struct AnyKServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for AnyKServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnyKServer")
            .field("local_addr", &self.local_addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl AnyKServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `service` with the given transport config.
    pub fn bind(
        service: Arc<QueryService>,
        addr: impl ToSocketAddrs,
        cfg: NetConfig,
    ) -> io::Result<AnyKServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let workers_n = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            service,
            cfg,
            shutdown: AtomicBool::new(false),
            next_conn_id: AtomicU64::new(1),
            live: Mutex::new(HashMap::new()),
        });

        let (tx, rx) = mpsc::channel::<(u64, TcpStream)>();
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(workers_n);
        for _ in 0..workers_n {
            let shared = Arc::clone(&shared);
            let rx = Arc::clone(&rx);
            workers.push(std::thread::spawn(move || worker_loop(&shared, &rx)));
        }
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&shared, &listener, &tx))
        };

        Ok(AnyKServer {
            shared,
            local_addr,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address — with port 0, where the ephemeral port landed.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Graceful shutdown: stop accepting, drain in-flight requests, close
    /// every connection's sessions, join all threads. Idempotent; also runs
    /// on drop. See the module docs for the choreography.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the accept thread out of its blocking accept(). The woken
        // accept sees the flag and exits without handing the waker to a
        // worker, so the waker never counts as a served connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Unblock workers parked in read(): shutting down the read half
        // makes the pending read return 0 (clean EOF at a frame boundary).
        // A worker mid-request is untouched — it finishes and writes its
        // response before the next read observes EOF.
        {
            let live = lock_live(&self.shared);
            for stream in live.values() {
                let _ = stream.shutdown(Shutdown::Read);
            }
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for AnyKServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn lock_live(shared: &Shared) -> std::sync::MutexGuard<'_, HashMap<u64, TcpStream>> {
    shared
        .live
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn is_timeout_io(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn accept_loop(shared: &Shared, listener: &TcpListener, tx: &Sender<(u64, TcpStream)>) {
    loop {
        // The accept() syscall itself must stay outside catch_unwind only in
        // spirit — wrapping the whole iteration keeps a `net.accept` panic
        // action (or any per-connection setup panic) from killing the
        // listener.
        let keep_going = catch_unwind(AssertUnwindSafe(|| {
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => return true,
                // ConnectionAborted and friends are per-connection noise;
                // anything else (listener closed) ends the loop.
                Err(e) if is_timeout_io(&e) || e.kind() == io::ErrorKind::ConnectionAborted => {
                    return true
                }
                Err(_) => return false,
            };
            if shared.shutdown.load(Ordering::SeqCst) {
                // The shutdown waker (or a late real client): close without
                // serving. Real clients see a connection reset and retry
                // elsewhere; the waker ignores it.
                return false;
            }
            // Chaos site: an error action simulates the OS failing the
            // accept — the connection is dropped before any accounting.
            if faults::check("net.accept").is_err() {
                return true;
            }
            let live_now = lock_live(shared).len();
            if live_now >= shared.cfg.max_connections {
                shared.bump(|s| s.connections_shed_at_accept += 1);
                shed_at_accept(shared, stream);
                return true;
            }
            let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
            if stream
                .set_read_timeout(Some(shared.cfg.read_timeout))
                .is_err()
                || stream
                    .set_write_timeout(Some(shared.cfg.write_timeout))
                    .is_err()
            {
                return true;
            }
            let Ok(read_half) = stream.try_clone() else {
                return true;
            };
            shared.bump(|s| s.connections_accepted += 1);
            lock_live(shared).insert(conn_id, read_half);
            if tx.send((conn_id, stream)).is_err() {
                // Workers are gone (shutdown already joined them); undo.
                lock_live(shared).remove(&conn_id);
                return false;
            }
            true
        }))
        .unwrap_or(true);
        if !keep_going || shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
    }
}

/// Best-effort `Overloaded { Connections }` frame to a connection shed at
/// the cap — one write, no reads, then close. A peer that cannot even take
/// the frame is simply dropped.
fn shed_at_accept(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    let mut frame = Vec::new();
    let mut payload = Vec::new();
    encode_response(
        &mut frame,
        &mut payload,
        &Response::Err(WireError::Overloaded {
            reason: WireOverloadReason::Connections,
            retry_after: shared.cfg.retry_after_hint,
        }),
    );
    let _ = write_frame(&mut stream, &frame);
    let _ = stream.shutdown(Shutdown::Both);
}

fn worker_loop(shared: &Shared, rx: &Arc<Mutex<Receiver<(u64, TcpStream)>>>) {
    loop {
        // Hold the receiver lock only for the recv itself; serving happens
        // unlocked so the other workers keep pulling.
        let next = {
            let rx = rx.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            rx.recv()
        };
        let Ok((conn_id, stream)) = next else {
            // Sender dropped (accept thread exited) and the queue is empty.
            return;
        };
        let shutting_down = shared.shutdown.load(Ordering::SeqCst);
        let mut conn = Connection {
            shared,
            stream,
            sessions: HashMap::new(),
            next_wire_id: 1,
            frame: Vec::new(),
            payload: Vec::new(),
            scratch: Vec::new(),
        };
        if shutting_down {
            // Queued behind the shutdown: answered, never served.
            let _ = conn.reply(&Response::Err(WireError::ShuttingDown));
        } else {
            // Contain request-path panics (e.g. a `net.*` panic fault
            // action) to this one connection; the worker and its neighbours
            // keep serving.
            let _ = catch_unwind(AssertUnwindSafe(|| conn.serve()));
        }
        conn.close_owned_sessions();
        let _ = conn.stream.shutdown(Shutdown::Both);
        lock_live(shared).remove(&conn_id);
        if shared.shutdown.load(Ordering::SeqCst) {
            shared.bump(|s| s.connections_drained_on_shutdown += 1);
        }
    }
}

/// One live connection's state: its socket, its private wire-id → session
/// map (a connection can only ever address sessions it opened itself), and
/// reusable encode/decode buffers.
struct Connection<'s> {
    shared: &'s Shared,
    stream: TcpStream,
    sessions: HashMap<u64, SessionId>,
    next_wire_id: u64,
    frame: Vec<u8>,
    payload: Vec<u8>,
    scratch: Vec<u8>,
}

impl Connection<'_> {
    fn serve(&mut self) {
        loop {
            let kind = match self.read_request_frame() {
                Ok(kind) => kind,
                Err(stop) => {
                    if let Some(resp) = stop {
                        let _ = self.reply(&resp);
                    }
                    return;
                }
            };
            // Decode errors are typed protocol errors, then the connection
            // closes: a peer that framed correctly but encoded garbage is
            // not a peer worth resynchronising with.
            let req = match Request::decode(kind, &self.scratch) {
                Ok(req) => req,
                Err(e) => {
                    let _ = self.reply(&Response::Err(e));
                    return;
                }
            };
            let resp = self.dispatch(req);
            if self.reply(&resp).is_err() {
                return;
            }
            if self.shared.shutdown.load(Ordering::SeqCst) {
                // Drain point: the in-flight request was answered in full;
                // now stop taking new ones.
                return;
            }
        }
    }

    /// Read one frame into `self.scratch`, returning its kind byte.
    /// `Err(Some(resp))` means "send this typed error, then close";
    /// `Err(None)` means "close silently".
    fn read_request_frame(&mut self) -> Result<u8, Option<Response>> {
        let clock = Arc::clone(self.shared.service.clock());
        let deadline = self.shared.cfg.frame_deadline;
        let start = clock.now_nanos();
        let exceeded = move || {
            clock.now_nanos().saturating_sub(start)
                >= deadline.as_nanos().min(u64::MAX as u128) as u64
        };
        let max = self.shared.cfg.max_frame_bytes;
        // Phase note: the span covers the blocking wait for the next
        // request too, so `wire_read` time includes client idle/think time
        // — it bounds how long workers sit in reads, not pure socket cost.
        let read = {
            let _span = anyk_obs::phase::span(anyk_obs::Phase::WireRead);
            read_frame(&mut self.stream, max, &mut self.scratch, &exceeded)
        };
        match read {
            // Chaos site, checked as the read completes (a worker parked in
            // a blocking read sees a plan armed meanwhile): the received
            // frame is discarded as if the read had failed, the client gets
            // the typed fault, and the connection closes.
            Ok(_) if faults::check("net.read").is_err() => {
                Err(Some(Response::Err(WireError::Fault("net.read".into()))))
            }
            Ok(kind) => Ok(kind),
            Err(FrameReadError::CleanEof) | Err(FrameReadError::TornEof) => Err(None),
            Err(FrameReadError::TimedOut) => {
                self.shared.bump(|s| s.net_read_timeouts += 1);
                Err(None)
            }
            Err(FrameReadError::TooLarge { max, .. }) => {
                Err(Some(Response::Err(WireError::FrameTooLarge { max })))
            }
            Err(FrameReadError::BadVersion(_)) => {
                Err(Some(Response::Err(WireError::UnsupportedVersion {
                    supported: VERSION,
                })))
            }
            Err(FrameReadError::BadMagic(b)) => Err(Some(Response::Err(WireError::Protocol(
                format!("bad magic byte {b:#04x}"),
            )))),
            Err(FrameReadError::BadReserved(b)) => Err(Some(Response::Err(WireError::Protocol(
                format!("non-zero reserved byte {b:#04x}"),
            )))),
            Err(FrameReadError::Io(_)) => Err(None),
        }
    }

    fn dispatch(&mut self, req: Request) -> Response {
        let svc = &self.shared.service;
        match req {
            Request::Ping => Response::Pong,
            Request::Prepare(text) => match QuerySpec::parse(&text) {
                Ok(spec) => match svc.prepare_spec(&spec) {
                    Ok(_) => Response::Prepared(spec.plan_key()),
                    Err(e) => Response::from_service_error(&e, 0),
                },
                Err(e) => Response::Err(WireError::Parse(e.to_string())),
            },
            Request::OpenSession(text) => match svc.open_session_text(&text) {
                Ok(id) => {
                    let wire = self.next_wire_id;
                    self.next_wire_id += 1;
                    self.sessions.insert(wire, id);
                    Response::SessionOpened(wire)
                }
                Err(e) => Response::from_service_error(&e, 0),
            },
            Request::NextPage { session, page_size } => {
                let Some(&id) = self.sessions.get(&session) else {
                    return Response::Err(WireError::UnknownSession(session));
                };
                let size = (page_size as usize).clamp(1, self.shared.cfg.max_page_size);
                match svc.next_page(id, size) {
                    Ok(page) => Response::Page(page),
                    Err(e) => {
                        if matches!(
                            e,
                            crate::ServiceError::UnknownSession(_)
                                | crate::ServiceError::SessionExpired(_)
                                | crate::ServiceError::SessionPoisoned(_)
                        ) {
                            // The service-side state is gone (or doomed);
                            // forget the handle so disconnect cleanup skips
                            // it.
                            self.sessions.remove(&session);
                        }
                        Response::from_service_error(&e, session)
                    }
                }
            }
            Request::Cancel(session) => {
                let Some(&id) = self.sessions.get(&session) else {
                    return Response::Err(WireError::UnknownSession(session));
                };
                match svc.cancel_session(id) {
                    Ok(()) => Response::Cancelled,
                    Err(e) => Response::from_service_error(&e, session),
                }
            }
            Request::Close(session) => {
                let existed = self
                    .sessions
                    .remove(&session)
                    .map(|id| svc.close_session(id))
                    .unwrap_or(false);
                Response::Closed { existed }
            }
            Request::Ingest(batch) => match svc.ingest(&batch) {
                Ok(generation) => Response::Ingested(generation),
                Err(e) => Response::from_service_error(&e, 0),
            },
            Request::Stats => Response::Stats(Box::new(svc.stats_snapshot())),
        }
    }

    fn reply(&mut self, resp: &Response) -> io::Result<()> {
        encode_response(&mut self.frame, &mut self.payload, resp);
        if self.frame.len() > super::protocol::HEADER_LEN + self.shared.cfg.max_frame_bytes as usize
        {
            // The encoded response (a fat page) exceeds our own frame cap:
            // substitute the typed error so the client can shrink its page
            // size. The already-pulled answers are dropped — the server-side
            // clamp (`max_page_size`) exists to make this unreachable for
            // sanely configured servers.
            encode_response(
                &mut self.frame,
                &mut self.payload,
                &Response::Err(WireError::FrameTooLarge {
                    max: self.shared.cfg.max_frame_bytes,
                }),
            );
        }
        if faults::check("net.write").is_err() {
            // Chaos site: simulate the response write failing — the
            // connection drops exactly as if the peer vanished mid-reply.
            return Err(io::Error::other("injected net.write fault"));
        }
        let _span = anyk_obs::phase::span(anyk_obs::Phase::WireWrite);
        match write_frame(&mut self.stream, &self.frame) {
            Ok(()) => Ok(()),
            Err(e) => {
                if is_timeout_io(&e) {
                    self.shared.bump(|s| s.net_write_timeouts += 1);
                }
                Err(e)
            }
        }
    }

    /// Close every session this connection opened and never closed — the
    /// disconnect path (clean, torn, timed-out, or panicked alike), so a
    /// vanished client can never leak Governor slots or MEM units.
    fn close_owned_sessions(&mut self) {
        for (_, id) in self.sessions.drain() {
            let _ = self.shared.service.close_session(id);
        }
    }
}
