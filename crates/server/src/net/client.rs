//! [`AnyKClient`]: a blocking client for the any-k wire protocol.
//!
//! The client owns one connection and transparently re-establishes it:
//! every request first runs `ensure_connected`, which dials with **capped
//! exponential backoff** ([`ClientConfig::initial_backoff`] doubling up to
//! [`ClientConfig::max_backoff`], at most [`ClientConfig::max_retries`]
//! attempts). A server shedding at its connection cap answers the dial with
//! an `Overloaded` frame carrying `retry_after`; the client honours that
//! hint — sleeping `max(hint, next_backoff)`, floored at
//! [`MIN_RETRY_SLEEP`] — so a shedding server is never hammered faster than
//! it asked to be, even if it hints `retry_after = 0`.
//!
//! Reconnecting does **not** resurrect sessions: session handles live on
//! one connection, and the server closes them when the connection dies.
//! After a reconnect, [`AnyKClient::next_page`] on an old handle returns
//! [`RemoteError`] `UnknownSession` — callers re-open and re-enumerate
//! (any-k enumeration is deterministic, so a re-run streams the same ranked
//! answers).
//!
//! The client polices frames exactly like the server: partial reads/writes
//! are looped to completion, and a response frame announcing a payload
//! larger than [`ClientConfig::max_frame_bytes`] is rejected **before
//! allocation** with [`ClientError::FrameTooLarge`] — a byzantine server
//! cannot balloon client memory.

use super::protocol::{
    encode_request, read_frame, write_frame, FrameReadError, Request, Response, WireError,
    DEFAULT_MAX_FRAME_BYTES,
};
use anyk_engine::Page;
use anyk_storage::DeltaBatch;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Floor on every retry sleep. A server may hint `retry_after = 0`
/// (e.g. "retry immediately once a slot frees"), and a zero-configured
/// `initial_backoff` would otherwise turn that into a hot redial loop — a
/// shed client busy-hammering the very server that asked it to back off.
pub const MIN_RETRY_SLEEP: Duration = Duration::from_millis(1);

/// The sleep before a retry: the server's hint or our own backoff, whichever
/// asks for longer, but never below [`MIN_RETRY_SLEEP`].
fn retry_sleep(hint: Duration, backoff: Duration) -> Duration {
    hint.max(backoff).max(MIN_RETRY_SLEEP)
}

/// Tuning for [`AnyKClient`]. Defaults suit tests: fast initial backoff,
/// bounded total retry effort.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Socket read timeout (a server silent this long fails the request).
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// Largest response payload accepted (see module docs).
    pub max_frame_bytes: u32,
    /// First reconnect backoff; doubles per failed attempt.
    pub initial_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Dial attempts per `ensure_connected` (1 = no retry).
    pub max_retries: u32,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            max_retries: 8,
        }
    }
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (dial, read, write, torn frame) and retries ran
    /// out.
    Io(io::Error),
    /// The server broke the protocol (bad frame, undecodable payload, or a
    /// response that does not answer the request).
    Protocol(String),
    /// The server announced a response payload above our cap; rejected
    /// before allocation.
    FrameTooLarge {
        /// The announced length.
        len: u32,
        /// Our cap.
        max: u32,
    },
    /// The server answered with a typed error frame.
    Remote(WireError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport failure: {e}"),
            ClientError::Protocol(d) => write!(f, "server broke protocol: {d}"),
            ClientError::FrameTooLarge { len, max } => {
                write!(f, "server announced a {len}-byte payload (our cap {max})")
            }
            ClientError::Remote(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A remote session handle, valid only on the connection that opened it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteSession(pub u64);

/// A blocking client; see the module docs for reconnect semantics.
#[derive(Debug)]
pub struct AnyKClient {
    addr: SocketAddr,
    cfg: ClientConfig,
    conn: Option<TcpStream>,
    frame: Vec<u8>,
    payload: Vec<u8>,
}

impl AnyKClient {
    /// Create a client for `addr`. Dials lazily on the first request.
    pub fn connect(addr: SocketAddr, cfg: ClientConfig) -> AnyKClient {
        AnyKClient {
            addr,
            cfg,
            conn: None,
            frame: Vec::new(),
            payload: Vec::new(),
        }
    }

    /// Drop the current connection (the next request redials). Useful in
    /// tests simulating client crashes.
    pub fn disconnect(&mut self) {
        self.conn = None;
    }

    fn dial(&self) -> io::Result<TcpStream> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_read_timeout(Some(self.cfg.read_timeout))?;
        stream.set_write_timeout(Some(self.cfg.write_timeout))?;
        stream.set_nodelay(true)?;
        Ok(stream)
    }

    fn ensure_connected(&mut self) -> Result<(), ClientError> {
        if self.conn.is_some() {
            return Ok(());
        }
        let mut backoff = self.cfg.initial_backoff;
        let mut last_err: Option<io::Error> = None;
        for attempt in 0..self.cfg.max_retries.max(1) {
            if attempt > 0 {
                std::thread::sleep(retry_sleep(Duration::ZERO, backoff));
                backoff = (backoff * 2).min(self.cfg.max_backoff);
            }
            match self.dial() {
                Ok(stream) => {
                    self.conn = Some(stream);
                    return Ok(());
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(ClientError::Io(last_err.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::NotConnected, "no dial attempts configured")
        })))
    }

    /// One request/response exchange. Any transport failure drops the
    /// connection, so the next call redials from scratch — no request is
    /// ever silently retried (a `NextPage` retry would skip a page).
    fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.ensure_connected()?;
        let result = self.call_on_current(req);
        if matches!(
            result,
            Err(ClientError::Io(_))
                | Err(ClientError::Protocol(_))
                | Err(ClientError::FrameTooLarge { .. })
        ) {
            self.conn = None;
        }
        result
    }

    fn call_on_current(&mut self, req: &Request) -> Result<Response, ClientError> {
        encode_request(&mut self.frame, &mut self.payload, req);
        let stream = self.conn.as_mut().expect("ensure_connected succeeded");
        write_frame(stream, &self.frame)?;
        let kind = read_frame(stream, self.cfg.max_frame_bytes, &mut self.payload, &|| {
            false
        })
        .map_err(|e| match e {
            FrameReadError::CleanEof | FrameReadError::TornEof => ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-exchange",
            )),
            FrameReadError::TimedOut => ClientError::Io(io::Error::new(
                io::ErrorKind::TimedOut,
                "server response deadline exceeded",
            )),
            FrameReadError::TooLarge { len, max } => ClientError::FrameTooLarge { len, max },
            FrameReadError::BadMagic(b) => {
                ClientError::Protocol(format!("bad magic byte {b:#04x}"))
            }
            FrameReadError::BadVersion(v) => {
                ClientError::Protocol(format!("unsupported protocol version {v}"))
            }
            FrameReadError::BadReserved(b) => {
                ClientError::Protocol(format!("non-zero reserved byte {b:#04x}"))
            }
            FrameReadError::Io(e) => ClientError::Io(e),
        })?;
        Response::decode(kind, &self.payload).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            Response::Err(e) => Err(ClientError::Remote(e)),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Compile (or cache-hit) a textual query server-side; returns the
    /// canonical plan key.
    pub fn prepare(&mut self, text: &str) -> Result<String, ClientError> {
        match self.call(&Request::Prepare(text.to_string()))? {
            Response::Prepared(key) => Ok(key),
            Response::Err(e) => Err(ClientError::Remote(e)),
            other => Err(unexpected("Prepared", &other)),
        }
    }

    /// Open a paged enumeration session. Retries `Overloaded` sheds up to
    /// `max_retries` times, honouring the server's `retry_after` hint
    /// (sleeping `max(hint, next_backoff)` per attempt, never below
    /// [`MIN_RETRY_SLEEP`] — a `retry_after = 0` hint must not hot-loop).
    pub fn open_session(&mut self, text: &str) -> Result<RemoteSession, ClientError> {
        let mut backoff = self.cfg.initial_backoff;
        let mut attempt = 0;
        loop {
            match self.call(&Request::OpenSession(text.to_string()))? {
                Response::SessionOpened(id) => return Ok(RemoteSession(id)),
                Response::Err(WireError::Overloaded {
                    reason,
                    retry_after,
                }) => {
                    attempt += 1;
                    if attempt >= self.cfg.max_retries.max(1) {
                        return Err(ClientError::Remote(WireError::Overloaded {
                            reason,
                            retry_after,
                        }));
                    }
                    // A connection-cap shed closed the socket after the
                    // frame; admission-control sheds keep it open. Redial
                    // either way — reconnecting is cheap and uniform.
                    self.disconnect();
                    std::thread::sleep(retry_sleep(retry_after, backoff));
                    backoff = (backoff * 2).min(self.cfg.max_backoff);
                }
                Response::Err(e) => return Err(ClientError::Remote(e)),
                other => return Err(unexpected("SessionOpened", &other)),
            }
        }
    }

    /// Scrape the server's observability snapshot: atomic service counters,
    /// phase timings, and per-plan TTF / delay / page-latency percentiles.
    /// Feed it to [`StatsSnapshot::render_prometheus`] for scrape-style
    /// consumers.
    ///
    /// [`StatsSnapshot::render_prometheus`]: crate::StatsSnapshot::render_prometheus
    pub fn stats(&mut self) -> Result<crate::StatsSnapshot, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(*stats),
            Response::Err(e) => Err(ClientError::Remote(e)),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Apply a delta batch to the server's current snapshot: the server
    /// rotates in a new generation and returns its id. Sessions opened
    /// before the ingest keep streaming from their pinned snapshot.
    pub fn ingest(&mut self, batch: &DeltaBatch) -> Result<u64, ClientError> {
        match self.call(&Request::Ingest(batch.clone()))? {
            Response::Ingested(generation) => Ok(generation),
            Response::Err(e) => Err(ClientError::Remote(e)),
            other => Err(unexpected("Ingested", &other)),
        }
    }

    /// Pull the next ranked page (at most `page_size` answers; the server
    /// may clamp further).
    pub fn next_page(
        &mut self,
        session: RemoteSession,
        page_size: usize,
    ) -> Result<Page, ClientError> {
        let req = Request::NextPage {
            session: session.0,
            page_size: page_size.min(u32::MAX as usize) as u32,
        };
        match self.call(&req)? {
            Response::Page(page) => Ok(page),
            Response::Err(e) => Err(ClientError::Remote(e)),
            other => Err(unexpected("Page", &other)),
        }
    }

    /// Cancel a session (its enumeration state is dropped server-side).
    pub fn cancel(&mut self, session: RemoteSession) -> Result<(), ClientError> {
        match self.call(&Request::Cancel(session.0))? {
            Response::Cancelled => Ok(()),
            Response::Err(e) => Err(ClientError::Remote(e)),
            other => Err(unexpected("Cancelled", &other)),
        }
    }

    /// Close a session; `Ok(true)` if it was live.
    pub fn close(&mut self, session: RemoteSession) -> Result<bool, ClientError> {
        match self.call(&Request::Close(session.0))? {
            Response::Closed { existed } => Ok(existed),
            Response::Err(e) => Err(ClientError::Remote(e)),
            other => Err(unexpected("Closed", &other)),
        }
    }

    /// Convenience: open a session over `text` and stream it to exhaustion
    /// with `page_size`-answer pulls, returning the full ranked answer list.
    pub fn collect_all(
        &mut self,
        text: &str,
        page_size: usize,
    ) -> Result<Vec<anyk_engine::Answer>, ClientError> {
        let session = self.open_session(text)?;
        let mut all = Vec::new();
        loop {
            let page = self.next_page(session, page_size)?;
            let done = page.done;
            all.extend(page.answers);
            if done {
                break;
            }
        }
        let _ = self.close(session)?;
        Ok(all)
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    ClientError::Protocol(format!("expected {wanted}, got {:?}", got.status()))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression: a server hinting `retry_after = 0` (shed, but "retry as
    /// soon as you like") combined with a zero initial backoff used to make
    /// shed clients redial in a hot loop. The sleep is now floored.
    #[test]
    fn zero_retry_hint_never_hot_loops() {
        assert!(retry_sleep(Duration::ZERO, Duration::ZERO) >= MIN_RETRY_SLEEP);
        assert_eq!(retry_sleep(Duration::ZERO, Duration::ZERO), MIN_RETRY_SLEEP);
    }

    #[test]
    fn retry_sleep_takes_the_longer_of_hint_and_backoff() {
        let hint = Duration::from_millis(50);
        let backoff = Duration::from_millis(20);
        assert_eq!(retry_sleep(hint, backoff), hint);
        assert_eq!(retry_sleep(backoff, hint), hint);
        // Sub-floor values on both sides still get the floor.
        assert_eq!(
            retry_sleep(Duration::from_micros(5), Duration::from_micros(7)),
            MIN_RETRY_SLEEP
        );
    }
}
