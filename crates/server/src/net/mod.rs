//! The TCP front end: a resilient wire transport for
//! [`QueryService`](crate::QueryService), built on `std::net` alone.
//!
//! Three layers:
//!
//! - [`protocol`] — the length-prefixed, versioned frame codec shared by
//!   both sides (frame layout, opcodes, status codes, and the bit-identical
//!   answer encoding are specified in its module docs);
//! - [`AnyKServer`] — accept loop + bounded worker pool with connection
//!   caps, per-connection deadlines, chaos failpoints (`net.accept`,
//!   `net.read`, `net.write`), and drain-then-join graceful shutdown;
//! - [`AnyKClient`] — a blocking client with reconnect, capped exponential
//!   backoff honouring the server's `retry_after` hints, and oversize-frame
//!   rejection.
//!
//! The transport adds **no semantics** of its own: every request maps 1:1
//! onto a [`QueryService`](crate::QueryService) call, every
//! [`ServiceError`](crate::ServiceError) variant has a typed status code,
//! and a ranked stream pulled over TCP compares equal (`==`, including
//! `f64` weight bits and witness provenance) to the same `QuerySpec`
//! streamed in-process. What it adds is *governance at the socket*: a
//! connection cap that sheds before handshake work, slow-loris defence, and
//! the guarantee that a vanished client's sessions are closed so the
//! Governor's MEM gauge returns to zero.

pub mod protocol;

mod client;
mod server;

pub use client::{AnyKClient, ClientConfig, ClientError, RemoteSession};
pub use protocol::{Request, Response, StatusCode, WireError, WireOverloadReason};
pub use server::{AnyKServer, NetConfig};
