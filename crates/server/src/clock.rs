//! Injectable time source for session deadlines and the idle reaper.
//!
//! The implementation lives in [`anyk_obs`] (the bottom of the workspace
//! DAG) so the engine's delay recorder and the service share one notion of
//! time; this module re-exports it under the historical
//! `anyk_server::{Clock, ManualClock, MonotonicClock}` paths.
//!
//! The service never calls [`std::time::Instant::now`] directly: every
//! deadline decision goes through a [`Clock`] handed in at construction
//! ([`crate::ServiceConfig::clock`]). Production uses [`MonotonicClock`]
//! (process-monotonic, immune to wall-clock steps); tests inject a
//! [`ManualClock`] and *advance time by hand*, which makes TTL expiry, idle
//! reaping, and every chaos schedule in the test suite fully deterministic —
//! no sleeps, no flakes.

pub use anyk_obs::{Clock, ManualClock, MonotonicClock};
