//! Admission control and resource accounting for [`crate::QueryService`].
//!
//! One small mutex-guarded state block holds every gauge (active sessions,
//! pages in flight, resident MEM units) *and* every lifetime counter the
//! service exposes. Keeping them under a single lock is deliberate:
//! [`crate::QueryService::metrics`] snapshots all of them **atomically** —
//! no torn reads where `sessions_opened` has advanced but `sessions_closed`
//! has not — and admission decisions (compare gauge against cap, then
//! increment) are race-free without compare-and-swap loops. The critical
//! sections are a handful of integer operations; at any-k page rates the
//! lock is uncontended noise next to a single answer's heap pop.
//!
//! Memory accounting is in the paper's currency: **MEM(k) units**, the
//! number of live entries in the enumeration data structures (candidate
//! queues + shared-prefix arenas + successor-structure tables, summed over
//! decomposition trees — see [`anyk_core::MemoryStats::resident_units`]).
//! Each session is charged its cursor's current footprint and re-charged
//! the delta after every page; algorithms whose memory is not organised in
//! those structures (`Recursive`, `Batch`) are charged a flat configured
//! rate ([`GovernorConfig::untracked_session_units`]).

use crate::error::{OverloadReason, ServiceError};
use std::sync::Mutex;
use std::time::Duration;

/// Resource caps and lifecycle deadlines enforced by the service.
///
/// Every cap is optional; the default governor enforces nothing, so a
/// service configured with `ServiceConfig::default()` behaves exactly like
/// the pre-governance service. See the crate docs for a tuning guide.
#[derive(Debug, Clone)]
pub struct GovernorConfig {
    /// Cap on concurrently open (active, not yet ended) sessions. Opens
    /// beyond the cap are shed with [`ServiceError::Overloaded`].
    pub max_sessions: Option<usize>,
    /// Cap on pages being pulled at this instant across all sessions — a
    /// brake on thread-pool overcommit, not on open sessions (suspended
    /// sessions cost memory, not CPU). Pulls beyond the cap are shed.
    pub max_pages_in_flight: Option<usize>,
    /// Global budget, in MEM(k) units, for the enumeration structures of
    /// all live sessions combined. A session whose admission would push the
    /// resident total over budget is shed.
    pub memory_budget_units: Option<u64>,
    /// Flat per-session charge (in units) for cursors that cannot report
    /// MEM(k) — `Recursive` and `Batch` streams.
    pub untracked_session_units: u64,
    /// Hard lifetime for a session, measured from open. An expired session
    /// ends as `Expired`: its enumeration state is dropped, and further
    /// pulls return [`ServiceError::SessionExpired`].
    pub session_ttl: Option<Duration>,
    /// Idle lifetime, measured from the last page pull (or from open if no
    /// page was ever pulled). The sweep ends idle sessions as `Expired`.
    pub idle_timeout: Option<Duration>,
    /// Back-off hint carried inside [`ServiceError::Overloaded`] for shed
    /// requests.
    pub retry_after_hint: Duration,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            max_sessions: None,
            max_pages_in_flight: None,
            memory_budget_units: None,
            untracked_session_units: 1024,
            session_ttl: None,
            idle_timeout: None,
            retry_after_hint: Duration::from_millis(50),
        }
    }
}

/// Gauges + lifetime counters, all behind one lock (see module docs).
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct GovState {
    // Gauges.
    pub active_sessions: usize,
    pub pages_in_flight: usize,
    pub mem_resident_units: u64,
    pub peak_mem_resident_units: u64,
    // Lifetime counters.
    pub sessions_opened: u64,
    pub sessions_closed: u64,
    pub sessions_shed: u64,
    pub sessions_expired: u64,
    pub sessions_cancelled: u64,
    pub sessions_poisoned: u64,
    pub pages_served: u64,
    pub answers_served: u64,
    pub plan_hits: u64,
    pub plan_misses: u64,
    pub plan_evictions: u64,
    // Snapshot lifecycle (see `crate::service` — rotation & delta
    // ingestion). `snapshot_resident_units` and `active_generations` are
    // gauges: they rise when a generation is installed and fall when the
    // retired snapshot's last pinned session ends and its `Snapshot` wrapper
    // drops. The rest are lifetime counters.
    pub snapshot_resident_units: u64,
    pub active_generations: usize,
    pub current_generation: u64,
    pub snapshots_retired: u64,
    pub generations_rotated: u64,
    pub deltas_ingested: u64,
    pub plans_refreshed: u64,
    pub plans_recompiled: u64,
    // Sharded enumeration (see `crate::service` — hash-partitioned plans
    // merged through a ranked union). Lifetime counters.
    pub sharded_sessions_opened: u64,
    pub shards_prepared: u64,
    // Connection-level counters, bumped by the TCP transport
    // (`crate::net::AnyKServer`). They live in the same state block as the
    // session counters so one `metrics()` snapshot covers the whole stack
    // without torn reads (e.g. `connections_accepted` can never lag behind a
    // session that connection opened).
    pub connections_accepted: u64,
    pub connections_shed_at_accept: u64,
    pub net_read_timeouts: u64,
    pub net_write_timeouts: u64,
    pub connections_drained_on_shutdown: u64,
}

#[derive(Debug)]
pub(crate) struct Governor {
    pub config: GovernorConfig,
    state: Mutex<GovState>,
}

/// RAII permit for one in-flight page pull; decrements the gauge on drop,
/// so a panicking pull (or an early `?` return) can never leak a permit.
#[derive(Debug)]
pub(crate) struct PagePermit<'g> {
    gov: &'g Governor,
}

impl Drop for PagePermit<'_> {
    fn drop(&mut self) {
        self.gov.with(|s| s.pages_in_flight -= 1);
    }
}

impl Governor {
    pub fn new(config: GovernorConfig) -> Self {
        Governor {
            config,
            state: Mutex::new(GovState::default()),
        }
    }

    /// Run `f` under the state lock. The only lock-acquisition point, and
    /// poison-proof: state mutations are plain integer math that cannot
    /// panic halfway, so a poisoned lock still holds consistent numbers.
    pub fn with<R>(&self, f: impl FnOnce(&mut GovState) -> R) -> R {
        let mut s = self
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        f(&mut s)
    }

    pub fn snapshot(&self) -> GovState {
        self.with(|s| *s)
    }

    fn shed(&self, reason: OverloadReason) -> ServiceError {
        self.with(|s| s.sessions_shed += 1);
        ServiceError::Overloaded {
            reason,
            retry_after_hint: self.config.retry_after_hint,
        }
    }

    /// Admission check for the cheap half of opening a session, *before*
    /// plan compilation: is there a session slot at all?
    pub fn admit_session_slot(&self) -> Result<(), ServiceError> {
        if let Some(cap) = self.config.max_sessions {
            if self.with(|s| s.active_sessions) >= cap {
                return Err(self.shed(OverloadReason::Sessions));
            }
        }
        Ok(())
    }

    /// Commit a session holding `units` MEM(k) units. Re-checks the session
    /// cap (another open may have won the race since
    /// [`Governor::admit_session_slot`]) and checks the memory budget, then
    /// updates the gauges — all in one critical section, so concurrent
    /// opens can never jointly overshoot a cap.
    pub fn commit_session(&self, units: u64) -> Result<(), ServiceError> {
        let reason = self.with(|s| {
            if let Some(cap) = self.config.max_sessions {
                if s.active_sessions >= cap {
                    return Some(OverloadReason::Sessions);
                }
            }
            if let Some(budget) = self.config.memory_budget_units {
                if s.mem_resident_units.saturating_add(units) > budget {
                    return Some(OverloadReason::Memory);
                }
            }
            s.active_sessions += 1;
            s.sessions_opened += 1;
            s.mem_resident_units += units;
            s.peak_mem_resident_units = s.peak_mem_resident_units.max(s.mem_resident_units);
            None
        });
        match reason {
            Some(r) => Err(self.shed(r)),
            None => Ok(()),
        }
    }

    /// Acquire a permit for one in-flight page pull, or shed.
    pub fn acquire_page(&self) -> Result<PagePermit<'_>, ServiceError> {
        let admitted = self.with(|s| {
            if let Some(cap) = self.config.max_pages_in_flight {
                if s.pages_in_flight >= cap {
                    return false;
                }
            }
            s.pages_in_flight += 1;
            true
        });
        if admitted {
            Ok(PagePermit { gov: self })
        } else {
            Err(self.shed(OverloadReason::PagesInFlight))
        }
    }

    /// Re-charge a session whose footprint moved from `old` to `new` units
    /// (page pulls grow — and occasionally shrink — the structures).
    pub fn recharge(&self, old: u64, new: u64) {
        self.with(|s| {
            s.mem_resident_units = s.mem_resident_units - old + new;
            s.peak_mem_resident_units = s.peak_mem_resident_units.max(s.mem_resident_units);
        });
    }

    /// Account one served page of `answers` answers.
    pub fn record_page(&self, answers: usize) {
        self.with(|s| {
            s.pages_served += 1;
            s.answers_served += answers as u64;
        });
    }

    /// Account a newly installed snapshot generation holding `units`
    /// resident tuples.
    pub fn install_snapshot(&self, generation: u64, units: u64) {
        self.with(|s| {
            s.snapshot_resident_units += units;
            s.active_generations += 1;
            s.current_generation = generation;
        });
    }

    /// Release a retired snapshot's residency — called from
    /// `Snapshot::drop`, i.e. when the last session pinning the generation
    /// ends (or immediately on rotation if nothing pinned it).
    pub fn retire_snapshot(&self, units: u64) {
        self.with(|s| {
            s.snapshot_resident_units -= units;
            s.active_generations -= 1;
            s.snapshots_retired += 1;
        });
    }

    /// Release an active session's resources, recording why it ended.
    pub fn release_session(&self, units: u64, why: SessionOutcome) {
        self.with(|s| {
            s.active_sessions -= 1;
            s.mem_resident_units -= units;
            match why {
                SessionOutcome::Closed => s.sessions_closed += 1,
                SessionOutcome::Expired => s.sessions_expired += 1,
                SessionOutcome::Cancelled => s.sessions_cancelled += 1,
                SessionOutcome::Poisoned => s.sessions_poisoned += 1,
            }
        });
    }
}

/// Why an active session stopped being active (metrics taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SessionOutcome {
    Closed,
    Expired,
    Cancelled,
    Poisoned,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_cap_sheds_and_releases() {
        let g = Governor::new(GovernorConfig {
            max_sessions: Some(2),
            ..GovernorConfig::default()
        });
        g.commit_session(0).unwrap();
        g.commit_session(0).unwrap();
        let err = g.commit_session(0).unwrap_err();
        assert!(matches!(
            err,
            ServiceError::Overloaded {
                reason: OverloadReason::Sessions,
                ..
            }
        ));
        g.release_session(0, SessionOutcome::Closed);
        g.commit_session(0).unwrap();
        let s = g.snapshot();
        assert_eq!(s.sessions_opened, 3);
        assert_eq!(s.sessions_shed, 1);
        assert_eq!(s.active_sessions, 2);
    }

    #[test]
    fn memory_budget_sheds_and_tracks_peak() {
        let g = Governor::new(GovernorConfig {
            memory_budget_units: Some(100),
            ..GovernorConfig::default()
        });
        g.commit_session(60).unwrap();
        assert!(matches!(
            g.commit_session(50).unwrap_err(),
            ServiceError::Overloaded {
                reason: OverloadReason::Memory,
                ..
            }
        ));
        g.commit_session(40).unwrap();
        g.recharge(60, 30);
        let s = g.snapshot();
        assert_eq!(s.mem_resident_units, 70);
        assert_eq!(s.peak_mem_resident_units, 100);
        g.release_session(30, SessionOutcome::Expired);
        g.release_session(40, SessionOutcome::Closed);
        assert_eq!(g.snapshot().mem_resident_units, 0);
    }

    #[test]
    fn page_permits_are_raii() {
        let g = Governor::new(GovernorConfig {
            max_pages_in_flight: Some(1),
            ..GovernorConfig::default()
        });
        let permit = g.acquire_page().unwrap();
        assert!(matches!(
            g.acquire_page().unwrap_err(),
            ServiceError::Overloaded {
                reason: OverloadReason::PagesInFlight,
                ..
            }
        ));
        drop(permit);
        drop(g.acquire_page().unwrap());
        assert_eq!(g.snapshot().pages_in_flight, 0);
        assert_eq!(g.snapshot().sessions_shed, 1);
    }
}
