//! The query service: prepared-plan cache + sharded session registry.

use crate::error::ServiceError;
use anyk_core::AnyKAlgorithm;
use anyk_engine::{Answer, AnswerCursor, AnswerDecoder, Page, PreparedQuery, RankingFunction};
use anyk_query::{ConjunctiveQuery, QuerySpec};
use anyk_storage::{Database, IndexCacheStats};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Identifies one open enumeration session. Ids are unique over the life of
/// a service and never reused, so a stale id can only miss (never alias a
/// newer session).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

/// Construction-time options for [`QueryService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Re-bound the database's index cache before sharing it (`None` keeps
    /// the database's current bound — the `ANYK_INDEX_CACHE_CAP` default).
    /// Only meaningful when the service still owns the database
    /// ([`QueryService::new`] / [`QueryService::with_config`]);
    /// [`QueryService::over`] rejects it, because an already-shared
    /// snapshot's cache cannot be re-bounded.
    pub index_cache_capacity: Option<usize>,
    /// Number of independent `RwLock` shards for the session registry.
    /// Session lookups hash across the shards, so concurrent page pulls on
    /// different sessions contend only 1-in-`session_shards` of the time
    /// even while other sessions are being opened or closed.
    pub session_shards: usize,
    /// Bound on the number of memoised prepared plans (clamped to ≥ 1).
    /// Prepared plans are much heavier than indexes — a cycle plan owns
    /// materialised bag databases — so a service facing ad-hoc queries
    /// must evict here too: least-recently-prepared plans are dropped
    /// first. Sessions already opened keep their (Arc'd) plan alive until
    /// they close; eviction only forces a recompile for *future* sessions.
    pub plan_cache_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            index_cache_capacity: None,
            session_shards: 8,
            plan_cache_capacity: 32,
        }
    }
}

/// A snapshot of the service's counters (all monotonically increasing over
/// the service's lifetime, except the derived gauges).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceMetrics {
    /// Sessions opened so far.
    pub sessions_opened: u64,
    /// Sessions explicitly closed.
    pub sessions_closed: u64,
    /// Pages served across all sessions.
    pub pages_served: u64,
    /// Answers served across all sessions.
    pub answers_served: u64,
    /// Prepared-plan cache hits (a session opened without recompiling).
    pub plan_hits: u64,
    /// Prepared-plan cache misses (compile + preprocessing ran).
    pub plan_misses: u64,
    /// Prepared plans evicted by the plan-cache LRU bound.
    pub plan_evictions: u64,
}

/// Progress report for one session; see [`QueryService::session_status`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionStatus {
    /// Answers served so far across all of the session's pages.
    pub served: usize,
    /// True once the session's stream is exhausted.
    pub done: bool,
    /// The any-k algorithm driving the session.
    pub algorithm: AnyKAlgorithm,
}

/// The algorithm driving a session when the request does not pin one (the
/// paper's overall-best anyK-part variant).
pub const DEFAULT_ALGORITHM: AnyKAlgorithm = AnyKAlgorithm::Take2;

/// Key of the prepared-plan cache: [`QuerySpec::plan_key`], the canonical
/// spec text (variables alpha-renamed, predicates sorted) with the
/// execution attributes (algorithm, limit) stripped. Alpha-equivalent
/// requests — text or struct, `R(x,y),S(y,z)` or `R(a,b),S(b,c)` — share
/// one compiled plan.
type PlanKey = String;

/// One memoised plan plus its recency tick (atomic so cache hits can
/// refresh recency under the read lock; used for LRU eviction).
struct PlanEntry {
    plan: Arc<PreparedQuery>,
    last_used: AtomicU64,
}

struct Session {
    cursor: AnswerCursor,
}

type SessionShard = RwLock<HashMap<u64, Arc<Mutex<Session>>>>;

/// A long-lived query service over one shared, read-mostly [`Database`]
/// snapshot. See the [crate docs](crate) for the full model and an example.
///
/// All methods take `&self`: wrap the service in an `Arc` (or hand out
/// `&QueryService` borrows) and drive it from as many threads as needed.
/// Per-session state is behind a per-session mutex, so concurrent pulls on
/// *different* sessions run in parallel while concurrent pulls on the *same*
/// session serialise (each page is still an atomic, contiguous chunk of the
/// session's ranked stream).
pub struct QueryService {
    db: Arc<Database>,
    plans: RwLock<HashMap<PlanKey, PlanEntry>>,
    plan_cache_capacity: usize,
    plan_clock: AtomicU64,
    session_shards: Vec<SessionShard>,
    next_session: AtomicU64,
    sessions_opened: AtomicU64,
    sessions_closed: AtomicU64,
    pages_served: AtomicU64,
    answers_served: AtomicU64,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
    plan_evictions: AtomicU64,
}

/// A poisoned lock only means a panic elsewhere; the maps/sessions are
/// always structurally consistent.
macro_rules! lock {
    ($e:expr) => {
        $e.unwrap_or_else(|poisoned| poisoned.into_inner())
    };
}

impl QueryService {
    /// Build a service owning `db`, with default [`ServiceConfig`].
    pub fn new(db: Database) -> Self {
        Self::with_config(db, ServiceConfig::default())
    }

    /// Build a service owning `db` with explicit options.
    pub fn with_config(mut db: Database, mut config: ServiceConfig) -> Self {
        if let Some(cap) = config.index_cache_capacity.take() {
            db.set_index_cache_capacity(cap);
        }
        Self::over(Arc::new(db), config)
    }

    /// Build a service over an already-shared snapshot (e.g. several
    /// services — future shards — over one database).
    ///
    /// # Panics
    /// Panics if `config.index_cache_capacity` is set: a shared snapshot's
    /// cache cannot be re-bounded, and silently dropping a configured
    /// memory bound would be worse than refusing it. Bound the cache before
    /// sharing (via [`Database::set_index_cache_capacity`] or
    /// [`QueryService::with_config`]).
    pub fn over(db: Arc<Database>, config: ServiceConfig) -> Self {
        assert!(
            config.index_cache_capacity.is_none(),
            "index_cache_capacity cannot be applied to an already-shared \
             database; call Database::set_index_cache_capacity before \
             wrapping it in an Arc (or use QueryService::with_config)"
        );
        let shards = config.session_shards.max(1);
        QueryService {
            db,
            plans: RwLock::new(HashMap::new()),
            plan_cache_capacity: config.plan_cache_capacity.max(1),
            plan_clock: AtomicU64::new(0),
            session_shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            next_session: AtomicU64::new(0),
            sessions_opened: AtomicU64::new(0),
            sessions_closed: AtomicU64::new(0),
            pages_served: AtomicU64::new(0),
            answers_served: AtomicU64::new(0),
            plan_hits: AtomicU64::new(0),
            plan_misses: AtomicU64::new(0),
            plan_evictions: AtomicU64::new(0),
        }
    }

    /// The shared database snapshot.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Compile `query` under `ranking`, or return the memoised plan if an
    /// equivalent query was prepared before. See
    /// [`QueryService::prepare_spec`], which this delegates to — struct and
    /// text requests share one cache, keyed by canonical spec text.
    pub fn prepare(
        &self,
        query: &ConjunctiveQuery,
        ranking: RankingFunction,
    ) -> Result<Arc<PreparedQuery>, ServiceError> {
        self.prepare_spec(&QuerySpec::from_query(query, ranking))
    }

    /// Parse `text` in the query language and compile it (or return the
    /// memoised plan); see [`QueryService::prepare_spec`].
    pub fn prepare_text(&self, text: &str) -> Result<Arc<PreparedQuery>, ServiceError> {
        self.prepare_spec(&QuerySpec::parse(text)?)
    }

    /// Compile `spec` — selection predicates pushed down to filtered
    /// relation copies — or return the memoised plan if a request with the
    /// same [`QuerySpec::plan_key`] was prepared before (the spec's
    /// `algorithm` and `limit` are per-session attributes and do not
    /// fragment the cache). Compilation runs *outside* the plan-cache lock,
    /// so preparing distinct queries proceeds in parallel; if two threads
    /// race on the same key, the first insert wins and both get the same
    /// plan. The cache is LRU-bounded
    /// ([`ServiceConfig::plan_cache_capacity`]); an evicted plan stays alive
    /// for the sessions already holding it and is simply recompiled if the
    /// query comes back.
    pub fn prepare_spec(&self, spec: &QuerySpec) -> Result<Arc<PreparedQuery>, ServiceError> {
        let key: PlanKey = spec.plan_key();
        if let Some(entry) = lock!(self.plans.read()).get(&key) {
            entry.last_used.store(
                self.plan_clock.fetch_add(1, Ordering::Relaxed) + 1,
                Ordering::Relaxed,
            );
            self.plan_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(&entry.plan));
        }
        self.plan_misses.fetch_add(1, Ordering::Relaxed);
        let prepared = Arc::new(PreparedQuery::from_spec(
            Arc::clone(&self.db),
            &spec.without_execution_attrs(),
        )?);
        let mut plans = lock!(self.plans.write());
        let tick = self.plan_clock.fetch_add(1, Ordering::Relaxed) + 1;
        let entry = plans.entry(key).or_insert_with(|| PlanEntry {
            plan: prepared,
            last_used: AtomicU64::new(0),
        });
        *entry.last_used.get_mut() = tick;
        let out = Arc::clone(&entry.plan);
        while plans.len() > self.plan_cache_capacity {
            let victim = plans
                .iter()
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone())
                .expect("non-empty plan cache");
            plans.remove(&victim);
            self.plan_evictions.fetch_add(1, Ordering::Relaxed);
        }
        Ok(out)
    }

    /// Open a session over `query` with the default ranking
    /// ([`RankingFunction::SumAscending`]).
    pub fn open_session(
        &self,
        query: &ConjunctiveQuery,
        algorithm: AnyKAlgorithm,
    ) -> Result<SessionId, ServiceError> {
        self.open_session_with(query, RankingFunction::SumAscending, algorithm)
    }

    /// Open a session over `query` under an explicit ranking.
    pub fn open_session_with(
        &self,
        query: &ConjunctiveQuery,
        ranking: RankingFunction,
        algorithm: AnyKAlgorithm,
    ) -> Result<SessionId, ServiceError> {
        let prepared = self.prepare(query, ranking)?;
        Ok(self.open_prepared(&prepared, algorithm))
    }

    /// Open a session straight from query-language text — the one entry
    /// point from a string to ranked pages:
    ///
    /// ```text
    /// Q(x, z) :- R(x, y), S(y, z), y = 7 rank by sum limit 1000
    /// ```
    ///
    /// The plan comes from the shared cache (keyed by canonical spec text,
    /// so alpha-renamed variants and struct-built equivalents all hit the
    /// same entry); the spec's `via` algorithm (default
    /// [`DEFAULT_ALGORITHM`]) and `limit` apply to this session only.
    pub fn open_session_text(&self, text: &str) -> Result<SessionId, ServiceError> {
        self.open_session_spec(&QuerySpec::parse(text)?)
    }

    /// Open a session over an already-parsed [`QuerySpec`]; see
    /// [`QueryService::open_session_text`].
    pub fn open_session_spec(&self, spec: &QuerySpec) -> Result<SessionId, ServiceError> {
        let prepared = self.prepare_spec(spec)?;
        let algorithm = spec.algorithm.unwrap_or(DEFAULT_ALGORITHM);
        Ok(self.install_session(prepared.cursor_with_limit(algorithm, spec.limit)))
    }

    /// Open a session over an explicitly prepared plan (e.g. one prepared
    /// ahead of a traffic spike, or obtained from [`QueryService::prepare`]).
    pub fn open_prepared(
        &self,
        prepared: &Arc<PreparedQuery>,
        algorithm: AnyKAlgorithm,
    ) -> SessionId {
        self.install_session(prepared.cursor(algorithm))
    }

    fn install_session(&self, cursor: AnswerCursor) -> SessionId {
        let id = SessionId(self.next_session.fetch_add(1, Ordering::Relaxed) + 1);
        let session = Arc::new(Mutex::new(Session { cursor }));
        lock!(self.shard_of(id).write()).insert(id.0, session);
        self.sessions_opened.fetch_add(1, Ordering::Relaxed);
        id
    }

    fn shard_of(&self, id: SessionId) -> &SessionShard {
        let mut h = DefaultHasher::new();
        id.0.hash(&mut h);
        &self.session_shards[(h.finish() as usize) % self.session_shards.len()]
    }

    fn session(&self, id: SessionId) -> Result<Arc<Mutex<Session>>, ServiceError> {
        lock!(self.shard_of(id).read())
            .get(&id.0)
            .cloned()
            .ok_or(ServiceError::UnknownSession(id))
    }

    /// Pull the next page of up to `page_size` ranked answers from session
    /// `id`, resuming exactly where the previous page stopped.
    pub fn next_page(&self, id: SessionId, page_size: usize) -> Result<Page, ServiceError> {
        let session = self.session(id)?;
        let mut session = lock!(session.lock());
        let page = session.cursor.next_page(page_size);
        self.pages_served.fetch_add(1, Ordering::Relaxed);
        self.answers_served
            .fetch_add(page.answers.len() as u64, Ordering::Relaxed);
        Ok(page)
    }

    /// Like [`QueryService::next_page`], but fills a caller-provided buffer
    /// (cleared first) so steady-state clients pay no per-page allocation.
    /// Returns `true` when the session's stream is exhausted.
    pub fn next_page_into(
        &self,
        id: SessionId,
        page_size: usize,
        out: &mut Vec<Answer>,
    ) -> Result<bool, ServiceError> {
        let session = self.session(id)?;
        let mut session = lock!(session.lock());
        let done = session.cursor.next_page_into(page_size, out);
        self.pages_served.fetch_add(1, Ordering::Relaxed);
        self.answers_served
            .fetch_add(out.len() as u64, Ordering::Relaxed);
        Ok(done)
    }

    /// Progress of session `id` (answers served, exhaustion, algorithm).
    pub fn session_status(&self, id: SessionId) -> Result<SessionStatus, ServiceError> {
        let session = self.session(id)?;
        let session = lock!(session.lock());
        Ok(SessionStatus {
            served: session.cursor.served(),
            done: session.cursor.is_done(),
            algorithm: session.cursor.algorithm(),
        })
    }

    /// The decoder for session `id`'s answers (original strings for
    /// dictionary-encoded columns); see
    /// [`AnswerDecoder`](anyk_engine::AnswerDecoder).
    pub fn decoder(&self, id: SessionId) -> Result<AnswerDecoder, ServiceError> {
        let session = self.session(id)?;
        let session = lock!(session.lock());
        Ok(session.cursor.prepared().decoder())
    }

    /// Close session `id`, dropping its enumeration state. Returns `false`
    /// if the session was unknown (or already closed). A session that is
    /// never closed simply keeps its suspended state alive — there is no
    /// timeout; eviction policy is a follow-on (see ROADMAP).
    pub fn close_session(&self, id: SessionId) -> bool {
        let removed = lock!(self.shard_of(id).write()).remove(&id.0).is_some();
        if removed {
            self.sessions_closed.fetch_add(1, Ordering::Relaxed);
        }
        removed
    }

    /// Number of currently open sessions.
    pub fn session_count(&self) -> usize {
        self.session_shards
            .iter()
            .map(|s| lock!(s.read()).len())
            .sum()
    }

    /// Number of distinct prepared plans currently memoised.
    pub fn prepared_count(&self) -> usize {
        lock!(self.plans.read()).len()
    }

    /// Counter snapshot.
    pub fn metrics(&self) -> ServiceMetrics {
        ServiceMetrics {
            sessions_opened: self.sessions_opened.load(Ordering::Relaxed),
            sessions_closed: self.sessions_closed.load(Ordering::Relaxed),
            pages_served: self.pages_served.load(Ordering::Relaxed),
            answers_served: self.answers_served.load(Ordering::Relaxed),
            plan_hits: self.plan_hits.load(Ordering::Relaxed),
            plan_misses: self.plan_misses.load(Ordering::Relaxed),
            plan_evictions: self.plan_evictions.load(Ordering::Relaxed),
        }
    }

    /// Hit/miss/eviction counters of the shared snapshot's index cache.
    pub fn index_cache_stats(&self) -> IndexCacheStats {
        self.db.index_cache_stats()
    }
}

impl std::fmt::Debug for QueryService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryService")
            .field("sessions", &self.session_count())
            .field("prepared_plans", &self.prepared_count())
            .field("metrics", &self.metrics())
            .finish()
    }
}

// The whole service is shareable across threads by construction; keep that
// guarantee compile-time checked.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<QueryService>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use anyk_query::QueryBuilder;
    use anyk_storage::Relation;

    fn path_db() -> Database {
        let mut db = Database::new();
        let mut r1 = Relation::new("R1", 2);
        r1.push_edge(1, 10, 1.0);
        r1.push_edge(2, 20, 4.0);
        r1.push_edge(3, 10, 9.0);
        let mut r2 = Relation::new("R2", 2);
        r2.push_edge(10, 5, 2.0);
        r2.push_edge(20, 6, 1.0);
        db.add(r1);
        db.add(r2);
        db
    }

    #[test]
    fn sessions_page_independently_and_deterministically() {
        let service = QueryService::new(path_db());
        let query = QueryBuilder::path(2).build();
        let one_shot: Vec<Answer> = service
            .prepare(&query, RankingFunction::SumAscending)
            .unwrap()
            .enumerate(AnyKAlgorithm::Take2)
            .collect();

        let a = service.open_session(&query, AnyKAlgorithm::Take2).unwrap();
        let b = service.open_session(&query, AnyKAlgorithm::Take2).unwrap();
        // Interleave pulls with different page sizes.
        let mut got_a = service.next_page(a, 1).unwrap().answers;
        let mut got_b = service.next_page(b, 2).unwrap().answers;
        got_a.extend(service.next_page(a, 10).unwrap().answers);
        got_b.extend(service.next_page(b, 10).unwrap().answers);
        assert_eq!(got_a, one_shot);
        assert_eq!(got_b, one_shot);
        assert_eq!(service.metrics().plan_misses, 1, "compiled exactly once");
        assert_eq!(service.metrics().plan_hits, 2);
    }

    #[test]
    fn unknown_and_closed_sessions_are_rejected() {
        let service = QueryService::new(path_db());
        let query = QueryBuilder::path(2).build();
        let id = service.open_session(&query, AnyKAlgorithm::Lazy).unwrap();
        assert!(service.next_page(id, 1).is_ok());
        assert!(service.close_session(id));
        assert!(!service.close_session(id), "double close is a no-op");
        assert!(matches!(
            service.next_page(id, 1),
            Err(ServiceError::UnknownSession(_))
        ));
        assert_eq!(service.session_count(), 0);
    }

    #[test]
    fn prepare_failures_surface_engine_errors() {
        let service = QueryService::new(path_db());
        let query = QueryBuilder::new().atom("Nope", &["x", "y"]).build();
        let err = service
            .open_session(&query, AnyKAlgorithm::Take2)
            .unwrap_err();
        assert!(matches!(err, ServiceError::Engine(_)));
        assert!(err.to_string().contains("Nope"));
    }

    #[test]
    fn session_status_tracks_progress() {
        let service = QueryService::new(path_db());
        let query = QueryBuilder::path(2).build();
        let id = service
            .open_session(&query, AnyKAlgorithm::Recursive)
            .unwrap();
        assert_eq!(
            service.session_status(id).unwrap(),
            SessionStatus {
                served: 0,
                done: false,
                algorithm: AnyKAlgorithm::Recursive
            }
        );
        service.next_page(id, 2).unwrap();
        let status = service.session_status(id).unwrap();
        assert_eq!(status.served, 2);
        assert!(!status.done);
        service.next_page(id, 2).unwrap();
        assert!(service.session_status(id).unwrap().done);
    }

    #[test]
    fn distinct_rankings_get_distinct_plans() {
        let service = QueryService::new(path_db());
        let query = QueryBuilder::path(2).build();
        let asc = service
            .prepare(&query, RankingFunction::SumAscending)
            .unwrap();
        let desc = service
            .prepare(&query, RankingFunction::SumDescending)
            .unwrap();
        assert!(!Arc::ptr_eq(&asc, &desc));
        assert_eq!(service.prepared_count(), 2);
        let asc2 = service
            .prepare(&query, RankingFunction::SumAscending)
            .unwrap();
        assert!(Arc::ptr_eq(&asc, &asc2));
    }

    #[test]
    fn plan_cache_is_lru_bounded_and_evicted_plans_keep_serving_open_sessions() {
        let service = QueryService::with_config(
            path_db(),
            ServiceConfig {
                plan_cache_capacity: 2,
                ..ServiceConfig::default()
            },
        );
        let path = QueryBuilder::path(2).build();
        // A session holds the plan that is about to be evicted.
        let id = service.open_session(&path, AnyKAlgorithm::Take2).unwrap();
        // Two more distinct plans (same query, different rankings) overflow
        // the 2-slot cache and evict the least recently prepared.
        service
            .prepare(&path, RankingFunction::SumDescending)
            .unwrap();
        service
            .prepare(&path, RankingFunction::BottleneckAscending)
            .unwrap();
        assert_eq!(service.prepared_count(), 2, "bounded");
        assert_eq!(service.metrics().plan_evictions, 1);
        // The open session still streams from the evicted plan (its Arc
        // keeps it alive) ...
        let page = service.next_page(id, 100).unwrap();
        assert_eq!(page.answers.len(), 3);
        // ... and re-preparing the evicted query recompiles, correctly.
        let m = service.metrics();
        let again = service
            .prepare(&path, RankingFunction::SumAscending)
            .unwrap();
        assert_eq!(service.metrics().plan_misses, m.plan_misses + 1);
        assert_eq!(again.top_k(AnyKAlgorithm::Take2, 1)[0].weight(), 3.0);
    }

    #[test]
    #[should_panic(expected = "already-shared")]
    fn over_rejects_an_unappliable_index_cache_bound() {
        let db = Arc::new(path_db());
        QueryService::over(
            db,
            ServiceConfig {
                index_cache_capacity: Some(4),
                ..ServiceConfig::default()
            },
        );
    }

    #[test]
    fn metrics_count_pages_and_answers() {
        let service = QueryService::new(path_db());
        let query = QueryBuilder::path(2).build();
        let id = service.open_session(&query, AnyKAlgorithm::Eager).unwrap();
        let mut buf = Vec::new();
        while !service.next_page_into(id, 1, &mut buf).unwrap() {}
        let m = service.metrics();
        assert_eq!(m.answers_served, 3);
        assert_eq!(m.pages_served, 4, "3 full pages + 1 short (empty) page");
        assert_eq!(m.sessions_opened, 1);
    }

    #[test]
    fn text_sessions_match_struct_sessions_and_share_the_plan() {
        let service = QueryService::new(path_db());
        let query = QueryBuilder::path(2).build();
        let by_struct = service.open_session(&query, DEFAULT_ALGORITHM).unwrap();
        // The same query as text, alpha-renamed: must hit the struct plan.
        let by_text = service
            .open_session_text("Q(a, b, c) :- R1(a, b), R2(b, c)")
            .unwrap();
        let a = service.next_page(by_struct, 100).unwrap();
        let b = service.next_page(by_text, 100).unwrap();
        assert_eq!(a, b, "text and struct sessions page identically");
        assert_eq!(service.prepared_count(), 1, "one shared plan entry");
        assert_eq!(service.metrics().plan_misses, 1);
        assert_eq!(service.metrics().plan_hits, 1);
    }

    #[test]
    fn text_sessions_honor_via_and_limit_without_fragmenting_the_cache() {
        let service = QueryService::new(path_db());
        let id = service
            .open_session_text("Q(x, y, z) :- R1(x, y), R2(y, z) via lazy limit 2")
            .unwrap();
        assert_eq!(
            service.session_status(id).unwrap().algorithm,
            AnyKAlgorithm::Lazy
        );
        let page = service.next_page(id, 100).unwrap();
        assert_eq!(page.answers.len(), 2, "limit 2 of 3 answers");
        assert!(page.done);
        // Same plan key as the unlimited request: no extra compilation.
        service
            .open_session_text("Q(x, y, z) :- R1(x, y), R2(y, z)")
            .unwrap();
        assert_eq!(service.metrics().plan_misses, 1);
        assert_eq!(service.metrics().plan_hits, 1);
    }

    #[test]
    fn text_sessions_with_predicates_filter_answers() {
        let service = QueryService::new(path_db());
        // Only the x = 2 path (2, 20) ⋈ (20, 6) survives.
        let id = service
            .open_session_text("Q(x, y, z) :- R1(x, y), R2(y, z), x = 2")
            .unwrap();
        let page = service.next_page(id, 100).unwrap();
        assert_eq!(page.answers.len(), 1);
        assert_eq!(page.answers[0].values(), &[2, 20, 6]);
        assert_eq!(page.answers[0].weight(), 5.0);
    }

    #[test]
    fn bad_text_is_a_typed_parse_error() {
        let service = QueryService::new(path_db());
        let err = service.open_session_text("Q(x :- R1(x, y)").unwrap_err();
        assert!(matches!(err, ServiceError::Parse(_)));
        assert!(err.to_string().contains("parse error"));
        // Valid syntax, unknown relation: an engine error, still typed.
        let err = service
            .open_session_text("Q(x, y) :- Nope(x, y)")
            .unwrap_err();
        assert!(matches!(err, ServiceError::Engine(_)));
    }
}
