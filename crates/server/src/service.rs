//! The query service: prepared-plan cache + sharded session registry +
//! lifecycle governance (admission control, deadlines, panic isolation).

use crate::clock::{Clock, MonotonicClock};
use crate::error::ServiceError;
use crate::governor::{Governor, GovernorConfig, SessionOutcome};
use crate::stats::{StatsSnapshot, STATS_VERSION};
use anyk_core::AnyKAlgorithm;
use anyk_engine::{
    Answer, AnswerCursor, AnswerDecoder, CancellationToken, EngineError, Page, PrepareOptions,
    PreparedQuery, RankingFunction, ShardedCursor, ShardedPreparedQuery,
};
use anyk_obs::{Event, EventKind, EventRing, LatencyHistogram, PlanObs, PlanRegistry};
use anyk_query::{ConjunctiveQuery, QuerySpec};
use anyk_storage::{Database, DeltaBatch, IndexCacheStats};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, TryLockError};

/// Identifies one open enumeration session. Ids are unique over the life of
/// a service and never reused, so a stale id can only miss (never alias a
/// newer session).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

impl SessionId {
    /// Fabricate an id for crate-internal tests; real ids only ever come
    /// from [`QueryService::open_session_spec`].
    #[cfg(test)]
    pub(crate) fn test_only(raw: u64) -> Self {
        SessionId(raw)
    }
}

/// Construction-time options for [`QueryService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Re-bound the database's index cache before sharing it (`None` keeps
    /// the database's current bound — the `ANYK_INDEX_CACHE_CAP` default).
    /// Only meaningful when the service still owns the database
    /// ([`QueryService::new`] / [`QueryService::with_config`]);
    /// [`QueryService::over`] rejects it, because an already-shared
    /// snapshot's cache cannot be re-bounded.
    pub index_cache_capacity: Option<usize>,
    /// Number of independent `RwLock` shards for the session registry.
    /// Session lookups hash across the shards, so concurrent page pulls on
    /// different sessions contend only 1-in-`session_shards` of the time
    /// even while other sessions are being opened or closed.
    pub session_shards: usize,
    /// Bound on the number of memoised prepared plans (clamped to ≥ 1).
    /// Prepared plans are much heavier than indexes — a cycle plan owns
    /// materialised bag databases — so a service facing ad-hoc queries
    /// must evict here too: least-recently-prepared plans are dropped
    /// first. Sessions already opened keep their (Arc'd) plan alive until
    /// they close; eviction only forces a recompile for *future* sessions.
    pub plan_cache_capacity: usize,
    /// Resource caps and deadlines; the default enforces nothing. See
    /// [`GovernorConfig`] and the crate-level tuning guide.
    pub governor: GovernorConfig,
    /// Time source for TTL/idle deadlines. `None` (the default) uses a
    /// process-monotonic clock; tests inject a
    /// [`ManualClock`](crate::ManualClock) to make expiry deterministic.
    pub clock: Option<Arc<dyn Clock>>,
    /// Events retained in each session's post-mortem ring
    /// ([`QueryService::session_trace`]): open, page pulls, shed pulls, and
    /// how the session ended, oldest evicted first. `0` disables the rings
    /// entirely (every push becomes a no-op).
    pub session_event_capacity: usize,
    /// Default shard count for new plans: when `Some(n)` with `n > 1`,
    /// sessions compile hash-partitioned plans
    /// ([`anyk_engine::ShardedPreparedQuery`]) whose per-shard preprocessing
    /// runs in parallel, and stream through a ranked k-way merge. A
    /// spec-level `shards N` clause overrides this per request. Queries the
    /// partitioner cannot cover (selection predicates, self-joins) silently
    /// fall back to the single-stream plan. `None` (the default) never
    /// shards unless a spec asks.
    pub shards: Option<usize>,
    /// Worker threads for each plan's bottom-up preprocessing phase. `None`
    /// (the default) falls back to the `ANYK_THREADS` environment variable
    /// (and from there to the machine's parallelism); sharded preparation
    /// divides this total across the shards compiling in parallel.
    pub threads: Option<usize>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            index_cache_capacity: None,
            session_shards: 8,
            plan_cache_capacity: 32,
            governor: GovernorConfig::default(),
            clock: None,
            session_event_capacity: 32,
            shards: None,
            threads: None,
        }
    }
}

/// A snapshot of the service's counters and gauges, taken **atomically**:
/// all fields come from one critical section, so derived invariants (e.g.
/// `sessions_opened == active_sessions + sessions_closed + sessions_expired
/// plus the cancelled and poisoned counts) hold exactly in every snapshot,
/// even under concurrent traffic. Counters increase monotonically over the
/// service's lifetime; gauges move both ways.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceMetrics {
    /// Sessions opened so far (admission-accepted; shed requests are not
    /// opens).
    pub sessions_opened: u64,
    /// Sessions explicitly closed while still active.
    pub sessions_closed: u64,
    /// Requests shed by admission control (session cap, page cap, or
    /// memory budget).
    pub sessions_shed: u64,
    /// Sessions ended by the TTL/idle reaper.
    pub sessions_expired: u64,
    /// Sessions ended by [`QueryService::cancel_session`] (or by a close
    /// racing an in-flight page pull).
    pub sessions_cancelled: u64,
    /// Sessions poisoned by a panicking page pull (isolated; see the crate
    /// docs).
    pub sessions_poisoned: u64,
    /// Pages served across all sessions.
    pub pages_served: u64,
    /// Answers served across all sessions.
    pub answers_served: u64,
    /// Prepared-plan cache hits (a session opened without recompiling).
    pub plan_hits: u64,
    /// Prepared-plan cache misses (compile + preprocessing ran).
    pub plan_misses: u64,
    /// Prepared plans evicted by the plan-cache LRU bound.
    pub plan_evictions: u64,
    /// Gauge: sessions currently active (opened, not yet ended).
    pub active_sessions: u64,
    /// Gauge: page pulls executing at this instant.
    pub pages_in_flight: u64,
    /// Gauge: MEM(k) units currently charged across all live sessions
    /// (see [`GovernorConfig::memory_budget_units`]).
    pub mem_resident_units: u64,
    /// High-water mark of `mem_resident_units` over the service's lifetime.
    pub peak_mem_resident_units: u64,
    /// TCP connections accepted and handed to a transport worker (zero when
    /// the service is driven purely in-process; see [`crate::net`]).
    pub connections_accepted: u64,
    /// TCP connections shed at accept time by the transport's connection cap
    /// (a retry-after status frame, written before any handshake work).
    pub connections_shed_at_accept: u64,
    /// Socket reads that hit the per-read or whole-frame deadline; each one
    /// dropped its connection.
    pub net_read_timeouts: u64,
    /// Response writes that hit the write deadline; each one dropped its
    /// connection.
    pub net_write_timeouts: u64,
    /// Connections retired by a graceful transport shutdown after their
    /// in-flight work drained.
    pub connections_drained_on_shutdown: u64,
    /// Gauge: generation id of the snapshot serving new sessions.
    pub current_generation: u64,
    /// Gauge: snapshot generations currently alive — the serving one plus
    /// any retired generations kept alive by sessions still pinned to them.
    pub active_generations: u64,
    /// Gauge: tuples resident across all live snapshot generations.
    pub snapshot_resident_units: u64,
    /// Retired generations fully released: rotated away *and* their last
    /// pinned session has ended, so their residency dropped to zero.
    pub snapshots_retired: u64,
    /// Wholesale snapshot replacements ([`QueryService::rotate`]).
    pub generations_rotated: u64,
    /// Delta batches applied ([`QueryService::ingest`]).
    pub deltas_ingested: u64,
    /// Cached plans carried across an ingestion by delta refresh — the
    /// bottom-up DP re-swept only its dirty cone instead of recompiling.
    pub plans_refreshed: u64,
    /// Cached plans carried across an ingestion by full recompilation
    /// (selection-pushdown and cycle plans cannot be delta-refreshed).
    pub plans_recompiled: u64,
    /// Sessions opened over a sharded plan (a subset of `sessions_opened`;
    /// see [`ServiceConfig::shards`]).
    pub sharded_sessions_opened: u64,
    /// Per-shard plans compiled by sharded preparation (a 4-shard prepare
    /// adds 4). Requests that fell back to a single-stream plan add nothing.
    pub shards_prepared: u64,
}

impl ServiceMetrics {
    /// Number of entries [`ServiceMetrics::fields`] yields — the implicit
    /// schema of stats wire frames (guarded by
    /// [`crate::stats::STATS_VERSION`]: adding a field bumps the version).
    pub const FIELD_COUNT: usize = 30;

    /// Every counter and gauge as `(name, value)`, in declaration order.
    /// This is the single source of the stats wire layout and the
    /// Prometheus rendering, so the three views can never skew.
    pub fn fields(&self) -> [(&'static str, u64); Self::FIELD_COUNT] {
        [
            ("sessions_opened", self.sessions_opened),
            ("sessions_closed", self.sessions_closed),
            ("sessions_shed", self.sessions_shed),
            ("sessions_expired", self.sessions_expired),
            ("sessions_cancelled", self.sessions_cancelled),
            ("sessions_poisoned", self.sessions_poisoned),
            ("pages_served", self.pages_served),
            ("answers_served", self.answers_served),
            ("plan_hits", self.plan_hits),
            ("plan_misses", self.plan_misses),
            ("plan_evictions", self.plan_evictions),
            ("active_sessions", self.active_sessions),
            ("pages_in_flight", self.pages_in_flight),
            ("mem_resident_units", self.mem_resident_units),
            ("peak_mem_resident_units", self.peak_mem_resident_units),
            ("connections_accepted", self.connections_accepted),
            (
                "connections_shed_at_accept",
                self.connections_shed_at_accept,
            ),
            ("net_read_timeouts", self.net_read_timeouts),
            ("net_write_timeouts", self.net_write_timeouts),
            (
                "connections_drained_on_shutdown",
                self.connections_drained_on_shutdown,
            ),
            ("current_generation", self.current_generation),
            ("active_generations", self.active_generations),
            ("snapshot_resident_units", self.snapshot_resident_units),
            ("snapshots_retired", self.snapshots_retired),
            ("generations_rotated", self.generations_rotated),
            ("deltas_ingested", self.deltas_ingested),
            ("plans_refreshed", self.plans_refreshed),
            ("plans_recompiled", self.plans_recompiled),
            ("sharded_sessions_opened", self.sharded_sessions_opened),
            ("shards_prepared", self.shards_prepared),
        ]
    }

    /// Rebuild a snapshot from [`ServiceMetrics::fields`]-ordered values
    /// (the wire decoder's inverse of `fields`).
    pub fn from_values(values: &[u64; Self::FIELD_COUNT]) -> Self {
        ServiceMetrics {
            sessions_opened: values[0],
            sessions_closed: values[1],
            sessions_shed: values[2],
            sessions_expired: values[3],
            sessions_cancelled: values[4],
            sessions_poisoned: values[5],
            pages_served: values[6],
            answers_served: values[7],
            plan_hits: values[8],
            plan_misses: values[9],
            plan_evictions: values[10],
            active_sessions: values[11],
            pages_in_flight: values[12],
            mem_resident_units: values[13],
            peak_mem_resident_units: values[14],
            connections_accepted: values[15],
            connections_shed_at_accept: values[16],
            net_read_timeouts: values[17],
            net_write_timeouts: values[18],
            connections_drained_on_shutdown: values[19],
            current_generation: values[20],
            active_generations: values[21],
            snapshot_resident_units: values[22],
            snapshots_retired: values[23],
            generations_rotated: values[24],
            deltas_ingested: values[25],
            plans_refreshed: values[26],
            plans_recompiled: values[27],
            sharded_sessions_opened: values[28],
            shards_prepared: values[29],
        }
    }
}

/// One served database generation: the sealed snapshot plus its governor
/// accounting. Sessions pin the `Arc<Snapshot>` they were opened against,
/// so a rotated-away generation stays resident exactly as long as a session
/// still streams from it; when the last pin drops, this wrapper's `Drop`
/// returns the generation's residency to the governor.
pub(crate) struct Snapshot {
    generation: u64,
    db: Arc<Database>,
    /// Resident tuples charged against `snapshot_resident_units` for this
    /// generation's lifetime.
    units: u64,
    gov: Arc<Governor>,
}

impl Snapshot {
    /// Wrap a sealed database as the next served generation, charging its
    /// residency to the governor.
    fn install(db: Arc<Database>, gov: &Arc<Governor>) -> Arc<Snapshot> {
        debug_assert!(db.is_sealed(), "served snapshots are always sealed");
        let units: u64 = db.relations().map(|r| r.len() as u64).sum();
        let generation = db.generation();
        gov.install_snapshot(generation, units);
        Arc::new(Snapshot {
            generation,
            db,
            units,
            gov: Arc::clone(gov),
        })
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        self.gov.retire_snapshot(self.units);
    }
}

/// The lifecycle state of a session; see the state diagram in the
/// [crate docs](crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Open with answers (potentially) remaining.
    Active,
    /// The stream ended normally (exhausted or hit its `limit`); the id
    /// stays valid for status/close until explicitly closed.
    Drained,
    /// Reaped by the TTL/idle deadline; enumeration state is gone.
    Expired,
    /// Cancelled; enumeration state is gone.
    Cancelled,
    /// A page pull panicked; the session was isolated and its state
    /// discarded.
    Poisoned,
}

/// Progress report for one session; see [`QueryService::session_status`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionStatus {
    /// Answers served so far across all of the session's pages.
    pub served: usize,
    /// True once the session can serve no further answers (for any reason —
    /// drained, expired, cancelled, or poisoned).
    pub done: bool,
    /// The any-k algorithm driving the session.
    pub algorithm: AnyKAlgorithm,
    /// Where the session is in its lifecycle.
    pub state: SessionState,
    /// The snapshot generation the session is pinned to. Rotation never
    /// moves an open session: it streams its pinned generation to the end.
    pub generation: u64,
}

/// The algorithm driving a session when the request does not pin one (the
/// paper's overall-best anyK-part variant).
pub const DEFAULT_ALGORITHM: AnyKAlgorithm = AnyKAlgorithm::Take2;

/// Key of the prepared-plan cache: the snapshot generation the plan was
/// compiled (or refreshed) over, plus [`QuerySpec::plan_key`] — the
/// canonical spec text (variables alpha-renamed, predicates sorted) with
/// the execution attributes (algorithm, limit) stripped. Alpha-equivalent
/// requests — text or struct, `R(x,y),S(y,z)` or `R(a,b),S(b,c)` — share
/// one compiled plan; the generation half guarantees a rotated snapshot can
/// never serve a plan compiled over different data.
type PlanKey = (u64, String);

/// A memoised compiled plan: the ordinary single-stream form, or the
/// hash-partitioned sharded form ([`ShardedPreparedQuery`]) when the
/// request — or [`ServiceConfig::shards`] — asked for more than one shard.
#[derive(Clone)]
enum PlanHandle {
    Single(Arc<PreparedQuery>),
    Sharded(Arc<ShardedPreparedQuery>),
}

/// One memoised plan plus its recency tick (atomic so cache hits can
/// refresh recency under the read lock; used for LRU eviction).
struct PlanEntry {
    plan: PlanHandle,
    /// The plan's spec, execution attributes stripped — kept so ingestion
    /// can recompile plans that cannot be delta-refreshed.
    spec: QuerySpec,
    /// The shard count the entry was prepared under (1 = unsharded); kept
    /// so ingestion recompiles to the same shape.
    shards: usize,
    last_used: AtomicU64,
}

/// A session's resumable iterator: one cursor over a single-stream plan, or
/// the ranked k-way merge over a sharded plan. Every forwarded method keeps
/// the [`AnswerCursor`] contract — the merged stream is bit-identical to the
/// unsharded stream — so the governance code above is shape-blind.
enum SessionCursor {
    Single(AnswerCursor),
    Sharded(ShardedCursor),
}

impl SessionCursor {
    fn served(&self) -> usize {
        match self {
            SessionCursor::Single(c) => c.served(),
            SessionCursor::Sharded(c) => c.served(),
        }
    }

    fn is_done(&self) -> bool {
        match self {
            SessionCursor::Single(c) => c.is_done(),
            SessionCursor::Sharded(c) => c.is_done(),
        }
    }

    fn algorithm(&self) -> AnyKAlgorithm {
        match self {
            SessionCursor::Single(c) => c.algorithm(),
            SessionCursor::Sharded(c) => c.algorithm(),
        }
    }

    fn cancel_token(&self) -> &CancellationToken {
        match self {
            SessionCursor::Single(c) => c.cancel_token(),
            SessionCursor::Sharded(c) => c.cancel_token(),
        }
    }

    fn is_cancelled(&self) -> bool {
        match self {
            SessionCursor::Single(c) => c.is_cancelled(),
            SessionCursor::Sharded(c) => c.is_cancelled(),
        }
    }

    /// Live MEM(k) footprint; a sharded cursor reports the sum over its
    /// shard streams, so one governed budget covers both shapes.
    fn memory_stats(&self) -> Option<anyk_core::MemoryStats> {
        match self {
            SessionCursor::Single(c) => c.memory_stats(),
            SessionCursor::Sharded(c) => c.memory_stats(),
        }
    }

    fn enable_recording(&mut self, clock: Arc<dyn Clock>, plan: Option<Arc<PlanObs>>) {
        match self {
            SessionCursor::Single(c) => c.enable_recording(clock, plan),
            SessionCursor::Sharded(c) => c.enable_recording(clock, plan),
        }
    }

    fn next_page_into(&mut self, page_size: usize, out: &mut Vec<Answer>) -> bool {
        match self {
            SessionCursor::Single(c) => c.next_page_into(page_size, out),
            SessionCursor::Sharded(c) => c.next_page_into(page_size, out),
        }
    }

    fn decoder(&self) -> AnswerDecoder {
        match self {
            SessionCursor::Single(c) => c.prepared().decoder(),
            SessionCursor::Sharded(c) => c.prepared().decoder(),
        }
    }
}

/// A live session: the cursor plus its governance bookkeeping.
struct ActiveSession {
    cursor: SessionCursor,
    /// The generation the session streams from. The `Arc` is the pin: a
    /// retired generation's accounting is released by its last pin dropping.
    snapshot: Arc<Snapshot>,
    /// MEM(k) units currently charged against the governor's budget for
    /// this session (re-charged to the live footprint after every page).
    charged_units: u64,
    opened_nanos: u64,
    last_used_nanos: u64,
    /// Bounded post-mortem trace of lifecycle events
    /// ([`ServiceConfig::session_event_capacity`]); migrates into the
    /// tombstone when the session ends.
    ring: EventRing,
    /// The plan-wide observation block page latencies are recorded into
    /// (the cursor's delay recorder flushes into the same block).
    obs: Arc<PlanObs>,
}

/// How a session stopped being active (the tombstone kept in its slot so
/// later calls get a *typed* error instead of `UnknownSession`).
#[derive(Debug, Clone, Copy)]
enum SessionEnd {
    Expired,
    Cancelled,
    Poisoned,
}

impl SessionEnd {
    fn error(self, id: SessionId) -> ServiceError {
        match self {
            SessionEnd::Expired => ServiceError::SessionExpired(id),
            SessionEnd::Cancelled => ServiceError::SessionCancelled(id),
            SessionEnd::Poisoned => ServiceError::SessionPoisoned(id),
        }
    }

    fn state(self) -> SessionState {
        match self {
            SessionEnd::Expired => SessionState::Expired,
            SessionEnd::Cancelled => SessionState::Cancelled,
            SessionEnd::Poisoned => SessionState::Poisoned,
        }
    }

    fn event_kind(self) -> EventKind {
        match self {
            SessionEnd::Expired => EventKind::Expire,
            SessionEnd::Cancelled => EventKind::Cancel,
            SessionEnd::Poisoned => EventKind::Poison,
        }
    }
}

enum SlotState {
    Active(ActiveSession),
    /// The cursor (and its enumeration memory, and its snapshot pin) is
    /// gone; only the facts a status call needs — plus the event ring for
    /// post-mortems — survive.
    Ended {
        end: SessionEnd,
        served: usize,
        algorithm: AnyKAlgorithm,
        generation: u64,
        ring: EventRing,
    },
}

struct Slot {
    state: SlotState,
}

impl Slot {
    /// Transition Active → Ended, returning the active half (whose drop —
    /// in the caller, outside any registry lock — frees the cursor and
    /// releases the snapshot pin). The event ring migrates into the
    /// tombstone, stamped with the terminal event. Panics if the slot
    /// already ended; callers check first.
    fn end(&mut self, end: SessionEnd, at_nanos: u64) -> ActiveSession {
        let (served, algorithm, generation, mut ring) = match &mut self.state {
            SlotState::Active(a) => (
                a.cursor.served(),
                a.cursor.algorithm(),
                a.snapshot.generation,
                std::mem::replace(&mut a.ring, EventRing::new(0)),
            ),
            SlotState::Ended { .. } => unreachable!("slot ended twice"),
        };
        ring.record(at_nanos, end.event_kind(), served as u64);
        let prev = std::mem::replace(
            &mut self.state,
            SlotState::Ended {
                end,
                served,
                algorithm,
                generation,
                ring,
            },
        );
        match prev {
            SlotState::Active(a) => a,
            SlotState::Ended { .. } => unreachable!(),
        }
    }
}

/// One registry slot. The cancellation token lives *outside* the slot
/// mutex so a cancel (or close) can trip it while a page pull is in
/// flight — the pull observes it between answers and stops within one
/// any-k delay.
struct SessionSlot {
    cancel: anyk_engine::CancellationToken,
    inner: Mutex<Slot>,
}

type SessionShard = RwLock<HashMap<u64, Arc<SessionSlot>>>;

/// A long-lived query service over one shared, read-mostly [`Database`]
/// snapshot. See the [crate docs](crate) for the full model and an example.
///
/// All methods take `&self`: wrap the service in an `Arc` (or hand out
/// `&QueryService` borrows) and drive it from as many threads as needed.
/// Per-session state is behind a per-session mutex, so concurrent pulls on
/// *different* sessions run in parallel while concurrent pulls on the *same*
/// session serialise (each page is still an atomic, contiguous chunk of the
/// session's ranked stream).
pub struct QueryService {
    /// The snapshot serving *new* sessions. Swapped wholesale by
    /// [`QueryService::ingest`]/[`QueryService::rotate`]; readers clone the
    /// `Arc` and release the lock immediately, so rotation never blocks
    /// behind a long-running request.
    current: RwLock<Arc<Snapshot>>,
    /// Serialises rotation and ingestion: generations advance one at a
    /// time, and plan migration for generation *g* finishes before *g + 1*
    /// can begin.
    rotation: Mutex<()>,
    plans: RwLock<HashMap<PlanKey, PlanEntry>>,
    /// Single-flight guards for plan compilation: one mutex per key being
    /// compiled right now. A stampede of requests for the same new plan
    /// elects one compiler; the rest block on its flight mutex and then
    /// find the plan in the cache — the compile runs once, not N times.
    plan_flights: Mutex<HashMap<PlanKey, Arc<Mutex<()>>>>,
    plan_cache_capacity: usize,
    plan_clock: AtomicU64,
    session_shards: Vec<SessionShard>,
    next_session: AtomicU64,
    governor: Arc<Governor>,
    clock: Arc<dyn Clock>,
    /// Per-plan TTF/delay/page-latency distributions, keyed by canonical
    /// plan key (the same key the plan cache uses, generation stripped).
    plan_obs: PlanRegistry,
    /// Service-wide page latency distribution across all plans.
    page_hist: LatencyHistogram,
    session_event_capacity: usize,
    /// Default shard count for new plans ([`ServiceConfig::shards`]).
    default_shards: Option<usize>,
    /// Bottom-up preprocessing thread budget ([`ServiceConfig::threads`]).
    prepare_threads: Option<usize>,
}

/// A poisoned lock only means a panic elsewhere; the maps/sessions are
/// always structurally consistent. (Page-pull panics are additionally
/// caught *inside* the slot mutex, so in practice these locks never poison
/// — this is belt and braces.)
macro_rules! lock {
    ($e:expr) => {
        $e.unwrap_or_else(|poisoned| poisoned.into_inner())
    };
}

/// Run `f` with panics converted to [`ServiceError::Panicked`] — the
/// containment boundary that keeps one request's panic from killing the
/// process or poisoning shared state.
fn catch_panic<R>(context: &str, f: impl FnOnce() -> R) -> Result<R, ServiceError> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_owned())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_owned());
        ServiceError::Panicked {
            context: format!("{context}: {msg}"),
        }
    })
}

impl QueryService {
    /// Build a service owning `db`, with default [`ServiceConfig`].
    pub fn new(db: Database) -> Self {
        Self::with_config(db, ServiceConfig::default())
    }

    /// Build a service owning `db` with explicit options.
    pub fn with_config(mut db: Database, mut config: ServiceConfig) -> Self {
        if let Some(cap) = config.index_cache_capacity.take() {
            db.set_index_cache_capacity(cap);
        }
        Self::over(Arc::new(db), config)
    }

    /// Build a service over an already-shared snapshot (e.g. several
    /// services — future shards — over one database).
    ///
    /// The snapshot is **sealed** here: once a database is served, any
    /// remaining mutable handle that tries [`Database::add`] panics instead
    /// of swapping a relation under live sessions. New data enters through
    /// [`QueryService::ingest`] (delta batches) or [`QueryService::rotate`]
    /// (wholesale replacement), both of which install a *new* sealed
    /// generation and leave this one untouched.
    ///
    /// # Panics
    /// Panics if `config.index_cache_capacity` is set: a shared snapshot's
    /// cache cannot be re-bounded, and silently dropping a configured
    /// memory bound would be worse than refusing it. Bound the cache before
    /// sharing (via [`Database::set_index_cache_capacity`] or
    /// [`QueryService::with_config`]).
    pub fn over(db: Arc<Database>, config: ServiceConfig) -> Self {
        assert!(
            config.index_cache_capacity.is_none(),
            "index_cache_capacity cannot be applied to an already-shared \
             database; call Database::set_index_cache_capacity before \
             wrapping it in an Arc (or use QueryService::with_config)"
        );
        let shards = config.session_shards.max(1);
        let governor = Arc::new(Governor::new(config.governor));
        db.seal();
        let current = Snapshot::install(db, &governor);
        QueryService {
            current: RwLock::new(current),
            rotation: Mutex::new(()),
            plans: RwLock::new(HashMap::new()),
            plan_flights: Mutex::new(HashMap::new()),
            plan_cache_capacity: config.plan_cache_capacity.max(1),
            plan_clock: AtomicU64::new(0),
            session_shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            next_session: AtomicU64::new(0),
            governor,
            clock: config
                .clock
                .unwrap_or_else(|| Arc::new(MonotonicClock::new())),
            plan_obs: PlanRegistry::new(),
            page_hist: LatencyHistogram::new(),
            session_event_capacity: config.session_event_capacity,
            default_shards: config.shards,
            prepare_threads: config.threads,
        }
    }

    /// The database snapshot currently serving new sessions (sealed;
    /// rotation installs a new snapshot rather than mutating this one).
    pub fn database(&self) -> Arc<Database> {
        Arc::clone(&self.current_snapshot().db)
    }

    /// The generation id of the snapshot currently serving new sessions.
    pub fn current_generation(&self) -> u64 {
        self.current_snapshot().generation
    }

    fn current_snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&lock!(self.current.read()))
    }

    /// Compile `query` under `ranking`, or return the memoised plan if an
    /// equivalent query was prepared before. See
    /// [`QueryService::prepare_spec`], which this delegates to — struct and
    /// text requests share one cache, keyed by canonical spec text.
    pub fn prepare(
        &self,
        query: &ConjunctiveQuery,
        ranking: RankingFunction,
    ) -> Result<Arc<PreparedQuery>, ServiceError> {
        self.prepare_spec(&QuerySpec::from_query(query, ranking))
    }

    /// Parse `text` in the query language and compile it (or return the
    /// memoised plan); see [`QueryService::prepare_spec`].
    pub fn prepare_text(&self, text: &str) -> Result<Arc<PreparedQuery>, ServiceError> {
        self.prepare_spec(&QuerySpec::parse(text)?)
    }

    /// Cache lookup half of [`QueryService::prepare_spec`]: bump the LRU
    /// stamp and the hit counter iff `key` is resident.
    fn cached_plan(&self, key: &PlanKey) -> Option<PlanHandle> {
        let plans = lock!(self.plans.read());
        let entry = plans.get(key)?;
        entry.last_used.store(
            self.plan_clock.fetch_add(1, Ordering::Relaxed) + 1,
            Ordering::Relaxed,
        );
        self.governor.with(|s| s.plan_hits += 1);
        Some(entry.plan.clone())
    }

    /// The shard count a request resolves to: the spec's `shards` clause,
    /// else [`ServiceConfig::shards`], else 1 (unsharded).
    fn effective_shards(&self, spec: &QuerySpec) -> usize {
        spec.shards.or(self.default_shards).unwrap_or(1).max(1)
    }

    /// The plan-cache key text for `spec` at `shards`: sharded plans get a
    /// `#shards=N` suffix so the same query sharded and unsharded are
    /// distinct cache entries (and distinct per-plan distributions).
    fn keyed(spec: &QuerySpec, shards: usize) -> String {
        let base = spec.plan_key();
        if shards > 1 {
            format!("{base}#shards={shards}")
        } else {
            base
        }
    }

    /// Compile `spec` (execution attributes already stripped) into a plan
    /// handle: hash-partitioned with per-shard parallel preprocessing when
    /// `shards > 1`, single-stream otherwise. Always compiled with delta
    /// support so ingestion can refresh instead of recompiling. Queries the
    /// partitioner cannot cover — selection predicates, self-joins — fall
    /// back to the single-stream plan rather than failing the request.
    fn compile_handle(
        &self,
        db: &Arc<Database>,
        spec: &QuerySpec,
        shards: usize,
    ) -> Result<PlanHandle, EngineError> {
        let options = PrepareOptions {
            retain_delta: true,
            threads: self.prepare_threads,
        };
        if shards > 1 {
            match ShardedPreparedQuery::from_spec(Arc::clone(db), spec, shards, options) {
                Ok(p) => {
                    self.governor
                        .with(|s| s.shards_prepared += p.shard_count() as u64);
                    return Ok(PlanHandle::Sharded(Arc::new(p)));
                }
                Err(EngineError::ShardingUnsupported(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(PlanHandle::Single(Arc::new(PreparedQuery::from_spec_opts(
            Arc::clone(db),
            spec,
            options,
        )?)))
    }

    /// Compile `spec` — selection predicates pushed down to filtered
    /// relation copies — or return the memoised plan if a request with the
    /// same [`QuerySpec::plan_key`] was prepared before over the *current
    /// generation* (the spec's `algorithm` and `limit` are per-session
    /// attributes and do not fragment the cache; the generation half of the
    /// key means a rotated snapshot can never serve a stale plan).
    /// Compilation runs *outside* the plan-cache lock, so preparing
    /// distinct queries proceeds in parallel; a stampede on the *same* key
    /// is single-flighted — one thread compiles (one cache miss), the rest
    /// wait on its flight lock and take the cached plan (a hit each). The
    /// cache is LRU-bounded ([`ServiceConfig::plan_cache_capacity`]); an
    /// evicted plan stays alive for the sessions already holding it and is
    /// simply recompiled if the query comes back. A panic during
    /// compilation (e.g. an injected fault) is contained: it surfaces as
    /// [`ServiceError::Panicked`], nothing is cached, and waiting threads
    /// retry the compile themselves.
    pub fn prepare_spec(&self, spec: &QuerySpec) -> Result<Arc<PreparedQuery>, ServiceError> {
        match self.prepare_on(&self.current_snapshot(), spec, 1)? {
            PlanHandle::Single(p) => Ok(p),
            PlanHandle::Sharded(_) => unreachable!("shards == 1 never compiles sharded"),
        }
    }

    /// [`QueryService::prepare_spec`] against an explicit snapshot — the
    /// open path captures the snapshot once so the plan, the session's pin,
    /// and the cache key all agree on the generation even if a rotation
    /// lands mid-open. `shards > 1` compiles (and caches) the
    /// hash-partitioned form under a `#shards=N`-suffixed key.
    fn prepare_on(
        &self,
        snap: &Arc<Snapshot>,
        spec: &QuerySpec,
        shards: usize,
    ) -> Result<PlanHandle, ServiceError> {
        let key: PlanKey = (snap.generation, Self::keyed(spec, shards));
        if let Some(plan) = self.cached_plan(&key) {
            return Ok(plan);
        }
        let flight = Arc::clone(
            lock!(self.plan_flights.lock())
                .entry(key.clone())
                .or_default(),
        );
        let _compiling = lock!(flight.lock());
        // Re-check under the flight lock: if another thread won the race,
        // its plan is in the cache by the time its flight lock releases.
        if let Some(plan) = self.cached_plan(&key) {
            return Ok(plan);
        }
        self.governor.with(|s| s.plan_misses += 1);
        // Compile with delta support so ingestion can carry the plan to the
        // next generation by patching its dirty cone instead of recompiling.
        let compiled = catch_panic("plan preparation", || {
            self.compile_handle(&snap.db, &spec.without_execution_attrs(), shards)
        })
        .and_then(|r| r.map_err(ServiceError::from));
        let prepared = match compiled {
            Ok(p) => p,
            Err(e) => {
                // Failed flight: retire it so late arrivals retry the
                // compile themselves instead of waiting on a dead lock.
                lock!(self.plan_flights.lock()).remove(&key);
                return Err(e);
            }
        };
        let out;
        {
            let mut plans = lock!(self.plans.write());
            let tick = self.plan_clock.fetch_add(1, Ordering::Relaxed) + 1;
            let entry = plans.entry(key.clone()).or_insert_with(|| PlanEntry {
                plan: prepared,
                spec: spec.without_execution_attrs(),
                shards,
                last_used: AtomicU64::new(0),
            });
            *entry.last_used.get_mut() = tick;
            out = entry.plan.clone();
            while plans.len() > self.plan_cache_capacity {
                let victim = plans
                    .iter()
                    .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                    .map(|(k, _)| k.clone())
                    .expect("non-empty plan cache");
                plans.remove(&victim);
                self.governor.with(|s| s.plan_evictions += 1);
            }
        }
        // Retire the flight only now that the plan is visible in the cache:
        // a late arrival either joins this flight (and re-checks the cache
        // once the lock releases) or misses the flight map entirely and
        // finds the cached plan directly.
        lock!(self.plan_flights.lock()).remove(&key);
        Ok(out)
    }

    /// Apply `batch` to the current snapshot and serve the result as the
    /// next generation. Returns the new generation id.
    ///
    /// The old snapshot is untouched: sessions pinned to it keep streaming
    /// bit-identical ranked answers to the end, and its residency is
    /// released when the last pinned session ends. Cached plans are carried
    /// forward — delta-refreshable plans are patched (the bottom-up DP
    /// re-sweeps only the dirty cone of the edits, a small fraction of full
    /// compile + preprocessing), the rest (selection-pushdown, cycles) are
    /// recompiled over the new snapshot. Either way the migrated plan is
    /// equivalent to a from-scratch rebuild: every ranked stream drawn from
    /// it is bit-identical to one compiled fresh over the new data.
    ///
    /// A rejected batch ([`ServiceError::Delta`]: unknown relation, arity
    /// mismatch, delete out of range) changes nothing — validation runs
    /// before any snapshot work.
    pub fn ingest(&self, batch: &DeltaBatch) -> Result<u64, ServiceError> {
        catch_panic("delta ingestion", || {
            let _rotating = lock!(self.rotation.lock());
            let _span = anyk_obs::phase::span(anyk_obs::Phase::Rotation);
            let old = self.current_snapshot();
            let new_db = old.db.apply_delta(batch)?;
            new_db.seal();
            let new_db = Arc::new(new_db);
            let generation = new_db.generation();
            self.migrate_plans(old.generation, &new_db, generation, batch);
            let snapshot = Snapshot::install(Arc::clone(&new_db), &self.governor);
            self.governor.with(|s| s.deltas_ingested += 1);
            *lock!(self.current.write()) = snapshot;
            Ok(generation)
        })?
    }

    /// Replace the served database wholesale with `db`, the next
    /// generation (sealed here; its generation id is assigned by the
    /// service). Existing sessions keep streaming their pinned generation;
    /// new sessions see only `db`. Unlike [`QueryService::ingest`], cached
    /// plans cannot be carried — the new data bears no known relationship
    /// to the old — so the plan cache starts cold. Returns the new
    /// generation id.
    pub fn rotate(&self, mut db: Database) -> u64 {
        let _rotating = lock!(self.rotation.lock());
        let _span = anyk_obs::phase::span(anyk_obs::Phase::Rotation);
        let old = self.current_snapshot();
        let generation = old.generation + 1;
        db.set_generation(generation);
        db.seal();
        lock!(self.plans.write()).clear();
        let snapshot = Snapshot::install(Arc::new(db), &self.governor);
        self.governor.with(|s| s.generations_rotated += 1);
        *lock!(self.current.write()) = snapshot;
        generation
    }

    /// Carry the plan cache across an ingestion, re-keying every entry from
    /// `old_generation` to `generation`. Refresh where the plan supports
    /// it, recompile where it does not; a plan that fails either way (or a
    /// stale entry from an even older generation, unreachable by lookups)
    /// is dropped and simply recompiled on demand if its query returns.
    fn migrate_plans(
        &self,
        old_generation: u64,
        new_db: &Arc<Database>,
        generation: u64,
        batch: &DeltaBatch,
    ) {
        let entries: Vec<(PlanKey, PlanEntry)> = lock!(self.plans.write()).drain().collect();
        let mut migrated = Vec::with_capacity(entries.len());
        for ((entry_generation, key), entry) in entries {
            if entry_generation != old_generation {
                continue;
            }
            // Refresh in the entry's own shape: a sharded plan splits the
            // batch by the shard hash and patches each shard's dirty cone.
            let refreshed: Option<PlanHandle> = match &entry.plan {
                PlanHandle::Single(p) if p.supports_refresh() => {
                    catch_panic("plan refresh", || p.refresh(Arc::clone(new_db), batch))
                        .ok()
                        .and_then(Result::ok)
                        .map(|p| PlanHandle::Single(Arc::new(p)))
                }
                PlanHandle::Sharded(p) if p.supports_refresh() => {
                    catch_panic("plan refresh", || p.refresh(Arc::clone(new_db), batch))
                        .ok()
                        .and_then(Result::ok)
                        .map(|p| PlanHandle::Sharded(Arc::new(p)))
                }
                _ => None,
            };
            let plan = match refreshed {
                Some(p) => {
                    self.governor.with(|s| s.plans_refreshed += 1);
                    p
                }
                None => {
                    let recompiled = catch_panic("plan recompile", || {
                        self.compile_handle(new_db, &entry.spec, entry.shards)
                    });
                    match recompiled {
                        Ok(Ok(p)) => {
                            self.governor.with(|s| s.plans_recompiled += 1);
                            p
                        }
                        _ => continue,
                    }
                }
            };
            migrated.push((
                (generation, key),
                PlanEntry {
                    plan,
                    spec: entry.spec,
                    shards: entry.shards,
                    last_used: entry.last_used,
                },
            ));
        }
        lock!(self.plans.write()).extend(migrated);
    }

    /// Open a session over `query` with the default ranking
    /// ([`RankingFunction::SumAscending`]).
    pub fn open_session(
        &self,
        query: &ConjunctiveQuery,
        algorithm: AnyKAlgorithm,
    ) -> Result<SessionId, ServiceError> {
        self.open_session_with(query, RankingFunction::SumAscending, algorithm)
    }

    /// Open a session over `query` under an explicit ranking.
    pub fn open_session_with(
        &self,
        query: &ConjunctiveQuery,
        ranking: RankingFunction,
        algorithm: AnyKAlgorithm,
    ) -> Result<SessionId, ServiceError> {
        catch_panic("session open", || {
            self.admit_open()?;
            let snap = self.current_snapshot();
            let spec = QuerySpec::from_query(query, ranking);
            let shards = self.effective_shards(&spec);
            let prepared = self.prepare_on(&snap, &spec, shards)?;
            self.install_session(snap, &prepared, algorithm, None, Self::keyed(&spec, shards))
        })?
    }

    /// Open a session straight from query-language text — the one entry
    /// point from a string to ranked pages:
    ///
    /// ```text
    /// Q(x, z) :- R(x, y), S(y, z), y = 7 rank by sum limit 1000
    /// ```
    ///
    /// The plan comes from the shared cache (keyed by canonical spec text,
    /// so alpha-renamed variants and struct-built equivalents all hit the
    /// same entry); the spec's `via` algorithm (default
    /// [`DEFAULT_ALGORITHM`]) and `limit` apply to this session only.
    pub fn open_session_text(&self, text: &str) -> Result<SessionId, ServiceError> {
        self.open_session_spec(&QuerySpec::parse(text)?)
    }

    /// Open a session over an already-parsed [`QuerySpec`]; see
    /// [`QueryService::open_session_text`].
    pub fn open_session_spec(&self, spec: &QuerySpec) -> Result<SessionId, ServiceError> {
        catch_panic("session open", || {
            self.admit_open()?;
            let snap = self.current_snapshot();
            let shards = self.effective_shards(spec);
            let prepared = self.prepare_on(&snap, spec, shards)?;
            let algorithm = spec.algorithm.unwrap_or(DEFAULT_ALGORITHM);
            self.install_session(
                snap,
                &prepared,
                algorithm,
                spec.limit,
                Self::keyed(spec, shards),
            )
        })?
    }

    /// Open a session over an explicitly prepared plan (e.g. one prepared
    /// ahead of a traffic spike, or obtained from [`QueryService::prepare`]).
    /// Subject to admission control like every other open. The session is
    /// accounted against the *current* generation; the plan itself keeps
    /// whatever snapshot it was compiled over alive regardless.
    pub fn open_prepared(
        &self,
        prepared: &Arc<PreparedQuery>,
        algorithm: AnyKAlgorithm,
    ) -> Result<SessionId, ServiceError> {
        catch_panic("session open", || {
            self.admit_open()?;
            // The ahead-of-time path skipped the spec; rebuild the canonical
            // key so its sessions share a distribution with text/struct
            // opens of the same query.
            let key = QuerySpec::from_query(prepared.query(), prepared.ranking()).plan_key();
            self.install_session(
                self.current_snapshot(),
                &PlanHandle::Single(Arc::clone(prepared)),
                algorithm,
                None,
                key,
            )
        })?
    }

    /// The cheap front half of every open: failpoint, opportunistic reap of
    /// expired sessions (so their slots free up *before* the cap check),
    /// then the session-count cap — all before any compilation work.
    fn admit_open(&self) -> Result<(), ServiceError> {
        anyk_core::faults::check("server.open")?;
        self.sweep_expired();
        self.governor.admit_session_slot()
    }

    fn install_session(
        &self,
        snapshot: Arc<Snapshot>,
        prepared: &PlanHandle,
        algorithm: AnyKAlgorithm,
        limit: Option<usize>,
        plan_key: String,
    ) -> Result<SessionId, ServiceError> {
        let mut cursor = catch_panic("cursor construction", || match prepared {
            PlanHandle::Single(p) => SessionCursor::Single(p.cursor_with_limit(algorithm, limit)),
            PlanHandle::Sharded(p) => SessionCursor::Sharded(p.cursor_with_limit(algorithm, limit)),
        })?;
        let units = self.charge_for(&cursor);
        // Cap + budget re-checked and gauges bumped in one critical
        // section; a shed here drops the cursor before it served anything.
        self.governor.commit_session(units)?;
        if matches!(prepared, PlanHandle::Sharded(_)) {
            self.governor.with(|s| s.sharded_sessions_opened += 1);
        }
        let now = self.clock.now_nanos();
        let obs = self.plan_obs.handle(&plan_key);
        // Re-arm the cursor's delay recorder on the *service's* clock and
        // plan sink (its default recorder measures against a private
        // monotonic clock and flushes nowhere).
        cursor.enable_recording(Arc::clone(&self.clock), Some(Arc::clone(&obs)));
        let mut ring = EventRing::new(self.session_event_capacity);
        ring.record(now, EventKind::Open, units);
        let id = SessionId(self.next_session.fetch_add(1, Ordering::Relaxed) + 1);
        let slot = Arc::new(SessionSlot {
            cancel: cursor.cancel_token().clone(),
            inner: Mutex::new(Slot {
                state: SlotState::Active(ActiveSession {
                    cursor,
                    snapshot,
                    charged_units: units,
                    opened_nanos: now,
                    last_used_nanos: now,
                    ring,
                    obs,
                }),
            }),
        });
        lock!(self.shard_of(id).write()).insert(id.0, slot);
        Ok(id)
    }

    /// MEM(k) units to charge for `cursor`'s current footprint: the live
    /// count of entries in its enumeration structures, or the configured
    /// flat rate for algorithms that cannot report one (Recursive, Batch).
    fn charge_for(&self, cursor: &SessionCursor) -> u64 {
        cursor
            .memory_stats()
            .map(|m| m.resident_units())
            .unwrap_or(self.governor.config.untracked_session_units)
    }

    fn shard_of(&self, id: SessionId) -> &SessionShard {
        let mut h = DefaultHasher::new();
        id.0.hash(&mut h);
        &self.session_shards[(h.finish() as usize) % self.session_shards.len()]
    }

    fn session(&self, id: SessionId) -> Result<Arc<SessionSlot>, ServiceError> {
        lock!(self.shard_of(id).read())
            .get(&id.0)
            .cloned()
            .ok_or(ServiceError::UnknownSession(id))
    }

    fn past_deadline(&self, session: &ActiveSession, now: u64) -> bool {
        let cfg = &self.governor.config;
        let over = |since: u64, dl: std::time::Duration| {
            now.saturating_sub(since) >= u64::try_from(dl.as_nanos()).unwrap_or(u64::MAX)
        };
        cfg.session_ttl
            .is_some_and(|ttl| over(session.opened_nanos, ttl))
            || cfg
                .idle_timeout
                .is_some_and(|idle| over(session.last_used_nanos, idle))
    }

    /// Pull the next page of up to `page_size` ranked answers from session
    /// `id`, resuming exactly where the previous page stopped.
    pub fn next_page(&self, id: SessionId, page_size: usize) -> Result<Page, ServiceError> {
        let mut answers = Vec::new();
        let done = self.next_page_into(id, page_size, &mut answers)?;
        Ok(Page { answers, done })
    }

    /// Like [`QueryService::next_page`], but fills a caller-provided buffer
    /// (cleared first) so steady-state clients pay no per-page allocation.
    /// Returns `true` when the session's stream is exhausted.
    ///
    /// This is the governed hot path:
    /// * sheds with [`ServiceError::Overloaded`] when the in-flight page
    ///   cap is reached (the permit is RAII, so it cannot leak);
    /// * enforces the session's TTL/idle deadline before doing work;
    /// * observes cooperative cancellation between answers — a cancelled
    ///   pull returns its partial page with `done = true`, and later calls
    ///   get [`ServiceError::SessionCancelled`];
    /// * catches panics from the cursor: the session is poisoned (state
    ///   dropped, memory released, later calls get
    ///   [`ServiceError::SessionPoisoned`]) while every other session — and
    ///   the registry locks — stay healthy.
    pub fn next_page_into(
        &self,
        id: SessionId,
        page_size: usize,
        out: &mut Vec<Answer>,
    ) -> Result<bool, ServiceError> {
        // The outer catch contains panics raised *outside* the cursor (e.g.
        // a panic-action fault at `server.page`, which fires before any
        // session state is touched); cursor panics are caught further in,
        // where the session can still be poisoned.
        catch_panic("page request", || {
            self.governed_page_into(id, page_size, out)
        })?
    }

    fn governed_page_into(
        &self,
        id: SessionId,
        page_size: usize,
        out: &mut Vec<Answer>,
    ) -> Result<bool, ServiceError> {
        anyk_core::faults::check("server.page")?;
        let _permit = match self.governor.acquire_page() {
            Ok(permit) => permit,
            Err(err) => {
                self.note_shed_page(id);
                return Err(err);
            }
        };
        let slot = self.session(id)?;
        let mut guard = lock!(slot.inner.lock());
        if let SlotState::Ended { end, .. } = &guard.state {
            return Err(end.error(id));
        }
        let now = self.clock.now_nanos();
        let expired = matches!(&guard.state, SlotState::Active(a) if self.past_deadline(a, now));
        if expired {
            let active = guard.end(SessionEnd::Expired, now);
            self.governor
                .release_session(active.charged_units, SessionOutcome::Expired);
            return Err(ServiceError::SessionExpired(id));
        }
        let SlotState::Active(active) = &mut guard.state else {
            unreachable!("ended slots returned above")
        };
        let old_units = active.charged_units;
        let pull = catch_panic("page pull", || active.cursor.next_page_into(page_size, out));
        match pull {
            Err(err) => {
                // The cursor may have been left mid-panic in an arbitrary
                // state; poison the session and drop it. The catch happened
                // *inside* the slot mutex, so no lock is poisoned and no
                // other session noticed.
                out.clear();
                let active = guard.end(SessionEnd::Poisoned, self.clock.now_nanos());
                self.governor
                    .release_session(old_units, SessionOutcome::Poisoned);
                drop(active);
                Err(err)
            }
            Ok(done) => {
                let served_at = self.observe_page(active, now, out.len());
                if active.cursor.is_cancelled() {
                    // The token tripped mid-pull: serve the partial page
                    // (its answers are valid and in order), then retire the
                    // session.
                    self.governor.record_page(out.len());
                    let active = guard.end(SessionEnd::Cancelled, served_at);
                    self.governor
                        .release_session(old_units, SessionOutcome::Cancelled);
                    drop(active);
                    return Ok(true);
                }
                let new_units = self.charge_for(&active.cursor);
                active.charged_units = new_units;
                active.last_used_nanos = now;
                self.governor.recharge(old_units, new_units);
                self.governor.record_page(out.len());
                Ok(done)
            }
        }
    }

    /// Record one completed page pull into the session's event ring and —
    /// when recording is on — the service-wide and per-plan page-latency
    /// histograms. Returns the completion timestamp so callers can reuse
    /// the reading.
    fn observe_page(&self, active: &mut ActiveSession, started_nanos: u64, answers: usize) -> u64 {
        let finished = self.clock.now_nanos();
        active
            .ring
            .record(finished, EventKind::Page, answers as u64);
        if anyk_obs::recording_enabled() {
            let elapsed = finished.saturating_sub(started_nanos);
            self.page_hist.record(elapsed);
            active.obs.page.record(elapsed);
        }
        finished
    }

    /// A page pull was shed by the in-flight cap: leave a breadcrumb in the
    /// session's ring (best effort — skipped if the slot is busy, since a
    /// shed must never queue behind the very pull that crowded it out).
    fn note_shed_page(&self, id: SessionId) {
        let Ok(slot) = self.session(id) else { return };
        let mut guard = match slot.inner.try_lock() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => return,
        };
        if let SlotState::Active(a) = &mut guard.state {
            a.ring.record(self.clock.now_nanos(), EventKind::Shed, 0);
        }
    }

    /// Cancel session `id`: trip its cancellation token (an in-flight page
    /// pull stops within one answer's delay), drop its enumeration state,
    /// and release its memory charge. Idempotent; later pulls return
    /// [`ServiceError::SessionCancelled`]. Returns an error only for
    /// unknown ids or sessions that already ended another way.
    pub fn cancel_session(&self, id: SessionId) -> Result<(), ServiceError> {
        let slot = self.session(id)?;
        // Trip the token *before* taking the slot lock: an in-flight pull
        // holds the lock, observes the flag between answers, and retires
        // the session itself — at which point our lock acquisition below
        // succeeds and sees the tombstone.
        slot.cancel.cancel();
        let mut guard = lock!(slot.inner.lock());
        match &guard.state {
            SlotState::Active(_) => {
                let active = guard.end(SessionEnd::Cancelled, self.clock.now_nanos());
                self.governor
                    .release_session(active.charged_units, SessionOutcome::Cancelled);
                Ok(())
            }
            SlotState::Ended {
                end: SessionEnd::Cancelled,
                ..
            } => Ok(()),
            SlotState::Ended { end, .. } => Err(end.error(id)),
        }
    }

    /// End every active session whose TTL or idle deadline has passed
    /// (per [`GovernorConfig`]); returns how many were reaped. Runs
    /// opportunistically on every open, so an explicit call is only needed
    /// on an otherwise-quiet service. Sessions with a page pull in flight
    /// are skipped (`try_lock`) — they re-check their own deadline on the
    /// next pull anyway.
    pub fn sweep_expired(&self) -> usize {
        let cfg = &self.governor.config;
        if cfg.session_ttl.is_none() && cfg.idle_timeout.is_none() {
            return 0;
        }
        let now = self.clock.now_nanos();
        let mut reaped = 0;
        for shard in &self.session_shards {
            let slots: Vec<Arc<SessionSlot>> = lock!(shard.read()).values().cloned().collect();
            for slot in slots {
                let mut guard = match slot.inner.try_lock() {
                    Ok(g) => g,
                    Err(TryLockError::Poisoned(p)) => p.into_inner(),
                    Err(TryLockError::WouldBlock) => continue,
                };
                if matches!(&guard.state, SlotState::Active(a) if self.past_deadline(a, now)) {
                    slot.cancel.cancel();
                    let active = guard.end(SessionEnd::Expired, now);
                    self.governor
                        .release_session(active.charged_units, SessionOutcome::Expired);
                    reaped += 1;
                }
            }
        }
        reaped
    }

    /// Progress of session `id` (answers served, exhaustion, algorithm,
    /// lifecycle state). Works on ended sessions too — their tombstone
    /// remembers what a status call needs.
    pub fn session_status(&self, id: SessionId) -> Result<SessionStatus, ServiceError> {
        let slot = self.session(id)?;
        let guard = lock!(slot.inner.lock());
        Ok(match &guard.state {
            SlotState::Active(a) => SessionStatus {
                served: a.cursor.served(),
                done: a.cursor.is_done(),
                algorithm: a.cursor.algorithm(),
                state: if a.cursor.is_done() {
                    SessionState::Drained
                } else {
                    SessionState::Active
                },
                generation: a.snapshot.generation,
            },
            SlotState::Ended {
                end,
                served,
                algorithm,
                generation,
                ..
            } => SessionStatus {
                served: *served,
                done: true,
                algorithm: *algorithm,
                state: end.state(),
                generation: *generation,
            },
        })
    }

    /// The decoder for session `id`'s answers (original strings for
    /// dictionary-encoded columns); see
    /// [`AnswerDecoder`](anyk_engine::AnswerDecoder). Ended sessions have
    /// dropped their plan handle, so this returns their typed end error.
    pub fn decoder(&self, id: SessionId) -> Result<AnswerDecoder, ServiceError> {
        let slot = self.session(id)?;
        let guard = lock!(slot.inner.lock());
        match &guard.state {
            SlotState::Active(a) => Ok(a.cursor.decoder()),
            SlotState::Ended { end, .. } => Err(end.error(id)),
        }
    }

    /// Close session `id`, dropping its enumeration state (if any remains)
    /// and its registry slot. Returns `false` if the session was unknown
    /// (or already closed). Closing is the only way a slot leaves the
    /// registry: expired/cancelled/poisoned sessions keep a tiny tombstone
    /// so clients get a typed error instead of `UnknownSession`, and the
    /// tombstone is reclaimed here.
    pub fn close_session(&self, id: SessionId) -> bool {
        let removed = lock!(self.shard_of(id).write()).remove(&id.0);
        let Some(slot) = removed else {
            return false;
        };
        // Stop any in-flight pull promptly, then wait for it to release
        // the slot (cooperative cancellation bounds the wait to one
        // answer's delay).
        slot.cancel.cancel();
        let mut guard = lock!(slot.inner.lock());
        if matches!(guard.state, SlotState::Active(_)) {
            let active = guard.end(SessionEnd::Cancelled, self.clock.now_nanos());
            self.governor
                .release_session(active.charged_units, SessionOutcome::Closed);
        }
        true
    }

    /// Number of currently active sessions (a gauge; tombstones of ended
    /// but not yet closed sessions are not counted).
    pub fn session_count(&self) -> usize {
        self.governor.with(|s| s.active_sessions)
    }

    /// Number of registry slots, active **and** tombstoned — what a leak
    /// check should assert drains to zero after closing every id.
    pub fn tracked_sessions(&self) -> usize {
        self.session_shards
            .iter()
            .map(|s| lock!(s.read()).len())
            .sum()
    }

    /// Number of distinct prepared plans currently memoised.
    pub fn prepared_count(&self) -> usize {
        lock!(self.plans.read()).len()
    }

    /// Atomic snapshot of every counter and gauge (one critical section;
    /// see [`ServiceMetrics`]).
    pub fn metrics(&self) -> ServiceMetrics {
        let s = self.governor.snapshot();
        ServiceMetrics {
            sessions_opened: s.sessions_opened,
            sessions_closed: s.sessions_closed,
            sessions_shed: s.sessions_shed,
            sessions_expired: s.sessions_expired,
            sessions_cancelled: s.sessions_cancelled,
            sessions_poisoned: s.sessions_poisoned,
            pages_served: s.pages_served,
            answers_served: s.answers_served,
            plan_hits: s.plan_hits,
            plan_misses: s.plan_misses,
            plan_evictions: s.plan_evictions,
            active_sessions: s.active_sessions as u64,
            pages_in_flight: s.pages_in_flight as u64,
            mem_resident_units: s.mem_resident_units,
            peak_mem_resident_units: s.peak_mem_resident_units,
            connections_accepted: s.connections_accepted,
            connections_shed_at_accept: s.connections_shed_at_accept,
            net_read_timeouts: s.net_read_timeouts,
            net_write_timeouts: s.net_write_timeouts,
            connections_drained_on_shutdown: s.connections_drained_on_shutdown,
            current_generation: s.current_generation,
            active_generations: s.active_generations as u64,
            snapshot_resident_units: s.snapshot_resident_units,
            snapshots_retired: s.snapshots_retired,
            generations_rotated: s.generations_rotated,
            deltas_ingested: s.deltas_ingested,
            plans_refreshed: s.plans_refreshed,
            plans_recompiled: s.plans_recompiled,
            sharded_sessions_opened: s.sharded_sessions_opened,
            shards_prepared: s.shards_prepared,
        }
    }

    /// Hit/miss/eviction counters of the current snapshot's index cache.
    pub fn index_cache_stats(&self) -> IndexCacheStats {
        self.current_snapshot().db.index_cache_stats()
    }

    /// Everything the stats endpoint reports, in one pass: the atomic
    /// [`ServiceMetrics`] snapshot, the process-wide phase timings, the
    /// service-wide page-latency summary, and the per-plan TTF / delay /
    /// page distributions (sorted by plan key). The reported `generation`
    /// comes from the same governor critical section as the counters, so a
    /// concurrent rotation can never produce a snapshot whose counters and
    /// generation disagree.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        let metrics = self.metrics();
        StatsSnapshot {
            version: STATS_VERSION,
            generation: metrics.current_generation,
            metrics,
            phases: anyk_obs::phase::snapshot_phases(),
            page_latency: self.page_hist.summary(),
            plans: self.plan_obs.summaries(),
        }
    }

    /// The retained lifecycle events of session `id`, oldest first — open,
    /// page pulls (detail: answers returned), shed pulls, and how the
    /// session ended. Works on ended-but-not-closed sessions too: the ring
    /// migrates into the tombstone. Capacity is
    /// [`ServiceConfig::session_event_capacity`]; closing the session
    /// discards the trace with the slot.
    pub fn session_trace(&self, id: SessionId) -> Result<Vec<Event>, ServiceError> {
        let slot = self.session(id)?;
        let guard = lock!(slot.inner.lock());
        Ok(match &guard.state {
            SlotState::Active(a) => a.ring.events(),
            SlotState::Ended { ring, .. } => ring.events(),
        })
    }

    /// The governor, for sibling modules (the TCP transport records its
    /// connection counters in the same atomic-snapshot state block).
    pub(crate) fn governor(&self) -> &Governor {
        &self.governor
    }

    /// The service's time source (shared with the transport so frame
    /// deadlines and session deadlines tick on the same clock).
    pub(crate) fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }
}

impl std::fmt::Debug for QueryService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryService")
            .field("sessions", &self.session_count())
            .field("prepared_plans", &self.prepared_count())
            .field("metrics", &self.metrics())
            .finish()
    }
}

// The whole service is shareable across threads by construction; keep that
// guarantee compile-time checked.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<QueryService>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::error::OverloadReason;
    use anyk_query::QueryBuilder;
    use anyk_storage::Relation;
    use std::time::Duration;

    fn path_db() -> Database {
        let mut db = Database::new();
        let mut r1 = Relation::new("R1", 2);
        r1.push_edge(1, 10, 1.0);
        r1.push_edge(2, 20, 4.0);
        r1.push_edge(3, 10, 9.0);
        let mut r2 = Relation::new("R2", 2);
        r2.push_edge(10, 5, 2.0);
        r2.push_edge(20, 6, 1.0);
        db.add(r1);
        db.add(r2);
        db
    }

    fn service_with(governor: GovernorConfig, clock: Arc<dyn Clock>) -> QueryService {
        QueryService::with_config(
            path_db(),
            ServiceConfig {
                governor,
                clock: Some(clock),
                ..ServiceConfig::default()
            },
        )
    }

    #[test]
    fn sessions_page_independently_and_deterministically() {
        let service = QueryService::new(path_db());
        let query = QueryBuilder::path(2).build();
        let one_shot: Vec<Answer> = service
            .prepare(&query, RankingFunction::SumAscending)
            .unwrap()
            .enumerate(AnyKAlgorithm::Take2)
            .collect();

        let a = service.open_session(&query, AnyKAlgorithm::Take2).unwrap();
        let b = service.open_session(&query, AnyKAlgorithm::Take2).unwrap();
        // Interleave pulls with different page sizes.
        let mut got_a = service.next_page(a, 1).unwrap().answers;
        let mut got_b = service.next_page(b, 2).unwrap().answers;
        got_a.extend(service.next_page(a, 10).unwrap().answers);
        got_b.extend(service.next_page(b, 10).unwrap().answers);
        assert_eq!(got_a, one_shot);
        assert_eq!(got_b, one_shot);
        assert_eq!(service.metrics().plan_misses, 1, "compiled exactly once");
        assert_eq!(service.metrics().plan_hits, 2);
    }

    #[test]
    fn a_plan_stampede_compiles_exactly_once() {
        let service = QueryService::new(path_db());
        let spec = QuerySpec::from_query(
            &QueryBuilder::path(2).build(),
            RankingFunction::SumAscending,
        );
        const RACERS: usize = 8;
        let start_line = std::sync::Barrier::new(RACERS);
        let plans: Vec<Arc<PreparedQuery>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..RACERS)
                .map(|_| {
                    let service = &service;
                    let spec = &spec;
                    let start_line = &start_line;
                    scope.spawn(move || {
                        start_line.wait();
                        service.prepare_spec(spec).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Single-flight: one racer compiled, the rest waited and share the
        // winner's plan.
        assert_eq!(service.metrics().plan_misses, 1);
        assert_eq!(service.metrics().plan_hits, RACERS as u64 - 1);
        assert!(plans.windows(2).all(|w| Arc::ptr_eq(&w[0], &w[1])));
        // The flight registry drains: nothing left once compiles settle.
        assert!(lock!(service.plan_flights.lock()).is_empty());
    }

    #[test]
    fn unknown_and_closed_sessions_are_rejected() {
        let service = QueryService::new(path_db());
        let query = QueryBuilder::path(2).build();
        let id = service.open_session(&query, AnyKAlgorithm::Lazy).unwrap();
        assert!(service.next_page(id, 1).is_ok());
        assert!(service.close_session(id));
        assert!(!service.close_session(id), "double close is a no-op");
        assert!(matches!(
            service.next_page(id, 1),
            Err(ServiceError::UnknownSession(_))
        ));
        assert_eq!(service.session_count(), 0);
        assert_eq!(service.tracked_sessions(), 0);
    }

    #[test]
    fn prepare_failures_surface_engine_errors() {
        let service = QueryService::new(path_db());
        let query = QueryBuilder::new().atom("Nope", &["x", "y"]).build();
        let err = service
            .open_session(&query, AnyKAlgorithm::Take2)
            .unwrap_err();
        assert!(matches!(err, ServiceError::Engine(_)));
        assert!(err.to_string().contains("Nope"));
    }

    #[test]
    fn session_status_tracks_progress() {
        let service = QueryService::new(path_db());
        let query = QueryBuilder::path(2).build();
        let id = service
            .open_session(&query, AnyKAlgorithm::Recursive)
            .unwrap();
        assert_eq!(
            service.session_status(id).unwrap(),
            SessionStatus {
                served: 0,
                done: false,
                algorithm: AnyKAlgorithm::Recursive,
                state: SessionState::Active,
                generation: 0,
            }
        );
        service.next_page(id, 2).unwrap();
        let status = service.session_status(id).unwrap();
        assert_eq!(status.served, 2);
        assert!(!status.done);
        assert_eq!(status.state, SessionState::Active);
        service.next_page(id, 2).unwrap();
        let status = service.session_status(id).unwrap();
        assert!(status.done);
        assert_eq!(status.state, SessionState::Drained);
    }

    #[test]
    fn distinct_rankings_get_distinct_plans() {
        let service = QueryService::new(path_db());
        let query = QueryBuilder::path(2).build();
        let asc = service
            .prepare(&query, RankingFunction::SumAscending)
            .unwrap();
        let desc = service
            .prepare(&query, RankingFunction::SumDescending)
            .unwrap();
        assert!(!Arc::ptr_eq(&asc, &desc));
        assert_eq!(service.prepared_count(), 2);
        let asc2 = service
            .prepare(&query, RankingFunction::SumAscending)
            .unwrap();
        assert!(Arc::ptr_eq(&asc, &asc2));
    }

    #[test]
    fn plan_cache_is_lru_bounded_and_evicted_plans_keep_serving_open_sessions() {
        let service = QueryService::with_config(
            path_db(),
            ServiceConfig {
                plan_cache_capacity: 2,
                ..ServiceConfig::default()
            },
        );
        let path = QueryBuilder::path(2).build();
        // A session holds the plan that is about to be evicted.
        let id = service.open_session(&path, AnyKAlgorithm::Take2).unwrap();
        // Two more distinct plans (same query, different rankings) overflow
        // the 2-slot cache and evict the least recently prepared.
        service
            .prepare(&path, RankingFunction::SumDescending)
            .unwrap();
        service
            .prepare(&path, RankingFunction::BottleneckAscending)
            .unwrap();
        assert_eq!(service.prepared_count(), 2, "bounded");
        assert_eq!(service.metrics().plan_evictions, 1);
        // The open session still streams from the evicted plan (its Arc
        // keeps it alive) ...
        let page = service.next_page(id, 100).unwrap();
        assert_eq!(page.answers.len(), 3);
        // ... and re-preparing the evicted query recompiles, correctly.
        let m = service.metrics();
        let again = service
            .prepare(&path, RankingFunction::SumAscending)
            .unwrap();
        assert_eq!(service.metrics().plan_misses, m.plan_misses + 1);
        assert_eq!(again.top_k(AnyKAlgorithm::Take2, 1)[0].weight(), 3.0);
    }

    #[test]
    #[should_panic(expected = "already-shared")]
    fn over_rejects_an_unappliable_index_cache_bound() {
        let db = Arc::new(path_db());
        QueryService::over(
            db,
            ServiceConfig {
                index_cache_capacity: Some(4),
                ..ServiceConfig::default()
            },
        );
    }

    #[test]
    fn metrics_count_pages_and_answers() {
        let service = QueryService::new(path_db());
        let query = QueryBuilder::path(2).build();
        let id = service.open_session(&query, AnyKAlgorithm::Eager).unwrap();
        let mut buf = Vec::new();
        while !service.next_page_into(id, 1, &mut buf).unwrap() {}
        let m = service.metrics();
        assert_eq!(m.answers_served, 3);
        assert_eq!(m.pages_served, 4, "3 full pages + 1 short (empty) page");
        assert_eq!(m.sessions_opened, 1);
        assert_eq!(m.active_sessions, 1);
        assert_eq!(m.pages_in_flight, 0, "permits all returned");
    }

    #[test]
    fn text_sessions_match_struct_sessions_and_share_the_plan() {
        let service = QueryService::new(path_db());
        let query = QueryBuilder::path(2).build();
        let by_struct = service.open_session(&query, DEFAULT_ALGORITHM).unwrap();
        // The same query as text, alpha-renamed: must hit the struct plan.
        let by_text = service
            .open_session_text("Q(a, b, c) :- R1(a, b), R2(b, c)")
            .unwrap();
        let a = service.next_page(by_struct, 100).unwrap();
        let b = service.next_page(by_text, 100).unwrap();
        assert_eq!(a, b, "text and struct sessions page identically");
        assert_eq!(service.prepared_count(), 1, "one shared plan entry");
        assert_eq!(service.metrics().plan_misses, 1);
        assert_eq!(service.metrics().plan_hits, 1);
    }

    #[test]
    fn text_sessions_honor_via_and_limit_without_fragmenting_the_cache() {
        let service = QueryService::new(path_db());
        let id = service
            .open_session_text("Q(x, y, z) :- R1(x, y), R2(y, z) via lazy limit 2")
            .unwrap();
        assert_eq!(
            service.session_status(id).unwrap().algorithm,
            AnyKAlgorithm::Lazy
        );
        let page = service.next_page(id, 100).unwrap();
        assert_eq!(page.answers.len(), 2, "limit 2 of 3 answers");
        assert!(page.done);
        // Same plan key as the unlimited request: no extra compilation.
        service
            .open_session_text("Q(x, y, z) :- R1(x, y), R2(y, z)")
            .unwrap();
        assert_eq!(service.metrics().plan_misses, 1);
        assert_eq!(service.metrics().plan_hits, 1);
    }

    #[test]
    fn text_sessions_with_predicates_filter_answers() {
        let service = QueryService::new(path_db());
        // Only the x = 2 path (2, 20) ⋈ (20, 6) survives.
        let id = service
            .open_session_text("Q(x, y, z) :- R1(x, y), R2(y, z), x = 2")
            .unwrap();
        let page = service.next_page(id, 100).unwrap();
        assert_eq!(page.answers.len(), 1);
        assert_eq!(page.answers[0].values(), &[2, 20, 6]);
        assert_eq!(page.answers[0].weight(), 5.0);
    }

    #[test]
    fn bad_text_is_a_typed_parse_error() {
        let service = QueryService::new(path_db());
        let err = service.open_session_text("Q(x :- R1(x, y)").unwrap_err();
        assert!(matches!(err, ServiceError::Parse(_)));
        assert!(err.to_string().contains("parse error"));
        // Valid syntax, unknown relation: an engine error, still typed.
        let err = service
            .open_session_text("Q(x, y) :- Nope(x, y)")
            .unwrap_err();
        assert!(matches!(err, ServiceError::Engine(_)));
    }

    #[test]
    fn session_cap_sheds_opens_until_a_close_frees_a_slot() {
        let service = service_with(
            GovernorConfig {
                max_sessions: Some(2),
                ..GovernorConfig::default()
            },
            Arc::new(ManualClock::new()),
        );
        let query = QueryBuilder::path(2).build();
        let a = service.open_session(&query, AnyKAlgorithm::Take2).unwrap();
        let _b = service.open_session(&query, AnyKAlgorithm::Take2).unwrap();
        let err = service
            .open_session(&query, AnyKAlgorithm::Take2)
            .unwrap_err();
        assert!(matches!(
            err,
            ServiceError::Overloaded {
                reason: OverloadReason::Sessions,
                ..
            }
        ));
        assert_eq!(service.metrics().sessions_shed, 1);
        service.close_session(a);
        assert!(service.open_session(&query, AnyKAlgorithm::Take2).is_ok());
    }

    #[test]
    fn ttl_expires_sessions_deterministically() {
        let clock = Arc::new(ManualClock::new());
        let service = service_with(
            GovernorConfig {
                session_ttl: Some(Duration::from_secs(10)),
                ..GovernorConfig::default()
            },
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        let query = QueryBuilder::path(2).build();
        let id = service.open_session(&query, AnyKAlgorithm::Take2).unwrap();
        assert!(service.next_page(id, 1).is_ok(), "within TTL");
        clock.advance(Duration::from_secs(10));
        assert!(matches!(
            service.next_page(id, 1),
            Err(ServiceError::SessionExpired(_))
        ));
        // The tombstone keeps the id typed; memory is back to zero.
        assert_eq!(
            service.session_status(id).unwrap().state,
            SessionState::Expired
        );
        let m = service.metrics();
        assert_eq!(m.sessions_expired, 1);
        assert_eq!(m.active_sessions, 0);
        assert_eq!(m.mem_resident_units, 0);
        assert!(service.close_session(id), "tombstone reclaimed by close");
        assert_eq!(service.tracked_sessions(), 0);
    }

    #[test]
    fn idle_sessions_are_reaped_by_the_sweep() {
        let clock = Arc::new(ManualClock::new());
        let service = service_with(
            GovernorConfig {
                idle_timeout: Some(Duration::from_secs(5)),
                ..GovernorConfig::default()
            },
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        let query = QueryBuilder::path(2).build();
        let idle = service.open_session(&query, AnyKAlgorithm::Take2).unwrap();
        clock.advance(Duration::from_secs(3));
        let busy = service.open_session(&query, AnyKAlgorithm::Take2).unwrap();
        service.next_page(busy, 1).unwrap(); // refreshes busy's idle clock
        clock.advance(Duration::from_secs(3));
        assert_eq!(service.sweep_expired(), 1, "only the idle session");
        assert_eq!(
            service.session_status(idle).unwrap().state,
            SessionState::Expired
        );
        assert!(service.next_page(busy, 1).is_ok(), "busy session survives");
    }

    #[test]
    fn cancel_session_stops_the_stream_and_is_idempotent() {
        let service = QueryService::new(path_db());
        let query = QueryBuilder::path(2).build();
        let id = service.open_session(&query, AnyKAlgorithm::Lazy).unwrap();
        service.next_page(id, 1).unwrap();
        service.cancel_session(id).unwrap();
        service.cancel_session(id).unwrap(); // idempotent
        assert!(matches!(
            service.next_page(id, 1),
            Err(ServiceError::SessionCancelled(_))
        ));
        assert_eq!(
            service.session_status(id).unwrap().state,
            SessionState::Cancelled
        );
        let m = service.metrics();
        assert_eq!(m.sessions_cancelled, 1);
        assert_eq!(m.active_sessions, 0);
        assert_eq!(m.mem_resident_units, 0);
    }

    #[test]
    fn memory_budget_sheds_new_sessions() {
        // The flat untracked charge makes the arithmetic exact: budget for
        // one Recursive session, not two.
        let service = service_with(
            GovernorConfig {
                memory_budget_units: Some(1500),
                untracked_session_units: 1024,
                ..GovernorConfig::default()
            },
            Arc::new(ManualClock::new()),
        );
        let query = QueryBuilder::path(2).build();
        let a = service
            .open_session(&query, AnyKAlgorithm::Recursive)
            .unwrap();
        let err = service
            .open_session(&query, AnyKAlgorithm::Recursive)
            .unwrap_err();
        assert!(matches!(
            err,
            ServiceError::Overloaded {
                reason: OverloadReason::Memory,
                ..
            }
        ));
        service.close_session(a);
        assert_eq!(service.metrics().mem_resident_units, 0);
        assert!(service
            .open_session(&query, AnyKAlgorithm::Recursive)
            .is_ok());
        assert_eq!(service.metrics().peak_mem_resident_units, 1024);
    }

    #[test]
    fn tracked_algorithms_charge_their_live_mem_and_release_it() {
        let service = service_with(GovernorConfig::default(), Arc::new(ManualClock::new()));
        let query = QueryBuilder::path(2).build();
        let id = service.open_session(&query, AnyKAlgorithm::Take2).unwrap();
        service.next_page(id, 2).unwrap();
        let m = service.metrics();
        assert!(
            m.mem_resident_units > 0,
            "paging populated the enumeration structures"
        );
        assert!(m.peak_mem_resident_units >= m.mem_resident_units);
        service.close_session(id);
        assert_eq!(service.metrics().mem_resident_units, 0);
    }

    /// Deletes R1's (2, 20) edge and adds a (10, 7) edge to R2 — the path
    /// query's answer set goes from 3 to 4.
    fn path_delta() -> DeltaBatch {
        DeltaBatch::new()
            .delete("R1", 1)
            .insert("R2", anyk_storage::Tuple::new(vec![10, 7], 0.5))
    }

    #[test]
    fn serving_seals_the_snapshot() {
        let db = Arc::new(path_db());
        assert!(!db.is_sealed());
        let service = QueryService::over(Arc::clone(&db), ServiceConfig::default());
        assert!(db.is_sealed(), "over() seals the snapshot it serves");
        drop(service);
        assert!(db.is_sealed(), "sealing is permanent");
    }

    /// Regression: a caller holding a mutable handle used to be able to swap
    /// a relation out from under live sessions after handing the database to
    /// a service — silently serving torn data. Mutation now panics instead.
    #[test]
    #[should_panic(expected = "sealed")]
    fn mutating_a_served_snapshot_panics_instead_of_tearing_sessions() {
        let db = Arc::new(path_db());
        let service = QueryService::over(Arc::clone(&db), ServiceConfig::default());
        drop(service);
        // Even with the service gone the seal stands; the only unique handle
        // left must still refuse mutation.
        let mut db = Arc::try_unwrap(db).expect("last handle");
        db.add(Relation::new("R3", 2));
    }

    #[test]
    fn ingest_rotates_the_generation_and_pins_existing_sessions() {
        let service = QueryService::new(path_db());
        let query = QueryBuilder::path(2).build();
        assert_eq!(service.current_generation(), 0);

        let old_session = service.open_session(&query, AnyKAlgorithm::Take2).unwrap();
        let first = service.next_page(old_session, 1).unwrap().answers;

        let generation = service.ingest(&path_delta()).unwrap();
        assert_eq!(generation, 1);
        assert_eq!(service.current_generation(), 1);
        assert_eq!(service.metrics().deltas_ingested, 1);

        // The old session keeps streaming its pinned generation-0 snapshot.
        assert_eq!(service.session_status(old_session).unwrap().generation, 0);
        let mut old_stream = first;
        loop {
            let page = service.next_page(old_session, 10).unwrap();
            old_stream.extend(page.answers);
            if page.done {
                break;
            }
        }
        let baseline: Vec<Answer> = QueryService::new(path_db())
            .prepare(&query, RankingFunction::SumAscending)
            .unwrap()
            .enumerate(AnyKAlgorithm::Take2)
            .collect();
        assert_eq!(old_stream, baseline, "pinned stream is bit-identical");

        // A new session sees the delta-maintained data, bit-identical to a
        // from-scratch service over the rebuilt database.
        let new_session = service.open_session(&query, AnyKAlgorithm::Take2).unwrap();
        assert_eq!(service.session_status(new_session).unwrap().generation, 1);
        let fresh = service.next_page(new_session, 100).unwrap().answers;
        let rebuilt_db = path_db().apply_delta(&path_delta()).unwrap();
        let rebuilt: Vec<Answer> = QueryService::new(rebuilt_db)
            .prepare(&query, RankingFunction::SumAscending)
            .unwrap()
            .enumerate(AnyKAlgorithm::Take2)
            .collect();
        assert_eq!(fresh.len(), 4, "delete killed one path, insert added two");
        assert_eq!(fresh, rebuilt, "delta-maintained ≡ from-scratch rebuild");
    }

    #[test]
    fn ingest_refreshes_cached_plans_in_place() {
        let service = QueryService::new(path_db());
        let query = QueryBuilder::path(2).build();
        service
            .prepare(&query, RankingFunction::SumAscending)
            .unwrap();
        assert_eq!(service.metrics().plan_misses, 1);

        service.ingest(&path_delta()).unwrap();
        let m = service.metrics();
        assert_eq!(m.plans_refreshed, 1, "delta-capable plan was patched");
        assert_eq!(m.plans_recompiled, 0);

        // The migrated plan serves the new generation without a fresh
        // compile: opening the same query is a cache hit, not a miss.
        let id = service.open_session(&query, AnyKAlgorithm::Lazy).unwrap();
        assert_eq!(service.metrics().plan_misses, 1, "no recompilation");
        let page = service.next_page(id, 100).unwrap();
        assert_eq!(page.answers.len(), 4);
    }

    #[test]
    fn sharded_sessions_stream_bit_identically_and_count_in_metrics() {
        let service = QueryService::new(path_db());
        let query = QueryBuilder::path(2).build();
        let baseline: Vec<Answer> = service
            .prepare(&query, RankingFunction::SumAscending)
            .unwrap()
            .enumerate(AnyKAlgorithm::Take2)
            .collect();

        let id = service
            .open_session_text("Q(x, y, z) :- R1(x, y), R2(y, z) shards 2")
            .unwrap();
        let mut got = Vec::new();
        loop {
            let page = service.next_page(id, 1).unwrap();
            got.extend(page.answers);
            if page.done {
                break;
            }
        }
        assert_eq!(got, baseline, "merged shard stream ≡ unsharded stream");

        let m = service.metrics();
        assert_eq!(m.sharded_sessions_opened, 1);
        assert_eq!(m.shards_prepared, 2);
        assert!(m.mem_resident_units == 0 || m.answers_served > 0);
        // Sharded and unsharded plans are distinct cache entries.
        assert_eq!(service.prepared_count(), 2);
        service
            .open_session_text("Q(a, b, c) :- R1(a, b), R2(b, c) shards 2")
            .unwrap();
        assert_eq!(service.prepared_count(), 2, "alpha-renamed shard hit");
        assert_eq!(service.metrics().sharded_sessions_opened, 2);
        assert_eq!(service.metrics().shards_prepared, 2, "plan was cached");
    }

    #[test]
    fn config_default_shards_apply_and_unsupported_queries_fall_back() {
        let service = QueryService::with_config(
            path_db(),
            ServiceConfig {
                shards: Some(2),
                threads: Some(1),
                ..ServiceConfig::default()
            },
        );
        // A plain join shards by default...
        let query = QueryBuilder::path(2).build();
        let id = service.open_session(&query, AnyKAlgorithm::Lazy).unwrap();
        assert_eq!(service.next_page(id, 100).unwrap().answers.len(), 3);
        assert_eq!(service.metrics().sharded_sessions_opened, 1);
        // ...a predicate query cannot be partitioned and silently falls
        // back to the single-stream plan, still serving correct answers.
        let id = service
            .open_session_text("Q(x, y, z) :- R1(x, y), R2(y, z), x = 2")
            .unwrap();
        let page = service.next_page(id, 100).unwrap();
        assert_eq!(page.answers.len(), 1);
        assert_eq!(page.answers[0].values(), &[2, 20, 6]);
        let m = service.metrics();
        assert_eq!(m.sharded_sessions_opened, 1, "fallback session is single");
        assert_eq!(m.shards_prepared, 2, "only the shardable plan");
        // A spec-level `shards 1` overrides the service default downward.
        service
            .open_session_text("Q(x, y, z) :- R1(x, y), R2(y, z) shards 1")
            .unwrap();
        assert_eq!(service.metrics().sharded_sessions_opened, 1);
    }

    #[test]
    fn ingest_refreshes_sharded_plans_and_streams_match_rebuild() {
        let service = QueryService::with_config(
            path_db(),
            ServiceConfig {
                shards: Some(2),
                ..ServiceConfig::default()
            },
        );
        let query = QueryBuilder::path(2).build();
        let before = service.open_session(&query, AnyKAlgorithm::Take2).unwrap();
        service.next_page(before, 1).unwrap();

        service.ingest(&path_delta()).unwrap();
        let m = service.metrics();
        assert_eq!(m.plans_refreshed, 1, "sharded plan was patched in place");
        assert_eq!(m.plans_recompiled, 0);

        // The pinned pre-ingest session still streams generation 0.
        let mut old = Vec::new();
        loop {
            let page = service.next_page(before, 10).unwrap();
            old.extend(page.answers);
            if page.done {
                break;
            }
        }
        assert_eq!(old.len() + 1, 3, "generation-0 stream intact");

        // A post-ingest sharded session matches a from-scratch rebuild.
        let id = service.open_session(&query, AnyKAlgorithm::Take2).unwrap();
        assert_eq!(service.metrics().plan_misses, 1, "refresh kept the cache");
        let fresh = service.next_page(id, 100).unwrap().answers;
        let rebuilt: Vec<Answer> = QueryService::new(path_db().apply_delta(&path_delta()).unwrap())
            .prepare(&query, RankingFunction::SumAscending)
            .unwrap()
            .enumerate(AnyKAlgorithm::Take2)
            .collect();
        assert_eq!(fresh, rebuilt, "refreshed shard merge ≡ rebuild");
    }

    #[test]
    fn retired_snapshots_release_residency_with_their_last_session() {
        let service = QueryService::new(path_db());
        let query = QueryBuilder::path(2).build();
        let pinned = service.open_session(&query, AnyKAlgorithm::Take2).unwrap();

        let before = service.metrics();
        assert_eq!(before.active_generations, 1);
        assert_eq!(before.snapshot_resident_units, 5, "3 + 2 tuples");

        service.ingest(&path_delta()).unwrap();
        let during = service.metrics();
        assert_eq!(
            during.active_generations, 2,
            "old generation held by its pinned session (and its plan)"
        );
        assert_eq!(during.snapshot_resident_units, 5 + 5, "2 R1 + 3 R2 new");
        assert_eq!(during.snapshots_retired, 0);

        // Closing the last pinned session retires generation 0 and returns
        // its residency to the governor.
        service.close_session(pinned);
        let after = service.metrics();
        assert_eq!(after.active_generations, 1);
        assert_eq!(after.snapshot_resident_units, 5);
        assert_eq!(after.snapshots_retired, 1);
        assert_eq!(after.mem_resident_units, 0);
    }

    #[test]
    fn rotate_replaces_the_snapshot_and_colds_the_plan_cache() {
        let service = QueryService::new(path_db());
        let query = QueryBuilder::path(2).build();
        service
            .prepare(&query, RankingFunction::SumAscending)
            .unwrap();
        assert_eq!(service.prepared_count(), 1);

        let mut replacement = Database::new();
        let mut r1 = Relation::new("R1", 2);
        r1.push_edge(7, 70, 1.0);
        let mut r2 = Relation::new("R2", 2);
        r2.push_edge(70, 8, 1.0);
        replacement.add(r1);
        replacement.add(r2);

        let generation = service.rotate(replacement);
        assert_eq!(generation, 1);
        assert_eq!(service.current_generation(), 1);
        assert_eq!(service.prepared_count(), 0, "no stale plans survive");
        assert_eq!(service.metrics().generations_rotated, 1);
        assert!(service.database().is_sealed());

        let id = service.open_session(&query, AnyKAlgorithm::Eager).unwrap();
        let page = service.next_page(id, 10).unwrap();
        assert_eq!(page.answers.len(), 1);
        assert_eq!(page.answers[0].values(), &[7, 70, 8]);
    }

    #[test]
    fn a_rejected_delta_changes_nothing() {
        let service = QueryService::new(path_db());
        let bad = DeltaBatch::new().delete("Nope", 0);
        let err = service.ingest(&bad).unwrap_err();
        assert!(matches!(err, ServiceError::Delta(_)));
        assert!(err.to_string().contains("Nope"));
        let m = service.metrics();
        assert_eq!(service.current_generation(), 0, "generation unchanged");
        assert_eq!(m.deltas_ingested, 0);
        assert_eq!(m.active_generations, 1);
    }

    #[test]
    fn session_traces_record_lifecycle_with_injected_timestamps() {
        let clock = Arc::new(ManualClock::new());
        let service = QueryService::with_config(
            path_db(),
            ServiceConfig {
                clock: Some(Arc::clone(&clock) as Arc<dyn Clock>),
                session_event_capacity: 8,
                ..ServiceConfig::default()
            },
        );
        let query = QueryBuilder::path(2).build();
        let id = service.open_session(&query, AnyKAlgorithm::Take2).unwrap();
        clock.advance(Duration::from_millis(5));
        service.next_page(id, 2).unwrap();
        clock.advance(Duration::from_millis(7));
        service.cancel_session(id).unwrap();

        let trace = service.session_trace(id).unwrap();
        let kinds: Vec<EventKind> = trace.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![EventKind::Open, EventKind::Page, EventKind::Cancel]
        );
        let open_at = trace[0].at_nanos;
        assert!(trace[0].detail > 0, "open detail carries charged MEM units");
        assert_eq!(trace[1].at_nanos - open_at, 5_000_000);
        assert_eq!(trace[1].detail, 2, "page detail counts answers returned");
        assert_eq!(trace[2].at_nanos - open_at, 12_000_000);
        assert_eq!(trace[2].detail, 2, "terminal detail counts answers served");

        // The trace survives in the tombstone for post-mortems; reclaiming
        // the id finally forgets it.
        assert_eq!(
            service.session_status(id).unwrap().state,
            SessionState::Cancelled
        );
        service.close_session(id);
        assert!(matches!(
            service.session_trace(id),
            Err(ServiceError::UnknownSession(_))
        ));
    }

    #[test]
    fn session_event_rings_evict_oldest_and_can_be_disabled() {
        let query = QueryBuilder::path(2).build();

        let bounded = QueryService::with_config(
            path_db(),
            ServiceConfig {
                session_event_capacity: 2,
                ..ServiceConfig::default()
            },
        );
        let id = bounded.open_session(&query, AnyKAlgorithm::Lazy).unwrap();
        for _ in 0..3 {
            bounded.next_page(id, 1).unwrap();
        }
        let trace = bounded.session_trace(id).unwrap();
        assert_eq!(trace.len(), 2, "ring keeps only the most recent events");
        assert!(trace.iter().all(|e| e.kind == EventKind::Page));

        let disabled = QueryService::with_config(
            path_db(),
            ServiceConfig {
                session_event_capacity: 0,
                ..ServiceConfig::default()
            },
        );
        let id = disabled.open_session(&query, AnyKAlgorithm::Lazy).unwrap();
        disabled.next_page(id, 1).unwrap();
        assert!(
            disabled.session_trace(id).unwrap().is_empty(),
            "capacity 0 disables tracing without failing the call"
        );
    }

    #[test]
    fn stats_snapshots_report_one_consistent_generation_under_rotation() {
        let service = Arc::new(QueryService::new(path_db()));
        let query = QueryBuilder::path(2).build();
        let id = service.open_session(&query, AnyKAlgorithm::Take2).unwrap();
        service.next_page(id, 10).unwrap();

        const ROTATIONS: u64 = 50;
        std::thread::scope(|scope| {
            let svc = Arc::clone(&service);
            let rotator = scope.spawn(move || {
                for _ in 0..ROTATIONS {
                    svc.rotate(path_db());
                }
            });
            let mut last = 0u64;
            while !rotator.is_finished() {
                let s = service.stats_snapshot();
                assert_eq!(s.version, STATS_VERSION);
                assert_eq!(
                    s.generation, s.metrics.current_generation,
                    "generation and counters come from one critical section"
                );
                assert!(s.generation >= last, "generation never goes backwards");
                last = s.generation;
            }
            rotator.join().unwrap();
        });

        let settled = service.stats_snapshot();
        assert_eq!(settled.generation, ROTATIONS);
        assert_eq!(settled.metrics.generations_rotated, ROTATIONS);
        assert!(settled.page_latency.count >= 1, "page latency was recorded");
        let key = QuerySpec::from_query(&query, RankingFunction::SumAscending).plan_key();
        let plan = settled
            .plans
            .iter()
            .find(|(k, _)| *k == key)
            .expect("per-plan distributions keyed by canonical plan key");
        assert!(plan.1.ttf.count >= 1, "TTF flushed at the page boundary");
        assert!(plan.1.delay.count >= 1, "per-answer delays flushed");
    }
}
