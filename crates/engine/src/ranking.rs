//! Ranking functions exposed by the query-level API.
//!
//! The core algorithms are generic over any selective dioid (§2.2, §6.4); the
//! query-level API exposes the rankings used in the paper's evaluation and
//! examples with plain `f64` weights. Descending (max-plus) ranking is
//! realised by compiling with negated weights over the tropical min-plus
//! dioid — the two dioids are isomorphic under negation — so a single
//! instance type serves both directions. Advanced users can call
//! [`crate::compile::compile_with`] directly with any dioid.

/// How query answers are ranked.
///
/// `Hash` so that services can key prepared-plan caches by
/// (query, ranking).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RankingFunction {
    /// Ascending by the sum of the witness tuples' weights (the paper's
    /// default, tropical min-plus dioid).
    #[default]
    SumAscending,
    /// Descending by the sum of the witness tuples' weights ("heaviest
    /// first", max-plus dioid).
    SumDescending,
    /// Ascending by the *maximum* tuple weight in the witness (min-max
    /// bottleneck ranking; also a selective dioid).
    BottleneckAscending,
}

impl RankingFunction {
    /// Transform an input tuple weight into the internal (min-plus) weight.
    pub(crate) fn encode(self, w: f64) -> f64 {
        match self {
            RankingFunction::SumAscending | RankingFunction::BottleneckAscending => w,
            RankingFunction::SumDescending => -w,
        }
    }

    /// Transform an internal solution weight back into a user-facing weight.
    pub(crate) fn decode(self, w: f64) -> f64 {
        match self {
            RankingFunction::SumAscending | RankingFunction::BottleneckAscending => w,
            RankingFunction::SumDescending => -w,
        }
    }

    /// Whether this ranking aggregates with `max` instead of `+`.
    pub(crate) fn is_bottleneck(self) -> bool {
        matches!(self, RankingFunction::BottleneckAscending)
    }

    /// The aggregation used when pre-combining weights outside the dioid
    /// machinery (bag materialisation in the cycle decomposition, baseline
    /// joins): `+` for the sum rankings, `max` for the bottleneck ranking.
    pub(crate) fn combine_fn(self) -> fn(f64, f64) -> f64 {
        if self.is_bottleneck() {
            f64::max
        } else {
            |a, b| a + b
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descending_round_trips_through_negation() {
        let r = RankingFunction::SumDescending;
        assert_eq!(r.decode(r.encode(3.5)), 3.5);
        assert_eq!(r.encode(2.0), -2.0);
    }

    #[test]
    fn ascending_is_identity() {
        let r = RankingFunction::SumAscending;
        assert_eq!(r.encode(7.0), 7.0);
        assert_eq!(r.decode(7.0), 7.0);
        assert!(!r.is_bottleneck());
        assert!(RankingFunction::BottleneckAscending.is_bottleneck());
    }
}
