//! Sharded preparation and enumeration: hash-partitioned per-shard T-DP
//! with a ranked k-way merge.
//!
//! The paper's TTF guarantee is dominated by the `O(n)` preprocessing sweep
//! over one monolithic T-DP instance. [`ShardedPreparedQuery`] splits that
//! cost: the database is hash-partitioned on a **shard variable** — a join
//! variable chosen so that the partition is *co-partitioning* (every
//! relation binding the variable is split on the columns binding it, every
//! other relation is replicated) — and one full [`PreparedQuery`] is
//! compiled + preprocessed per shard **in parallel** under
//! [`std::thread::scope`]. Because every answer binds the shard variable to
//! exactly one value, and all tuples joinable on that value land in the same
//! shard, the per-shard answer sets are **disjoint** and their union is
//! exactly the unsharded answer set.
//!
//! [`ShardedCursor`] then merges the per-shard ranked streams through the
//! [`UnionEnumerator`] discipline (the paper's UT-DP union of §5.2, reused
//! here as a shard merge): each shard stream arrives in non-decreasing
//! encoded-weight order, so a k-way heap on the key
//! `(encoded weight, head values)` yields a globally ranked stream that is
//! bit-identical to the unsharded [`PreparedQuery`] stream whenever answer
//! weights are distinct. Under exact weight ties the merge orders by head
//! values — a deterministic total order independent of shard count — whereas
//! a single instance's tie order is an algorithm artifact; both streams
//! enumerate the same tie *set*.
//!
//! Witnesses survive sharding: per-shard answers carry shard-local tuple
//! ids, which the cursor translates back to the unsharded id space through
//! the partition's tid maps ([`anyk_storage::ShardSpec::tid_maps`]), so a
//! merged answer is indistinguishable from its unsharded twin.

use crate::answer::Answer;
use crate::error::EngineError;
use crate::prepared::{CancellationToken, Page, PrepareOptions, PreparedQuery};
use anyk_core::dioid::OrderedF64;
use anyk_core::{AnyKAlgorithm, MemoryStats, UnionEnumerator};
use anyk_obs::{Clock, DelayRecorder, HistogramSnapshot, MonotonicClock, PlanObs};
use anyk_query::{ConjunctiveQuery, RankingFunction};
use anyk_storage::{Database, DeltaBatch, ShardSpec, TupleId, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// A conjunctive query hash-partitioned into co-partitioned shards, each
/// compiled and preprocessed into its own [`PreparedQuery`] (in parallel),
/// ready to enumerate through a ranked k-way merge ([`ShardedCursor`]).
///
/// `Send + Sync` like [`PreparedQuery`]: wrap in an `Arc`, open cursors from
/// any number of threads.
pub struct ShardedPreparedQuery {
    /// The unsharded base snapshot the partition was taken from.
    db: Arc<Database>,
    query: ConjunctiveQuery,
    ranking: RankingFunction,
    /// The routing spec (shard count + per-relation key columns), kept for
    /// delta routing ([`ShardedPreparedQuery::refresh`]).
    spec: ShardSpec,
    /// The join variable the partition hashes on.
    shard_var: String,
    shards: Vec<Arc<PreparedQuery>>,
    /// `witness_maps[shard][atom]`: shard-local → global tuple-id map for
    /// atoms over partitioned relations, `None` (identity) for replicated
    /// ones.
    witness_maps: Vec<Vec<Option<Arc<Vec<TupleId>>>>>,
}

/// Pick the shard variable and build the routing spec for `query`.
///
/// A variable `v` is eligible when (a) every atom binding `v` binds it at
/// exactly one position, and (b) for each relation, either *no* atom over it
/// binds `v`, or *every* atom over it binds `v` at the same column — the
/// condition under which partitioning the relation on that column keeps all
/// of its uses consistent. Among eligible variables the one bound by the
/// most atoms wins (best data split), ties broken lexicographically so the
/// choice is deterministic.
fn derive_spec(
    query: &ConjunctiveQuery,
    shards: usize,
) -> Result<(ShardSpec, String), EngineError> {
    let atoms = query.atoms();
    // Best candidate so far: (atoms bound, variable, per-relation column).
    type Candidate = (usize, String, Vec<(String, usize)>);
    let mut best: Option<Candidate> = None;
    for var in query.variables() {
        // Per relation: the column every atom over it binds `var` at
        // (`Some(col)`), or `None` if its atoms do not bind `var`. A
        // conflict disqualifies the variable.
        let mut col_of: Vec<(String, Option<usize>)> = Vec::new();
        let mut bound_atoms = 0usize;
        let mut ok = true;
        for atom in atoms {
            let positions: Vec<usize> = atom
                .variables
                .iter()
                .enumerate()
                .filter_map(|(i, x)| (*x == var).then_some(i))
                .collect();
            if positions.len() > 1 {
                ok = false; // R(x, x): no single routing column
                break;
            }
            let col = positions.first().copied();
            if col.is_some() {
                bound_atoms += 1;
            }
            match col_of.iter_mut().find(|(name, _)| *name == atom.relation) {
                Some((_, existing)) => {
                    if *existing != col {
                        ok = false; // same relation, inconsistent binding
                        break;
                    }
                }
                None => col_of.push((atom.relation.clone(), col)),
            }
        }
        if !ok || bound_atoms == 0 {
            continue;
        }
        let partitioned: Vec<(String, usize)> = col_of
            .into_iter()
            .filter_map(|(name, col)| col.map(|c| (name, c)))
            .collect();
        let better = match &best {
            None => true,
            Some((n, v, _)) => bound_atoms > *n || (bound_atoms == *n && var < *v),
        };
        if better {
            best = Some((bound_atoms, var, partitioned));
        }
    }
    let Some((_, var, partitioned)) = best else {
        return Err(EngineError::ShardingUnsupported(
            "no join variable admits a consistent co-partitioning".into(),
        ));
    };
    let mut spec = ShardSpec::new(shards);
    for (relation, col) in partitioned {
        spec = spec.partition_by(relation, vec![col]);
    }
    Ok((spec, var))
}

impl ShardedPreparedQuery {
    /// Partition `db` into `shards` co-partitioned shard databases and
    /// compile + preprocess one [`PreparedQuery`] per shard in parallel.
    ///
    /// `options.threads` is the **total** bottom-up worker budget: each
    /// shard's sweep runs with `max(1, total / shards)` workers so the
    /// scoped shard threads do not oversubscribe the machine (`None` =
    /// the `ANYK_THREADS` env default).
    pub fn prepare(
        db: Arc<Database>,
        query: &ConjunctiveQuery,
        ranking: RankingFunction,
        shards: usize,
        options: PrepareOptions,
    ) -> Result<Self, EngineError> {
        Self::build(db, query.clone(), ranking, shards, options)
    }

    /// Prepare a [`QuerySpec`](anyk_query::QuerySpec) sharded; execution
    /// attributes (`algorithm`, `limit`, `shards`) are left to the caller,
    /// like [`PreparedQuery::from_spec`]. Specs with selection predicates
    /// are rejected ([`EngineError::ShardingUnsupported`]): predicate
    /// pushdown compiles over filtered scratch copies whose tuple ids have
    /// no stable correspondence to the unsharded plan's, so the
    /// bit-identity guarantee could not cover witnesses.
    pub fn from_spec(
        db: Arc<Database>,
        spec: &anyk_query::QuerySpec,
        shards: usize,
        options: PrepareOptions,
    ) -> Result<Self, EngineError> {
        if !spec.predicates.is_empty() {
            return Err(EngineError::ShardingUnsupported(
                "selection predicates are not supported on sharded plans".into(),
            ));
        }
        let query = spec.to_query()?;
        Self::build(db, query, spec.ranking, shards, options)
    }

    fn build(
        db: Arc<Database>,
        query: ConjunctiveQuery,
        ranking: RankingFunction,
        shards: usize,
        options: PrepareOptions,
    ) -> Result<Self, EngineError> {
        anyk_core::faults::check("engine.shard")?;
        let (spec, shard_var) = derive_spec(&query, shards.max(1))?;
        let shard_dbs = {
            let _span = anyk_obs::phase::span(anyk_obs::Phase::ShardPartition);
            db.partition(&spec)
                .map_err(|e| EngineError::ShardingUnsupported(e.to_string()))?
        };

        // Local→global tuple-id maps, per partitioned relation, per shard.
        let mut maps_by_rel: HashMap<String, Vec<Arc<Vec<TupleId>>>> = HashMap::new();
        for (name, _) in spec.partitioned() {
            let rel = db
                .get(name)
                .expect("spec was validated against this database");
            let maps = spec
                .tid_maps(rel)
                .expect("listed relations are partitioned");
            maps_by_rel.insert(name.clone(), maps.into_iter().map(Arc::new).collect());
        }
        let witness_maps: Vec<Vec<Option<Arc<Vec<TupleId>>>>> = (0..spec.shards())
            .map(|s| {
                query
                    .atoms()
                    .iter()
                    .map(|a| maps_by_rel.get(&a.relation).map(|m| Arc::clone(&m[s])))
                    .collect()
            })
            .collect();

        // Parallel per-shard prepare: each shard gets an equal slice of the
        // bottom-up worker budget.
        let total_threads = options
            .threads
            .unwrap_or_else(anyk_core::tdp::default_bottom_up_threads);
        let per_shard = PrepareOptions {
            retain_delta: options.retain_delta,
            threads: Some((total_threads / spec.shards()).max(1)),
        };
        let query_ref = &query;
        let prepared: Result<Vec<Arc<PreparedQuery>>, EngineError> = std::thread::scope(|scope| {
            let handles: Vec<_> = shard_dbs
                .into_iter()
                .map(|sdb| {
                    scope.spawn(move || {
                        let _span = anyk_obs::phase::span(anyk_obs::Phase::ShardPrep);
                        PreparedQuery::prepare_opts(Arc::new(sdb), query_ref, ranking, per_shard)
                            .map(Arc::new)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                .collect()
        });
        Ok(ShardedPreparedQuery {
            db,
            query,
            ranking,
            spec,
            shard_var,
            shards: prepared?,
            witness_maps,
        })
    }

    /// The unsharded base snapshot the partition was taken from.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// The query this plan answers.
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    /// The ranking function in effect.
    pub fn ranking(&self) -> RankingFunction {
        self.ranking
    }

    /// The number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The join variable the partition hashes on.
    pub fn shard_variable(&self) -> &str {
        &self.shard_var
    }

    /// The per-shard prepared plans, in shard order (the serving layer uses
    /// these for per-shard MEM accounting and diagnostics).
    pub fn shard_plans(&self) -> &[Arc<PreparedQuery>] {
        &self.shards
    }

    /// The exact number of answers: the per-shard counts summed (the shard
    /// answer sets are disjoint).
    pub fn count_answers(&self) -> u128 {
        self.shards.iter().map(|s| s.count_answers()).sum()
    }

    /// A decoder for this query's answers, built over the unsharded base
    /// snapshot (shards share its dictionaries, so one decoder covers all).
    pub fn decoder(&self) -> crate::AnswerDecoder {
        crate::AnswerDecoder::for_query(&self.db, &self.query)
    }

    /// Whether [`ShardedPreparedQuery::refresh`] can patch every shard's
    /// plan in place under a delta batch.
    pub fn supports_refresh(&self) -> bool {
        self.shards.iter().all(|s| s.supports_refresh())
    }

    /// MEM(k) upper bound for the whole sharded enumeration: each shard
    /// profiled to `k` on its own, summed — what the merge would touch if
    /// every shard had to be driven `k` deep. `None` for `Recursive` and
    /// `Batch` (see [`PreparedQuery::mem_profile`]).
    pub fn mem_profile(&self, algorithm: AnyKAlgorithm, k: usize) -> Option<MemoryStats> {
        let mut total = MemoryStats::default();
        let mut any = false;
        for shard in &self.shards {
            if let Some(m) = shard.mem_profile(algorithm, k) {
                total.absorb(&m);
                any = true;
            }
        }
        any.then_some(total)
    }

    /// Delta-maintain every shard: route `batch` to the shards with
    /// [`ShardSpec::split_batch`] (consistent with the base partition, so
    /// each row lands with its join partners) and refresh each shard's plan
    /// against its slice. `new_db` must be this plan's base snapshot plus
    /// `batch`; the result's shard snapshots carry `new_db`'s generation.
    ///
    /// Like [`PreparedQuery::refresh`], the original is untouched — open
    /// sharded cursors keep streaming their pinned shard snapshots.
    pub fn refresh(
        &self,
        new_db: Arc<Database>,
        batch: &DeltaBatch,
    ) -> Result<ShardedPreparedQuery, EngineError> {
        let parts = self
            .spec
            .split_batch(&self.db, batch)
            .map_err(|e| EngineError::Internal(format!("shard delta routing failed: {e}")))?;
        let mut shards = Vec::with_capacity(self.shards.len());
        for (shard, part) in self.shards.iter().zip(&parts) {
            let mut sdb = shard
                .database()
                .apply_delta(part)
                .map_err(|e| EngineError::Internal(format!("shard delta apply failed: {e}")))?;
            sdb.set_generation(new_db.generation());
            shards.push(Arc::new(shard.refresh(Arc::new(sdb), part)?));
        }
        // Re-derive the tid maps over the post-delta global relations: the
        // deterministic routing guarantees the shard-local orders replayed
        // here match what `apply_delta` produced shard-side.
        let mut maps_by_rel: HashMap<String, Vec<Arc<Vec<TupleId>>>> = HashMap::new();
        for (name, _) in self.spec.partitioned() {
            let rel = new_db
                .get(name)
                .ok_or_else(|| EngineError::UnknownRelation(name.clone()))?;
            let maps = self
                .spec
                .tid_maps(rel)
                .expect("listed relations are partitioned");
            maps_by_rel.insert(name.clone(), maps.into_iter().map(Arc::new).collect());
        }
        let witness_maps = (0..self.spec.shards())
            .map(|s| {
                self.query
                    .atoms()
                    .iter()
                    .map(|a| maps_by_rel.get(&a.relation).map(|m| Arc::clone(&m[s])))
                    .collect()
            })
            .collect();
        Ok(ShardedPreparedQuery {
            db: new_db,
            query: self.query.clone(),
            ranking: self.ranking,
            spec: self.spec.clone(),
            shard_var: self.shard_var.clone(),
            shards,
            witness_maps,
        })
    }

    /// Open a merged enumeration cursor; see [`PreparedQuery::cursor`] for
    /// the `&Arc<Self>` receiver rationale.
    pub fn cursor(self: &Arc<Self>, algorithm: AnyKAlgorithm) -> ShardedCursor {
        ShardedCursor::new(Arc::clone(self), algorithm, None)
    }

    /// Like [`ShardedPreparedQuery::cursor`], ending the merged stream after
    /// `limit` answers.
    pub fn cursor_with_limit(
        self: &Arc<Self>,
        algorithm: AnyKAlgorithm,
        limit: Option<usize>,
    ) -> ShardedCursor {
        ShardedCursor::new(Arc::clone(self), algorithm, limit)
    }
}

impl std::fmt::Debug for ShardedPreparedQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedPreparedQuery")
            .field("query", &self.query.to_string())
            .field("ranking", &self.ranking)
            .field("shards", &self.shards.len())
            .field("shard_var", &self.shard_var)
            .finish()
    }
}

/// Merge key: encoded weight first (ascending in every ranking's encoding),
/// head values second — a total order on answers that does not depend on
/// how the data was sharded.
type MergeKey = (OrderedF64, Vec<Value>);

/// One shard's ranked stream, keyed for the merge heap and with witnesses
/// translated back to global tuple ids.
struct ShardStream {
    inner: Box<dyn crate::AnswerStream + 'static>,
    /// Per atom: shard-local → global tid map (`None` = identity).
    remap: Vec<Option<Arc<Vec<TupleId>>>>,
    ranking: RankingFunction,
}

impl Iterator for ShardStream {
    type Item = (MergeKey, Answer);
    fn next(&mut self) -> Option<Self::Item> {
        let a = self.inner.next()?;
        let witness = a
            .witness()
            .iter()
            .map(|&(atom, tid)| match &self.remap[atom] {
                Some(map) => (atom, map[tid]),
                None => (atom, tid),
            })
            .collect();
        let values = a.values().to_vec();
        let key = (
            OrderedF64::from(self.ranking.encode(a.weight())),
            values.clone(),
        );
        Some((key, Answer::new(a.weight(), values, witness)))
    }
}

/// A resumable, pageable enumeration session over a [`ShardedPreparedQuery`]:
/// the per-shard any-k iterators plus the k-way merge heap, parked between
/// page pulls. Mirrors [`AnswerCursor`](crate::AnswerCursor) — `Send`,
/// cancellable between answers, delay-recordable at the merged level (the
/// per-shard streams do not record; a merged answer is one answer).
pub struct ShardedCursor {
    // Field order is load-bearing: `merge` holds streams borrowing from the
    // plans behind `owner` and must drop first (fields drop in declaration
    // order).
    merge: UnionEnumerator<MergeKey, Answer, ShardStream>,
    algorithm: AnyKAlgorithm,
    served: usize,
    remaining: Option<usize>,
    done: bool,
    cancel: CancellationToken,
    cancelled: bool,
    recorder: Option<Box<DelayRecorder>>,
    owner: Arc<ShardedPreparedQuery>,
}

impl ShardedCursor {
    fn new(
        owner: Arc<ShardedPreparedQuery>,
        algorithm: AnyKAlgorithm,
        limit: Option<usize>,
    ) -> Self {
        let sources: Vec<ShardStream> = owner
            .shards
            .iter()
            .zip(&owner.witness_maps)
            .map(|(shard, remap)| {
                let iter: Box<dyn crate::AnswerStream + '_> = shard.enumerate(algorithm);
                // SAFETY: same fiction as `AnswerCursor::new` — the stream
                // borrows only from the `PreparedQuery` heap allocations
                // behind the `Arc`s held (transitively) by `owner`, which
                // never move and are never mutated. The cursor stores
                // `owner` after `merge` so every stream drops before the
                // plans it borrows, and the streams are never handed out.
                let iter: Box<dyn crate::AnswerStream + 'static> =
                    unsafe { std::mem::transmute(iter) };
                ShardStream {
                    inner: iter,
                    remap: remap.clone(),
                    ranking: owner.ranking,
                }
            })
            .collect();
        let recorder = anyk_obs::recording_enabled().then(|| {
            Box::new(DelayRecorder::new(
                Arc::new(MonotonicClock::new()) as Arc<dyn Clock>,
                None,
            ))
        });
        ShardedCursor {
            // Shard streams are disjoint (co-partitioning), so no dedup.
            merge: UnionEnumerator::new(sources),
            algorithm,
            served: 0,
            remaining: limit,
            done: limit == Some(0),
            cancel: CancellationToken::new(),
            cancelled: false,
            recorder,
            owner,
        }
    }

    /// The sharded plan this cursor enumerates.
    pub fn prepared(&self) -> &Arc<ShardedPreparedQuery> {
        &self.owner
    }

    /// The any-k algorithm driving every shard stream.
    pub fn algorithm(&self) -> AnyKAlgorithm {
        self.algorithm
    }

    /// Answers served so far across all pages.
    pub fn served(&self) -> usize {
        self.served
    }

    /// True once the merged stream has been exhausted.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// The cursor's cancellation token; see
    /// [`AnswerCursor::cancel_token`](crate::AnswerCursor::cancel_token).
    pub fn cancel_token(&self) -> &CancellationToken {
        &self.cancel
    }

    /// True once a page pull observed a tripped token and ended the stream
    /// early.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled
    }

    /// The live MEM(k) footprint summed across every shard's enumeration
    /// structures — the figure a serving layer charges the session
    /// (per-shard MEM summed, plus nothing for the merge heap itself, which
    /// holds at most one answer per shard). `None` when no shard reports
    /// (`Recursive`, `Batch`).
    pub fn memory_stats(&self) -> Option<MemoryStats> {
        let mut total = MemoryStats::default();
        let mut any = false;
        for source in self.merge.sources() {
            if let Some(m) = source.inner.live_mem() {
                total.absorb(&m);
                any = true;
            }
        }
        any.then_some(total)
    }

    /// Replace the cursor's delay instrumentation; see
    /// [`AnswerCursor::enable_recording`](crate::AnswerCursor::enable_recording).
    pub fn enable_recording(&mut self, clock: Arc<dyn Clock>, plan: Option<Arc<PlanObs>>) {
        self.recorder =
            anyk_obs::recording_enabled().then(|| Box::new(DelayRecorder::new(clock, plan)));
    }

    /// The merged stream's per-answer delay distribution; see
    /// [`AnswerCursor::delay_histogram`](crate::AnswerCursor::delay_histogram).
    pub fn delay_histogram(&self) -> Option<HistogramSnapshot> {
        self.recorder.as_deref().map(DelayRecorder::delays)
    }

    /// Nanoseconds to the merged stream's first answer; see
    /// [`AnswerCursor::ttf_nanos`](crate::AnswerCursor::ttf_nanos).
    pub fn ttf_nanos(&self) -> Option<u64> {
        self.recorder.as_deref().and_then(DelayRecorder::ttf_nanos)
    }

    /// Pull the next page of up to `page_size` merged answers.
    pub fn next_page(&mut self, page_size: usize) -> Page {
        let mut answers = Vec::new();
        let done = self.next_page_into(page_size, &mut answers);
        Page { answers, done }
    }

    /// Pull the next page into `out` (cleared first); returns `true` when
    /// the merged stream is exhausted. Identical contract to
    /// [`AnswerCursor::next_page_into`](crate::AnswerCursor::next_page_into).
    pub fn next_page_into(&mut self, page_size: usize, out: &mut Vec<Answer>) -> bool {
        out.clear();
        if self.done {
            return true;
        }
        let quota = match self.remaining {
            Some(r) => page_size.min(r),
            None => page_size,
        };
        while out.len() < quota {
            if self.cancel.is_cancelled() {
                self.cancelled = true;
                self.done = true;
                break;
            }
            anyk_core::faults::checkpoint("engine.page");
            match self.merge.next() {
                Some((_, answer)) => {
                    if let Some(r) = self.recorder.as_deref_mut() {
                        r.observe_answer();
                    }
                    out.push(answer);
                }
                None => {
                    self.done = true;
                    break;
                }
            }
        }
        if let Some(r) = &mut self.remaining {
            *r -= out.len();
            if *r == 0 {
                self.done = true;
            }
        }
        self.served += out.len();
        if let Some(r) = self.recorder.as_deref_mut() {
            r.flush();
        }
        self.done
    }
}

impl std::fmt::Debug for ShardedCursor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCursor")
            .field("algorithm", &self.algorithm)
            .field("shards", &self.owner.shards.len())
            .field("served", &self.served)
            .field("done", &self.done)
            .finish()
    }
}

// The serving layer shares sharded plans across threads and parks sharded
// cursors in its session table exactly like unsharded ones.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_send_sync::<ShardedPreparedQuery>();
    assert_send::<ShardedCursor>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use anyk_query::QueryBuilder;
    use anyk_storage::{Relation, Tuple};

    /// xorshift64* — deterministic test randomness without a dependency.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
        /// Globally distinct weights → a unique ranked order (bit-identity
        /// is well-defined).
        fn weight(&mut self, used: &mut std::collections::HashSet<u64>) -> f64 {
            loop {
                let w = self.next() % 1_000_000;
                if used.insert(w) {
                    return w as f64 / 64.0;
                }
            }
        }
    }

    fn path_db(n: u64, seed: u64) -> Arc<Database> {
        let mut rng = Rng(seed);
        let mut used = std::collections::HashSet::new();
        let mut db = Database::new();
        let mut r1 = Relation::new("R1", 2);
        let mut r2 = Relation::new("R2", 2);
        for i in 0..n {
            r1.push_edge(i, i % 13, rng.weight(&mut used));
            r2.push_edge(i % 13, i, rng.weight(&mut used));
            if i % 3 == 0 {
                r2.push_edge(i % 13, i + n, rng.weight(&mut used));
            }
        }
        db.add(r1);
        db.add(r2);
        Arc::new(db)
    }

    fn assert_bit_identical(db: &Arc<Database>, query: &ConjunctiveQuery, shards: usize) {
        let flat = Arc::new(
            PreparedQuery::prepare(Arc::clone(db), query, RankingFunction::SumAscending).unwrap(),
        );
        let sharded = Arc::new(
            ShardedPreparedQuery::prepare(
                Arc::clone(db),
                query,
                RankingFunction::SumAscending,
                shards,
                PrepareOptions::default(),
            )
            .unwrap(),
        );
        assert_eq!(sharded.count_answers(), flat.count_answers());
        for alg in AnyKAlgorithm::ALL {
            let reference: Vec<Answer> = flat.enumerate(alg).collect();
            for page_size in [1, 3, 1000] {
                let mut cursor = sharded.cursor(alg);
                let mut merged = Vec::new();
                loop {
                    let page = cursor.next_page(page_size);
                    merged.extend(page.answers);
                    if page.done {
                        break;
                    }
                }
                assert_eq!(merged, reference, "algorithm {alg}, page size {page_size}");
                assert_eq!(cursor.served(), reference.len());
            }
        }
    }

    #[test]
    fn sharded_path_stream_is_bit_identical_for_every_algorithm_and_page_size() {
        let db = path_db(60, 7);
        let query = QueryBuilder::path(2).build();
        for shards in [1, 2, 4, 7] {
            assert_bit_identical(&db, &query, shards);
        }
    }

    #[test]
    fn sharded_star_stream_is_bit_identical() {
        let mut rng = Rng(11);
        let mut used = std::collections::HashSet::new();
        let mut db = Database::new();
        for name in ["S1", "S2", "S3"] {
            let mut r = Relation::new(name, 2);
            for i in 0..40u64 {
                r.push_edge(i % 9, i, rng.weight(&mut used));
            }
            db.add(r);
        }
        let db = Arc::new(db);
        let query = QueryBuilder::new()
            .atom("S1", &["x", "a"])
            .atom("S2", &["x", "b"])
            .atom("S3", &["x", "c"])
            .build();
        assert_bit_identical(&db, &query, 4);
    }

    #[test]
    fn sharded_cycle_stream_matches_unsharded_answers() {
        // 4-cycle: decomposed plans drop witnesses; weights collide across
        // trees, so compare the ranked weight sequence and the answer set.
        let mut db = Database::new();
        for i in 1..=4 {
            let mut r = Relation::new(format!("R{i}"), 2);
            for j in 1..=6u64 {
                r.push_edge(0, j, (i as f64) + (j as f64) / 10.0);
                r.push_edge(j, 0, (i as f64) * 2.0 + (j as f64) / 10.0);
            }
            db.add(r);
        }
        let db = Arc::new(db);
        let query = QueryBuilder::cycle(4).build();
        let flat = Arc::new(
            PreparedQuery::prepare(Arc::clone(&db), &query, RankingFunction::SumAscending).unwrap(),
        );
        let sharded = Arc::new(
            ShardedPreparedQuery::prepare(
                Arc::clone(&db),
                &query,
                RankingFunction::SumAscending,
                3,
                PrepareOptions::default(),
            )
            .unwrap(),
        );
        let reference: Vec<Answer> = flat.enumerate(AnyKAlgorithm::Take2).collect();
        let merged = {
            let mut cursor = sharded.cursor(AnyKAlgorithm::Take2);
            let mut out = Vec::new();
            loop {
                let page = cursor.next_page(64);
                out.extend(page.answers);
                if page.done {
                    break;
                }
            }
            out
        };
        assert_eq!(merged.len(), reference.len());
        for (m, r) in merged.iter().zip(&reference) {
            assert!((m.weight() - r.weight()).abs() < 1e-9);
        }
        let key = |a: &Answer| (a.values().to_vec(), (a.weight() * 1e6).round() as i64);
        let mut ms: Vec<_> = merged.iter().map(key).collect();
        let mut rs: Vec<_> = reference.iter().map(key).collect();
        ms.sort();
        rs.sort();
        assert_eq!(ms, rs);
    }

    #[test]
    fn witnesses_are_remapped_to_global_tuple_ids() {
        let db = path_db(30, 3);
        let query = QueryBuilder::path(2).build();
        let flat = Arc::new(
            PreparedQuery::prepare(Arc::clone(&db), &query, RankingFunction::SumAscending).unwrap(),
        );
        let sharded = Arc::new(
            ShardedPreparedQuery::prepare(
                Arc::clone(&db),
                &query,
                RankingFunction::SumAscending,
                4,
                PrepareOptions::default(),
            )
            .unwrap(),
        );
        let reference: Vec<Answer> = flat.enumerate(AnyKAlgorithm::Lazy).collect();
        let merged = sharded
            .cursor(AnyKAlgorithm::Lazy)
            .next_page(10_000)
            .answers;
        for (m, r) in merged.iter().zip(&reference) {
            assert_eq!(m.witness(), r.witness());
            // A witness is only meaningful if it resolves in the *global*
            // database to tuples consistent with the answer values.
            for &(atom, tid) in m.witness() {
                let rel = &query.atoms()[atom].relation;
                assert!(tid < db.expect(rel).len());
            }
        }
    }

    #[test]
    fn limits_cancellation_and_empty_shards_behave_like_answer_cursor() {
        let db = path_db(40, 19);
        let query = QueryBuilder::path(2).build();
        // More shards than join values → some shards are empty.
        let sharded = Arc::new(
            ShardedPreparedQuery::prepare(
                Arc::clone(&db),
                &query,
                RankingFunction::SumAscending,
                32,
                PrepareOptions::default(),
            )
            .unwrap(),
        );
        let total = sharded.count_answers() as usize;
        assert!(total > 5);

        let mut limited = sharded.cursor_with_limit(AnyKAlgorithm::Eager, Some(5));
        let page = limited.next_page(100);
        assert_eq!(page.answers.len(), 5);
        assert!(page.done);

        let mut zero = sharded.cursor_with_limit(AnyKAlgorithm::Eager, Some(0));
        assert!(zero.is_done());
        assert!(zero.next_page(10).answers.is_empty());

        let mut cur = sharded.cursor(AnyKAlgorithm::Take2);
        cur.cancel_token().clone().cancel();
        let page = cur.next_page(100);
        assert!(page.answers.is_empty());
        assert!(page.done);
        assert!(cur.is_cancelled());
    }

    #[test]
    fn sharded_refresh_matches_rebuild_and_unsharded_refresh() {
        let db = path_db(25, 5);
        let query = QueryBuilder::path(2).build();
        let options = PrepareOptions {
            retain_delta: true,
            threads: None,
        };
        let sharded = Arc::new(
            ShardedPreparedQuery::prepare(
                Arc::clone(&db),
                &query,
                RankingFunction::SumAscending,
                3,
                options,
            )
            .unwrap(),
        );
        assert!(sharded.supports_refresh());
        let batch = DeltaBatch::new()
            .delete("R1", 2)
            .delete("R2", 7)
            .insert("R1", Tuple::new(vec![100, 4], 0.015625))
            .insert("R2", Tuple::new(vec![4, 900], 0.03125));
        let new_db = Arc::new(db.apply_delta(&batch).unwrap());
        let refreshed = Arc::new(sharded.refresh(Arc::clone(&new_db), &batch).unwrap());
        let rebuilt = Arc::new(
            PreparedQuery::prepare(Arc::clone(&new_db), &query, RankingFunction::SumAscending)
                .unwrap(),
        );
        for alg in AnyKAlgorithm::ALL {
            let want: Vec<Answer> = rebuilt.enumerate(alg).collect();
            let got = refreshed.cursor(alg).next_page(100_000).answers;
            assert_eq!(got, want, "algorithm {alg}");
        }
        for shard in refreshed.shard_plans() {
            assert_eq!(shard.database().generation(), new_db.generation());
        }
    }

    #[test]
    fn self_join_and_predicates_are_rejected_cleanly() {
        let mut db = Database::new();
        let mut r = Relation::new("R", 2);
        r.push_edge(1, 1, 1.0);
        db.add(r);
        // R(x, x): the only variable binds one atom twice.
        let q = QueryBuilder::new().atom("R", &["x", "x"]).build();
        assert!(matches!(
            ShardedPreparedQuery::prepare(
                Arc::new(db),
                &q,
                RankingFunction::SumAscending,
                2,
                PrepareOptions::default(),
            ),
            Err(EngineError::ShardingUnsupported(_))
        ));

        let db = path_db(10, 1);
        let spec = anyk_query::QuerySpec::parse("Q(x, y, z) :- R1(x, y), R2(y, z), y = 3").unwrap();
        assert!(matches!(
            ShardedPreparedQuery::from_spec(db, &spec, 2, PrepareOptions::default()),
            Err(EngineError::ShardingUnsupported(_))
        ));
    }

    #[test]
    fn shard_variable_choice_is_deterministic_and_consistent() {
        let db = path_db(10, 2);
        let query = QueryBuilder::path(2).build();
        let (spec, var) = derive_spec(&query, 4).unwrap();
        // path(2): R1(x1, x2), R2(x2, x3); x2 binds both atoms.
        assert_eq!(var, "x2");
        assert_eq!(spec.columns_for("R1"), Some(&[1][..]));
        assert_eq!(spec.columns_for("R2"), Some(&[0][..]));
        assert!(db.partition(&spec).is_ok());

        // A relation used both with and without the candidate variable
        // cannot be partitioned on it: E(a, b), E(b, c) conflicts for every
        // variable (b binds col 1 in one atom, col 0 in the other; a and c
        // bind one atom each but E's other atom doesn't bind them).
        let q = QueryBuilder::new()
            .atom("E", &["a", "b"])
            .atom("E", &["b", "c"])
            .build();
        assert!(matches!(
            derive_spec(&q, 2),
            Err(EngineError::ShardingUnsupported(_))
        ));
    }
}
