//! # anyk-engine
//!
//! Compiles full conjunctive queries over weighted relations into (unions of)
//! T-DP problems and runs the any-k ranked-enumeration algorithms of
//! [`anyk_core`] over them.
//!
//! * [`compile`] — acyclic CQ + join tree → T-DP instance with the `O(ℓn)`
//!   equi-join "value node" encoding of Fig. 3;
//! * [`cycle`] — the simple-cycle decomposition of §5.3.1 (heavy/light
//!   partitioning into ℓ + 1 trees), turning an ℓ-cycle query into a UT-DP
//!   problem with `TTF = O(n^{2−2/ℓ})`;
//! * [`RankedQuery`] — the user-facing API: ranked enumeration of any full
//!   CQ (acyclic or simple-cycle) under a [`RankingFunction`], with a
//!   [`QuerySpec`](anyk_query::QuerySpec) / text entry point
//!   ([`RankedQuery::from_spec`], [`RankedQuery::from_text`]);
//! * `select` (internal) — selection pushdown: predicates
//!   (`y = 7`, `name = "alice"`) and repeated variables within an atom
//!   (`R(x, x)`) become filtered relation copies built in one linear pass
//!   before compilation, exactly the preprocessing reduction of §2.1;
//! * [`PreparedQuery`] / [`AnswerCursor`] — the service-facing split of the
//!   same machinery: an owning, `Send + Sync` compiled plan shared behind an
//!   `Arc`, plus per-session resumable cursors that pull ranked answers in
//!   pages bit-identical to the one-shot stream ([`prepared`]);
//! * `refresh` (internal) — delta maintenance: a plan compiled with delta
//!   support ([`PreparedQuery::prepare_delta`]) is patched under a
//!   [`DeltaBatch`](anyk_storage::DeltaBatch) ([`PreparedQuery::refresh`])
//!   instead of recompiled, re-sweeping only the dirty cone of the
//!   bottom-up phase;
//! * baselines used by the paper's evaluation: [`yannakakis`] (Batch),
//!   [`naive_sql`] (a generic hash-join + sort engine standing in for the
//!   PostgreSQL comparison of Fig. 14), [`wcoj`] (a Generic-Join–style
//!   worst-case optimal join, §9.1.1 / Fig. 17), and [`rankjoin`]
//!   (an HRJN-style middleware top-k operator, §9.1.3);
//! * [`projection`] — join queries with projections under all-weight and
//!   min-weight semantics (§8.1);
//! * [`AnswerDecoder`] — maps answers over dictionary-encoded relations back
//!   to their original strings (the engine itself only ever sees dense ids).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod answer;
pub mod compile;
pub mod cycle;
mod error;
pub mod naive_sql;
pub mod prepared;
pub mod projection;
mod ranked;
pub mod rankjoin;
mod refresh;
mod select;
pub mod shard;
pub mod wcoj;
pub mod yannakakis;

pub use answer::{Answer, AnswerDecoder, DecodedValue};
pub use compile::Compiled;
pub use error::EngineError;
pub use prepared::{AnswerCursor, CancellationToken, Page, PrepareOptions, PreparedQuery};
pub use ranked::{AnswerStream, RankedQuery};
pub use shard::{ShardedCursor, ShardedPreparedQuery};
// Re-exported from `anyk-query`, where request descriptions (`QuerySpec`)
// live; existing `anyk_engine::RankingFunction` imports keep working.
pub use anyk_query::RankingFunction;
