//! Compilation of acyclic full conjunctive queries into T-DP instances
//! (§3, §5.1) using the `O(ℓn)` equi-join encoding of Fig. 3.
//!
//! Every atom of the query becomes one *output* stage whose states are the
//! tuples of the referenced relation (payload = tuple id, weight = the
//! tuple's encoded weight). Between a child atom's stage and its parent's
//! stage sits an auxiliary **value-node** stage with one state per distinct
//! join-key value: parent tuples connect to the value node of their key with
//! weight `1̄`, and the value node connects to every child tuple with that
//! key. This keeps the number of decisions linear in the input instead of
//! quadratic, and — crucially for `Recursive` — lets all parent tuples with
//! the same key *share* the ranked stream of suffixes below the value node.

use crate::answer::Answer;
use crate::error::EngineError;
use anyk_core::dioid::{Dioid, OrderedF64};
use anyk_core::solution::Solution;
use anyk_core::tdp::{NodeId, StageId, TdpBuilder, TdpInstance};
use anyk_query::{gyo, ConjunctiveQuery, JoinTree};
use anyk_storage::{Database, RowRef, Value};
use std::collections::HashMap;

/// A compiled acyclic query: the T-DP instance plus the metadata needed to
/// turn its [`Solution`]s back into query [`Answer`]s.
#[derive(Debug, Clone)]
pub struct Compiled<D: Dioid> {
    /// The T-DP instance (bottom-up phase already run).
    pub instance: TdpInstance<D>,
    /// For each output stage (in the instance's serial order): the index of
    /// the query atom it encodes.
    output_atoms: Vec<usize>,
    /// Relation name per atom.
    pub(crate) atom_relations: Vec<String>,
    /// The query's head variables.
    head_vars: Vec<String>,
    /// For each head variable: (position within `output_atoms`, column of
    /// that atom's relation holding the variable's value).
    var_sources: Vec<(usize, usize)>,
    /// The tuple↔state bookkeeping needed to maintain the instance under
    /// input deltas (see [`crate::refresh`]); captured only by
    /// [`compile_with_delta`].
    pub(crate) delta: Option<DeltaSupport>,
}

/// Per-compilation bookkeeping for delta maintenance: which T-DP state each
/// input tuple became, and how atoms link through value-node stages.
#[derive(Debug, Clone)]
pub(crate) struct DeltaSupport {
    /// Atom indices in join-tree traversal order (root first).
    pub(crate) order: Vec<usize>,
    /// The output stage of each atom (by atom index).
    pub(crate) stage_of_atom: Vec<StageId>,
    /// For each non-root atom: how it hangs off its parent. `None` for the
    /// traversal root.
    pub(crate) parent_link: Vec<Option<AtomLink>>,
    /// Child atoms of each atom in the join tree (by atom index).
    pub(crate) children: Vec<Vec<usize>>,
    /// State per (atom, tuple id); `None` for tuples dropped by the
    /// semi-join part of the encoding.
    pub(crate) states: Vec<Vec<Option<NodeId>>>,
}

/// How a non-root atom connects to its parent in the equi-join encoding.
#[derive(Debug, Clone)]
pub(crate) struct AtomLink {
    /// The parent atom's index.
    pub(crate) parent_atom: usize,
    /// Join-key positions within the parent atom's relation.
    pub(crate) parent_positions: Vec<usize>,
    /// Join-key positions within this atom's relation.
    pub(crate) child_positions: Vec<usize>,
    /// The value-node stage between parent and child.
    pub(crate) value_stage: StageId,
    /// The value node of every join-key value that has one — keys occurring
    /// on the parent side at compile time, plus keys whose vnode a later
    /// refresh created. Orphaned vnodes (all parents deleted) stay mapped:
    /// the "state exists ⇔ key has a vnode" invariant is what lets a refresh
    /// materialise new child tuples exactly once.
    pub(crate) vnode_by_key: std::collections::HashMap<Vec<Value>, NodeId>,
}

/// Validate that every atom references an existing relation of matching arity.
pub fn validate(db: &Database, query: &ConjunctiveQuery) -> Result<(), EngineError> {
    for atom in query.atoms() {
        let rel = db
            .get(&atom.relation)
            .ok_or_else(|| EngineError::UnknownRelation(atom.relation.clone()))?;
        if rel.arity() != atom.arity() {
            return Err(EngineError::ArityMismatch {
                relation: atom.relation.clone(),
                atom_arity: atom.arity(),
                relation_arity: rel.arity(),
            });
        }
    }
    Ok(())
}

/// Compile an acyclic full CQ into a T-DP instance over the dioid `D`,
/// weighting each input tuple with `weight_fn`.
///
/// Returns [`EngineError::UnsupportedCyclicQuery`] if the query has no join
/// tree (use [`crate::cycle`] or [`crate::wcoj`] for cyclic queries).
pub fn compile_with<D, F>(
    db: &Database,
    query: &ConjunctiveQuery,
    weight_fn: F,
) -> Result<Compiled<D>, EngineError>
where
    D: Dioid<V = OrderedF64>,
    F: Fn(RowRef<'_>) -> f64,
{
    compile_with_opts(db, query, weight_fn, false, None)
}

/// Like [`compile_with`], additionally retaining the full T-DP topology and
/// the tuple↔state bookkeeping needed for [`crate::refresh`] (delta
/// maintenance). Costs one extra CSR copy plus `O(n)` state maps.
pub fn compile_with_delta<D, F>(
    db: &Database,
    query: &ConjunctiveQuery,
    weight_fn: F,
) -> Result<Compiled<D>, EngineError>
where
    D: Dioid<V = OrderedF64>,
    F: Fn(RowRef<'_>) -> f64,
{
    compile_with_opts(db, query, weight_fn, true, None)
}

/// The fully explicit compile entry point: `retain_delta` as in
/// [`compile_with_delta`], plus `threads` pinning the bottom-up sweep's
/// worker count (`None` falls back to the `ANYK_THREADS` process env via
/// [`anyk_core::tdp::default_bottom_up_threads`]). Sharded preparation uses
/// this to keep per-shard compiles from oversubscribing the machine.
pub fn compile_with_opts<D, F>(
    db: &Database,
    query: &ConjunctiveQuery,
    weight_fn: F,
    retain_delta: bool,
    threads: Option<usize>,
) -> Result<Compiled<D>, EngineError>
where
    D: Dioid<V = OrderedF64>,
    F: Fn(RowRef<'_>) -> f64,
{
    validate(db, query)?;
    let join_tree = gyo::join_tree(query.atoms())
        .ok_or_else(|| EngineError::UnsupportedCyclicQuery(query.to_string()))?;
    compile_over_tree_inner(db, query, &join_tree, weight_fn, retain_delta, threads)
}

/// Compile an acyclic full CQ over an explicitly provided join tree (used by
/// the projection machinery, which picks a particular root). Structural
/// defects — a join-tree key not bound by its atom, a head variable missing
/// from the body — surface as typed [`EngineError::Query`] errors rather
/// than panics, since arbitrary names can reach this through the textual
/// query path.
pub fn compile_over_tree<D, F>(
    db: &Database,
    query: &ConjunctiveQuery,
    join_tree: &JoinTree,
    weight_fn: F,
) -> Result<Compiled<D>, EngineError>
where
    D: Dioid<V = OrderedF64>,
    F: Fn(RowRef<'_>) -> f64,
{
    compile_over_tree_inner(db, query, join_tree, weight_fn, false, None)
}

fn compile_over_tree_inner<D, F>(
    db: &Database,
    query: &ConjunctiveQuery,
    join_tree: &JoinTree,
    weight_fn: F,
    retain_delta: bool,
    threads: Option<usize>,
) -> Result<Compiled<D>, EngineError>
where
    D: Dioid<V = OrderedF64>,
    F: Fn(RowRef<'_>) -> f64,
{
    let atoms = query.atoms();
    let order = join_tree.traversal_order();
    let mut builder = TdpBuilder::<D>::new();
    builder.retain_topology(retain_delta);
    // Delta bookkeeping, filled only when `retain_delta` (see DeltaSupport).
    let mut parent_link: Vec<Option<AtomLink>> = vec![None; atoms.len()];
    let mut tree_children: Vec<Vec<usize>> = vec![Vec::new(); atoms.len()];

    // Stage id of each atom's (output) stage, indexed by atom index.
    let mut stage_of_atom: Vec<Option<StageId>> = vec![None; atoms.len()];
    // T-DP states of each atom's tuples, indexed by atom index then tuple id.
    // `None` for tuples that were not materialised (child tuples whose join
    // key never occurs on the parent side).
    let mut states_of_atom: Vec<Vec<Option<NodeId>>> = vec![Vec::new(); atoms.len()];

    for (visit_idx, &atom_idx) in order.iter().enumerate() {
        let atom = &atoms[atom_idx];
        let relation = db.expect(&atom.relation);
        if visit_idx == 0 {
            // Root atom: its stage hangs directly under the T-DP root and
            // every tuple connects to s₀.
            let stage = builder.add_stage_under_root(&atom.relation, true);
            stage_of_atom[atom_idx] = Some(stage);
            let mut states = vec![None; relation.len()];
            for (tid, tuple) in relation.iter() {
                let s = builder.add_state_with_payload(
                    stage.index(),
                    OrderedF64::from(weight_fn(tuple)),
                    tid as u64,
                );
                builder.connect_root(s);
                states[tid] = Some(s);
            }
            states_of_atom[atom_idx] = states;
            continue;
        }

        let parent_idx = join_tree
            .parent(atom_idx)
            .expect("non-root atom has a parent in the join tree");
        let parent_atom = &atoms[parent_idx];
        let parent_stage = stage_of_atom[parent_idx].expect("parent visited before child");

        // Join key: the variables shared between parent and child atoms
        // (possibly empty — a cross product — which yields a single value node).
        let key_vars = parent_atom.shared_variables(atom);
        let parent_positions = parent_atom.positions_of(&key_vars)?;
        let child_positions = atom.positions_of(&key_vars)?;
        let single_column = child_positions.len() == 1;

        let value_stage = builder.add_stage(
            &format!("{}⋈{}", parent_atom.relation, atom.relation),
            parent_stage,
            false,
        );
        let atom_stage = builder.add_stage(&atom.relation, value_stage, true);
        stage_of_atom[atom_idx] = Some(atom_stage);

        // One value node per distinct join-key value occurring on the parent
        // side; parent tuples connect to their key's value node. The index
        // comes from the database's per-(relation, key) cache — a self-join
        // or a star query re-joining the same parent key hits the cache — and
        // its retained tuple→group map resolves each parent tuple's group
        // with one array read (the build already hashed every row).
        let parent_relation = db.expect(&parent_atom.relation);
        let parent_index = db.index(&parent_atom.relation, &parent_positions);
        let mut vnode_of_group: Vec<Option<NodeId>> = vec![None; parent_index.num_groups()];
        for (ptid, pstate) in states_of_atom[parent_idx].iter().enumerate() {
            let &Some(pstate) = pstate else {
                continue;
            };
            let g = parent_index.group_of_tuple(ptid);
            let vnode = *vnode_of_group[g].get_or_insert_with(|| {
                builder.add_state_with_payload(value_stage.index(), D::one(), u64::MAX)
            });
            builder.connect(pstate, vnode);
        }
        debug_assert_eq!(states_of_atom[parent_idx].len(), parent_relation.len());
        if retain_delta {
            // Re-key the group-indexed vnodes by join-key value: group ids
            // are an artifact of this index build and would not survive a
            // delta, key values do.
            let vnode_by_key = vnode_of_group
                .iter()
                .enumerate()
                .filter_map(|(g, v)| v.map(|v| (parent_index.group(g).0.to_vec(), v)))
                .collect();
            parent_link[atom_idx] = Some(AtomLink {
                parent_atom: parent_idx,
                parent_positions: parent_positions.clone(),
                child_positions: child_positions.clone(),
                value_stage,
                vnode_by_key,
            });
            tree_children[parent_idx].push(atom_idx);
        }

        // Child tuples connect below the value node of their key (tuples with
        // keys that never occur on the parent side are dropped here — the
        // "semi-join" part of the encoding). Probing uses the single-column
        // fast path when the join key is one variable (the common case for
        // the paper's path/star/cycle queries): a sequential scan of the one
        // key column.
        let mut states = vec![None; relation.len()];
        if single_column {
            for (tid, &v) in relation.column(child_positions[0]).iter().enumerate() {
                if let Some(vnode) = parent_index.group_of1(v).and_then(|g| vnode_of_group[g]) {
                    let s = builder.add_state_with_payload(
                        atom_stage.index(),
                        OrderedF64::from(weight_fn(relation.tuple(tid))),
                        tid as u64,
                    );
                    builder.connect(vnode, s);
                    states[tid] = Some(s);
                }
            }
        } else {
            for (tid, state) in states.iter_mut().enumerate() {
                let g = parent_index.group_of_row_in(relation, tid, &child_positions);
                if let Some(vnode) = g.and_then(|g| vnode_of_group[g]) {
                    let s = builder.add_state_with_payload(
                        atom_stage.index(),
                        OrderedF64::from(weight_fn(relation.tuple(tid))),
                        tid as u64,
                    );
                    builder.connect(vnode, s);
                    *state = Some(s);
                }
            }
        }
        states_of_atom[atom_idx] = states;
    }

    let instance = builder
        .build_with_threads(threads.unwrap_or_else(anyk_core::tdp::default_bottom_up_threads));

    // Map serial output stages back to atom indices.
    let stage_to_atom: HashMap<StageId, usize> = stage_of_atom
        .iter()
        .enumerate()
        .filter_map(|(a, s)| s.map(|s| (s, a)))
        .collect();
    let output_atoms: Vec<usize> = instance
        .serial_order()
        .iter()
        .filter(|sid| instance.stage(**sid).is_output)
        .map(|sid| stage_to_atom[sid])
        .collect();

    // Where does each head variable come from?
    let head_vars = query.head_variables();
    let var_sources = head_vars
        .iter()
        .map(|v| {
            output_atoms
                .iter()
                .enumerate()
                .find_map(|(pos, &a)| {
                    atoms[a]
                        .variables
                        .iter()
                        .position(|x| x == v)
                        .map(|col| (pos, col))
                })
                .ok_or_else(|| {
                    EngineError::Query(anyk_query::QueryError::UnknownHeadVariable {
                        variable: v.clone(),
                    })
                })
        })
        .collect::<Result<Vec<_>, _>>()?;

    let delta = retain_delta.then(|| DeltaSupport {
        order: order.to_vec(),
        stage_of_atom: stage_of_atom
            .iter()
            .map(|s| s.expect("every atom was visited"))
            .collect(),
        parent_link,
        children: tree_children,
        states: states_of_atom,
    });

    Ok(Compiled {
        instance,
        output_atoms,
        atom_relations: atoms.iter().map(|a| a.relation.clone()).collect(),
        head_vars,
        var_sources,
        delta,
    })
}

impl<D: Dioid<V = OrderedF64>> Compiled<D> {
    /// The atoms encoded by the instance's output stages, in serial order.
    pub fn output_atoms(&self) -> &[usize] {
        &self.output_atoms
    }

    /// Whether the plan carries the tuple↔state bookkeeping needed by
    /// [`crate::refresh`] (compiled through [`compile_with_delta`]).
    pub fn supports_refresh(&self) -> bool {
        self.delta.is_some()
    }

    /// The query's head variables.
    pub fn head_vars(&self) -> &[String] {
        &self.head_vars
    }

    /// Turn a T-DP solution into a query answer. `decode` maps the internal
    /// weight back to the user-facing weight (e.g. un-negating for
    /// descending rankings).
    pub fn assemble(
        &self,
        db: &Database,
        solution: &Solution<D>,
        decode: impl Fn(f64) -> f64,
    ) -> Answer {
        let witness: Vec<(usize, usize)> = solution
            .states
            .iter()
            .zip(self.instance.serial_order())
            .filter(|(_, sid)| self.instance.stage(**sid).is_output)
            .enumerate()
            .map(|(pos, (nid, _))| (self.output_atoms[pos], self.instance.payload(*nid) as usize))
            .collect();
        let values: Vec<Value> = self
            .var_sources
            .iter()
            .map(|&(pos, col)| {
                let (atom_idx, tid) = witness[pos];
                db.expect(&self.atom_relations[atom_idx])
                    .tuple(tid)
                    .value(col)
            })
            .collect();
        Answer::new(decode(solution.weight.get()), values, witness)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyk_core::dioid::TropicalMin;
    use anyk_core::{ranked_enumerate, AnyKAlgorithm};
    use anyk_query::QueryBuilder;
    use anyk_storage::Relation;

    fn two_path_db() -> Database {
        let mut db = Database::new();
        let mut r1 = Relation::new("R1", 2);
        r1.push_edge(1, 10, 1.0);
        r1.push_edge(2, 20, 5.0);
        r1.push_edge(3, 30, 2.0); // dangling: 30 has no continuation
        let mut r2 = Relation::new("R2", 2);
        r2.push_edge(10, 100, 2.0);
        r2.push_edge(10, 200, 7.0);
        r2.push_edge(20, 300, 1.0);
        db.add(r1);
        db.add(r2);
        db
    }

    #[test]
    fn compiles_path_query_with_value_nodes() {
        let db = two_path_db();
        let q = QueryBuilder::path(2).build();
        let c = compile_with::<TropicalMin, _>(&db, &q, |t: RowRef<'_>| t.weight()).unwrap();
        // 2 output stages + 1 value stage (+ root).
        assert_eq!(c.instance.num_stages(), 4);
        assert!(c.instance.has_solution());
        // Minimum weight path: (1,10) + (10,100) = 3.
        assert_eq!(*c.instance.optimum(), OrderedF64::from(3.0));
        // 3 joining combinations in total.
        assert_eq!(c.instance.count_solutions(), 3);
    }

    #[test]
    fn answers_carry_values_and_witnesses() {
        let db = two_path_db();
        let q = QueryBuilder::path(2).build();
        let c = compile_with::<TropicalMin, _>(&db, &q, |t: RowRef<'_>| t.weight()).unwrap();
        let answers: Vec<Answer> = ranked_enumerate(&c.instance, AnyKAlgorithm::Take2)
            .map(|s| c.assemble(&db, &s, |w| w))
            .collect();
        assert_eq!(answers.len(), 3);
        assert_eq!(answers[0].weight(), 3.0);
        // Head vars of the 2-path are x1, x2, x3.
        assert_eq!(answers[0].values(), &[1, 10, 100]);
        assert_eq!(answers[1].weight(), 6.0);
        assert_eq!(answers[1].values(), &[2, 20, 300]);
        assert_eq!(answers[2].weight(), 8.0);
        assert_eq!(answers[2].values(), &[1, 10, 200]);
        // Witnesses reference the originating tuples.
        assert_eq!(answers[0].witness().len(), 2);
    }

    #[test]
    fn cyclic_query_is_rejected() {
        let mut db = Database::new();
        for i in 1..=4 {
            let mut r = Relation::new(format!("R{i}"), 2);
            r.push_edge(1, 2, 1.0);
            db.add(r);
        }
        let q = QueryBuilder::cycle(4).build();
        assert!(matches!(
            compile_with::<TropicalMin, _>(&db, &q, |t: RowRef<'_>| t.weight()),
            Err(EngineError::UnsupportedCyclicQuery(_))
        ));
    }

    #[test]
    fn unknown_relation_is_rejected() {
        let db = two_path_db();
        let q = QueryBuilder::new().atom("Nope", &["x", "y"]).build();
        assert!(matches!(
            compile_with::<TropicalMin, _>(&db, &q, |t: RowRef<'_>| t.weight()),
            Err(EngineError::UnknownRelation(_))
        ));
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let db = two_path_db();
        let q = QueryBuilder::new().atom("R1", &["x", "y", "z"]).build();
        assert!(matches!(
            compile_with::<TropicalMin, _>(&db, &q, |t: RowRef<'_>| t.weight()),
            Err(EngineError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn star_query_compiles_to_tree_instance() {
        let mut db = Database::new();
        for name in ["R1", "R2", "R3"] {
            let mut r = Relation::new(name, 2);
            r.push_edge(1, 10, 1.0);
            r.push_edge(1, 20, 2.0);
            r.push_edge(2, 30, 4.0);
            db.add(r);
        }
        let q = QueryBuilder::star(3).build();
        let c = compile_with::<TropicalMin, _>(&db, &q, |t: RowRef<'_>| t.weight()).unwrap();
        // Hub value 1: 2×2×2 = 8 combinations; hub value 2: 1 combination.
        assert_eq!(c.instance.count_solutions(), 9);
        let answers: Vec<Answer> = ranked_enumerate(&c.instance, AnyKAlgorithm::Lazy)
            .map(|s| c.assemble(&db, &s, |w| w))
            .collect();
        assert_eq!(answers.len(), 9);
        assert_eq!(answers[0].weight(), 3.0);
        for w in answers.windows(2) {
            assert!(w[0].weight() <= w[1].weight());
        }
    }

    #[test]
    fn self_join_uses_same_relation_twice() {
        let mut db = Database::new();
        let mut e = Relation::new("E", 2);
        e.push_edge(1, 2, 1.0);
        e.push_edge(2, 3, 2.0);
        e.push_edge(3, 4, 4.0);
        db.add(e);
        let q = QueryBuilder::new()
            .atom("E", &["x", "y"])
            .atom("E", &["y", "z"])
            .build();
        let c = compile_with::<TropicalMin, _>(&db, &q, |t: RowRef<'_>| t.weight()).unwrap();
        let answers: Vec<Answer> = ranked_enumerate(&c.instance, AnyKAlgorithm::Recursive)
            .map(|s| c.assemble(&db, &s, |w| w))
            .collect();
        // Paths of length 2: (1,2,3) and (2,3,4).
        assert_eq!(answers.len(), 2);
        assert_eq!(answers[0].values(), &[1, 2, 3]);
        assert_eq!(answers[1].values(), &[2, 3, 4]);
    }
}
