//! Selection pushdown: the linear-time preprocessing copy of §2.1.
//!
//! The paper reduces selections — equality with a constant (`y = 7`,
//! `name = "alice"`) and repeated variables within one atom (`R(x, x)`) —
//! to a copy of the affected relation that keeps only the satisfying rows,
//! built in one linear pass *before* compilation. This module implements
//! that pass for [`QuerySpec`](anyk_query::QuerySpec) requests and for
//! structural queries whose atoms repeat a variable:
//!
//! * every atom's constraints are gathered (constants pushed down from the
//!   spec's predicates to each column binding the variable, plus
//!   column-equality constraints for repeated variables);
//! * each constrained atom is redirected to a **filtered copy** of its
//!   relation, registered under a fresh name in a scratch [`Database`]
//!   (unconstrained relations are carried over unchanged so the scratch
//!   database serves the whole rewritten query);
//! * the rewritten query keeps its variable lists verbatim — including
//!   repeats, which the equi-join compilation handles correctly once the
//!   rows themselves satisfy the column equalities.
//!
//! String constants resolve through the dictionary of the column they are
//! pushed to; a string the dictionary never interned simply yields an empty
//! filtered copy (no answer can match), while a constant of the wrong type
//! for its column is a typed [`EngineError::ConstantTypeMismatch`].
//!
//! Filtered copies share the original relation's schema (and therefore its
//! dictionaries, via [`Relation::filter`]), so answers decode exactly like
//! the unfiltered query's.

use crate::compile::validate;
use crate::error::EngineError;
use anyk_query::{Atom, ConjunctiveQuery, Constant, Predicate};
use anyk_storage::{Database, Relation, RowRef, Value};

/// Per-atom selection constraints in column terms.
#[derive(Debug, Default)]
struct AtomSelection {
    /// `column = value` requirements (already dictionary-encoded).
    consts: Vec<(usize, Value)>,
    /// `column a = column b` requirements from repeated variables.
    eqs: Vec<(usize, usize)>,
    /// A predicate constant could not be encoded (e.g. a string the
    /// dictionary never interned): no row can match.
    unsatisfiable: bool,
}

impl AtomSelection {
    fn is_trivial(&self) -> bool {
        self.consts.is_empty() && self.eqs.is_empty() && !self.unsatisfiable
    }

    fn matches(&self, row: RowRef<'_>) -> bool {
        !self.unsatisfiable
            && self.consts.iter().all(|&(col, v)| row.value(col) == v)
            && self.eqs.iter().all(|&(a, b)| row.value(a) == row.value(b))
    }
}

/// Encode `constant` for column `col` of `relation`: through the column's
/// dictionary for text columns (`Ok(None)` when the string was never
/// interned — an unsatisfiable selection, not an error), verbatim for
/// integer constants on raw-id columns.
fn encode_constant(
    relation: &Relation,
    col: usize,
    constant: &Constant,
) -> Result<Option<Value>, EngineError> {
    let mismatch = || EngineError::ConstantTypeMismatch {
        relation: relation.name().to_string(),
        column: col,
        constant: constant.to_string(),
    };
    match (constant, relation.dictionary(col)) {
        (Constant::Int(v), None) => Ok(Some(*v)),
        (Constant::Str(s), Some(dict)) => Ok(dict.lookup(s)),
        _ => Err(mismatch()),
    }
}

/// Rewrite `query` under `predicates` into an equivalent selection-free
/// query over filtered relation copies. Returns `Ok(None)` when nothing
/// needs rewriting (no predicates, no repeated variables) — the fast path
/// that copies nothing.
pub(crate) fn rewrite_selections(
    db: &Database,
    query: &ConjunctiveQuery,
    predicates: &[Predicate],
) -> Result<Option<(Database, ConjunctiveQuery)>, EngineError> {
    validate(db, query)?;
    for p in predicates {
        if !query.atoms().iter().any(|a| a.binds(&p.variable)) {
            return Err(EngineError::Query(
                anyk_query::QueryError::UnknownPredicateVariable {
                    variable: p.variable.clone(),
                },
            ));
        }
    }

    let atoms = query.atoms();
    let mut selections = Vec::with_capacity(atoms.len());
    for atom in atoms {
        let relation = db.expect(&atom.relation);
        let mut sel = AtomSelection::default();
        for (col, var) in atom.variables.iter().enumerate() {
            // Repeated variable: this column must equal the variable's first
            // binding column.
            if let Some(first) = atom.variables[..col].iter().position(|v| v == var) {
                sel.eqs.push((first, col));
            }
            for p in predicates.iter().filter(|p| p.variable == *var) {
                match encode_constant(relation, col, &p.constant)? {
                    Some(v) => sel.consts.push((col, v)),
                    None => sel.unsatisfiable = true,
                }
            }
        }
        selections.push(sel);
    }
    if selections.iter().all(AtomSelection::is_trivial) {
        return Ok(None);
    }

    // Build the scratch database: filtered copies for constrained atoms
    // (fresh names, one per atom — two atoms over the same relation may
    // carry different selections), unconstrained relations **shared** from
    // the input (`Arc`, no data copy). The only per-rewrite cost is the
    // filtered atoms' single linear pass — the paper's bound.
    let mut scratch = Database::new();
    let mut rewritten = Vec::with_capacity(atoms.len());
    for (idx, (atom, sel)) in atoms.iter().zip(&selections).enumerate() {
        if sel.is_trivial() {
            if scratch.get(&atom.relation).is_none() {
                scratch.add_shared(db.get_shared(&atom.relation).expect("validated relation"));
            }
            rewritten.push(atom.clone());
            continue;
        }
        let mut name = format!("{}__sel{idx}", atom.relation);
        while atoms.iter().any(|a| a.relation == name) || scratch.get(&name).is_some() {
            name.push('_');
        }
        scratch.add(
            db.expect(&atom.relation)
                .filter(&name, |row| sel.matches(row)),
        );
        rewritten.push(Atom {
            relation: name,
            variables: atom.variables.clone(),
        });
    }

    let head = query.head_variables();
    let effective = ConjunctiveQuery::with_projection(rewritten, head);
    Ok(Some((scratch, effective)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyk_query::QueryBuilder;
    use anyk_storage::Schema;

    fn db() -> Database {
        let mut db = Database::new();
        let mut r = Relation::new("R", 2);
        r.push_edge(1, 1, 1.0);
        r.push_edge(1, 2, 2.0);
        r.push_edge(2, 2, 3.0);
        let mut s = Relation::new("S", 2);
        s.push_edge(1, 5, 1.0);
        s.push_edge(2, 6, 2.0);
        db.add(r);
        db.add(s);
        db
    }

    #[test]
    fn trivial_queries_are_left_alone() {
        let db = db();
        let q = QueryBuilder::new()
            .atom("R", &["x", "y"])
            .atom("S", &["y", "z"])
            .build();
        assert!(rewrite_selections(&db, &q, &[]).unwrap().is_none());
    }

    #[test]
    fn repeated_variables_filter_to_the_diagonal() {
        let db = db();
        let q = QueryBuilder::new().atom("R", &["x", "x"]).build();
        let (scratch, eff) = rewrite_selections(&db, &q, &[]).unwrap().unwrap();
        let copy = scratch.expect(&eff.atoms()[0].relation);
        assert_eq!(copy.len(), 2, "only (1,1) and (2,2) survive");
        assert_eq!(eff.atoms()[0].variables, vec!["x", "x"]);
        assert_eq!(eff.head_variables(), vec!["x"]);
    }

    #[test]
    fn constants_push_down_to_every_binding_column() {
        let db = db();
        let q = QueryBuilder::new()
            .atom("R", &["x", "y"])
            .atom("S", &["y", "z"])
            .build();
        let (scratch, eff) = rewrite_selections(&db, &q, &[Predicate::int("y", 2)])
            .unwrap()
            .unwrap();
        // Both atoms bind y, so both get filtered copies.
        let r = scratch.expect(&eff.atoms()[0].relation);
        let s = scratch.expect(&eff.atoms()[1].relation);
        assert_eq!(r.len(), 2, "(1,2) and (2,2)");
        assert_eq!(s.len(), 1, "(2,6)");
        assert!(eff.atoms()[0].relation.contains("__sel"));
    }

    #[test]
    fn unknown_dictionary_strings_filter_everything() {
        let mut db = Database::new();
        let mut f = Relation::with_schema("F", Schema::text_shared(2));
        f.push_text_edge("alice", "bob", 1.0);
        db.add(f);
        let q = QueryBuilder::new().atom("F", &["a", "b"]).build();
        let (scratch, eff) = rewrite_selections(&db, &q, &[Predicate::text("a", "nobody")])
            .unwrap()
            .unwrap();
        assert!(scratch.expect(&eff.atoms()[0].relation).is_empty());
        // A known string keeps the matching row and shares the dictionary.
        let (scratch, eff) = rewrite_selections(&db, &q, &[Predicate::text("a", "alice")])
            .unwrap()
            .unwrap();
        let copy = scratch.expect(&eff.atoms()[0].relation);
        assert_eq!(copy.len(), 1);
        assert_eq!(copy.tuple(0).decoded(1).as_deref(), Some("bob"));
    }

    #[test]
    fn type_mismatches_are_typed_errors() {
        let mut db = db();
        let mut f = Relation::with_schema("F", Schema::text_shared(2));
        f.push_text_edge("alice", "bob", 1.0);
        db.add(f);
        let q = QueryBuilder::new().atom("F", &["a", "b"]).build();
        assert!(matches!(
            rewrite_selections(&db, &q, &[Predicate::int("a", 3)]),
            Err(EngineError::ConstantTypeMismatch { .. })
        ));
        let q = QueryBuilder::new().atom("R", &["x", "y"]).build();
        assert!(matches!(
            rewrite_selections(&db, &q, &[Predicate::text("x", "alice")]),
            Err(EngineError::ConstantTypeMismatch { .. })
        ));
    }

    #[test]
    fn unknown_predicate_variables_are_typed_errors() {
        let db = db();
        let q = QueryBuilder::new().atom("R", &["x", "y"]).build();
        assert!(matches!(
            rewrite_selections(&db, &q, &[Predicate::int("nope", 1)]),
            Err(EngineError::Query(_))
        ));
    }

    #[test]
    fn conflicting_constants_yield_an_empty_copy() {
        let db = db();
        let q = QueryBuilder::new().atom("R", &["x", "y"]).build();
        let (scratch, eff) =
            rewrite_selections(&db, &q, &[Predicate::int("x", 1), Predicate::int("x", 2)])
                .unwrap()
                .unwrap();
        assert!(scratch.expect(&eff.atoms()[0].relation).is_empty());
    }
}
