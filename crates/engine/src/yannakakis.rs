//! The Yannakakis-style batch baseline for acyclic queries (§2.4, §7).
//!
//! `Batch` in the paper's experiments computes the full (unranked) result
//! with the Yannakakis algorithm and then sorts it. In this engine the
//! semi-join reduction *is* the bottom-up phase of the compiled T-DP
//! instance, and the full join is the backtracking enumeration of the pruned
//! instance — so the baseline is implemented directly on top of
//! [`crate::compile`], guaranteeing that it evaluates exactly the same plan
//! the any-k algorithms use (a fair comparison, cf. §7.3).

use crate::answer::Answer;
use crate::compile::compile_with;
use crate::error::EngineError;
use anyk_core::dioid::TropicalMin;
use anyk_core::Batch;
use anyk_query::ConjunctiveQuery;
use anyk_query::RankingFunction;
use anyk_storage::Database;

/// Compute the full, **unranked** result of an acyclic full CQ
/// (Yannakakis: semi-join reduction + join along the join tree).
pub fn full_join(db: &Database, query: &ConjunctiveQuery) -> Result<Vec<Answer>, EngineError> {
    let compiled = compile_with::<TropicalMin, _>(db, query, |t| t.weight())?;
    Ok(Batch::enumerate_unranked(&compiled.instance)
        .iter()
        .map(|sol| compiled.assemble(db, sol, |w| w))
        .collect())
}

/// Compute the full result and sort it by the ranking function — the `Batch`
/// comparator of the paper's evaluation.
pub fn batch_sorted(
    db: &Database,
    query: &ConjunctiveQuery,
    ranking: RankingFunction,
) -> Result<Vec<Answer>, EngineError> {
    let compiled = compile_with::<TropicalMin, _>(db, query, |t| ranking.encode(t.weight()))?;
    let mut all: Vec<Answer> = Batch::enumerate_unranked(&compiled.instance)
        .iter()
        .map(|sol| compiled.assemble(db, sol, |w| ranking.decode(w)))
        .collect();
    all.sort_by(|a, b| {
        ranking
            .encode(a.weight())
            .total_cmp(&ranking.encode(b.weight()))
            .then_with(|| a.values().cmp(b.values()))
    });
    Ok(all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyk_core::AnyKAlgorithm;
    use anyk_query::QueryBuilder;
    use anyk_storage::Relation;

    fn db() -> Database {
        let mut db = Database::new();
        let mut r1 = Relation::new("R1", 2);
        let mut r2 = Relation::new("R2", 2);
        let mut r3 = Relation::new("R3", 2);
        for i in 0..6u64 {
            r1.push_edge(i, i % 3, (i as f64) * 1.5);
            r2.push_edge(i % 3, i % 2, (i as f64) * 0.5 + 1.0);
            r3.push_edge(i % 2, i, 2.0 - (i as f64) * 0.1);
        }
        db.add(r1);
        db.add(r2);
        db.add(r3);
        db
    }

    #[test]
    fn full_join_matches_ranked_enumeration_count() {
        let db = db();
        let q = QueryBuilder::path(3).build();
        let unranked = full_join(&db, &q).unwrap();
        let rq = crate::RankedQuery::new(&db, &q).unwrap();
        assert_eq!(unranked.len() as u128, rq.count_answers());
        assert_eq!(unranked.len(), rq.enumerate(AnyKAlgorithm::Take2).count());
    }

    #[test]
    fn batch_sorted_agrees_with_any_k_order() {
        let db = db();
        let q = QueryBuilder::path(3).build();
        let sorted = batch_sorted(&db, &q, RankingFunction::SumAscending).unwrap();
        let rq = crate::RankedQuery::new(&db, &q).unwrap();
        let anyk: Vec<f64> = rq
            .enumerate(AnyKAlgorithm::Recursive)
            .map(|a| a.weight())
            .collect();
        let batch: Vec<f64> = sorted.iter().map(Answer::weight).collect();
        assert_eq!(anyk.len(), batch.len());
        for (a, b) in anyk.iter().zip(&batch) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn cyclic_queries_are_rejected() {
        let db = db();
        let q = QueryBuilder::cycle(4).build();
        assert!(full_join(&db, &q).is_err());
    }
}
