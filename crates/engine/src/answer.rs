//! Query answers, and decoding them back to original strings.
//!
//! Ranked enumeration runs entirely over dense `u64` ids; when the input
//! relations are dictionary-encoded (see `anyk_storage::dictionary`), an
//! [`AnswerDecoder`] maps each head-variable position back to the dictionary
//! of a column that binds it, so every [`Answer`] — from any-k, the naive-SQL
//! baseline, or a projection — renders its original strings.

use anyk_query::ConjunctiveQuery;
use anyk_storage::{Database, Dictionary, TupleId, Value};
use std::sync::Arc;

/// One ranked answer of a conjunctive query.
///
/// An answer is an assignment of the query's head variables to values, its
/// weight under the chosen [`crate::RankingFunction`], and (where available)
/// the witness — the input tuples that joined to produce it (§2.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Answer {
    weight: f64,
    values: Vec<Value>,
    witness: Vec<(usize, TupleId)>,
}

impl Answer {
    /// Create an answer. `values` must be aligned with the query's head
    /// variables; `witness` holds `(atom index, tuple id)` pairs and may be
    /// empty when the answer was produced through a decomposition whose
    /// derived relations do not correspond to single input tuples.
    pub fn new(weight: f64, values: Vec<Value>, witness: Vec<(usize, TupleId)>) -> Self {
        Answer {
            weight,
            values,
            witness,
        }
    }

    /// The answer's weight under the query's ranking function.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// The head-variable values, aligned with
    /// [`anyk_query::ConjunctiveQuery::head_variables`].
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The value bound to head variable position `idx`.
    pub fn value(&self, idx: usize) -> Value {
        self.values[idx]
    }

    /// The witness `(atom index, tuple id)` pairs, if available.
    pub fn witness(&self) -> &[(usize, TupleId)] {
        &self.witness
    }
}

/// One decoded head-variable value: the original string for a
/// dictionary-encoded column, the raw id otherwise.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum DecodedValue {
    /// A raw-id column's value (or an id the dictionary could not decode).
    Int(Value),
    /// A text column's value, decoded back to its original string.
    Text(String),
}

impl std::fmt::Display for DecodedValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodedValue::Int(v) => write!(f, "{v}"),
            DecodedValue::Text(s) => f.write_str(s),
        }
    }
}

/// Decodes [`Answer`] values back to original strings for a specific query.
///
/// Built once per query: for each head variable, the decoder records the
/// dictionary of the first body column that binds it (all columns binding one
/// variable must share a dictionary anyway for the equi-join to be
/// meaningful — see `anyk_storage::dictionary`). The decoder owns `Arc`
/// handles, so it keeps decoding consistently even if a relation is later
/// replaced in the database: it describes the snapshot it was built from.
#[derive(Debug, Clone, Default)]
pub struct AnswerDecoder {
    /// One entry per head-variable position: the dictionary to decode
    /// through, or `None` for raw-id columns.
    dictionaries: Vec<Option<Arc<Dictionary>>>,
}

impl AnswerDecoder {
    /// Build a decoder for `query`'s head variables over `db`.
    ///
    /// # Panics
    /// Panics if an atom references a relation absent from `db` (the same
    /// contract as preparing the query itself).
    pub fn for_query(db: &Database, query: &ConjunctiveQuery) -> Self {
        let dictionaries = query
            .head_variables()
            .iter()
            .map(|var| {
                query.atoms().iter().find_map(|atom| {
                    let pos = atom.variables.iter().position(|v| v == var)?;
                    db.expect(&atom.relation).dictionary(pos).cloned()
                })
            })
            .collect();
        AnswerDecoder { dictionaries }
    }

    /// Number of head-variable positions this decoder covers.
    pub fn arity(&self) -> usize {
        self.dictionaries.len()
    }

    /// Decode the value at head position `pos`.
    ///
    /// # Panics
    /// Panics if `pos >= arity()`.
    pub fn decode_value(&self, pos: usize, value: Value) -> DecodedValue {
        match &self.dictionaries[pos] {
            Some(dict) => match dict.decode(value) {
                Some(s) => DecodedValue::Text(s),
                // An id the dictionary never issued: surface the raw id
                // rather than panicking mid-render.
                None => DecodedValue::Int(value),
            },
            None => DecodedValue::Int(value),
        }
    }

    /// Decode every head value of `answer`.
    ///
    /// # Panics
    /// Panics if the answer's arity differs from the decoder's.
    pub fn decode(&self, answer: &Answer) -> Vec<DecodedValue> {
        assert_eq!(
            answer.values().len(),
            self.dictionaries.len(),
            "answer arity does not match the decoder's query"
        );
        answer
            .values()
            .iter()
            .enumerate()
            .map(|(pos, &v)| self.decode_value(pos, v))
            .collect()
    }

    /// Decode every head value of `answer` straight to display strings
    /// (moves decoded strings out rather than copying them a second time).
    pub fn render(&self, answer: &Answer) -> Vec<String> {
        self.decode(answer)
            .into_iter()
            .map(|v| match v {
                DecodedValue::Int(n) => n.to_string(),
                DecodedValue::Text(s) => s,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let a = Answer::new(4.5, vec![1, 2, 3], vec![(0, 7), (1, 9)]);
        assert_eq!(a.weight(), 4.5);
        assert_eq!(a.values(), &[1, 2, 3]);
        assert_eq!(a.value(2), 3);
        assert_eq!(a.witness(), &[(0, 7), (1, 9)]);
    }

    #[test]
    fn decoder_maps_head_positions_to_column_dictionaries() {
        use anyk_query::QueryBuilder;
        use anyk_storage::{ColumnType, Relation, Schema};

        // R1(x1: text, x2: id), R2(x2: id, x3: text).
        let mut db = Database::new();
        let mut r1 =
            Relation::with_schema("R1", Schema::new(vec![ColumnType::text(), ColumnType::Id]));
        r1.push_fields(&[anyk_storage::Field::Str("alice"), 42u64.into()], 1.0);
        let mut r2 =
            Relation::with_schema("R2", Schema::new(vec![ColumnType::Id, ColumnType::text()]));
        r2.push_fields(&[42u64.into(), anyk_storage::Field::Str("rust")], 2.0);
        db.add(r1);
        db.add(r2);

        let query = QueryBuilder::path(2).build();
        let decoder = AnswerDecoder::for_query(&db, &query);
        assert_eq!(decoder.arity(), 3);

        let answer = Answer::new(3.0, vec![0, 42, 0], Vec::new());
        assert_eq!(
            decoder.decode(&answer),
            vec![
                DecodedValue::Text("alice".into()),
                DecodedValue::Int(42),
                DecodedValue::Text("rust".into()),
            ]
        );
        assert_eq!(decoder.render(&answer), vec!["alice", "42", "rust"]);
        // An id the dictionary never issued falls back to the raw id.
        assert_eq!(decoder.decode_value(0, 999), DecodedValue::Int(999));
    }
}
