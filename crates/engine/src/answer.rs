//! Query answers.

use anyk_storage::{TupleId, Value};

/// One ranked answer of a conjunctive query.
///
/// An answer is an assignment of the query's head variables to values, its
/// weight under the chosen [`crate::RankingFunction`], and (where available)
/// the witness — the input tuples that joined to produce it (§2.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Answer {
    weight: f64,
    values: Vec<Value>,
    witness: Vec<(usize, TupleId)>,
}

impl Answer {
    /// Create an answer. `values` must be aligned with the query's head
    /// variables; `witness` holds `(atom index, tuple id)` pairs and may be
    /// empty when the answer was produced through a decomposition whose
    /// derived relations do not correspond to single input tuples.
    pub fn new(weight: f64, values: Vec<Value>, witness: Vec<(usize, TupleId)>) -> Self {
        Answer {
            weight,
            values,
            witness,
        }
    }

    /// The answer's weight under the query's ranking function.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// The head-variable values, aligned with
    /// [`anyk_query::ConjunctiveQuery::head_variables`].
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The value bound to head variable position `idx`.
    pub fn value(&self, idx: usize) -> Value {
        self.values[idx]
    }

    /// The witness `(atom index, tuple id)` pairs, if available.
    pub fn witness(&self) -> &[(usize, TupleId)] {
        &self.witness
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let a = Answer::new(4.5, vec![1, 2, 3], vec![(0, 7), (1, 9)]);
        assert_eq!(a.weight(), 4.5);
        assert_eq!(a.values(), &[1, 2, 3]);
        assert_eq!(a.value(2), 3);
        assert_eq!(a.witness(), &[(0, 7), (1, 9)]);
    }
}
