//! Delta maintenance of compiled plans: patch a [`Compiled`] instance under
//! a [`DeltaBatch`] instead of recompiling from scratch.
//!
//! A plan compiled with [`crate::compile::compile_with_delta`] carries
//! [`DeltaSupport`](crate::compile::DeltaSupport): the T-DP state of every
//! input tuple, the join-tree shape, and the value node of every join-key
//! value. Given the *post-delta* database (produced by
//! [`Database::apply_delta`](anyk_storage::Database::apply_delta), so
//! surviving tuples keep their relative order) this module translates the
//! batch into a [`TdpPatch`]:
//!
//! * **deleted tuple with a state** → kill the state; the core patcher drops
//!   its rows and in-edges and re-sweeps only the dirty cone of ancestors.
//! * **surviving tuple whose id shifted** → payload update (payloads are
//!   tuple ids used to assemble answers); no re-evaluation.
//! * **inserted tuple** → materialise a state and cascade down the join
//!   tree: if its join-key value is new on the parent side, a fresh value
//!   node is created and *every* matching child tuple (old or new) is
//!   materialised below it, exactly once — the "state exists ⇔ key has a
//!   value node" invariant.
//!
//! The result is **equivalent to a from-scratch rebuild**: `⊕` is selective
//! and `⊗` folds in fixed slot order, so the re-swept `π₁` values — and
//! therefore every ranked stream drawn from the patched instance — are
//! bit-identical to recompiling over the new database (weight ties may still
//! order arbitrarily, exactly as they may between two rebuilds).

use crate::compile::Compiled;
use crate::error::EngineError;
use anyk_core::dioid::{Dioid, OrderedF64};
use anyk_core::tdp::{apply_patch, NodeId, PatchStats, TdpInstance, TdpPatch};
use anyk_storage::{Database, DeltaBatch, TidRemap, Value};

/// Refresh `compiled` to answer its query over `new_db`, which **must** be
/// the result of applying `batch` to the database the plan was compiled
/// over (tuple ids compacted in order, inserts appended — the contract of
/// [`Database::apply_delta`](anyk_storage::Database::apply_delta)).
///
/// `encode` maps user-facing tuple weights to the plan's internal encoding
/// (the ranking function's `encode`), and must be the same function the
/// original compilation used.
///
/// Returns the refreshed plan and the core patch statistics (how local the
/// dirty cone was). Fails with [`EngineError::RefreshUnsupported`] when the
/// plan was not compiled with delta support.
pub(crate) fn refresh_compiled<D>(
    compiled: &Compiled<D>,
    new_db: &Database,
    batch: &DeltaBatch,
    encode: &dyn Fn(f64) -> f64,
) -> Result<(Compiled<D>, PatchStats), EngineError>
where
    D: Dioid<V = OrderedF64>,
{
    let mut next = compiled.clone();
    let Some(mut support) = next.delta.take() else {
        return Err(EngineError::RefreshUnsupported(
            "plan was compiled without delta support".into(),
        ));
    };
    let mut patch = TdpPatch::new();

    // Phase 1 — deletions and tuple-id compaction, per touched atom (a
    // self-join visits every atom over the touched relation independently).
    for atom in 0..next.atom_relations.len() {
        let Some(delta) = batch.for_relation(&next.atom_relations[atom]) else {
            continue;
        };
        let new_len = new_db.expect(&next.atom_relations[atom]).len();
        let remap = TidRemap::new(delta.sorted_deletes());
        let old_states = std::mem::take(&mut support.states[atom]);
        if old_states.len() != new_len + remap.deleted_count() - delta.inserts.len() {
            return Err(EngineError::Internal(format!(
                "refresh: relation `{}` has {} tuples but the plan tracked {} \
                 ({} deletes, {} inserts) — `new_db` is not the plan's \
                 snapshot plus this batch",
                next.atom_relations[atom],
                new_len,
                old_states.len(),
                remap.deleted_count(),
                delta.inserts.len(),
            )));
        }
        let mut new_states = vec![None; new_len];
        for (old_tid, state) in old_states.iter().enumerate() {
            match remap.map(old_tid) {
                Some(new_tid) => {
                    if let Some(n) = state {
                        if new_tid != old_tid {
                            patch.payload_updates.push((*n, new_tid as u64));
                        }
                    }
                    new_states[new_tid] = *state;
                }
                None => {
                    if let Some(n) = state {
                        // Killing the state also drops its rows and in-edges
                        // and marks the surviving ancestors dirty.
                        patch.kill_nodes.push(*n);
                    }
                }
            }
        }
        support.states[atom] = new_states;
    }

    // Phase 2 — insertions, in join-tree traversal order (parents first, so
    // a parent inserted in this batch exists before its children look for a
    // value node). Inserted tuples occupy the tail of the new relation.
    let order = support.order.clone();
    for &atom in &order {
        let Some(delta) = batch.for_relation(&next.atom_relations[atom]) else {
            continue;
        };
        let new_len = new_db.expect(&next.atom_relations[atom]).len();
        for tid in new_len - delta.inserts.len()..new_len {
            insert_tuple(
                new_db,
                &next.atom_relations,
                &next.instance,
                &mut support,
                &mut patch,
                encode,
                atom,
                tid,
            );
        }
    }

    let stats = apply_patch(&mut next.instance, &patch)
        .map_err(|e| EngineError::Internal(format!("refresh: core patch rejected: {e}")))?;
    next.delta = Some(support);
    Ok((next, stats))
}

/// Materialise the state of tuple `tid` of `atom` (unless it already has
/// one, or its join key has no value node — the semi-join drop), then
/// cascade into the atom's join-tree children: any child link whose key
/// value gains its first value node materialises every matching child tuple
/// below it.
#[allow(clippy::too_many_arguments)]
fn insert_tuple<D: Dioid<V = OrderedF64>>(
    db: &Database,
    atom_relations: &[String],
    instance: &TdpInstance<D>,
    support: &mut crate::compile::DeltaSupport,
    patch: &mut TdpPatch<D>,
    encode: &dyn Fn(f64) -> f64,
    atom: usize,
    tid: usize,
) {
    if support.states[atom][tid].is_some() {
        // Already materialised by an earlier cascade in this batch.
        return;
    }
    let relation = db.expect(&atom_relations[atom]);
    let row = relation.tuple(tid);
    let weight = OrderedF64::from(encode(row.weight()));
    let stage = support.stage_of_atom[atom];

    let state = match &support.parent_link[atom] {
        None => {
            // Traversal root: hang the state directly under s₀.
            let state = patch.add_node(instance, stage, weight, tid as u64);
            let slot = instance.stage(stage).slot_in_parent;
            patch.add_edges.push((NodeId::ROOT, slot, state));
            state
        }
        Some(link) => {
            let key: Vec<Value> = link.child_positions.iter().map(|&c| row.value(c)).collect();
            let Some(&vnode) = link.vnode_by_key.get(&key) else {
                // No parent tuple carries this key: the tuple joins with
                // nothing (yet). If a parent arrives later, its cascade
                // creates the value node and materialises this tuple.
                return;
            };
            let state = patch.add_node(instance, stage, weight, tid as u64);
            let slot = instance.stage(stage).slot_in_parent;
            patch.add_edges.push((vnode, slot, state));
            state
        }
    };
    support.states[atom][tid] = Some(state);

    // Cascade: connect this tuple to the value node of each child link,
    // creating the node — and materialising every matching child tuple —
    // when this is the first parent-side occurrence of the key value.
    let children = support.children[atom].clone();
    for child in children {
        let (key, value_stage, child_positions) = {
            let link = support.parent_link[child]
                .as_ref()
                .expect("join-tree child has a parent link");
            debug_assert_eq!(link.parent_atom, atom);
            let key: Vec<Value> = link
                .parent_positions
                .iter()
                .map(|&c| row.value(c))
                .collect();
            (key, link.value_stage, link.child_positions.clone())
        };
        let existing = support.parent_link[child]
            .as_ref()
            .expect("join-tree child has a parent link")
            .vnode_by_key
            .get(&key)
            .copied();
        let vnode = match existing {
            Some(v) => v,
            None => {
                let v = patch.add_node(instance, value_stage, D::one(), u64::MAX);
                support.parent_link[child]
                    .as_mut()
                    .expect("join-tree child has a parent link")
                    .vnode_by_key
                    .insert(key.clone(), v);
                // First parent with this key: every matching child tuple
                // (pre-existing semi-join drops and batch inserts alike)
                // materialises now, exactly once.
                let matches: Vec<usize> = db
                    .index(&atom_relations[child], &child_positions)
                    .lookup(&key)
                    .to_vec();
                for ctid in matches {
                    insert_tuple(
                        db,
                        atom_relations,
                        instance,
                        support,
                        patch,
                        encode,
                        child,
                        ctid,
                    );
                }
                v
            }
        };
        let slot = instance.stage(value_stage).slot_in_parent;
        patch.add_edges.push((state, slot, vnode));
    }
}
