//! An HRJN-style middleware top-k rank-join baseline (§9.1.3).
//!
//! Top-k operators such as J*, Rank-Join and HRJN assume sorted access to
//! every input relation and try to minimise the number of *accessed* tuples,
//! charging nothing for the join work performed on the accessed prefixes.
//! The paper's §9.1.3 shows that this cost model hides an `Ω((n−1)^{ℓ−1})`
//! blow-up on adversarial inputs (Fig. 19): the operator joins almost the
//! whole prefix of the first ℓ−1 relations before the threshold allows it to
//! emit the top answer. This module implements such an operator for **path
//! queries** and reports both the number of sorted accesses and the number of
//! partial join combinations it materialised, so the experiment can contrast
//! it with the `O(nℓ)` time-to-first of the any-k algorithms.

use crate::answer::Answer;
use crate::compile::validate;
use crate::error::EngineError;
use anyk_query::ConjunctiveQuery;
use anyk_storage::{Database, TupleId, Value};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Counters describing the work performed by the rank-join operator.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RankJoinStats {
    /// Tuples pulled through sorted access across all relations.
    pub sorted_accesses: usize,
    /// Partial join combinations materialised while probing seen tuples.
    pub partial_combinations: usize,
    /// Complete join results formed (before the threshold allowed emission).
    pub results_formed: usize,
}

/// Run an HRJN-style rank join over a path query and return the top `k`
/// answers (ranked by ascending sum of tuple weights) plus work counters.
///
/// # Errors
/// Returns an error if the query is not a path-shaped chain of binary atoms
/// (the shape used in the §9.1.3 analysis) or references unknown relations.
pub fn rank_join_top_k(
    db: &Database,
    query: &ConjunctiveQuery,
    k: usize,
) -> Result<(Vec<Answer>, RankJoinStats), EngineError> {
    validate(db, query)?;
    let atoms = query.atoms();
    let ell = atoms.len();
    // Validate the chain shape: consecutive binary atoms R_j(x_j, x_{j+1})
    // joined on the second attribute of the left atom and the first of the
    // right one.
    let chain_ok = atoms.iter().all(|a| a.arity() == 2)
        && atoms.windows(2).all(|w| {
            w[0].variables[1] == w[1].variables[0] && w[0].shared_variables(&w[1]).len() == 1
        });
    if !chain_ok {
        return Err(EngineError::UnsupportedCyclicQuery(format!(
            "rank-join baseline requires a binary path query, got {query}"
        )));
    }

    // Sorted access order per relation (ascending weight).
    let sorted: Vec<Vec<(TupleId, f64)>> = atoms
        .iter()
        .map(|a| {
            let rel = db.expect(&a.relation);
            let mut v: Vec<(TupleId, f64)> = rel.iter().map(|(id, t)| (id, t.weight())).collect();
            v.sort_by(|x, y| x.1.total_cmp(&y.1));
            v
        })
        .collect();
    let top_weights: Vec<f64> = sorted
        .iter()
        .map(|s| s.first().map(|x| x.1).unwrap_or(f64::INFINITY))
        .collect();

    // Seen tuples per relation, indexed by their left and right join values.
    let mut seen: Vec<Vec<TupleId>> = vec![Vec::new(); ell];
    let mut seen_by_left: Vec<HashMap<Value, Vec<TupleId>>> = vec![HashMap::new(); ell];
    let mut seen_by_right: Vec<HashMap<Value, Vec<TupleId>>> = vec![HashMap::new(); ell];
    let mut cursor = vec![0usize; ell];
    let mut last_weight = vec![f64::NEG_INFINITY; ell];

    let mut stats = RankJoinStats::default();
    let mut output: BinaryHeap<Reverse<(OrderedWeight, Vec<TupleId>)>> = BinaryHeap::new();
    let mut emitted: Vec<Answer> = Vec::new();

    let threshold = |last: &[f64], tops: &[f64]| -> f64 {
        (0..last.len())
            .map(|i| {
                let others: f64 = tops
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, w)| w)
                    .sum();
                last[i] + others
            })
            .fold(f64::INFINITY, f64::min)
    };

    let mut next_rel = 0usize;
    loop {
        // Emit everything already guaranteed by the threshold.
        let t = threshold(&last_weight, &top_weights);
        while emitted.len() < k {
            match output.peek() {
                Some(Reverse((w, _))) if w.0 <= t || all_exhausted(&cursor, &sorted) => {
                    let Reverse((w, witness)) = output.pop().unwrap();
                    emitted.push(make_answer(db, query, &witness, w.0));
                }
                _ => break,
            }
        }
        if emitted.len() >= k || all_exhausted(&cursor, &sorted) {
            break;
        }

        // Round-robin sorted access.
        let mut rel = next_rel;
        for _ in 0..ell {
            if cursor[rel] < sorted[rel].len() {
                break;
            }
            rel = (rel + 1) % ell;
        }
        next_rel = (rel + 1) % ell;
        let (tid, w) = sorted[rel][cursor[rel]];
        cursor[rel] += 1;
        last_weight[rel] = w;
        stats.sorted_accesses += 1;

        // Join the new tuple against the seen prefixes of the other relations.
        let tuple = db.expect(&atoms[rel].relation).tuple(tid);
        let mut partials: Vec<Vec<TupleId>> = vec![vec![tid]];
        // Extend to the left (relations rel-1 .. 0) joining on column 1 = column 0 of the right neighbour.
        for j in (0..rel).rev() {
            let mut next = Vec::new();
            for p in &partials {
                let leftmost = db.expect(&atoms[j + 1].relation).tuple(p[0]).value(0);
                if let Some(ids) = seen_by_right[j].get(&leftmost) {
                    for &id in ids {
                        let mut q = Vec::with_capacity(p.len() + 1);
                        q.push(id);
                        q.extend_from_slice(p);
                        next.push(q);
                        stats.partial_combinations += 1;
                    }
                }
            }
            partials = next;
            if partials.is_empty() {
                break;
            }
        }
        // Extend to the right (relations rel+1 .. ℓ-1) joining on the last tuple's column 1.
        if !partials.is_empty() {
            for j in rel + 1..ell {
                let mut next = Vec::new();
                for p in &partials {
                    let rightmost = db
                        .expect(&atoms[j - 1].relation)
                        .tuple(*p.last().unwrap())
                        .value(1);
                    if let Some(ids) = seen_by_left[j].get(&rightmost) {
                        for &id in ids {
                            let mut q = p.clone();
                            q.push(id);
                            next.push(q);
                            stats.partial_combinations += 1;
                        }
                    }
                }
                partials = next;
                if partials.is_empty() {
                    break;
                }
            }
        }
        for witness in partials {
            if witness.len() == ell {
                let total: f64 = witness
                    .iter()
                    .enumerate()
                    .map(|(j, &id)| db.expect(&atoms[j].relation).tuple(id).weight())
                    .sum();
                stats.results_formed += 1;
                output.push(Reverse((OrderedWeight(total), witness)));
            }
        }

        // Register the accessed tuple as seen.
        seen[rel].push(tid);
        seen_by_left[rel]
            .entry(tuple.value(0))
            .or_default()
            .push(tid);
        seen_by_right[rel]
            .entry(tuple.value(1))
            .or_default()
            .push(tid);
    }

    // Drain any remaining guaranteed results.
    while emitted.len() < k {
        match output.pop() {
            Some(Reverse((w, witness))) => emitted.push(make_answer(db, query, &witness, w.0)),
            None => break,
        }
    }
    Ok((emitted, stats))
}

fn all_exhausted(cursor: &[usize], sorted: &[Vec<(TupleId, f64)>]) -> bool {
    cursor.iter().zip(sorted).all(|(c, s)| *c >= s.len())
}

fn make_answer(
    db: &Database,
    query: &ConjunctiveQuery,
    witness: &[TupleId],
    weight: f64,
) -> Answer {
    let atoms = query.atoms();
    // Head values for the path x1 .. x_{ℓ+1}: first columns of every tuple
    // plus the last column of the final tuple.
    let mut values: Vec<Value> = witness
        .iter()
        .enumerate()
        .map(|(j, &id)| db.expect(&atoms[j].relation).tuple(id).value(0))
        .collect();
    values.push(
        db.expect(&atoms[atoms.len() - 1].relation)
            .tuple(witness[atoms.len() - 1])
            .value(1),
    );
    let wit = witness.iter().enumerate().map(|(j, &id)| (j, id)).collect();
    Answer::new(weight, values, wit)
}

/// Totally ordered f64 wrapper for the output heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedWeight(f64);
impl Eq for OrderedWeight {}
impl PartialOrd for OrderedWeight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedWeight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyk_core::AnyKAlgorithm;
    use anyk_query::QueryBuilder;
    use anyk_storage::Relation;

    fn db() -> Database {
        let mut db = Database::new();
        for (name, seed) in [("R1", 1u64), ("R2", 3), ("R3", 5)] {
            let mut r = Relation::new(name, 2);
            for i in 0..12u64 {
                r.push_edge(
                    (i * seed) % 4,
                    (i * seed + 1) % 4,
                    ((i * 7 + seed) % 11) as f64,
                );
            }
            db.add(r);
        }
        db
    }

    #[test]
    fn top_k_matches_any_k_results() {
        let db = db();
        let q = QueryBuilder::path(3).build();
        let rq = crate::RankedQuery::new(&db, &q).unwrap();
        let expected: Vec<f64> = rq
            .enumerate(AnyKAlgorithm::Take2)
            .take(5)
            .map(|a| a.weight())
            .collect();
        let (got, stats) = rank_join_top_k(&db, &q, 5).unwrap();
        assert_eq!(got.len(), expected.len().min(5));
        for (g, e) in got.iter().zip(&expected) {
            assert!((g.weight() - e).abs() < 1e-9);
        }
        assert!(stats.sorted_accesses > 0);
    }

    #[test]
    fn adversarial_instance_forces_many_combinations() {
        // Ascending-ranking mirror of database I2 (Fig. 19): the top answer
        // needs the tuples accessed *last* in R1 and R2, while all the early
        // (light) R1 and R2 tuples join with each other on a single hub value
        // — so the rank join materialises ~ (n−1)² combinations of R1 × R2
        // before it can emit the top-1 result.
        let n = 10u64;
        let mut db = Database::new();
        let mut r1 = Relation::new("R1", 2);
        let mut r2 = Relation::new("R2", 2);
        let mut r3 = Relation::new("R3", 2);
        for i in 1..n {
            r1.push_edge(100 + i, 1, 1.0 + i as f64); // a_i -> b_1, light
            r2.push_edge(1, 200 + i, 10.0 + i as f64); // b_1 -> c_i, light
            r3.push_edge(200 + i, 300, 100_000.0); // c_i -> d, very heavy
        }
        r1.push_edge(100, 0, 1000.0); // a_0 -> b_0, accessed last in R1
        r2.push_edge(0, 200, 2000.0); // b_0 -> c_0, accessed last in R2
        r3.push_edge(200, 300, 1.0); // c_0 -> d, the light terminal tuple
        db.add(r1);
        db.add(r2);
        db.add(r3);
        let q = QueryBuilder::path(3).build();
        let (top, stats) = rank_join_top_k(&db, &q, 1).unwrap();
        assert_eq!(top.len(), 1);
        assert!((top[0].weight() - 3001.0).abs() < 1e-9);
        // The rank join accessed nearly everything and considered ~ (n−1)²
        // partial combinations, while any-k finds the same answer in O(nℓ).
        assert!(
            stats.sorted_accesses as u64 >= 2 * (n - 2),
            "accesses = {}",
            stats.sorted_accesses
        );
        assert!(
            stats.partial_combinations as u64 >= (n - 2) * (n - 2) / 2,
            "combinations = {}",
            stats.partial_combinations
        );
        // Sanity: the any-k engine agrees on the top answer.
        let rq = crate::RankedQuery::new(&db, &q).unwrap();
        let best = rq.enumerate(AnyKAlgorithm::Take2).next().unwrap();
        assert!((best.weight() - 3001.0).abs() < 1e-9);
    }

    #[test]
    fn non_path_queries_are_rejected() {
        let db = db();
        let q = QueryBuilder::star(3).build();
        assert!(rank_join_top_k(&db, &q, 1).is_err());
    }
}
