//! Engine errors.

use anyk_query::{ParseError, QueryError};
use std::fmt;

/// Errors raised when preparing a query for ranked enumeration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// An atom references a relation that is not in the database.
    UnknownRelation(String),
    /// An atom's arity differs from the stored relation's arity.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Arity declared by the atom.
        atom_arity: usize,
        /// Arity of the stored relation.
        relation_arity: usize,
    },
    /// The query is cyclic but not a simple cycle; only acyclic queries and
    /// simple ℓ-cycles (ℓ ≥ 4) are supported with optimality guarantees.
    /// Such queries can still be answered through [`crate::wcoj`] + sorting.
    UnsupportedCyclicQuery(String),
    /// Ranked enumeration with projections was requested for a query outside
    /// the supported (free-connex) class.
    NotFreeConnex(String),
    /// The query or spec is structurally invalid (unbound variable, bad
    /// head, predicate on an unknown variable, empty body).
    Query(QueryError),
    /// A selection predicate's constant does not match the type of the
    /// column(s) binding its variable: a string constant against a raw-id
    /// column, or an integer constant against a dictionary-encoded text
    /// column.
    ConstantTypeMismatch {
        /// Relation whose column the constant was pushed down to.
        relation: String,
        /// Column index within the relation.
        column: usize,
        /// Display form of the offending constant.
        constant: String,
    },
    /// The textual query could not be parsed.
    Parse(ParseError),
    /// Delta maintenance ([`crate::PreparedQuery::refresh`]) was requested
    /// for a plan that cannot be patched in place: compiled without delta
    /// support, cycle-decomposed, or carrying selection-pushdown scratch
    /// relations. The caller should recompile from scratch instead.
    RefreshUnsupported(String),
    /// Sharded preparation ([`crate::ShardedPreparedQuery`]) cannot cover
    /// this query: no join variable admits a consistent co-partitioning, or
    /// the spec carries selection predicates (whose pushdown scratch copies
    /// would break the witness-id correspondence between sharded and
    /// unsharded streams). Prepare unsharded instead.
    ShardingUnsupported(String),
    /// A chaos-testing failpoint fired on the preparation path (see
    /// [`anyk_core::faults`]); never produced unless a fault plan is armed.
    Fault(anyk_core::faults::Injected),
    /// An internal invariant was violated. Reaching this is a bug in the
    /// engine, surfaced as a typed error instead of a panic so a serving
    /// layer can shed the one request rather than die.
    Internal(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownRelation(r) => write!(f, "relation `{r}` not found in database"),
            EngineError::ArityMismatch {
                relation,
                atom_arity,
                relation_arity,
            } => write!(
                f,
                "atom over `{relation}` has arity {atom_arity} but the relation has arity {relation_arity}"
            ),
            EngineError::UnsupportedCyclicQuery(q) => write!(
                f,
                "query `{q}` is cyclic but not a simple cycle; use the WCOJ batch fallback"
            ),
            EngineError::NotFreeConnex(q) => write!(
                f,
                "query `{q}` is not acyclic free-connex; min-weight projection guarantees do not apply"
            ),
            EngineError::Query(e) => write!(f, "invalid query: {e}"),
            EngineError::ConstantTypeMismatch {
                relation,
                column,
                constant,
            } => write!(
                f,
                "constant {constant} does not match the type of column {column} of \
                 relation `{relation}` (string constants need a dictionary-encoded \
                 text column, integer constants a raw-id column)"
            ),
            EngineError::RefreshUnsupported(why) => {
                write!(f, "plan cannot be delta-maintained ({why}); recompile instead")
            }
            EngineError::ShardingUnsupported(why) => {
                write!(f, "query cannot be shard-partitioned ({why}); prepare unsharded")
            }
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::Fault(e) => write!(f, "{e}"),
            EngineError::Internal(what) => {
                write!(f, "internal engine invariant violated: {what}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Query(e) => Some(e),
            EngineError::Parse(e) => Some(e),
            EngineError::Fault(e) => Some(e),
            _ => None,
        }
    }
}

impl From<anyk_core::faults::Injected> for EngineError {
    fn from(e: anyk_core::faults::Injected) -> Self {
        EngineError::Fault(e)
    }
}

impl From<QueryError> for EngineError {
    fn from(e: QueryError) -> Self {
        EngineError::Query(e)
    }
}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> Self {
        EngineError::Parse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_are_informative() {
        let e = EngineError::UnknownRelation("R9".into());
        assert!(e.to_string().contains("R9"));
        let e = EngineError::ArityMismatch {
            relation: "R".into(),
            atom_arity: 2,
            relation_arity: 3,
        };
        assert!(e.to_string().contains("arity 2"));
        assert!(e.to_string().contains("arity 3"));
    }
}
