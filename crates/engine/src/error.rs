//! Engine errors.

use std::fmt;

/// Errors raised when preparing a query for ranked enumeration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// An atom references a relation that is not in the database.
    UnknownRelation(String),
    /// An atom's arity differs from the stored relation's arity.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Arity declared by the atom.
        atom_arity: usize,
        /// Arity of the stored relation.
        relation_arity: usize,
    },
    /// The query is cyclic but not a simple cycle; only acyclic queries and
    /// simple ℓ-cycles (ℓ ≥ 4) are supported with optimality guarantees.
    /// Such queries can still be answered through [`crate::wcoj`] + sorting.
    UnsupportedCyclicQuery(String),
    /// Ranked enumeration with projections was requested for a query outside
    /// the supported (free-connex) class.
    NotFreeConnex(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownRelation(r) => write!(f, "relation `{r}` not found in database"),
            EngineError::ArityMismatch {
                relation,
                atom_arity,
                relation_arity,
            } => write!(
                f,
                "atom over `{relation}` has arity {atom_arity} but the relation has arity {relation_arity}"
            ),
            EngineError::UnsupportedCyclicQuery(q) => write!(
                f,
                "query `{q}` is cyclic but not a simple cycle; use the WCOJ batch fallback"
            ),
            EngineError::NotFreeConnex(q) => write!(
                f,
                "query `{q}` is not acyclic free-connex; min-weight projection guarantees do not apply"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_are_informative() {
        let e = EngineError::UnknownRelation("R9".into());
        assert!(e.to_string().contains("R9"));
        let e = EngineError::ArityMismatch {
            relation: "R".into(),
            atom_arity: 2,
            relation_arity: 3,
        };
        assert!(e.to_string().contains("arity 2"));
        assert!(e.to_string().contains("arity 3"));
    }
}
