//! Ranked enumeration for join queries **with projections** (§8.1).
//!
//! The paper identifies two reasonable semantics when a non-full query
//! `Q(y) :- g₁(x₁), …` is ranked:
//!
//! * **All-weight projection**: enumerate the full query and project each
//!   answer onto `y`, keeping duplicates (one per witness, each with its own
//!   weight). This is equivalent to ranked enumeration of the full query and
//!   inherits all of its guarantees — [`all_weight`].
//! * **Min-weight projection**: every distinct `y`-assignment is returned
//!   once, with the minimum weight over all witnesses that project onto it —
//!   [`min_weight`]. The paper shows this admits `TTF = O(n)` /
//!   `Delay(k) = O(log k)` exactly for **acyclic free-connex** queries
//!   (Theorem 20, Corollary 22).
//!
//! [`min_weight`] implements the semantics by enumerating the (ranked) full
//! query and emitting each projected assignment the first time it appears;
//! because the stream is ranked, the first appearance carries the minimum
//! weight. The output is therefore exactly the min-weight semantics. The
//! *worst-case delay* of this implementation is not logarithmic (consecutive
//! duplicates may have to be skipped) — the optimal free-connex construction
//! of Theorem 20 (folding away the existential subtrees after the bottom-up
//! pass) is tracked as future work; [`min_weight`] refuses queries outside
//! the free-connex class so that callers never silently rely on guarantees
//! that cannot hold (Corollary 22).
//!
//! Projected answers over dictionary-encoded relations decode like full ones:
//! build an [`crate::AnswerDecoder`] **for the projected query** — its head
//! variables are the projected ones, each still bound by some body column —
//! and duplicates are eliminated on dense ids, which is exactly elimination
//! on the original strings since dictionary encoding is injective.

use crate::answer::Answer;
use crate::error::EngineError;
use crate::ranked::RankedQuery;
use anyk_core::AnyKAlgorithm;
use anyk_query::ConjunctiveQuery;
use anyk_query::RankingFunction;
use anyk_storage::{Database, Value};
use std::collections::HashSet;

/// Build the full version of a projected query (same body, full head) and the
/// positions of the projected head variables within the full head.
fn full_version(query: &ConjunctiveQuery) -> (ConjunctiveQuery, Vec<usize>) {
    let full = ConjunctiveQuery::full(query.atoms().to_vec());
    let full_head = full.head_variables();
    let positions = query
        .head_variables()
        .iter()
        .map(|v| {
            full_head
                .iter()
                .position(|x| x == v)
                .expect("head variable occurs in the body")
        })
        .collect();
    (full, positions)
}

/// Ranked enumeration under **all-weight projection** semantics: answers are
/// the full query's answers projected onto the head variables, duplicates
/// included, in ranked order.
pub fn all_weight(
    db: &Database,
    query: &ConjunctiveQuery,
    ranking: RankingFunction,
    algorithm: AnyKAlgorithm,
) -> Result<Vec<Answer>, EngineError> {
    let (full, positions) = full_version(query);
    let prepared = RankedQuery::with_ranking(db, &full, ranking)?;
    Ok(prepared
        .enumerate(algorithm)
        .map(|a| project_answer(&a, &positions))
        .collect())
}

/// Like [`all_weight`] but stops after `k` answers.
pub fn all_weight_top_k(
    db: &Database,
    query: &ConjunctiveQuery,
    ranking: RankingFunction,
    algorithm: AnyKAlgorithm,
    k: usize,
) -> Result<Vec<Answer>, EngineError> {
    let (full, positions) = full_version(query);
    let prepared = RankedQuery::with_ranking(db, &full, ranking)?;
    Ok(prepared
        .enumerate(algorithm)
        .take(k)
        .map(|a| project_answer(&a, &positions))
        .collect())
}

/// Ranked enumeration under **min-weight projection** semantics for acyclic
/// free-connex queries: each distinct projected assignment once, with its
/// minimum witness weight, in ranked order.
///
/// Returns [`EngineError::NotFreeConnex`] for queries outside the class for
/// which these semantics admit efficient ranked enumeration (Corollary 22).
pub fn min_weight(
    db: &Database,
    query: &ConjunctiveQuery,
    ranking: RankingFunction,
    algorithm: AnyKAlgorithm,
    limit: Option<usize>,
) -> Result<Vec<Answer>, EngineError> {
    if !query.is_free_connex() {
        return Err(EngineError::NotFreeConnex(query.to_string()));
    }
    let (full, positions) = full_version(query);
    let prepared = RankedQuery::with_ranking(db, &full, ranking)?;
    let mut seen: HashSet<Vec<Value>> = HashSet::new();
    let mut out = Vec::new();
    for answer in prepared.enumerate(algorithm) {
        let projected = project_answer(&answer, &positions);
        if seen.insert(projected.values().to_vec()) {
            out.push(projected);
            if let Some(k) = limit {
                if out.len() >= k {
                    break;
                }
            }
        }
    }
    Ok(out)
}

fn project_answer(answer: &Answer, positions: &[usize]) -> Answer {
    Answer::new(
        answer.weight(),
        positions.iter().map(|&p| answer.value(p)).collect(),
        answer.witness().to_vec(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyk_query::QueryBuilder;
    use anyk_storage::Relation;

    fn db() -> Database {
        let mut db = Database::new();
        let mut r1 = Relation::new("R1", 2);
        r1.push_edge(1, 10, 1.0);
        r1.push_edge(1, 20, 5.0);
        r1.push_edge(2, 10, 3.0);
        let mut r2 = Relation::new("R2", 2);
        r2.push_edge(10, 100, 2.0);
        r2.push_edge(10, 200, 4.0);
        r2.push_edge(20, 100, 1.0);
        db.add(r1);
        db.add(r2);
        db
    }

    #[test]
    fn all_weight_keeps_duplicates_in_rank_order() {
        let db = db();
        // Q(x1) :- R1(x1,x2), R2(x2,x3): project the 2-path onto its source.
        let q = QueryBuilder::path(2).project(&["x1"]).build();
        let out = all_weight(&db, &q, RankingFunction::SumAscending, AnyKAlgorithm::Take2).unwrap();
        // Full query has 2+2+1+... combos: (1,10)->2 results, (1,20)->1, (2,10)->2 = 5.
        assert_eq!(out.len(), 5);
        assert_eq!(out[0].values(), &[1]);
        assert_eq!(out[0].weight(), 3.0);
        for w in out.windows(2) {
            assert!(w[0].weight() <= w[1].weight());
        }
        // x1 = 1 appears more than once (all-weight semantics keeps duplicates).
        assert!(out.iter().filter(|a| a.values() == [1]).count() >= 2);
    }

    #[test]
    fn min_weight_returns_each_assignment_once_with_group_minimum() {
        let db = db();
        let q = QueryBuilder::path(2).project(&["x1"]).build();
        let out = min_weight(
            &db,
            &q,
            RankingFunction::SumAscending,
            AnyKAlgorithm::Lazy,
            None,
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].values(), &[1]);
        assert_eq!(out[0].weight(), 3.0); // min over x1=1 group: 1+2
        assert_eq!(out[1].values(), &[2]);
        assert_eq!(out[1].weight(), 5.0); // 3+2
    }

    #[test]
    fn min_weight_rejects_non_free_connex_queries() {
        let db = db();
        // Q(x1, x3) :- R1(x1,x2), R2(x2,x3) is acyclic but not free-connex.
        let q = QueryBuilder::path(2).project(&["x1", "x3"]).build();
        assert!(matches!(
            min_weight(
                &db,
                &q,
                RankingFunction::SumAscending,
                AnyKAlgorithm::Take2,
                None
            ),
            Err(EngineError::NotFreeConnex(_))
        ));
    }

    #[test]
    fn projected_answers_decode_to_original_strings() {
        use crate::answer::{AnswerDecoder, DecodedValue};
        use anyk_storage::Schema;

        // FOLLOWS(x1,x2), FOLLOWS2(x2,x3) over usernames, projected onto the
        // middle user; all relations encode through one shared dictionary.
        let schema = Schema::text_shared(2);
        let mut db = Database::new();
        let mut r1 = Relation::with_schema("R1", schema.clone());
        r1.push_text_edge("alice", "bob", 1.0);
        r1.push_text_edge("carol", "bob", 5.0);
        r1.push_text_edge("alice", "dave", 3.0);
        let mut r2 = Relation::with_schema("R2", schema);
        r2.push_text_edge("bob", "erin", 2.0);
        r2.push_text_edge("dave", "erin", 4.0);
        db.add(r1);
        db.add(r2);

        let q = QueryBuilder::path(2).project(&["x2"]).build();
        let decoder = AnswerDecoder::for_query(&db, &q);
        let out = min_weight(
            &db,
            &q,
            RankingFunction::SumAscending,
            AnyKAlgorithm::Take2,
            None,
        )
        .unwrap();
        let decoded: Vec<Vec<DecodedValue>> = out.iter().map(|a| decoder.decode(a)).collect();
        assert_eq!(
            decoded,
            vec![
                vec![DecodedValue::Text("bob".into())],
                vec![DecodedValue::Text("dave".into())],
            ]
        );
        assert_eq!(out[0].weight(), 3.0, "min over bob's witnesses: 1+2");
        assert_eq!(out[1].weight(), 7.0, "3+4");
    }

    #[test]
    fn top_k_projection_stops_early() {
        let db = db();
        let q = QueryBuilder::path(2).project(&["x1", "x2"]).build();
        let out = all_weight_top_k(
            &db,
            &q,
            RankingFunction::SumAscending,
            AnyKAlgorithm::Eager,
            2,
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].values(), &[1, 10]);
    }
}
