//! A Generic-Join–style worst-case optimal join (§9.1.1).
//!
//! The paper contrasts its approach with worst-case optimal join (WCOJ)
//! algorithms such as NPRR / Generic-Join: those compute the *full* output in
//! time proportional to the AGM bound, so even finding the top-ranked answer
//! costs as much as materialising everything (Fig. 17). This module provides
//! such an algorithm — attribute-at-a-time expansion with intersection of the
//! candidate sets contributed by every atom — both as a baseline for the
//! Fig. 17 experiment and as a general-purpose fallback for cyclic queries
//! that are not simple cycles (e.g. triangles).

use crate::answer::Answer;
use crate::compile::validate;
use crate::error::EngineError;
use anyk_query::ConjunctiveQuery;
use anyk_query::RankingFunction;
use anyk_storage::{Database, Value};
use std::collections::{HashMap, HashSet};

/// Per-atom access structure for one variable-elimination step: given the
/// values of the atom's already-bound variables, which values can the current
/// variable take.
struct AtomIndex {
    /// For each of the atom's already-bound variables: its position in the
    /// global variable-elimination order (i.e. into the current assignment).
    bound_assignment_positions: Vec<usize>,
    /// bound values -> candidate values for the current variable.
    candidates: HashMap<Vec<Value>, HashSet<Value>>,
}

/// Evaluate a full conjunctive query (cyclic or acyclic) with a
/// Generic-Join–style WCOJ algorithm and return the **unsorted** result.
pub fn generic_join(
    db: &Database,
    query: &ConjunctiveQuery,
    ranking: RankingFunction,
) -> Result<Vec<Answer>, EngineError> {
    validate(db, query)?;
    let atoms = query.atoms();
    let order = query.variables();
    let var_pos: HashMap<&str, usize> = order
        .iter()
        .enumerate()
        .map(|(i, v)| (v.as_str(), i))
        .collect();

    // For every variable-elimination step, the indexes of the atoms that
    // constrain it, each with a prefix index.
    let mut step_indexes: Vec<Vec<(usize, AtomIndex)>> = Vec::with_capacity(order.len());
    for (depth, var) in order.iter().enumerate() {
        let mut per_atom = Vec::new();
        for (aidx, atom) in atoms.iter().enumerate() {
            let Some(vpos) = atom.variables.iter().position(|v| v == var) else {
                continue;
            };
            let bound_positions: Vec<usize> = atom
                .variables
                .iter()
                .enumerate()
                .filter(|(_, v)| var_pos[v.as_str()] < depth)
                .map(|(p, _)| p)
                .collect();
            let bound_assignment_positions: Vec<usize> = bound_positions
                .iter()
                .map(|&p| var_pos[atom.variables[p].as_str()])
                .collect();
            let relation = db.expect(&atom.relation);
            let mut candidates: HashMap<Vec<Value>, HashSet<Value>> = HashMap::new();
            for (_, t) in relation.iter() {
                let key: Vec<Value> = bound_positions.iter().map(|&p| t.value(p)).collect();
                candidates.entry(key).or_default().insert(t.value(vpos));
            }
            per_atom.push((
                aidx,
                AtomIndex {
                    bound_assignment_positions,
                    candidates,
                },
            ));
        }
        step_indexes.push(per_atom);
    }

    // Full-key index per atom, used to recover witnesses and weights once an
    // assignment is complete.
    let full_indexes: Vec<HashMap<Vec<Value>, Vec<usize>>> = atoms
        .iter()
        .map(|atom| {
            let relation = db.expect(&atom.relation);
            let mut idx: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
            for (tid, t) in relation.iter() {
                idx.entry(t.values_vec()).or_default().push(tid);
            }
            idx
        })
        .collect();

    let mut answers = Vec::new();
    let mut assignment: Vec<Value> = Vec::with_capacity(order.len());
    expand(
        db,
        query,
        ranking,
        &order,
        &var_pos,
        &step_indexes,
        &full_indexes,
        &mut assignment,
        &mut answers,
    );
    Ok(answers)
}

/// Evaluate with [`generic_join`] and sort by the ranking function — the
/// "WCOJ + sort" batch comparator for cyclic queries (Fig. 10 i–l, Fig. 17).
pub fn generic_join_sorted(
    db: &Database,
    query: &ConjunctiveQuery,
    ranking: RankingFunction,
) -> Result<Vec<Answer>, EngineError> {
    let mut answers = generic_join(db, query, ranking)?;
    answers.sort_by(|a, b| {
        ranking
            .encode(a.weight())
            .total_cmp(&ranking.encode(b.weight()))
            .then_with(|| a.values().cmp(b.values()))
    });
    Ok(answers)
}

#[allow(clippy::too_many_arguments)]
fn expand(
    db: &Database,
    query: &ConjunctiveQuery,
    ranking: RankingFunction,
    order: &[String],
    var_pos: &HashMap<&str, usize>,
    step_indexes: &[Vec<(usize, AtomIndex)>],
    full_indexes: &[HashMap<Vec<Value>, Vec<usize>>],
    assignment: &mut Vec<Value>,
    answers: &mut Vec<Answer>,
) {
    let depth = assignment.len();
    if depth == order.len() {
        emit_answers(
            db,
            query,
            ranking,
            order,
            var_pos,
            full_indexes,
            assignment,
            answers,
        );
        return;
    }
    // Intersect the candidate sets of every atom constraining this variable,
    // starting from the smallest (the Generic-Join leapfrog idea).
    let per_atom = &step_indexes[depth];
    debug_assert!(!per_atom.is_empty(), "every variable occurs in some atom");
    let mut sets: Vec<&HashSet<Value>> = Vec::with_capacity(per_atom.len());
    for (_, idx) in per_atom {
        let key: Vec<Value> = idx
            .bound_assignment_positions
            .iter()
            .map(|&p| assignment[p])
            .collect();
        match idx.candidates.get(&key) {
            Some(s) => sets.push(s),
            None => return, // no candidate at all
        }
    }
    sets.sort_by_key(|s| s.len());
    let (smallest, rest) = sets.split_first().expect("non-empty");
    let mut values: Vec<Value> = smallest
        .iter()
        .filter(|v| rest.iter().all(|s| s.contains(v)))
        .copied()
        .collect();
    values.sort_unstable();
    for v in values {
        assignment.push(v);
        expand(
            db,
            query,
            ranking,
            order,
            var_pos,
            step_indexes,
            full_indexes,
            assignment,
            answers,
        );
        assignment.pop();
    }
}

#[allow(clippy::too_many_arguments)]
fn emit_answers(
    db: &Database,
    query: &ConjunctiveQuery,
    ranking: RankingFunction,
    _order: &[String],
    var_pos: &HashMap<&str, usize>,
    full_indexes: &[HashMap<Vec<Value>, Vec<usize>>],
    assignment: &[Value],
    answers: &mut Vec<Answer>,
) {
    // For every atom, the tuples matching the assignment; the answer's
    // witnesses are the cross product (bag semantics).
    let combine = ranking.combine_fn();
    let atoms = query.atoms();
    let mut witness_options: Vec<&[usize]> = Vec::with_capacity(atoms.len());
    for (aidx, atom) in atoms.iter().enumerate() {
        let key: Vec<Value> = atom
            .variables
            .iter()
            .map(|v| assignment[var_pos[v.as_str()]])
            .collect();
        match full_indexes[aidx].get(&key) {
            Some(tids) => witness_options.push(tids),
            None => return,
        }
    }
    let head = query.head_variables();
    let head_values: Vec<Value> = head
        .iter()
        .map(|v| assignment[var_pos[v.as_str()]])
        .collect();

    // Cross product of witnesses.
    // (next atom index, witness so far, accumulated weight)
    type WitnessFrame = (usize, Vec<(usize, usize)>, f64);
    let mut stack: Vec<WitnessFrame> = vec![(0, Vec::new(), f64::NAN)];
    while let Some((aidx, wit, weight)) = stack.pop() {
        if aidx == atoms.len() {
            answers.push(Answer::new(
                ranking.decode(weight),
                head_values.clone(),
                wit,
            ));
            continue;
        }
        for &tid in witness_options[aidx] {
            let tw = ranking.encode(db.expect(&atoms[aidx].relation).tuple(tid).weight());
            let new_weight = if aidx == 0 { tw } else { combine(weight, tw) };
            let mut new_wit = wit.clone();
            new_wit.push((aidx, tid));
            stack.push((aidx + 1, new_wit, new_weight));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyk_core::AnyKAlgorithm;
    use anyk_query::QueryBuilder;
    use anyk_storage::Relation;

    fn db() -> Database {
        let mut db = Database::new();
        for (name, seed) in [("R1", 1u64), ("R2", 3), ("R3", 5), ("R4", 7)] {
            let mut r = Relation::new(name, 2);
            for i in 0..10u64 {
                r.push_edge((i * seed) % 4, (i * seed + 1) % 4, ((i + seed) % 9) as f64);
            }
            db.add(r);
        }
        db
    }

    #[test]
    fn matches_any_k_on_acyclic_queries() {
        let db = db();
        let q = QueryBuilder::path(3).build();
        let wcoj = generic_join_sorted(&db, &q, RankingFunction::SumAscending).unwrap();
        let rq = crate::RankedQuery::new(&db, &q).unwrap();
        let anyk: Vec<f64> = rq
            .enumerate(AnyKAlgorithm::Take2)
            .map(|a| a.weight())
            .collect();
        assert_eq!(wcoj.len(), anyk.len());
        for (a, b) in wcoj.iter().zip(&anyk) {
            assert!((a.weight() - b).abs() < 1e-9);
        }
    }

    #[test]
    fn matches_any_k_on_four_cycles() {
        let db = db();
        let q = QueryBuilder::cycle(4).build();
        let wcoj = generic_join_sorted(&db, &q, RankingFunction::SumAscending).unwrap();
        let rq = crate::RankedQuery::new(&db, &q).unwrap();
        let anyk: Vec<f64> = rq
            .enumerate(AnyKAlgorithm::Recursive)
            .map(|a| a.weight())
            .collect();
        assert_eq!(wcoj.len(), anyk.len());
        for (a, b) in wcoj.iter().zip(&anyk) {
            assert!((a.weight() - b).abs() < 1e-9);
        }
    }

    #[test]
    fn evaluates_triangles() {
        // Triangles are not supported by the cycle decomposition, but the
        // WCOJ fallback handles them.
        let mut db = Database::new();
        for name in ["R1", "R2", "R3"] {
            let mut r = Relation::new(name, 2);
            r.push_edge(1, 2, 1.0);
            r.push_edge(2, 3, 1.0);
            r.push_edge(3, 1, 1.0);
            r.push_edge(2, 1, 5.0);
            db.add(r);
        }
        let q = QueryBuilder::cycle(3).build();
        let out = generic_join_sorted(&db, &q, RankingFunction::SumAscending).unwrap();
        // Triangles in this directed graph: (1,2,3), (2,3,1), (3,1,2) via the
        // light edges, plus the ones using the (2,1) edge: (2,1,?) needs
        // R2(1,?) and R3(?,2) → (2,1,2)? no: x3 must satisfy R2(1,x3), R3(x3,2):
        // R2 has (1,2) → x3=2, R3 needs (2,2): absent. So exactly 3 answers.
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|a| (a.weight() - 3.0).abs() < 1e-9));
    }

    #[test]
    fn witnesses_reference_matching_tuples() {
        let db = db();
        let q = QueryBuilder::path(2).build();
        for ans in generic_join(&db, &q, RankingFunction::SumAscending).unwrap() {
            assert_eq!(ans.witness().len(), 2);
            let mut weight = 0.0;
            for &(aidx, tid) in ans.witness() {
                let rel = db.expect(&q.atoms()[aidx].relation);
                weight += rel.tuple(tid).weight();
            }
            assert!((weight - ans.weight()).abs() < 1e-9);
        }
    }
}
