//! A generic tuple-at-a-time hash-join engine + sort.
//!
//! This module stands in for the PostgreSQL comparison of Fig. 14 (§7.3): a
//! conventional batch engine that evaluates the join with a left-deep
//! pipeline of hash joins in the order the atoms are written, materialising
//! every intermediate result, and finally sorts the output by the ranking
//! function. Unlike [`crate::yannakakis`] it performs **no semi-join
//! reduction**, so dangling intermediate tuples are carried along — the
//! behaviour the paper contrasts its `Batch` implementation against.
//!
//! The pipeline is oblivious to dictionary encoding: text columns hold dense
//! ids, so probes, equality filters and the final sort's value tie-break all
//! operate on ids, and the resulting [`Answer`]s decode through the same
//! [`crate::AnswerDecoder`] as the any-k stream — which is what makes this
//! engine usable as the oracle in the text-workload differential tests.

use crate::answer::Answer;
use crate::compile::validate;
use crate::error::EngineError;
use anyk_query::{ConjunctiveQuery, Constant, Predicate, QuerySpec, RankingFunction};
use anyk_storage::{Database, Value};
use std::collections::HashMap;

/// An intermediate pipeline row: bound-variable values, accumulated weight,
/// and the witness tuples collected so far.
type Row = (Vec<Value>, f64, Vec<(usize, usize)>);

/// Evaluate a full CQ with a left-deep hash-join pipeline (atom order as
/// written) and return the result sorted by `ranking`.
///
/// Works for both acyclic and cyclic full queries (a cyclic query simply
/// produces additional equality filters on already-bound variables).
pub fn join_and_sort(
    db: &Database,
    query: &ConjunctiveQuery,
    ranking: RankingFunction,
) -> Result<Vec<Answer>, EngineError> {
    let mut answers = join_unsorted(db, query, ranking)?;
    sort_answers(&mut answers, ranking);
    Ok(answers)
}

/// Evaluate a [`QuerySpec`] — selection predicates included — and return the
/// result sorted by the spec's ranking. Selections are applied **inline** in
/// the pipeline (constants checked when a variable is first bound, repeated
/// variables as per-tuple column equalities): a deliberately independent
/// implementation from the engine's filtered-copy pushdown, which makes this
/// the oracle the differential tests compare the any-k path against.
///
/// The spec's `limit` and `algorithm` are ignored — the oracle always
/// produces the full sorted result, so callers can compare any prefix.
pub fn join_and_sort_spec(db: &Database, spec: &QuerySpec) -> Result<Vec<Answer>, EngineError> {
    let query = spec.to_query()?;
    let mut answers = join_pipeline(db, &query, spec.ranking, &spec.predicates)?;
    sort_answers(&mut answers, spec.ranking);
    Ok(answers)
}

fn sort_answers(answers: &mut [Answer], ranking: RankingFunction) {
    answers.sort_by(|a, b| {
        ranking
            .encode(a.weight())
            .total_cmp(&ranking.encode(b.weight()))
            .then_with(|| a.values().cmp(b.values()))
    });
}

/// Evaluate the join without the final sort (used to separate join cost from
/// sort cost in the harness, like "Batch (No sort)" in the paper's plots).
pub fn join_unsorted(
    db: &Database,
    query: &ConjunctiveQuery,
    ranking: RankingFunction,
) -> Result<Vec<Answer>, EngineError> {
    join_pipeline(db, query, ranking, &[])
}

fn join_pipeline(
    db: &Database,
    query: &ConjunctiveQuery,
    ranking: RankingFunction,
    predicates: &[Predicate],
) -> Result<Vec<Answer>, EngineError> {
    validate(db, query)?;
    let combine = ranking.combine_fn();
    let atoms = query.atoms();
    for p in predicates {
        if !atoms.iter().any(|a| a.binds(&p.variable)) {
            return Err(EngineError::Query(
                anyk_query::QueryError::UnknownPredicateVariable {
                    variable: p.variable.clone(),
                },
            ));
        }
        // Type-check the constant against *every* column binding the
        // variable (not just the one the pipeline probes) — the same
        // contract as the engine's pushdown, so the differential paths
        // accept and reject identical inputs.
        for atom in atoms {
            let relation = db.expect(&atom.relation);
            for (col, v) in atom.variables.iter().enumerate() {
                if *v != p.variable {
                    continue;
                }
                let text_column = relation.dictionary(col).is_some();
                let matches = match &p.constant {
                    Constant::Int(_) => !text_column,
                    Constant::Str(_) => text_column,
                };
                if !matches {
                    return Err(EngineError::ConstantTypeMismatch {
                        relation: relation.name().to_string(),
                        column: col,
                        constant: p.constant.to_string(),
                    });
                }
            }
        }
    }

    // Intermediate rows: values of the variables bound so far (in `bound`
    // order) plus the accumulated weight and witness.
    let mut bound: Vec<String> = Vec::new();
    let mut rows: Vec<Row> = vec![(Vec::new(), 0.0, Vec::new())];
    let mut first = true;

    for (atom_idx, atom) in atoms.iter().enumerate() {
        let relation = db.expect(&atom.relation);
        // Variables of this atom that are already bound (the join key) and
        // new ones — each **distinct** variable once, so an atom repeating a
        // variable contributes one key/binding column plus equality checks.
        let mut key_vars: Vec<String> = Vec::new();
        let mut new_vars: Vec<String> = Vec::new();
        // Within-atom equalities: column `b` must equal column `a` (the
        // variable's first occurrence).
        let mut intra_eqs: Vec<(usize, usize)> = Vec::new();
        for (col, v) in atom.variables.iter().enumerate() {
            if let Some(prev) = atom.variables[..col].iter().position(|x| x == v) {
                intra_eqs.push((prev, col));
            } else if bound.contains(v) {
                key_vars.push(v.clone());
            } else {
                new_vars.push(v.clone());
            }
        }
        let key_cols = atom.positions_of(&key_vars)?;
        let key_bound_pos: Vec<usize> = key_vars
            .iter()
            .map(|v| bound.iter().position(|b| b == v).expect("key var is bound"))
            .collect();
        let new_cols = atom.positions_of(&new_vars)?;
        // Constant requirements, checked the moment a variable is first
        // bound: `(column, Some(encoded))`, or `None` when the constant can
        // never match (a string the dictionary never interned).
        let mut const_checks: Vec<(usize, Option<Value>)> = Vec::new();
        for (v, &col) in new_vars.iter().zip(&new_cols) {
            for p in predicates.iter().filter(|p| p.variable == *v) {
                let encoded = match (&p.constant, relation.dictionary(col)) {
                    (Constant::Int(value), None) => Some(*value),
                    (Constant::Str(s), Some(dict)) => dict.lookup(s),
                    _ => {
                        return Err(EngineError::ConstantTypeMismatch {
                            relation: relation.name().to_string(),
                            column: col,
                            constant: p.constant.to_string(),
                        });
                    }
                };
                const_checks.push((col, encoded));
            }
        }

        // Memoised per (relation, key columns): a self-join or a repeated
        // evaluation over the same database skips the O(n) rebuild.
        let index = db.index(&atom.relation, &key_cols);
        let mut next_rows = Vec::new();
        for (values, weight, witness) in &rows {
            // Allocation-free probe: the key is hashed straight out of the
            // intermediate row via its bound-variable positions.
            for &tid in index.lookup_cols(values, &key_bound_pos) {
                let t = relation.tuple(tid);
                if !intra_eqs.iter().all(|&(a, b)| t.value(a) == t.value(b)) {
                    continue;
                }
                if !const_checks
                    .iter()
                    .all(|&(col, req)| req == Some(t.value(col)))
                {
                    continue;
                }
                let mut v = values.clone();
                v.extend(new_cols.iter().map(|&c| t.value(c)));
                let w = if first {
                    ranking.encode(t.weight())
                } else {
                    combine(*weight, ranking.encode(t.weight()))
                };
                let mut wit = witness.clone();
                wit.push((atom_idx, tid));
                next_rows.push((v, w, wit));
            }
        }
        bound.extend(new_vars);
        rows = next_rows;
        first = false;
    }

    // Project onto the head variables.
    let head = query.head_variables();
    let head_pos: Vec<usize> = head
        .iter()
        .map(|v| bound.iter().position(|b| b == v).unwrap())
        .collect();
    let positions: HashMap<usize, usize> =
        head_pos.iter().enumerate().map(|(i, &p)| (i, p)).collect();
    Ok(rows
        .into_iter()
        .map(|(values, weight, witness)| {
            let head_values = (0..head.len()).map(|i| values[positions[&i]]).collect();
            Answer::new(ranking.decode(weight), head_values, witness)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyk_core::AnyKAlgorithm;
    use anyk_query::QueryBuilder;
    use anyk_storage::Relation;

    fn db() -> Database {
        let mut db = Database::new();
        for (name, seed) in [("R1", 1u64), ("R2", 3), ("R3", 5), ("R4", 7)] {
            let mut r = Relation::new(name, 2);
            for i in 0..8u64 {
                let a = (i * seed) % 5;
                let b = (i * seed + 1) % 5;
                r.push_edge(a, b, ((i + seed) % 7) as f64);
            }
            db.add(r);
        }
        db
    }

    #[test]
    fn agrees_with_ranked_enumeration_on_paths() {
        let db = db();
        for ell in [2usize, 3, 4] {
            let q = QueryBuilder::path(ell).build();
            let naive = join_and_sort(&db, &q, RankingFunction::SumAscending).unwrap();
            let rq = crate::RankedQuery::new(&db, &q).unwrap();
            let anyk: Vec<f64> = rq
                .enumerate(AnyKAlgorithm::Lazy)
                .map(|a| a.weight())
                .collect();
            assert_eq!(naive.len(), anyk.len(), "ℓ = {ell}");
            for (a, b) in naive.iter().zip(&anyk) {
                assert!((a.weight() - b).abs() < 1e-9, "ℓ = {ell}");
            }
        }
    }

    #[test]
    fn agrees_with_ranked_enumeration_on_cycles() {
        let db = db();
        let q = QueryBuilder::cycle(4).build();
        let naive = join_and_sort(&db, &q, RankingFunction::SumAscending).unwrap();
        let rq = crate::RankedQuery::new(&db, &q).unwrap();
        let anyk: Vec<f64> = rq
            .enumerate(AnyKAlgorithm::Take2)
            .map(|a| a.weight())
            .collect();
        assert_eq!(naive.len(), anyk.len());
        for (a, b) in naive.iter().zip(&anyk) {
            assert!((a.weight() - b).abs() < 1e-9);
        }
    }

    #[test]
    fn string_keyed_answers_decode_identically_to_anyk() {
        use crate::answer::AnswerDecoder;
        use anyk_storage::Schema;

        let schema = Schema::text_shared(2);
        let mut db = Database::new();
        for (name, shift) in [("R1", 0usize), ("R2", 1)] {
            let mut r = Relation::with_schema(name, schema.clone());
            let users = ["alice", "bob", "carol", "dave"];
            for i in 0..users.len() {
                let from = users[(i + shift) % users.len()];
                let to = users[(i + shift + 1) % users.len()];
                r.push_text_edge(from, to, (i % 3) as f64 + 1.0);
            }
            db.add(r);
        }
        let q = QueryBuilder::path(2).build();
        let decoder = AnswerDecoder::for_query(&db, &q);
        let naive = join_and_sort(&db, &q, RankingFunction::SumAscending).unwrap();
        assert!(!naive.is_empty());
        let rq = crate::RankedQuery::new(&db, &q).unwrap();
        let anyk: Vec<_> = rq.enumerate(AnyKAlgorithm::Take2).collect();
        assert_eq!(naive.len(), anyk.len());
        let mut a: Vec<(Vec<String>, i64)> = naive
            .iter()
            .map(|x| (decoder.render(x), (x.weight() * 1e6).round() as i64))
            .collect();
        let mut b: Vec<(Vec<String>, i64)> = anyk
            .iter()
            .map(|x| (decoder.render(x), (x.weight() * 1e6).round() as i64))
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "same decoded multiset from both engines");
        for (values, _) in &a {
            for v in values {
                assert!(
                    v.chars().all(|c| c.is_ascii_alphabetic()),
                    "decoded value {v:?} is a username, not an id"
                );
            }
        }
    }

    #[test]
    fn unsorted_join_has_same_multiset() {
        let db = db();
        let q = QueryBuilder::path(3).build();
        let sorted = join_and_sort(&db, &q, RankingFunction::SumAscending).unwrap();
        let unsorted = join_unsorted(&db, &q, RankingFunction::SumAscending).unwrap();
        assert_eq!(sorted.len(), unsorted.len());
        let sum_a: f64 = sorted.iter().map(Answer::weight).sum();
        let sum_b: f64 = unsorted.iter().map(Answer::weight).sum();
        assert!((sum_a - sum_b).abs() < 1e-6);
    }
}
