//! Owning, thread-shareable prepared queries and resumable answer cursors.
//!
//! [`RankedQuery`](crate::RankedQuery) borrows its database and query, which
//! is the right shape for one-shot library calls but not for a long-lived
//! service: a service compiles a query **once**, shares the compiled plan
//! among many clients, and lets each client pull ranked answers **in pages**
//! across an arbitrary number of calls (and threads). This module provides
//! that shape:
//!
//! * [`PreparedQuery`] — owns an `Arc`-shared [`Database`] snapshot, the
//!   query, and the fully compiled plan (T-DP instances with the bottom-up
//!   phase already run). `Send + Sync`: one prepared query serves any number
//!   of concurrent sessions.
//! * [`AnswerCursor`] — one client's enumeration state over a prepared
//!   query: the any-k iterator (candidate queue, prefix arena, successor
//!   structures — see [`anyk_core::RankedIter`]) parked between calls.
//!   Pulling pages with [`AnswerCursor::next_page`] yields **bit-identical**
//!   answers, in the same order, as a one-shot
//!   [`PreparedQuery::enumerate`] stream — paging only changes *when* the
//!   iterator is advanced, never *what* it produces.
//!
//! ```
//! use anyk_engine::{PreparedQuery, RankingFunction};
//! use anyk_core::AnyKAlgorithm;
//! use anyk_query::QueryBuilder;
//! use anyk_storage::{Database, Relation};
//! use std::sync::Arc;
//!
//! let mut db = Database::new();
//! let mut r1 = Relation::new("R1", 2);
//! r1.push_edge(1, 10, 1.0);
//! r1.push_edge(2, 20, 4.0);
//! let mut r2 = Relation::new("R2", 2);
//! r2.push_edge(10, 5, 2.0);
//! r2.push_edge(20, 6, 1.0);
//! db.add(r1);
//! db.add(r2);
//!
//! let query = QueryBuilder::path(2).build();
//! let prepared = Arc::new(
//!     PreparedQuery::prepare(Arc::new(db), &query, RankingFunction::SumAscending).unwrap(),
//! );
//! let mut cursor = prepared.cursor(AnyKAlgorithm::Take2);
//! let page = cursor.next_page(1);
//! assert_eq!(page.answers[0].weight(), 3.0);
//! assert!(!page.done);
//! // ... suspend the cursor for as long as we like, then resume:
//! let rest = cursor.next_page(10);
//! assert_eq!(rest.answers.len(), 1);
//! assert!(rest.done);
//! ```

use crate::answer::Answer;
use crate::error::EngineError;
use crate::ranked::{AnswerStream, Plan};
use anyk_core::{AnyKAlgorithm, MemoryStats};
use anyk_obs::{Clock, DelayRecorder, HistogramSnapshot, MonotonicClock, PlanObs};
use anyk_query::ConjunctiveQuery;
use anyk_query::RankingFunction;
use anyk_storage::{Database, DeltaBatch};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cooperative cancellation flag shared between an [`AnswerCursor`] and
/// whoever needs to stop it — a service's explicit cancel path, a deadline
/// reaper, a client that hung up.
///
/// Cloning the token clones the *handle*, not the flag: every clone observes
/// (and can trip) the same underlying bit. Cancellation is cooperative and
/// answer-granular: the cursor checks the flag between answers inside
/// [`AnswerCursor::next_page_into`], so a cancelled cursor stops within one
/// answer's worth of work (the any-k delay bound, TT(k+1) − TT(k)) and the
/// page it was filling comes back short.
#[derive(Clone, Debug, Default)]
pub struct CancellationToken(Arc<AtomicBool>);

impl CancellationToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trip the flag. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether [`CancellationToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Knobs for [`PreparedQuery::from_spec_opts`]: everything the funnel
/// constructors ([`PreparedQuery::from_spec`],
/// [`PreparedQuery::from_spec_delta`], …) hard-code.
#[derive(Clone, Copy, Debug, Default)]
pub struct PrepareOptions {
    /// Retain the delta-maintenance bookkeeping that lets
    /// [`PreparedQuery::refresh`] patch the plan under a [`DeltaBatch`]
    /// instead of recompiling; see [`PreparedQuery::prepare_delta`].
    pub retain_delta: bool,
    /// Worker count for the bottom-up preprocessing sweep. `None` falls back
    /// to the `ANYK_THREADS` process env
    /// ([`anyk_core::tdp::default_bottom_up_threads`]); servers plumb their
    /// configured `threads` knob through here so deployments don't depend on
    /// process-wide env, and sharded preparation pins per-shard counts to
    /// avoid oversubscription.
    pub threads: Option<usize>,
}

/// A conjunctive query compiled and preprocessed once, owning everything it
/// needs to enumerate (`Arc`-shared database snapshot + compiled plan).
///
/// `Send + Sync`: wrap it in an `Arc` and hand out [`AnswerCursor`]s to as
/// many threads as needed — enumeration state lives entirely inside each
/// cursor, so concurrent sessions never perturb each other's ranked order.
pub struct PreparedQuery {
    db: Arc<Database>,
    query: ConjunctiveQuery,
    /// Selection pushdown output (see the `select` module): the scratch
    /// database of filtered relation copies and the rewritten query the plan
    /// was compiled from. `None` for selection-free queries.
    effective: Option<(Database, ConjunctiveQuery)>,
    ranking: RankingFunction,
    plan: Plan,
}

impl PreparedQuery {
    /// Compile and preprocess `query` over `db` under `ranking`.
    ///
    /// This is the expensive step (the paper's TTF preprocessing: join-tree
    /// selection or cycle decomposition, T-DP compilation, bottom-up phase);
    /// everything after it — cursors, pages — is pure enumeration.
    pub fn prepare(
        db: Arc<Database>,
        query: &ConjunctiveQuery,
        ranking: RankingFunction,
    ) -> Result<Self, EngineError> {
        Self::build(db, query.clone(), ranking, &[], false, None)
    }

    /// [`PreparedQuery::prepare`] with every knob explicit; see
    /// [`PrepareOptions`].
    pub fn prepare_opts(
        db: Arc<Database>,
        query: &ConjunctiveQuery,
        ranking: RankingFunction,
        options: PrepareOptions,
    ) -> Result<Self, EngineError> {
        Self::build(
            db,
            query.clone(),
            ranking,
            &[],
            options.retain_delta,
            options.threads,
        )
    }

    /// Like [`PreparedQuery::prepare`], additionally retaining the
    /// bookkeeping that lets [`PreparedQuery::refresh`] patch the plan under
    /// a [`DeltaBatch`] instead of recompiling (one extra CSR copy plus
    /// `O(n)` tuple→state maps). Cycle plans and plans with
    /// selection-pushdown scratch relations silently skip the bookkeeping —
    /// check [`PreparedQuery::supports_refresh`].
    pub fn prepare_delta(
        db: Arc<Database>,
        query: &ConjunctiveQuery,
        ranking: RankingFunction,
    ) -> Result<Self, EngineError> {
        Self::build(db, query.clone(), ranking, &[], true, None)
    }

    /// Compile and preprocess a [`QuerySpec`](anyk_query::QuerySpec):
    /// selection predicates are pushed down to filtered relation copies
    /// (owned by the prepared query) before compilation. The spec's
    /// execution attributes — `algorithm`, `limit` — are deliberately *not*
    /// baked in: a prepared plan is shared by every request with the same
    /// [`plan_key`](anyk_query::QuerySpec::plan_key), and sessions apply
    /// those attributes per cursor ([`PreparedQuery::cursor_with_limit`]).
    pub fn from_spec(db: Arc<Database>, spec: &anyk_query::QuerySpec) -> Result<Self, EngineError> {
        let query = spec.to_query()?;
        Self::build(db, query, spec.ranking, &spec.predicates, false, None)
    }

    /// [`PreparedQuery::from_spec`] with delta-maintenance bookkeeping; see
    /// [`PreparedQuery::prepare_delta`].
    pub fn from_spec_delta(
        db: Arc<Database>,
        spec: &anyk_query::QuerySpec,
    ) -> Result<Self, EngineError> {
        let query = spec.to_query()?;
        Self::build(db, query, spec.ranking, &spec.predicates, true, None)
    }

    /// [`PreparedQuery::from_spec`] with every knob explicit; see
    /// [`PrepareOptions`].
    pub fn from_spec_opts(
        db: Arc<Database>,
        spec: &anyk_query::QuerySpec,
        options: PrepareOptions,
    ) -> Result<Self, EngineError> {
        let query = spec.to_query()?;
        Self::build(
            db,
            query,
            spec.ranking,
            &spec.predicates,
            options.retain_delta,
            options.threads,
        )
    }

    /// Parse `text` in the query language and prepare it; see
    /// [`PreparedQuery::from_spec`].
    pub fn from_text(db: Arc<Database>, text: &str) -> Result<Self, EngineError> {
        Self::from_spec(db, &anyk_query::QuerySpec::parse(text)?)
    }

    fn build(
        db: Arc<Database>,
        query: ConjunctiveQuery,
        ranking: RankingFunction,
        predicates: &[anyk_query::Predicate],
        retain_delta: bool,
        threads: Option<usize>,
    ) -> Result<Self, EngineError> {
        let effective = crate::select::rewrite_selections(&db, &query, predicates)?;
        let plan = match &effective {
            // Selection-pushdown plans compile over scratch relation copies
            // that a delta cannot be mapped onto; they recompile on
            // ingestion, so the bookkeeping would be dead weight.
            Some((scratch, rewritten)) => {
                Plan::prepare_opts(scratch, rewritten, ranking, false, threads)?
            }
            None => Plan::prepare_opts(&db, &query, ranking, retain_delta, threads)?,
        };
        Ok(PreparedQuery {
            db,
            query,
            effective,
            ranking,
            plan,
        })
    }

    /// Prepare with the default ranking ([`RankingFunction::SumAscending`]).
    pub fn new(db: Arc<Database>, query: &ConjunctiveQuery) -> Result<Self, EngineError> {
        Self::prepare(db, query, RankingFunction::SumAscending)
    }

    /// The database the plan enumerates and assembles answers over.
    fn exec_db(&self) -> &Database {
        self.effective.as_ref().map_or(&self.db, |(db, _)| db)
    }

    /// The shared database snapshot this plan was compiled over.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// The query this plan answers.
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    /// The ranking function in effect.
    pub fn ranking(&self) -> RankingFunction {
        self.ranking
    }

    /// Whether the plan uses the cycle decomposition.
    pub fn is_decomposed(&self) -> bool {
        self.plan.is_decomposed()
    }

    /// The exact number of answers, computed without enumerating them.
    pub fn count_answers(&self) -> u128 {
        self.plan.count_answers()
    }

    /// Whether [`PreparedQuery::refresh`] can patch this plan under a
    /// [`DeltaBatch`]: compiled through [`PreparedQuery::prepare_delta`] /
    /// [`PreparedQuery::from_spec_delta`], acyclic, and free of
    /// selection-pushdown scratch relations.
    pub fn supports_refresh(&self) -> bool {
        self.effective.is_none() && self.plan.supports_refresh()
    }

    /// Delta-maintain the plan: a **new** prepared query answering the same
    /// query over `new_db`, which must be this plan's snapshot plus `batch`
    /// (the output of
    /// [`Database::apply_delta`](anyk_storage::Database::apply_delta)).
    ///
    /// Only the dirty cone of the bottom-up phase is re-swept (see
    /// [`anyk_core::tdp::apply_patch`]); the ranked streams of the result
    /// are bit-identical to recompiling from scratch over `new_db`. The
    /// original plan is untouched — open cursors keep streaming their
    /// pinned snapshot (a hard requirement: cursors hold self-references
    /// into the plan, so prepared queries are never mutated in place).
    pub fn refresh(
        &self,
        new_db: Arc<Database>,
        batch: &DeltaBatch,
    ) -> Result<PreparedQuery, EngineError> {
        if self.effective.is_some() {
            return Err(EngineError::RefreshUnsupported(
                "plans with selection-pushdown scratch relations recompile on ingestion".into(),
            ));
        }
        let (plan, _stats) = self.plan.refresh(&new_db, batch, self.ranking)?;
        Ok(PreparedQuery {
            db: new_db,
            query: self.query.clone(),
            effective: None,
            ranking: self.ranking,
            plan,
        })
    }

    /// A decoder mapping this query's answers back to original strings
    /// (identity on raw-id columns); see [`crate::AnswerDecoder`]. Built
    /// over the plan's snapshot, so page decoding stays consistent even if
    /// the catalog the service started from is later replaced elsewhere.
    /// Selection-pushdown copies share their source's dictionaries, so the
    /// decoder is the same with and without predicates.
    pub fn decoder(&self) -> crate::AnswerDecoder {
        crate::AnswerDecoder::for_query(&self.db, &self.query)
    }

    /// Enumerate every answer exactly once, in rank order (the one-shot
    /// stream that paged cursors are guaranteed to reproduce bit-identically).
    pub fn enumerate(&self, algorithm: AnyKAlgorithm) -> Box<dyn AnswerStream + '_> {
        self.plan.enumerate(self.exec_db(), algorithm, self.ranking)
    }

    /// Convenience: the top `k` answers as a vector.
    pub fn top_k(&self, algorithm: AnyKAlgorithm, k: usize) -> Vec<Answer> {
        self.enumerate(algorithm).take(k).collect()
    }

    /// MEM(k) profile; see [`crate::RankedQuery::mem_profile`].
    pub fn mem_profile(&self, algorithm: AnyKAlgorithm, k: usize) -> Option<MemoryStats> {
        self.plan.mem_profile(algorithm, k)
    }

    /// Open a new enumeration cursor over this prepared query.
    ///
    /// Requires `&Arc<Self>` (not `&self`): the cursor keeps the prepared
    /// query alive for as long as it exists, which is what makes it an
    /// independent, storable session — drop the service's other handles and
    /// the cursor still enumerates.
    pub fn cursor(self: &Arc<Self>, algorithm: AnyKAlgorithm) -> AnswerCursor {
        AnswerCursor::new(Arc::clone(self), algorithm, None)
    }

    /// Like [`PreparedQuery::cursor`], but the stream ends after `limit`
    /// answers (a spec's `limit N` clause, applied per session so the
    /// compiled plan stays shareable across different limits). `None` means
    /// unlimited.
    pub fn cursor_with_limit(
        self: &Arc<Self>,
        algorithm: AnyKAlgorithm,
        limit: Option<usize>,
    ) -> AnswerCursor {
        AnswerCursor::new(Arc::clone(self), algorithm, limit)
    }
}

impl std::fmt::Debug for PreparedQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedQuery")
            .field("query", &self.query.to_string())
            .field("ranking", &self.ranking)
            .field("decomposed", &self.is_decomposed())
            .finish()
    }
}

/// One page of ranked answers pulled from an [`AnswerCursor`].
#[derive(Debug, Clone, PartialEq)]
pub struct Page {
    /// The answers, in global rank order (continuing from the previous
    /// page's last answer).
    pub answers: Vec<Answer>,
    /// True when the stream is exhausted: this page is short (fewer than the
    /// requested `page_size` answers, possibly zero).
    pub done: bool,
}

/// A resumable enumeration session over a [`PreparedQuery`].
///
/// The cursor owns the live any-k iterator — candidate priority queue,
/// shared-prefix arena, successor structures (or branch streams / the union
/// heap for `Recursive` / cycle plans) — plus an `Arc` on the prepared query
/// that keeps the compiled plan alive. Between [`AnswerCursor::next_page`]
/// calls the iterator simply sits in memory: suspension and resumption are
/// free, involve no per-page allocation beyond the returned answers (none at
/// all with [`AnswerCursor::next_page_into`]), and cannot change the stream.
///
/// `Send`: a suspended cursor may migrate across threads (e.g. live in a
/// session registry served by a thread pool).
pub struct AnswerCursor {
    // Field order is load-bearing: `iter` borrows from the heap allocation
    // behind `owner` and must be dropped first (fields drop in declaration
    // order).
    iter: Box<dyn AnswerStream + 'static>,
    algorithm: AnyKAlgorithm,
    served: usize,
    /// Answers still allowed before the session's `limit` cuts the stream
    /// (`None` = unlimited).
    remaining: Option<usize>,
    done: bool,
    cancel: CancellationToken,
    /// Set once a page pull observed the tripped token and stopped early.
    cancelled: bool,
    /// Per-answer delay instrumentation (`None` when recording is switched
    /// off, see [`anyk_obs::set_recording`]): one clock read plus a few
    /// plain integer adds per answer, flushed to shared per-plan histograms
    /// at page boundaries.
    recorder: Option<Box<DelayRecorder>>,
    owner: Arc<PreparedQuery>,
}

impl AnswerCursor {
    fn new(owner: Arc<PreparedQuery>, algorithm: AnyKAlgorithm, limit: Option<usize>) -> Self {
        let iter: Box<dyn AnswerStream + '_> = owner.enumerate(algorithm);
        // SAFETY: `iter` borrows only from the `PreparedQuery` heap
        // allocation behind `owner` (an `Arc` pointee, which never moves and
        // is never mutated — `PreparedQuery` has no interior mutability that
        // could invalidate the plan or its selection-pushdown scratch
        // database, both plain fields of that pointee). The cursor stores
        // `owner` next to `iter`, never hands the iterator out, and its
        // field order drops `iter` before `owner`, so the borrow outlives
        // every use and the `'static` lifetime is a private fiction that
        // cannot escape.
        let iter: Box<dyn AnswerStream + 'static> = unsafe { std::mem::transmute(iter) };
        let recorder = anyk_obs::recording_enabled().then(|| {
            Box::new(DelayRecorder::new(
                Arc::new(MonotonicClock::new()) as Arc<dyn Clock>,
                None,
            ))
        });
        AnswerCursor {
            iter,
            algorithm,
            served: 0,
            remaining: limit,
            done: limit == Some(0),
            cancel: CancellationToken::new(),
            cancelled: false,
            recorder,
            owner,
        }
    }

    /// The prepared query this cursor enumerates.
    pub fn prepared(&self) -> &Arc<PreparedQuery> {
        &self.owner
    }

    /// The any-k algorithm driving this cursor.
    pub fn algorithm(&self) -> AnyKAlgorithm {
        self.algorithm
    }

    /// Answers served so far across all pages.
    pub fn served(&self) -> usize {
        self.served
    }

    /// True once the stream has been exhausted.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// The cursor's cancellation token. Clone it and call
    /// [`CancellationToken::cancel`] from any thread to make the next (or
    /// in-flight) page pull stop between answers.
    pub fn cancel_token(&self) -> &CancellationToken {
        &self.cancel
    }

    /// True once a page pull observed a tripped [`CancellationToken`] and
    /// ended the stream early (distinct from natural exhaustion, which
    /// leaves this `false` even though [`AnswerCursor::is_done`] is true).
    pub fn is_cancelled(&self) -> bool {
        self.cancelled
    }

    /// The live MEM(k) footprint of the enumeration structures behind this
    /// cursor — candidate queues, shared-prefix arenas, successor-structure
    /// tables, summed over decomposition trees for cycle plans. `None` for
    /// `Recursive` and `Batch`, whose memory is not organised in these
    /// structures (see [`PreparedQuery::mem_profile`]).
    pub fn memory_stats(&self) -> Option<MemoryStats> {
        self.iter.live_mem()
    }

    /// Replace the cursor's delay instrumentation: record against `clock`
    /// (the service's injectable clock, so `ManualClock` tests script exact
    /// delays) and flush into `plan`'s shared per-plan histograms at page
    /// boundaries. The TTF reference point is *this call*, so attach before
    /// the first page pull. Respects the process-wide recording switch —
    /// a no-op (clearing any default recorder) when recording is off.
    pub fn enable_recording(&mut self, clock: Arc<dyn Clock>, plan: Option<Arc<PlanObs>>) {
        self.recorder =
            anyk_obs::recording_enabled().then(|| Box::new(DelayRecorder::new(clock, plan)));
    }

    /// The per-answer delay distribution recorded so far, in the shared
    /// log-bucketed histogram type (the first answer's delay is its TTF,
    /// matching [`anyk_core::metrics::EnumerationTrace`] semantics). `None`
    /// when recording is switched off.
    pub fn delay_histogram(&self) -> Option<HistogramSnapshot> {
        self.recorder.as_deref().map(DelayRecorder::delays)
    }

    /// Nanoseconds from recorder attachment (cursor open, unless
    /// [`AnswerCursor::enable_recording`] re-armed it) to the first answer.
    /// `None` before the first answer or when recording is off.
    pub fn ttf_nanos(&self) -> Option<u64> {
        self.recorder.as_deref().and_then(DelayRecorder::ttf_nanos)
    }

    /// Pull the next page of up to `page_size` answers.
    pub fn next_page(&mut self, page_size: usize) -> Page {
        let mut answers = Vec::new();
        let done = self.next_page_into(page_size, &mut answers);
        Page { answers, done }
    }

    /// Pull the next page into `out` (cleared first), reusing its capacity —
    /// a steady-state client pays no per-page allocation. Returns `true`
    /// when the stream is exhausted (the page came back short).
    pub fn next_page_into(&mut self, page_size: usize, out: &mut Vec<Answer>) -> bool {
        out.clear();
        if self.done {
            return true;
        }
        let quota = match self.remaining {
            Some(r) => page_size.min(r),
            None => page_size,
        };
        while out.len() < quota {
            if self.cancel.is_cancelled() {
                self.cancelled = true;
                self.done = true;
                break;
            }
            anyk_core::faults::checkpoint("engine.page");
            match self.iter.next() {
                Some(answer) => {
                    if let Some(r) = self.recorder.as_deref_mut() {
                        r.observe_answer();
                    }
                    out.push(answer);
                }
                None => {
                    self.done = true;
                    break;
                }
            }
        }
        if let Some(r) = &mut self.remaining {
            *r -= out.len();
            if *r == 0 {
                self.done = true;
            }
        }
        self.served += out.len();
        // Page boundary: push this page's delay counts to the shared
        // per-plan histograms (cold path; no-op without a plan sink).
        if let Some(r) = self.recorder.as_deref_mut() {
            r.flush();
        }
        self.done
    }
}

impl std::fmt::Debug for AnswerCursor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnswerCursor")
            .field("algorithm", &self.algorithm)
            .field("served", &self.served)
            .field("done", &self.done)
            .finish()
    }
}

// Compile-time guarantees for the service layer: prepared plans are shared
// across threads, cursors migrate between them.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_send_sync::<PreparedQuery>();
    assert_send::<AnswerCursor>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use anyk_query::QueryBuilder;
    use anyk_storage::Relation;

    fn path_db() -> Arc<Database> {
        let mut db = Database::new();
        let mut r1 = Relation::new("R1", 2);
        r1.push_edge(1, 10, 1.0);
        r1.push_edge(2, 20, 4.0);
        r1.push_edge(3, 10, 9.0);
        let mut r2 = Relation::new("R2", 2);
        r2.push_edge(10, 5, 2.0);
        r2.push_edge(20, 6, 1.0);
        db.add(r1);
        db.add(r2);
        Arc::new(db)
    }

    fn prepared() -> Arc<PreparedQuery> {
        let query = QueryBuilder::path(2).build();
        Arc::new(PreparedQuery::new(path_db(), &query).unwrap())
    }

    #[test]
    fn paged_stream_matches_one_shot_stream() {
        let p = prepared();
        let one_shot: Vec<Answer> = p.enumerate(AnyKAlgorithm::Take2).collect();
        for page_size in [1, 2, 3, 100] {
            let mut cursor = p.cursor(AnyKAlgorithm::Take2);
            let mut paged = Vec::new();
            loop {
                let page = cursor.next_page(page_size);
                paged.extend(page.answers);
                if page.done {
                    break;
                }
            }
            assert_eq!(paged, one_shot, "page size {page_size}");
            assert_eq!(cursor.served(), one_shot.len());
            assert!(cursor.is_done());
        }
    }

    #[test]
    fn oversized_page_finishes_in_one_pull() {
        let p = prepared();
        let mut cursor = p.cursor(AnyKAlgorithm::Lazy);
        let page = cursor.next_page(1000);
        assert_eq!(page.answers.len(), 3);
        assert!(page.done);
        // Pulling past the end is a stable no-op.
        let empty = cursor.next_page(10);
        assert!(empty.answers.is_empty());
        assert!(empty.done);
        assert_eq!(cursor.served(), 3);
    }

    #[test]
    fn zero_sized_page_is_a_probe() {
        let p = prepared();
        let mut cursor = p.cursor(AnyKAlgorithm::Eager);
        let page = cursor.next_page(0);
        assert!(page.answers.is_empty());
        assert!(!page.done, "a zero-sized page consumes nothing");
        assert_eq!(cursor.next_page(100).answers.len(), 3);
    }

    #[test]
    fn next_page_into_reuses_the_buffer() {
        let p = prepared();
        let mut cursor = p.cursor(AnyKAlgorithm::Recursive);
        let mut buf = Vec::with_capacity(2);
        assert!(!cursor.next_page_into(2, &mut buf));
        assert_eq!(buf.len(), 2);
        let cap = buf.capacity();
        assert!(cursor.next_page_into(2, &mut buf));
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.capacity(), cap, "no reallocation");
    }

    #[test]
    fn cursor_outlives_every_other_handle() {
        let mut cursor = {
            let p = prepared();
            p.cursor(AnyKAlgorithm::Take2)
        };
        // The Arc inside the cursor is now the only handle; enumeration
        // still works because the cursor keeps the plan alive.
        let page = cursor.next_page(10);
        assert_eq!(page.answers.len(), 3);
        assert_eq!(page.answers[0].weight(), 3.0);
    }

    #[test]
    fn cursor_can_move_between_threads_mid_stream() {
        let p = prepared();
        let mut cursor = p.cursor(AnyKAlgorithm::All);
        let first = cursor.next_page(1);
        let rest = std::thread::spawn(move || cursor.next_page(100))
            .join()
            .unwrap();
        let one_shot: Vec<Answer> = p.enumerate(AnyKAlgorithm::All).collect();
        let mut recombined = first.answers;
        recombined.extend(rest.answers);
        assert_eq!(recombined, one_shot);
    }

    #[test]
    fn cursor_records_exact_delays_on_manual_clock() {
        use anyk_obs::ManualClock;
        use std::time::Duration;

        let p = prepared();
        let clock = Arc::new(ManualClock::new());
        let plan = Arc::new(PlanObs::default());
        let mut cursor = p.cursor(AnyKAlgorithm::Take2);
        cursor.enable_recording(clock.clone() as Arc<dyn Clock>, Some(Arc::clone(&plan)));

        // The manual clock only moves between pages here (the expansion
        // loop itself reads a frozen clock), so the first page's three
        // answers arrive at delays 5ms, 0, 0.
        clock.advance(Duration::from_millis(5));
        let page = cursor.next_page(10);
        assert_eq!(page.answers.len(), 3);

        assert_eq!(cursor.ttf_nanos(), Some(5_000_000));
        let d = cursor.delay_histogram().expect("recording is on");
        assert_eq!(d.count(), 3);
        assert_eq!(d.sum(), 5_000_000);
        assert_eq!(d.max(), 5_000_000);

        // Page boundary flushed into the shared per-plan histograms.
        assert_eq!(plan.ttf.snapshot().count(), 1);
        let shared = plan.delay.snapshot();
        assert_eq!(shared.count(), 3);
        assert_eq!(shared.sum(), 5_000_000);
    }

    #[test]
    fn prepared_metadata_matches_ranked_query() {
        let db = path_db();
        let query = QueryBuilder::path(2).build();
        let p = PreparedQuery::prepare(Arc::clone(&db), &query, RankingFunction::SumDescending)
            .unwrap();
        assert_eq!(p.count_answers(), 3);
        assert!(!p.is_decomposed());
        assert_eq!(p.ranking(), RankingFunction::SumDescending);
        assert_eq!(p.query().to_string(), query.to_string());
        assert_eq!(p.top_k(AnyKAlgorithm::Take2, 1)[0].weight(), 11.0);
    }
}
